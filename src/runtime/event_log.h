// Structured single-line event logging for daemon-mode tools.
//
// Interactive tools narrate progress with ProgressReporter's \r-redraw
// lines; a daemon's stderr is a log file, where redraws turn into noise.
// EventLog instead emits one complete `key=value` line per event:
//
//   ccsigd up=12.042 event=source_quarantined source=eth0.pcap attempts=4
//
// Lines are flushed per event (a crashed daemon keeps everything it ever
// logged), values with spaces are quoted, and `up=` is seconds since the
// logger was constructed (monotonic clock, so log deltas are meaningful
// even if wall-clock time steps). Thread-safe; disabled loggers cost one
// branch.
#pragma once

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace ccsig::runtime {

class EventLog {
 public:
  using Field = std::pair<std::string_view, std::string>;

  /// `stream` nullptr means stderr. `tag` leads every line (the process
  /// name by convention).
  explicit EventLog(std::string tag, std::FILE* stream = nullptr,
                    bool enabled = true)
      : tag_(std::move(tag)),
        stream_(stream ? stream : stderr),
        enabled_(enabled),
        start_(std::chrono::steady_clock::now()) {}

  bool enabled() const { return enabled_; }

  /// Pure formatter (exposed for tests): one line, no trailing newline.
  static std::string format_line(std::string_view tag, double up_s,
                                 std::string_view event,
                                 std::initializer_list<Field> fields) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", up_s);
    std::string out;
    out.reserve(64);
    out.append(tag).append(" up=").append(buf).append(" event=").append(event);
    for (const Field& f : fields) {
      out.push_back(' ');
      out.append(f.first);
      out.push_back('=');
      append_value(out, f.second);
    }
    return out;
  }

  void log(std::string_view event, std::initializer_list<Field> fields = {}) {
    if (!enabled_) return;
    const double up = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    const std::string line = format_line(tag_, up, event, fields);
    std::lock_guard<std::mutex> lk(mu_);
    std::fprintf(stream_, "%s\n", line.c_str());
    std::fflush(stream_);
  }

 private:
  /// Quotes values containing whitespace or quotes; newlines inside a
  /// value would break the one-event-per-line contract and are replaced.
  static void append_value(std::string& out, std::string_view v) {
    bool quote = v.empty();
    for (const char c : v) {
      if (c == ' ' || c == '\t' || c == '"' || c == '\n' || c == '\r') {
        quote = true;
        break;
      }
    }
    if (!quote) {
      out.append(v);
      return;
    }
    out.push_back('"');
    for (const char c : v) {
      if (c == '\n' || c == '\r') {
        out.push_back(' ');
      } else if (c == '"') {
        out.append("\\\"");
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
  }

  std::string tag_;
  std::FILE* stream_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
};

}  // namespace ccsig::runtime

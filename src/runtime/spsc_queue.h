// Bounded lock-free single-producer / single-consumer ring queue.
//
// The streaming engine's ingest fast path routes record batches from one
// reader thread to per-shard single-writer workers. Each (reader, worker)
// edge is strictly one producer and one consumer, so the classic two-index
// ring suffices: the producer only writes `tail_`, the consumer only
// writes `head_`, and each side caches the other's index to avoid
// touching the shared cache line on every operation. No allocation after
// construction, no mutexes, no CAS loops on the hot path.
//
// The capacity is rounded up to a power of two; one slot is kept empty to
// distinguish full from empty, so the usable capacity is `capacity - 1`.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace ccsig::runtime {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity = 64) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the ring is full.
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(v);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (exact for the consumer; a producer
  /// observing true may be stale by one in-flight push).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // next slot to pop
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  // next slot to push
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head_
};

}  // namespace ccsig::runtime

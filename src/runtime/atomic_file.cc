#include "runtime/atomic_file.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace ccsig::runtime {

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open temp file for atomic write: " +
                               tmp);
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::error_code ignore;
      std::filesystem::remove(tmp, ignore);
      throw std::runtime_error("short write to temp file: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignore;
    std::filesystem::remove(tmp, ignore);
    throw std::runtime_error("cannot rename " + tmp + " -> " + path + ": " +
                             ec.message());
  }
}

}  // namespace ccsig::runtime

// Deterministic fault injection for the supervised runtime and the
// ingestion corpus tests.
//
// A FaultPlan is seeded and *stateless per decision*: whether job `i`
// faults on attempt `a` is a pure hash of (seed, i, a), so the same plan
// produces the same faults regardless of thread interleaving or execution
// order — which lets tests assert exact per-job outcomes and lets a
// fault-injected run be replayed.
//
// The corpus mutators deterministically damage files on disk (truncation,
// bit flips) to prove the pcap/CSV readers degrade into structured errors
// instead of crashing or misparsing.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/job_result.h"

namespace ccsig::runtime {

/// Fault rates and shapes. Rates are probabilities in [0, 1] evaluated
/// independently per (job, attempt).
struct FaultSpec {
  double throw_rate = 0;      // throw TransientError
  double permanent_rate = 0;  // throw std::runtime_error (not retryable)
  double stall_rate = 0;      // sleep `stall` (drives the watchdog)
  double io_fail_rate = 0;    // consulted by I/O hooks (checkpoint writes)
  std::chrono::milliseconds stall{50};
  /// Only attempts <= this number are faulted; the default 1 means a
  /// retried job always succeeds, so retries provably recover.
  int fault_attempts_at_most = 1;
};

class FaultPlan {
 public:
  /// Inert plan: never faults. Useful as a default.
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, FaultSpec spec) : seed_(seed), spec_(spec) {}

  bool armed() const {
    return spec_.throw_rate > 0 || spec_.permanent_rate > 0 ||
           spec_.stall_rate > 0 || spec_.io_fail_rate > 0;
  }

  const FaultSpec& spec() const { return spec_; }

  /// Injects the planned fault for (job, attempt), if any: throws
  /// TransientError, throws std::runtime_error, or stalls the calling
  /// thread. Called by parallel_map_supervised before each attempt.
  void maybe_fault(std::uint64_t job_key, int attempt) const;

  /// True when the planned fault for (job, attempt) is an I/O failure.
  /// Consulted by checkpoint/atomic-file writers wired for injection.
  bool io_should_fail(std::uint64_t job_key, int attempt) const;

  /// Decision predicates (exposed so tests can predict the plan).
  bool plans_throw(std::uint64_t job_key, int attempt) const;
  bool plans_permanent(std::uint64_t job_key, int attempt) const;
  bool plans_stall(std::uint64_t job_key, int attempt) const;

 private:
  /// Uniform [0,1) draw, a pure function of (seed, job, attempt, salt).
  double unit_draw(std::uint64_t job_key, int attempt,
                   std::uint64_t salt) const;

  std::uint64_t seed_ = 0;
  FaultSpec spec_;
};

// ---------------------------------------------------------------------------
// Corpus mutation: deterministic file damage for ingestion tests.

/// Truncates the file to its first `keep_bytes` bytes (no-op if already
/// shorter). Throws ParseException-free std::runtime_error on I/O failure.
void truncate_file(const std::string& path, std::uint64_t keep_bytes);

/// XORs the byte at `offset` with `mask` (mask 0 is promoted to 0xFF so a
/// mutation always changes the byte). Throws std::runtime_error when the
/// offset is out of range or the file cannot be rewritten.
void flip_byte(const std::string& path, std::uint64_t offset,
               std::uint8_t mask = 0xFF);

/// Produces `count` deterministically damaged copies of `source` inside
/// `out_dir` (created if missing): alternating truncations at hashed
/// offsets and hashed single-byte flips. Returns the mutant paths.
std::vector<std::string> mutate_corpus(const std::string& source,
                                       const std::string& out_dir,
                                       std::uint64_t seed, int count);

}  // namespace ccsig::runtime

// Signal-safe shutdown/reload latch for long-running tools.
//
// POSIX signal handlers may only touch `volatile sig_atomic_t` (and a
// short list of async-signal-safe functions); everything else — mutexes,
// condition variables, allocation, even lazily-initialized statics (their
// init guards can deadlock inside a handler) — is off the table. The latch
// therefore keeps constant-initialized sig_atomic_t flags that the
// handlers set and the service loop polls:
//
//   SIGTERM / SIGINT  -> drain_requested():  stop intake, finalize resident
//                        flows, flush + fsync outputs, exit 0.
//   SIGHUP            -> take_reload():      hot-reload the model (the flag
//                        is consumed, so each SIGHUP triggers one reload).
//
// SIGKILL cannot be caught by design — crash safety against it is the
// verdict log's torn-tail recovery (service/verdict_log.h), not a handler.
#pragma once

#include <csignal>

namespace ccsig::runtime {

namespace detail {
// Inline variables: constant-initialized before main, no guard code, so
// the handlers below are async-signal-safe.
inline volatile std::sig_atomic_t g_drain_flag = 0;
inline volatile std::sig_atomic_t g_reload_flag = 0;
}  // namespace detail

class ShutdownLatch {
 public:
  /// Installs the handlers. Idempotent; call once from main() before the
  /// service loop starts.
  static void install() {
    std::signal(SIGTERM, &ShutdownLatch::on_drain);
    std::signal(SIGINT, &ShutdownLatch::on_drain);
    std::signal(SIGHUP, &ShutdownLatch::on_reload);
  }

  static bool drain_requested() { return detail::g_drain_flag != 0; }

  /// True once per delivered SIGHUP (consumes the flag). The
  /// read-then-clear is not atomic against a concurrent signal, which is
  /// harmless: a SIGHUP landing between the two operations coalesces with
  /// the one being consumed — the caller is about to reload anyway.
  static bool take_reload() {
    if (detail::g_reload_flag == 0) return false;
    detail::g_reload_flag = 0;
    return true;
  }

  /// Test hooks (normal code never calls these).
  static void request_drain() { detail::g_drain_flag = 1; }
  static void reset() {
    detail::g_drain_flag = 0;
    detail::g_reload_flag = 0;
  }

 private:
  static void on_drain(int) { detail::g_drain_flag = 1; }
  static void on_reload(int) { detail::g_reload_flag = 1; }
};

}  // namespace ccsig::runtime

#include "runtime/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ccsig::runtime {

unsigned default_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ccsig::runtime

#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccsig::runtime {

namespace {

struct PoolMetrics {
  obs::Counter jobs_submitted;
  obs::Counter jobs_completed;
  obs::Gauge queue_depth;
  obs::Histogram job_ms;
};

PoolMetrics& pool_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static PoolMetrics m{
      reg.counter("runtime.pool.jobs_submitted"),
      reg.counter("runtime.pool.jobs_completed"),
      reg.gauge("runtime.pool.queue_depth"),
      reg.histogram("runtime.pool.job_ms",
                    {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
                     1000, 2500, 5000, 10000, 30000})};
  return m;
}

}  // namespace

unsigned default_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& m = pool_metrics();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    m.queue_depth.set(static_cast<double>(queue_.size()));
  }
  m.jobs_submitted.inc();
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    PoolMetrics& m = pool_metrics();
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      m.queue_depth.set(static_cast<double>(queue_.size()));
    }
    {
      obs::TraceSpan span("runtime.job", "runtime");
      const auto start = std::chrono::steady_clock::now();
      task();
      const auto elapsed = std::chrono::steady_clock::now() - start;
      m.job_ms.record(
          std::chrono::duration<double, std::milli>(elapsed).count());
      m.jobs_completed.inc();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ccsig::runtime

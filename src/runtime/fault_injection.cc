#include "runtime/fault_injection.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace ccsig::runtime {
namespace {

// SplitMix64 finalizer (same mixer the simulator's Rng uses to derive
// child seeds) — full-avalanche, so consecutive job indices decorrelate.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t file_size_or_throw(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw std::runtime_error("cannot stat " + path + ": " + ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

}  // namespace

double FaultPlan::unit_draw(std::uint64_t job_key, int attempt,
                            std::uint64_t salt) const {
  std::uint64_t h = mix64(seed_ ^ salt);
  h = mix64(h ^ job_key);
  h = mix64(h ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultPlan::plans_throw(std::uint64_t job_key, int attempt) const {
  return attempt <= spec_.fault_attempts_at_most &&
         unit_draw(job_key, attempt, 0x7472616E73ULL) < spec_.throw_rate;
}

bool FaultPlan::plans_permanent(std::uint64_t job_key, int attempt) const {
  return attempt <= spec_.fault_attempts_at_most &&
         unit_draw(job_key, attempt, 0x7065726DULL) < spec_.permanent_rate;
}

bool FaultPlan::plans_stall(std::uint64_t job_key, int attempt) const {
  return attempt <= spec_.fault_attempts_at_most &&
         unit_draw(job_key, attempt, 0x7374616CULL) < spec_.stall_rate;
}

bool FaultPlan::io_should_fail(std::uint64_t job_key, int attempt) const {
  return attempt <= spec_.fault_attempts_at_most &&
         unit_draw(job_key, attempt, 0x696F6661ULL) < spec_.io_fail_rate;
}

void FaultPlan::maybe_fault(std::uint64_t job_key, int attempt) const {
  if (!armed()) return;
  if (plans_stall(job_key, attempt)) {
    std::this_thread::sleep_for(spec_.stall);
  }
  if (plans_permanent(job_key, attempt)) {
    throw std::runtime_error("injected permanent fault (job " +
                             std::to_string(job_key) + ", attempt " +
                             std::to_string(attempt) + ")");
  }
  if (plans_throw(job_key, attempt)) {
    throw TransientError("injected transient fault (job " +
                         std::to_string(job_key) + ", attempt " +
                         std::to_string(attempt) + ")");
  }
}

void truncate_file(const std::string& path, std::uint64_t keep_bytes) {
  const std::uint64_t size = file_size_or_throw(path);
  if (keep_bytes >= size) return;
  std::error_code ec;
  std::filesystem::resize_file(path, keep_bytes, ec);
  if (ec) {
    throw std::runtime_error("cannot truncate " + path + ": " + ec.message());
  }
}

void flip_byte(const std::string& path, std::uint64_t offset,
               std::uint8_t mask) {
  if (mask == 0) mask = 0xFF;
  const std::uint64_t size = file_size_or_throw(path);
  if (offset >= size) {
    throw std::runtime_error("flip_byte offset past end of " + path);
  }
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) throw std::runtime_error("cannot open " + path + " for mutation");
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(static_cast<std::uint8_t>(byte) ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
  if (!f) throw std::runtime_error("cannot rewrite byte in " + path);
}

std::vector<std::string> mutate_corpus(const std::string& source,
                                       const std::string& out_dir,
                                       std::uint64_t seed, int count) {
  namespace fs = std::filesystem;
  fs::create_directories(out_dir);
  const std::uint64_t size = file_size_or_throw(source);
  const std::string stem = fs::path(source).stem().string();
  const std::string ext = fs::path(source).extension().string();

  std::vector<std::string> mutants;
  mutants.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint64_t h = mix64(seed ^ static_cast<std::uint64_t>(i));
    const bool truncate = (i % 2) == 0;
    const std::string name = stem + (truncate ? "_trunc" : "_flip") +
                             std::to_string(i) + ext;
    const std::string dst = (fs::path(out_dir) / name).string();
    fs::copy_file(source, dst, fs::copy_options::overwrite_existing);
    if (size == 0) {
      mutants.push_back(dst);
      continue;
    }
    if (truncate) {
      truncate_file(dst, h % size);
    } else {
      flip_byte(dst, h % size,
                static_cast<std::uint8_t>((h >> 32) & 0xFF));
    }
    mutants.push_back(dst);
  }
  return mutants;
}

}  // namespace ccsig::runtime

#include "runtime/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "runtime/atomic_file.h"

namespace ccsig::runtime {
namespace {
constexpr char kHeaderPrefix[] = "# checkpoint: ";
}  // namespace

std::map<std::size_t, std::string> ShardCheckpoint::load(
    const std::string& path, const std::string& fingerprint) {
  std::map<std::size_t, std::string> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  if (!std::getline(in, line) || line.rfind(kHeaderPrefix, 0) != 0 ||
      line.substr(sizeof(kHeaderPrefix) - 1) != fingerprint) {
    return rows;  // missing header or stale fingerprint: ignore entirely
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;  // damaged entry: skip
    std::size_t slot = 0;
    try {
      slot = static_cast<std::size_t>(std::stoull(line.substr(0, tab)));
    } catch (...) {
      continue;
    }
    rows[slot] = line.substr(tab + 1);
  }
  return rows;
}

ShardCheckpoint::ShardCheckpoint(std::string path, std::string fingerprint,
                                 int flush_every)
    : path_(std::move(path)),
      fingerprint_(std::move(fingerprint)),
      flush_every_(flush_every < 1 ? 1 : flush_every) {}

void ShardCheckpoint::restore(const std::map<std::size_t, std::string>& rows) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [slot, row] : rows) rows_[slot] = row;
}

void ShardCheckpoint::record(std::size_t slot, std::string row,
                             const FaultPlan* faults) {
  std::lock_guard<std::mutex> lk(mu_);
  const int attempt = ++record_attempts_[slot];
  if (faults && faults->io_should_fail(slot, attempt)) {
    throw TransientError("injected checkpoint I/O failure (slot " +
                         std::to_string(slot) + ", attempt " +
                         std::to_string(attempt) + ")");
  }
  rows_[slot] = std::move(row);
  if (++dirty_ >= flush_every_) flush_locked();
}

void ShardCheckpoint::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  flush_locked();
}

void ShardCheckpoint::flush_locked() {
  dirty_ = 0;
  std::ostringstream out;
  out << kHeaderPrefix << fingerprint_ << "\n";
  for (const auto& [slot, row] : rows_) out << slot << '\t' << row << "\n";
  try {
    write_file_atomic(path_, out.str());
  } catch (...) {
    ++flush_failures_;  // best effort: the campaign outranks its checkpoint
  }
}

void ShardCheckpoint::remove() {
  std::lock_guard<std::mutex> lk(mu_);
  std::error_code ignore;
  std::filesystem::remove(path_, ignore);
  std::filesystem::remove(path_ + ".tmp", ignore);
}

std::size_t ShardCheckpoint::rows_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rows_.size();
}

std::size_t ShardCheckpoint::flush_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flush_failures_;
}

}  // namespace ccsig::runtime

// Per-job outcome and retry vocabulary for supervised parallel execution.
//
// `parallel_map` rethrows the first job exception and discards the whole
// sweep; `parallel_map_supervised` (supervised.h) instead returns one
// JobResult per input slot, so a multi-thousand-run campaign survives
// individual failures and can report exactly which jobs failed, why, and
// after how many attempts.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <ios>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace ccsig::runtime {

/// How a job failure should be treated by the retry machinery.
enum class JobErrorKind {
  kTransient,  // worth retrying (I/O hiccup, injected fault, …)
  kPermanent,  // retrying cannot help (bad input, logic error)
  kTimeout,    // exceeded the soft deadline and was abandoned
};

inline const char* to_string(JobErrorKind k) {
  switch (k) {
    case JobErrorKind::kTransient: return "transient";
    case JobErrorKind::kPermanent: return "permanent";
    case JobErrorKind::kTimeout: return "timeout";
  }
  return "?";
}

/// Throw this (or a subclass) from a job to mark the failure retryable
/// under the default transient classifier.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Structured description of one job's final failure.
struct JobError {
  std::size_t index = 0;    // input slot in the mapped vector
  std::uint64_t seed = 0;   // caller-supplied job tag (e.g. the run's seed)
  int attempts = 0;         // attempts actually made
  JobErrorKind kind = JobErrorKind::kPermanent;
  std::string message;

  std::string to_string() const {
    return "job " + std::to_string(index) + " (seed " + std::to_string(seed) +
           "): " + to_string_kind() + " after " + std::to_string(attempts) +
           " attempt(s): " + message;
  }

 private:
  const char* to_string_kind() const { return runtime::to_string(kind); }
};

/// Value-or-error outcome of one supervised job.
template <typename T>
class JobResult {
 public:
  JobResult() = default;

  static JobResult success(T value, int attempts) {
    JobResult r;
    r.value_ = std::move(value);
    r.attempts_ = attempts;
    return r;
  }

  static JobResult failure(JobError error) {
    JobResult r;
    r.attempts_ = error.attempts;
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const { return *value_; }
  T& value() { return *value_; }
  const JobError& error() const { return *error_; }

  int attempts() const { return attempts_; }

  /// True when the job finished past its soft deadline but was allowed to
  /// complete (watchdog flagged it without abandoning it).
  bool deadline_exceeded = false;

 private:
  std::optional<T> value_;
  std::optional<JobError> error_;
  int attempts_ = 0;
};

/// Bounded-retry policy with deterministic exponential backoff. Backoff for
/// attempt k (1-based) is `backoff * 2^(k-1)` capped at `max_backoff` — a
/// pure function of the attempt number, never randomized, so supervised
/// runs stay reproducible.
struct RetryPolicy {
  int max_attempts = 1;  // 1 = no retry
  std::chrono::milliseconds backoff{0};
  std::chrono::milliseconds max_backoff{2000};
  /// Classifies a thrown exception as transient (retryable). When unset,
  /// TransientError and std::ios_base::failure are transient, everything
  /// else is permanent.
  std::function<bool(const std::exception&)> is_transient;

  std::chrono::milliseconds backoff_for(int attempt) const {
    if (backoff.count() <= 0) return std::chrono::milliseconds{0};
    std::chrono::milliseconds b = backoff;
    for (int k = 1; k < attempt && b < max_backoff; ++k) b *= 2;
    return b < max_backoff ? b : max_backoff;
  }

  bool classify_transient(const std::exception& e) const {
    if (is_transient) return is_transient(e);
    if (dynamic_cast<const TransientError*>(&e)) return true;
    if (dynamic_cast<const std::ios_base::failure*>(&e)) return true;
    return false;
  }

  static RetryPolicy attempts(int n) {
    RetryPolicy p;
    p.max_attempts = n;
    return p;
  }
};

}  // namespace ccsig::runtime

// parallel_map_supervised: the fault-tolerant sibling of parallel_map.
//
// Where parallel_map rethrows the first job exception and discards every
// other result, the supervised variant returns a JobResult per input slot:
// failed jobs carry a structured JobError (slot, seed tag, attempts, cause)
// and successful jobs are unaffected. A RetryPolicy re-runs transient
// failures with deterministic exponential backoff, and a soft-deadline
// watchdog flags jobs that run long — optionally abandoning them so one
// stuck simulation cannot hang a multi-thousand-run campaign.
//
// Determinism contract (same as parallel_map): job content must depend only
// on the input item, never on thread interleaving. Retries re-run the same
// deterministic item, so a retried-transient job produces a result
// byte-identical to a fault-free run.
//
// Abandonment semantics: an abandoned job KEEPS RUNNING on its worker
// thread; its eventual result is discarded. To make that safe the items,
// the function, and all bookkeeping are copied into shared state that a
// detached reaper thread keeps alive until every worker actually finishes.
// Abandonment therefore requires copyable items/fn and is only available on
// the parallel path (`jobs > 1`); the serial path can flag but never
// abandon.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/fault_injection.h"
#include "runtime/job_result.h"
#include "runtime/progress.h"
#include "runtime/thread_pool.h"

namespace ccsig::runtime {

/// Supervision counters (attempt/retry/failure accounting), registered
/// once; see obs/metrics.h for the recording contract.
struct SupervisedMetrics {
  obs::Counter attempts;
  obs::Counter retries;
  obs::Counter failures_transient;
  obs::Counter failures_permanent;
  obs::Counter deadline_flagged;
  obs::Counter jobs_abandoned;
};

inline SupervisedMetrics& supervised_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static SupervisedMetrics m{reg.counter("runtime.attempts"),
                             reg.counter("runtime.retries"),
                             reg.counter("runtime.failures_transient"),
                             reg.counter("runtime.failures_permanent"),
                             reg.counter("runtime.deadline_flagged"),
                             reg.counter("runtime.jobs_abandoned")};
  return m;
}

struct SupervisedOptions {
  /// Worker threads: 0 = every hardware thread, 1 = serial inline.
  int jobs = 0;
  RetryPolicy retry;
  /// Per-job soft deadline (wall clock, per attempt). 0 = no watchdog.
  std::chrono::milliseconds soft_deadline{0};
  /// When the deadline passes: false = let the job finish and flag
  /// `deadline_exceeded` on its result; true = abandon it immediately with
  /// a kTimeout JobError (parallel path only).
  bool abandon_on_deadline = false;
  /// Optional seed/tag reported in JobError (e.g. the run's RNG seed).
  std::function<std::uint64_t(std::size_t)> seed_of;
  /// Key used by the fault plan for job `index`; defaults to the index
  /// itself. Campaign drivers map subset indices back to global slots here
  /// so injected faults stay stable across resumes.
  std::function<std::uint64_t(std::size_t)> fault_key;
  /// Deterministic fault injection; nullptr = none.
  const FaultPlan* faults = nullptr;
};

namespace detail {

/// Runs one item through the retry loop. `on_attempt_start(attempt)` lets
/// the parallel path publish per-attempt start times to the watchdog; a
/// `false` return means the watchdog abandoned this slot (its kTimeout
/// error is already settled), so the loop must bail out instead of running
/// another attempt — the returned placeholder failure is discarded.
template <typename Out, typename In, typename Fn>
JobResult<Out> run_supervised_attempts(
    const In& item, Fn& fn, const SupervisedOptions& opt, std::size_t index,
    const std::function<bool(int)>& on_attempt_start) {
  const std::uint64_t key = opt.fault_key ? opt.fault_key(index)
                                          : static_cast<std::uint64_t>(index);
  for (int attempt = 1;; ++attempt) {
    if (on_attempt_start && !on_attempt_start(attempt)) {
      JobError err;
      err.index = index;
      err.seed = opt.seed_of ? opt.seed_of(index) : 0;
      err.attempts = attempt;
      err.kind = JobErrorKind::kTimeout;
      err.message = "abandoned by watchdog";
      return JobResult<Out>::failure(std::move(err));
    }
    const auto attempt_start = std::chrono::steady_clock::now();
    supervised_metrics().attempts.inc();
    try {
      obs::TraceSpan span("runtime.attempt", "runtime");
      if (opt.faults) opt.faults->maybe_fault(key, attempt);
      Out value = fn(item);
      auto r = JobResult<Out>::success(std::move(value), attempt);
      if (opt.soft_deadline.count() > 0 &&
          std::chrono::steady_clock::now() - attempt_start >
              opt.soft_deadline) {
        r.deadline_exceeded = true;
        supervised_metrics().deadline_flagged.inc();
      }
      return r;
    } catch (const std::exception& e) {
      const bool transient = opt.retry.classify_transient(e);
      if (transient && attempt < opt.retry.max_attempts) {
        supervised_metrics().retries.inc();
        obs::trace_instant("runtime.retry", "runtime");
        const auto pause = opt.retry.backoff_for(attempt);
        if (pause.count() > 0) std::this_thread::sleep_for(pause);
        continue;
      }
      JobError err;
      err.index = index;
      err.seed = opt.seed_of ? opt.seed_of(index) : 0;
      err.attempts = attempt;
      err.kind = transient ? JobErrorKind::kTransient : JobErrorKind::kPermanent;
      err.message = e.what();
      (transient ? supervised_metrics().failures_transient
                 : supervised_metrics().failures_permanent)
          .inc();
      return JobResult<Out>::failure(std::move(err));
    } catch (...) {
      JobError err;
      err.index = index;
      err.seed = opt.seed_of ? opt.seed_of(index) : 0;
      err.attempts = attempt;
      err.kind = JobErrorKind::kPermanent;
      err.message = "unknown exception";
      supervised_metrics().failures_permanent.inc();
      return JobResult<Out>::failure(std::move(err));
    }
  }
}

}  // namespace detail

template <typename In, typename Fn>
auto parallel_map_supervised(const std::vector<In>& items, Fn&& fn,
                             const SupervisedOptions& opt = {},
                             ProgressCounter* progress = nullptr)
    -> std::vector<JobResult<std::invoke_result_t<Fn&, const In&>>> {
  using Out = std::invoke_result_t<Fn&, const In&>;
  static_assert(!std::is_void_v<Out>,
                "parallel_map_supervised requires a value-returning function");

  const unsigned want =
      opt.jobs <= 0 ? default_jobs() : static_cast<unsigned>(opt.jobs);

  if (want <= 1 || items.size() <= 1) {
    std::vector<JobResult<Out>> results;
    results.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      results.push_back(detail::run_supervised_attempts<Out>(
          items[i], fn, opt, i, nullptr));
      if (progress) progress->tick();
    }
    return results;
  }

  enum class Status : std::uint8_t { kPending, kRunning, kDone, kAbandoned };

  struct State {
    std::vector<In> items;
    std::decay_t<Fn> fn;
    SupervisedOptions opt;

    std::mutex mu;
    std::condition_variable cv;
    std::size_t settled = 0;  // done + abandoned
    std::vector<JobResult<Out>> results;
    std::vector<Status> status;
    std::vector<std::chrono::steady_clock::time_point> attempt_started;
    std::vector<int> attempt;

    State(const std::vector<In>& items_in, Fn&& fn_in,
          const SupervisedOptions& opt_in)
        : items(items_in),
          fn(std::forward<Fn>(fn_in)),
          opt(opt_in),
          results(items_in.size()),
          status(items_in.size(), Status::kPending),
          attempt_started(items_in.size()),
          attempt(items_in.size(), 0) {}
  };

  const std::size_t n = items.size();
  auto state = std::make_shared<State>(items, std::forward<Fn>(fn), opt);
  auto pool = std::make_shared<ThreadPool>(
      static_cast<unsigned>(std::min<std::size_t>(want, n)));

  for (std::size_t i = 0; i < n; ++i) {
    pool->submit([state, progress, i] {
      std::function<bool(int)> on_attempt_start = [&state, i](int attempt) {
        std::lock_guard<std::mutex> lk(state->mu);
        // Never clobber an abandonment: the watchdog settled this slot with
        // a kTimeout error, and resetting it to kRunning would let the slot
        // settle a second time (early return + write into a moved-from
        // results vector). Tell the retry loop to bail out instead.
        if (state->status[i] == Status::kAbandoned) return false;
        state->status[i] = Status::kRunning;
        state->attempt[i] = attempt;
        state->attempt_started[i] = std::chrono::steady_clock::now();
        return true;
      };
      auto result = detail::run_supervised_attempts<Out>(
          state->items[i], state->fn, state->opt, i, on_attempt_start);
      {
        std::lock_guard<std::mutex> lk(state->mu);
        if (state->status[i] == Status::kAbandoned) {
          return;  // the watchdog already settled this slot; result dropped
        }
        state->status[i] = Status::kDone;
        state->results[i] = std::move(result);
        ++state->settled;
      }
      // Progress ticks outside state->mu (ProgressCounter has its own
      // lock); safe because the caller cannot return before `settled`
      // reaches n, which this task only bumps for non-abandoned slots.
      if (progress) progress->tick();
      state->cv.notify_all();
    });
  }

  bool any_abandoned = false;
  {
    std::unique_lock<std::mutex> lk(state->mu);
    const bool watchdog =
        opt.soft_deadline.count() > 0 && opt.abandon_on_deadline;
    const auto poll = std::chrono::milliseconds(
        watchdog ? std::max<std::int64_t>(1, opt.soft_deadline.count() / 4)
                 : 0);
    while (state->settled < n) {
      if (!watchdog) {
        state->cv.wait(lk);
        continue;
      }
      state->cv.wait_for(lk, poll);
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        if (state->status[i] != Status::kRunning) continue;
        if (now - state->attempt_started[i] <= opt.soft_deadline) continue;
        state->status[i] = Status::kAbandoned;
        JobError err;
        err.index = i;
        err.seed = opt.seed_of ? opt.seed_of(i) : 0;
        err.attempts = state->attempt[i];
        err.kind = JobErrorKind::kTimeout;
        err.message = "exceeded soft deadline of " +
                      std::to_string(opt.soft_deadline.count()) +
                      " ms; abandoned";
        state->results[i] = JobResult<Out>::failure(std::move(err));
        ++state->settled;
        any_abandoned = true;
        supervised_metrics().jobs_abandoned.inc();
        obs::trace_instant("runtime.abandon", "runtime");
        if (progress) progress->tick();
      }
    }
  }

  std::vector<JobResult<Out>> results;
  {
    std::lock_guard<std::mutex> lk(state->mu);
    results = std::move(state->results);
  }
  if (any_abandoned) {
    // Abandoned jobs are still executing inside `state`; a detached reaper
    // keeps the pool and state alive until they drain, so this call can
    // return now instead of hanging the campaign.
    std::thread([pool, state]() mutable {
      pool.reset();  // ~ThreadPool drains the queue and joins workers
      state.reset();
    }).detach();
  }
  return results;
}

}  // namespace ccsig::runtime

// Thread-safe progress counter shared by the parallel campaign drivers,
// plus the stderr-only reporter every tool and bench routes progress
// through (stdout stays machine-parseable).
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <unistd.h>

namespace ccsig::runtime {

/// Counts completed work items and relays (done, total) to an optional
/// callback. `tick()` takes a lock around both the increment and the
/// callback, so callbacks observe a strictly increasing `done` — exactly
/// 1, 2, …, total — and never run concurrently with each other, which
/// lets callers reuse the non-thread-safe progress lambdas the serial
/// drivers always accepted.
class ProgressCounter {
 public:
  using Callback = std::function<void(std::size_t done, std::size_t total)>;

  ProgressCounter(std::size_t total, Callback callback)
      : total_(total), callback_(std::move(callback)) {}

  /// Records one completed item and reports it. Thread-safe.
  void tick() {
    std::lock_guard<std::mutex> lk(mu_);
    ++done_;
    if (callback_) callback_(done_, total_);
  }

  std::size_t done() const {
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
  }

  std::size_t total() const { return total_; }

 private:
  mutable std::mutex mu_;
  std::size_t done_ = 0;
  const std::size_t total_;
  Callback callback_;
};

/// Renders campaign progress — count, percentage, rate, ETA — to stderr
/// and nothing else, so stdout stays machine-parseable. On a terminal the
/// line redraws in place (carriage return); when stderr is redirected each
/// throttled update is a complete line, so logs stay readable. Updates are
/// throttled to one redraw per `min_interval_s` except the final one.
///
/// Thread-safe; `callback()` plugs directly into a ProgressCounter or any
/// `(done, total)` campaign progress hook.
/// How progress reaches the terminal. Daemons and scripted runs pick an
/// explicit mode instead of letting isatty decide:
///   kAuto  — \r-redraw on a terminal, complete lines when redirected.
///   kPlain — complete lines always (even on a tty); log-file friendly.
///   kOff   — fully silent: a daemon's stderr carries structured events
///            (runtime/event_log.h), not progress chatter.
enum class ProgressMode { kAuto, kPlain, kOff };

struct ProgressReporterOptions {
  std::string label = "progress";
  /// Minimum seconds between redraws (the `done == total` update always
  /// prints).
  double min_interval_s = 0.25;
  /// Output stream; nullptr means stderr.
  std::FILE* stream = nullptr;
  ProgressMode mode = ProgressMode::kAuto;
};

class ProgressReporter {
 public:
  using Options = ProgressReporterOptions;

  explicit ProgressReporter(Options opt = Options())
      : opt_(std::move(opt)), start_(std::chrono::steady_clock::now()) {
    if (!opt_.stream) opt_.stream = stderr;
    tty_ = opt_.mode == ProgressMode::kAuto
               ? isatty(fileno(opt_.stream)) != 0
               : false;
  }

  explicit ProgressReporter(std::string label)
      : ProgressReporter(Options{std::move(label), 0.25, nullptr,
                                 ProgressMode::kAuto}) {}

  ~ProgressReporter() { finish(); }
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Pure formatter (exposed for tests): "[label] done/total pct% rate/s
  /// eta Ns". Rate and ETA are omitted when `elapsed_s` is not positive;
  /// ETA is omitted once done >= total.
  static std::string format_line(const std::string& label, std::size_t done,
                                 std::size_t total, double elapsed_s) {
    char buf[64];
    std::string out = "[" + label + "] " + std::to_string(done) + "/" +
                      std::to_string(total);
    if (total > 0) {
      std::snprintf(buf, sizeof(buf), " %.0f%%",
                    100.0 * static_cast<double>(done) /
                        static_cast<double>(total));
      out += buf;
    }
    if (elapsed_s > 0 && done > 0) {
      const double rate = static_cast<double>(done) / elapsed_s;
      std::snprintf(buf, sizeof(buf), " %.1f/s", rate);
      out += buf;
      if (done < total && rate > 0) {
        const long eta = std::lround(
            static_cast<double>(total - done) / rate);
        std::snprintf(buf, sizeof(buf), " eta %lds", eta);
        out += buf;
      }
    }
    return out;
  }

  /// Records progress and (throttled) redraws. Thread-safe. A kOff
  /// reporter is fully silent — daemon mode reports events, not progress.
  void update(std::size_t done, std::size_t total) {
    if (opt_.mode == ProgressMode::kOff) return;
    std::lock_guard<std::mutex> lk(mu_);
    const auto now = std::chrono::steady_clock::now();
    const bool final = total > 0 && done >= total;
    if (!final && printed_ &&
        std::chrono::duration<double>(now - last_print_).count() <
            opt_.min_interval_s) {
      return;
    }
    const double elapsed = std::chrono::duration<double>(now - start_).count();
    const std::string line = format_line(opt_.label, done, total, elapsed);
    if (tty_) {
      std::fprintf(opt_.stream, "\r%s\x1b[K", line.c_str());
      if (final) std::fprintf(opt_.stream, "\n");
      needs_newline_ = !final;
    } else {
      std::fprintf(opt_.stream, "%s\n", line.c_str());
    }
    std::fflush(opt_.stream);
    printed_ = true;
    finished_ = final;
    last_print_ = now;
  }

  /// Terminates an in-place redraw line (no-op when nothing was printed or
  /// the final update already ended the line). Called by the destructor.
  void finish() {
    std::lock_guard<std::mutex> lk(mu_);
    if (needs_newline_ && !finished_) {
      std::fprintf(opt_.stream, "\n");
      std::fflush(opt_.stream);
    }
    needs_newline_ = false;
    finished_ = true;
  }

  /// Adapter for ProgressCounter / campaign progress hooks. The reporter
  /// must outlive the returned callback.
  ProgressCounter::Callback callback() {
    return [this](std::size_t done, std::size_t total) {
      update(done, total);
    };
  }

 private:
  Options opt_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
  std::mutex mu_;
  bool tty_ = false;
  bool printed_ = false;
  bool finished_ = false;
  bool needs_newline_ = false;
};

}  // namespace ccsig::runtime

// Thread-safe progress counter shared by the parallel campaign drivers.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>

namespace ccsig::runtime {

/// Counts completed work items and relays (done, total) to an optional
/// callback. `tick()` takes a lock around both the increment and the
/// callback, so callbacks observe a strictly increasing `done` — exactly
/// 1, 2, …, total — and never run concurrently with each other, which
/// lets callers reuse the non-thread-safe progress lambdas the serial
/// drivers always accepted.
class ProgressCounter {
 public:
  using Callback = std::function<void(std::size_t done, std::size_t total)>;

  ProgressCounter(std::size_t total, Callback callback)
      : total_(total), callback_(std::move(callback)) {}

  /// Records one completed item and reports it. Thread-safe.
  void tick() {
    std::lock_guard<std::mutex> lk(mu_);
    ++done_;
    if (callback_) callback_(done_, total_);
  }

  std::size_t done() const {
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
  }

  std::size_t total() const { return total_; }

 private:
  mutable std::mutex mu_;
  std::size_t done_ = 0;
  const std::size_t total_;
  Callback callback_;
};

}  // namespace ccsig::runtime

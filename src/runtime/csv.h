// Strict CSV field cursor with structured errors.
//
// The sweep/campaign cache loaders used to pull fields with `stream >>`
// and raw std::stod — malformed input either threw a bare exception
// straight through main() or, worse, silently misparsed ("12abc" -> 12).
// CsvRow converts one line field-by-field and reports every defect as a
// runtime::ParseException carrying the file, 1-based line number, and a
// reason naming the offending field.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "runtime/parse_error.h"

namespace ccsig::runtime {

class CsvRow {
 public:
  CsvRow(const std::string& line, std::string file, std::uint64_t line_no)
      : line_(line), file_(std::move(file)), line_no_(line_no) {}

  std::string next_string() {
    if (pos_ == std::string::npos) {
      fail("missing field " + std::to_string(field_ + 1));
    }
    const std::size_t comma = line_.find(',', pos_);
    std::string field;
    if (comma == std::string::npos) {
      field = line_.substr(pos_);
      pos_ = std::string::npos;
    } else {
      field = line_.substr(pos_, comma - pos_);
      pos_ = comma + 1;
    }
    ++field_;
    return field;
  }

  double next_double() {
    const std::string field = next_string();
    try {
      std::size_t used = 0;
      const double v = std::stod(field, &used);
      if (used != field.size()) {
        fail("field " + std::to_string(field_) +
             ": trailing garbage in number '" + field + "'");
      }
      return v;
    } catch (const ParseException&) {
      throw;
    } catch (...) {
      fail("field " + std::to_string(field_) + ": not a number: '" + field +
           "'");
    }
  }

  int next_int() {
    const std::string field = next_string();
    try {
      std::size_t used = 0;
      const int v = std::stoi(field, &used);
      if (used != field.size()) {
        fail("field " + std::to_string(field_) +
             ": trailing garbage in integer '" + field + "'");
      }
      return v;
    } catch (const ParseException&) {
      throw;
    } catch (...) {
      fail("field " + std::to_string(field_) + ": not an integer: '" +
           field + "'");
    }
  }

  bool next_bool01() {
    const std::string field = next_string();
    if (field == "0") return false;
    if (field == "1") return true;
    fail("field " + std::to_string(field_) + ": expected 0 or 1, got '" +
         field + "'");
  }

  /// Call after the last field to reject rows with extra columns.
  void expect_end() {
    if (pos_ != std::string::npos) {
      fail("unexpected extra fields after field " + std::to_string(field_));
    }
  }

  [[noreturn]] void fail(const std::string& reason) {
    throw_parse_error(file_, line_no_, "line", reason);
  }

 private:
  const std::string& line_;
  std::string file_;
  std::uint64_t line_no_;
  std::size_t pos_ = 0;
  int field_ = 0;
};

}  // namespace ccsig::runtime

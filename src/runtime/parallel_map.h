// parallel_map: run an independent function over every element of a
// vector on a thread pool, preserving input order in the results.
//
// This is the execution primitive behind the testbed sweep and the M-Lab
// campaign generators. Determinism contract: `fn` receives items that
// already carry their own RNG seeds (drawn in a serial pre-pass), and the
// result vector is indexed by input slot, so the output is identical for
// any `jobs` value — byte-for-byte, including `jobs == 1`, which runs
// inline on the calling thread with no pool at all.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <vector>

#include "runtime/progress.h"
#include "runtime/thread_pool.h"

namespace ccsig::runtime {

/// Maps `fn` over `items` using `jobs` worker threads (`jobs <= 0` means
/// default_jobs(); `jobs == 1` is the serial fallback). Results come back
/// in input order. If any invocation throws, the first exception (by
/// completion time) is rethrown here after all workers finish; remaining
/// items still run but their results are discarded by the throw. The
/// optional `progress` counter ticks once per completed item.
template <typename In, typename Fn>
auto parallel_map(const std::vector<In>& items, Fn&& fn, int jobs,
                  ProgressCounter* progress = nullptr)
    -> std::vector<std::invoke_result_t<Fn&, const In&>> {
  using Out = std::invoke_result_t<Fn&, const In&>;
  static_assert(!std::is_void_v<Out>,
                "parallel_map requires a value-returning function");
  static_assert(std::is_default_constructible_v<Out>,
                "parallel_map results are slot-assigned and must be "
                "default-constructible");
  static_assert(!std::is_same_v<Out, bool>,
                "vector<bool> slots share storage across indices and would "
                "race under concurrent writes; return a wider type");

  std::vector<Out> results(items.size());
  const unsigned want = jobs <= 0 ? default_jobs() : static_cast<unsigned>(jobs);

  if (want <= 1 || items.size() <= 1) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      results[i] = fn(items[i]);
      if (progress) progress->tick();
    }
    return results;
  }

  std::mutex err_mu;
  std::exception_ptr first_error;
  {
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(want, items.size())));
    for (std::size_t i = 0; i < items.size(); ++i) {
      pool.submit([&, i] {
        try {
          results[i] = fn(items[i]);
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        if (progress) progress->tick();
      });
    }
    pool.wait();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace ccsig::runtime

// Structured ingestion errors.
//
// Every reader in the project (pcap files, sweep/campaign CSV caches,
// serialized models) reports malformed input as a ParseError carrying the
// file, the position where parsing stopped, and a human-readable reason —
// never a bare std::runtime_error and never a silent misparse. Readers with
// exception-based APIs throw ParseException (which IS-A runtime_error, so
// legacy catch sites keep working); readers with checked APIs return the
// ParseError by value next to whatever prefix of the input was good.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace ccsig::runtime {

struct ParseError {
  std::string file;
  /// Position where parsing stopped: a byte offset for binary formats, a
  /// 1-based line number for text formats (see `unit`).
  std::uint64_t offset = 0;
  const char* unit = "byte";  // "byte" or "line"
  std::string reason;

  std::string to_string() const {
    return file + " (" + unit + " " + std::to_string(offset) +
           "): " + reason;
  }
};

/// Exception wrapper so throwing readers still surface the structured form.
class ParseException : public std::runtime_error {
 public:
  explicit ParseException(ParseError e)
      : std::runtime_error(e.to_string()), error_(std::move(e)) {}

  const ParseError& error() const { return error_; }

 private:
  ParseError error_;
};

[[noreturn]] inline void throw_parse_error(std::string file,
                                           std::uint64_t offset,
                                           const char* unit,
                                           std::string reason) {
  throw ParseException(
      ParseError{std::move(file), offset, unit, std::move(reason)});
}

}  // namespace ccsig::runtime

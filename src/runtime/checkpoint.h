// Fingerprinted shard checkpoints for long campaigns.
//
// A checkpoint records, per completed slot of a campaign's deterministic
// enumeration, the exact serialized row that slot contributes to the final
// CSV. The file is rewritten atomically every `flush_every` completions, so
// a killed campaign resumes by reloading it, skipping completed slots, and
// still emits a byte-identical final CSV (rows are reused verbatim-after-
// round-trip and assembled in slot order).
//
// Format:
//   # checkpoint: <fingerprint>
//   <slot>\t<row>
//
// A checkpoint whose fingerprint does not match the current options is
// stale and ignored; a corrupt or unreadable checkpoint is likewise
// ignored (the campaign simply re-runs everything) — resume is a pure
// optimization and must never be able to fail a run.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/fault_injection.h"

namespace ccsig::runtime {

class ShardCheckpoint {
 public:
  /// Parses `path`; returns the slot->row map, or an empty map when the
  /// file is missing, stale (fingerprint mismatch), or corrupt.
  static std::map<std::size_t, std::string> load(
      const std::string& path, const std::string& fingerprint);

  ShardCheckpoint(std::string path, std::string fingerprint,
                  int flush_every = 16);

  /// Seeds the checkpoint with rows restored from a previous run so
  /// subsequent flushes keep them.
  void restore(const std::map<std::size_t, std::string>& rows);

  /// Records one completed slot. Thread-safe; flushes atomically every
  /// `flush_every` records. When `faults` plans an I/O failure for this
  /// slot's current record attempt, throws TransientError *before*
  /// recording — the supervising retry loop re-runs the job.
  void record(std::size_t slot, std::string row,
              const FaultPlan* faults = nullptr);

  /// Atomically rewrites the checkpoint file with everything recorded so
  /// far. Best-effort: I/O failures are swallowed and counted, because a
  /// checkpoint must never take down the campaign it protects.
  void flush();

  /// Deletes the checkpoint file (campaign completed successfully).
  void remove();

  std::size_t rows_recorded() const;
  std::size_t flush_failures() const;
  const std::string& path() const { return path_; }

 private:
  void flush_locked();

  const std::string path_;
  const std::string fingerprint_;
  const int flush_every_;

  mutable std::mutex mu_;
  std::map<std::size_t, std::string> rows_;
  std::unordered_map<std::size_t, int> record_attempts_;
  int dirty_ = 0;
  std::size_t flush_failures_ = 0;
};

}  // namespace ccsig::runtime

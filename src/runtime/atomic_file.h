// Atomic file replacement: write to a sibling temp file, fsync-free rename.
//
// Every cache artifact the project persists (sweep/campaign CSVs, shard
// checkpoints, BENCH_micro.json via the python twin of this helper) goes
// through here so a killed process can never leave a half-written file
// behind — readers either see the old complete file or the new complete
// file, which is what makes checkpoint/resume trustworthy.
#pragma once

#include <string>
#include <string_view>

namespace ccsig::runtime {

/// Writes `content` to `path` atomically (temp file + std::filesystem::
/// rename, which is atomic on POSIX within a filesystem). Throws
/// std::runtime_error when the temp file cannot be written or renamed; the
/// destination is left untouched in that case.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace ccsig::runtime

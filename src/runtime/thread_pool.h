// Minimal fixed-size thread pool with a FIFO work queue.
//
// The pool exists to parallelise coarse-grained, CPU-bound jobs — whole
// discrete-event simulations, not packet events — so the design favours
// simplicity over throughput tricks: one mutex, one queue, no work
// stealing. Tasks must not throw out of the pool; wrap user code and
// capture exceptions yourself (parallel_map does exactly that).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccsig::runtime {

/// The default worker count for `jobs <= 0`: every hardware thread
/// (`std::thread::hardware_concurrency()`, which may be 0 on exotic
/// platforms — treated as 1).
unsigned default_jobs();

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Waits for all submitted work to finish, then joins the workers.
  ~ThreadPool();

  /// Enqueues one task. Safe to call from any thread, including from
  /// inside a running task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed (queue drained and
  /// no task running).
  void wait();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signalled when tasks arrive / stop
  std::condition_variable idle_cv_;  // signalled when in_flight_ hits 0
  std::size_t in_flight_ = 0;        // queued + currently running tasks
  bool stop_ = false;
};

}  // namespace ccsig::runtime

// run_checkpointed: the shared execution harness behind testbed::run_sweep
// and both M-Lab campaign generators.
//
// Given a deterministic item list (already carrying per-slot seeds), it
//   1. restores completed slots from a fingerprinted shard checkpoint,
//   2. runs the remaining slots under parallel_map_supervised (bounded
//      retries, deterministic backoff, optional watchdog, fault injection),
//   3. records each completed slot's serialized row back into the
//      checkpoint (atomic rewrite every `checkpoint_every` completions),
//   4. reports per-slot failures instead of aborting the campaign.
//
// The caller supplies `run` (item -> row value), `serialize` (row value ->
// the exact CSV line the final file will contain), and `deserialize` (the
// inverse). Because rows round-trip through the same formatter the final
// CSV writer uses, a resumed campaign's output is byte-identical to an
// uninterrupted run.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/checkpoint.h"
#include "runtime/supervised.h"

namespace ccsig::runtime {

/// Per-campaign accounting filled in by run_checkpointed. Makes
/// resumed-vs-fresh runs auditable: a resumed campaign shows
/// `restored_slots > 0`, a retry storm shows `attempts >> executed_slots`.
struct CampaignStats {
  std::size_t total_slots = 0;
  std::size_t restored_slots = 0;  // satisfied from the shard checkpoint
  std::size_t executed_slots = 0;  // actually run this invocation
  std::size_t failed_slots = 0;    // still failed after retries
  std::size_t retried_slots = 0;   // needed more than one attempt
  std::size_t abandoned_slots = 0; // watchdog kTimeout abandonments
  std::size_t attempts = 0;        // total attempts across executed slots

  /// Stable single-line JSON rendering of the stats alone.
  std::string to_json() const {
    std::ostringstream out;
    out << "{\"total_slots\":" << total_slots
        << ",\"restored_slots\":" << restored_slots
        << ",\"executed_slots\":" << executed_slots
        << ",\"failed_slots\":" << failed_slots
        << ",\"retried_slots\":" << retried_slots
        << ",\"abandoned_slots\":" << abandoned_slots
        << ",\"attempts\":" << attempts << '}';
    return out.str();
  }
};

/// The end-of-campaign snapshot written next to every campaign cache CSV
/// (`<cache>.metrics.json`): the campaign's fingerprint and slot
/// accounting plus the process-wide metrics registry at snapshot time.
inline std::string campaign_metrics_json(const std::string& fingerprint,
                                         const CampaignStats& stats) {
  std::ostringstream out;
  out << "{\"fingerprint\":\"" << obs::json_escape(fingerprint)
      << "\",\"campaign\":" << stats.to_json()
      << ",\"metrics\":" << obs::MetricsRegistry::global().snapshot().to_json()
      << "}\n";
  return out.str();
}

struct CheckpointedRunOptions {
  /// Shard checkpoint location; empty disables checkpointing entirely.
  std::string checkpoint_path;
  std::string fingerprint;
  int checkpoint_every = 16;

  int jobs = 0;
  RetryPolicy retry;
  std::chrono::milliseconds soft_deadline{0};
  bool abandon_on_deadline = false;
  const FaultPlan* faults = nullptr;

  std::function<void(std::size_t, std::size_t)> progress;
  /// Slot -> seed tag for error reports (e.g. the run's RNG seed).
  std::function<std::uint64_t(std::size_t)> seed_of;
  /// When non-null, receives one JobError per slot that ultimately failed
  /// (after retries). Failed slots come back as nullopt in the result.
  std::vector<JobError>* errors_out = nullptr;
  /// When non-null, checkpoint removal after a fully successful run is
  /// deferred: the checkpoint is flushed and kept on disk, and *commit_out
  /// receives a callback that deletes it. The caller invokes the callback
  /// only AFTER atomically writing the final artifact, so a crash between
  /// "run finished" and "CSV written" still resumes from the checkpoint
  /// instead of re-running the whole campaign. Left empty when the run had
  /// failures or checkpointing is disabled. When null, a fully successful
  /// run removes its checkpoint before returning (callers that produce no
  /// further artifact).
  std::function<void()>* commit_out = nullptr;
  /// When non-null, receives the campaign's slot accounting (restored vs
  /// executed vs failed, retry/abandonment counts).
  CampaignStats* stats_out = nullptr;
};

template <typename In, typename RunFn, typename SerFn, typename DeFn>
auto run_checkpointed(const std::vector<In>& items, RunFn run, SerFn ser,
                      DeFn de, const CheckpointedRunOptions& opt)
    -> std::vector<std::optional<std::invoke_result_t<RunFn&, const In&>>> {
  using Out = std::invoke_result_t<RunFn&, const In&>;
  const std::size_t n = items.size();
  std::vector<std::optional<Out>> out(n);
  if (opt.commit_out) *opt.commit_out = nullptr;

  std::shared_ptr<ShardCheckpoint> ckpt;
  if (!opt.checkpoint_path.empty()) {
    obs::TraceSpan span("campaign.checkpoint_load", "campaign");
    ckpt = std::make_shared<ShardCheckpoint>(
        opt.checkpoint_path, opt.fingerprint, opt.checkpoint_every);
    auto restored = ShardCheckpoint::load(opt.checkpoint_path,
                                          opt.fingerprint);
    std::map<std::size_t, std::string> kept;
    for (const auto& [slot, row] : restored) {
      if (slot >= n) continue;
      try {
        out[slot] = de(row);
        kept.emplace(slot, row);
      } catch (...) {
        // Damaged row: drop it and re-run the slot.
      }
    }
    ckpt->restore(kept);
  }

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!out[i]) pending.push_back(i);
  }

  ProgressCounter progress(n, opt.progress);
  for (std::size_t i = 0; i < n - pending.size(); ++i) progress.tick();

  // Copies shared with the workers so abandoned (still-running) jobs can
  // outlive this call safely; see supervised.h's abandonment contract.
  auto items_shared = std::make_shared<const std::vector<In>>(items);

  SupervisedOptions sopt;
  sopt.jobs = opt.jobs;
  sopt.retry = opt.retry;
  sopt.soft_deadline = opt.soft_deadline;
  sopt.abandon_on_deadline = opt.abandon_on_deadline;
  sopt.faults = opt.faults;
  sopt.fault_key = [pending](std::size_t k) {
    return static_cast<std::uint64_t>(pending[k]);
  };
  if (opt.seed_of) {
    sopt.seed_of = [pending, seed_of = opt.seed_of](std::size_t k) {
      return seed_of(pending[k]);
    };
  }

  std::vector<JobResult<Out>> results;
  {
    obs::TraceSpan span("campaign.run", "campaign");
    results = parallel_map_supervised(
        pending,
        [items_shared, ckpt, run, ser,
         faults = opt.faults](const std::size_t& slot) -> Out {
          Out o = run((*items_shared)[slot]);
          if (ckpt) ckpt->record(slot, ser(o), faults);
          return o;
        },
        sopt, &progress);
  }

  CampaignStats stats;
  stats.total_slots = n;
  stats.restored_slots = n - pending.size();
  stats.executed_slots = pending.size();
  for (std::size_t k = 0; k < pending.size(); ++k) {
    const std::size_t slot = pending[k];
    const int attempts = results[k].ok() ? results[k].attempts()
                                         : results[k].error().attempts;
    stats.attempts += static_cast<std::size_t>(attempts > 0 ? attempts : 0);
    if (attempts > 1) ++stats.retried_slots;
    if (results[k].ok()) {
      out[slot] = std::move(results[k].value());
    } else {
      ++stats.failed_slots;
      if (results[k].error().kind == JobErrorKind::kTimeout) {
        ++stats.abandoned_slots;
      }
      if (opt.errors_out) {
        JobError err = results[k].error();
        err.index = slot;  // report the campaign slot, not the subset index
        opt.errors_out->push_back(std::move(err));
      }
    }
  }
  if (opt.stats_out) *opt.stats_out = stats;

  if (ckpt) {
    bool all_ok = true;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      if (!results[k].ok()) all_ok = false;
    }
    if (all_ok && opt.commit_out) {
      // Deferred commit: keep the checkpoint until the caller has written
      // the final artifact, then let it retire the checkpoint.
      ckpt->flush();
      *opt.commit_out = [ckpt] { ckpt->remove(); };
    } else if (all_ok) {
      ckpt->remove();  // complete run: the final CSV is the artifact now
    } else {
      ckpt->flush();  // keep partial progress for the next invocation
    }
  }
  return out;
}

}  // namespace ccsig::runtime

// run_checkpointed: the shared execution harness behind testbed::run_sweep
// and both M-Lab campaign generators.
//
// Given a deterministic item list (already carrying per-slot seeds), it
//   1. restores completed slots from a fingerprinted shard checkpoint,
//   2. runs the remaining slots under parallel_map_supervised (bounded
//      retries, deterministic backoff, optional watchdog, fault injection),
//   3. records each completed slot's serialized row back into the
//      checkpoint (atomic rewrite every `checkpoint_every` completions),
//   4. reports per-slot failures instead of aborting the campaign.
//
// The caller supplies `run` (item -> row value), `serialize` (row value ->
// the exact CSV line the final file will contain), and `deserialize` (the
// inverse). Because rows round-trip through the same formatter the final
// CSV writer uses, a resumed campaign's output is byte-identical to an
// uninterrupted run.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "runtime/checkpoint.h"
#include "runtime/supervised.h"

namespace ccsig::runtime {

struct CheckpointedRunOptions {
  /// Shard checkpoint location; empty disables checkpointing entirely.
  std::string checkpoint_path;
  std::string fingerprint;
  int checkpoint_every = 16;

  int jobs = 0;
  RetryPolicy retry;
  std::chrono::milliseconds soft_deadline{0};
  bool abandon_on_deadline = false;
  const FaultPlan* faults = nullptr;

  std::function<void(std::size_t, std::size_t)> progress;
  /// Slot -> seed tag for error reports (e.g. the run's RNG seed).
  std::function<std::uint64_t(std::size_t)> seed_of;
  /// When non-null, receives one JobError per slot that ultimately failed
  /// (after retries). Failed slots come back as nullopt in the result.
  std::vector<JobError>* errors_out = nullptr;
  /// When non-null, checkpoint removal after a fully successful run is
  /// deferred: the checkpoint is flushed and kept on disk, and *commit_out
  /// receives a callback that deletes it. The caller invokes the callback
  /// only AFTER atomically writing the final artifact, so a crash between
  /// "run finished" and "CSV written" still resumes from the checkpoint
  /// instead of re-running the whole campaign. Left empty when the run had
  /// failures or checkpointing is disabled. When null, a fully successful
  /// run removes its checkpoint before returning (callers that produce no
  /// further artifact).
  std::function<void()>* commit_out = nullptr;
};

template <typename In, typename RunFn, typename SerFn, typename DeFn>
auto run_checkpointed(const std::vector<In>& items, RunFn run, SerFn ser,
                      DeFn de, const CheckpointedRunOptions& opt)
    -> std::vector<std::optional<std::invoke_result_t<RunFn&, const In&>>> {
  using Out = std::invoke_result_t<RunFn&, const In&>;
  const std::size_t n = items.size();
  std::vector<std::optional<Out>> out(n);
  if (opt.commit_out) *opt.commit_out = nullptr;

  std::shared_ptr<ShardCheckpoint> ckpt;
  if (!opt.checkpoint_path.empty()) {
    ckpt = std::make_shared<ShardCheckpoint>(
        opt.checkpoint_path, opt.fingerprint, opt.checkpoint_every);
    auto restored = ShardCheckpoint::load(opt.checkpoint_path,
                                          opt.fingerprint);
    std::map<std::size_t, std::string> kept;
    for (const auto& [slot, row] : restored) {
      if (slot >= n) continue;
      try {
        out[slot] = de(row);
        kept.emplace(slot, row);
      } catch (...) {
        // Damaged row: drop it and re-run the slot.
      }
    }
    ckpt->restore(kept);
  }

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!out[i]) pending.push_back(i);
  }

  ProgressCounter progress(n, opt.progress);
  for (std::size_t i = 0; i < n - pending.size(); ++i) progress.tick();

  // Copies shared with the workers so abandoned (still-running) jobs can
  // outlive this call safely; see supervised.h's abandonment contract.
  auto items_shared = std::make_shared<const std::vector<In>>(items);

  SupervisedOptions sopt;
  sopt.jobs = opt.jobs;
  sopt.retry = opt.retry;
  sopt.soft_deadline = opt.soft_deadline;
  sopt.abandon_on_deadline = opt.abandon_on_deadline;
  sopt.faults = opt.faults;
  sopt.fault_key = [pending](std::size_t k) {
    return static_cast<std::uint64_t>(pending[k]);
  };
  if (opt.seed_of) {
    sopt.seed_of = [pending, seed_of = opt.seed_of](std::size_t k) {
      return seed_of(pending[k]);
    };
  }

  auto results = parallel_map_supervised(
      pending,
      [items_shared, ckpt, run, ser,
       faults = opt.faults](const std::size_t& slot) -> Out {
        Out o = run((*items_shared)[slot]);
        if (ckpt) ckpt->record(slot, ser(o), faults);
        return o;
      },
      sopt, &progress);

  for (std::size_t k = 0; k < pending.size(); ++k) {
    const std::size_t slot = pending[k];
    if (results[k].ok()) {
      out[slot] = std::move(results[k].value());
    } else if (opt.errors_out) {
      JobError err = results[k].error();
      err.index = slot;  // report the campaign slot, not the subset index
      opt.errors_out->push_back(std::move(err));
    }
  }

  if (ckpt) {
    bool all_ok = true;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      if (!results[k].ok()) all_ok = false;
    }
    if (all_ok && opt.commit_out) {
      // Deferred commit: keep the checkpoint until the caller has written
      // the final artifact, then let it retire the checkpoint.
      ckpt->flush();
      *opt.commit_out = [ckpt] { ckpt->remove(); };
    } else if (all_ok) {
      ckpt->remove();  // complete run: the final CSV is the artifact now
    } else {
      ckpt->flush();  // keep partial progress for the next invocation
    }
  }
  return out;
}

}  // namespace ccsig::runtime

#include "tcp/congestion_control.h"

#include <stdexcept>

namespace ccsig::tcp {

const std::vector<CongestionControlInfo>& congestion_control_registry() {
  static const std::vector<CongestionControlInfo> registry = {
      {"reno", "NewReno AIMD (RFC 5681/6582)", &make_reno},
      {"cubic", "CUBIC (RFC 8312), no HyStart", &make_cubic},
      {"cubic_hystart", "CUBIC with HyStart delay-based slow-start exit",
       &make_cubic_hystart},
      {"bbr_lite", "simplified BBR v1: model-based rate pacing",
       &make_bbr_lite},
      {"vegas", "Vegas: delay-based cwnd from baseRTT vs observed RTT",
       &make_vegas},
      {"westwood", "Westwood+: bandwidth-estimate ssthresh on loss",
       &make_westwood},
  };
  return registry;
}

CongestionControlFactory congestion_control_by_name(const std::string& name) {
  // Aliases kept from the pre-registry resolver (experiment configs and
  // committed fingerprints use them), plus the conventional spelling of
  // Westwood+.
  if (name == "newreno") return &make_reno;
  if (name == "bbr") return &make_bbr_lite;
  if (name == "westwood+") return &make_westwood;
  for (const CongestionControlInfo& info : congestion_control_registry()) {
    if (name == info.name) return info.factory;
  }
  throw std::invalid_argument("unknown congestion control: " + name);
}

}  // namespace ccsig::tcp

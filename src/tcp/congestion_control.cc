#include "tcp/congestion_control.h"

#include <stdexcept>

namespace ccsig::tcp {

CongestionControlFactory congestion_control_by_name(const std::string& name) {
  if (name == "reno" || name == "newreno") return &make_reno;
  if (name == "cubic") return &make_cubic;
  if (name == "bbr" || name == "bbr_lite") return &make_bbr_lite;
  throw std::invalid_argument("unknown congestion control: " + name);
}

}  // namespace ccsig::tcp

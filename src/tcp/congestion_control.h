// Pluggable congestion-control interface.
//
// The sender owns the loss-recovery state machine (dupack counting, fast
// recovery, RTO) and reports events here; implementations only decide how
// the congestion window evolves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// A cumulative ACK advanced the window.
  /// `acked_bytes` is the newly acknowledged byte count; `rtt` is the RTT
  /// sample for this ACK (or -1 when none, e.g. for a retransmitted
  /// segment under Karn's rule).
  virtual void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
                      sim::Time now) = 0;

  /// A loss event was detected. `flight_bytes` is the amount outstanding.
  virtual void on_loss(LossKind kind, std::uint64_t flight_bytes,
                       sim::Time now) = 0;

  /// Fast recovery finished (full ACK arrived).
  virtual void on_recovery_exit(sim::Time now) = 0;

  /// Current congestion window in bytes.
  virtual std::uint64_t cwnd_bytes() const = 0;

  /// Slow-start threshold in bytes (reported for Web100-style stats).
  virtual std::uint64_t ssthresh_bytes() const = 0;

  virtual bool in_slow_start() const = 0;

  /// Pacing rate in bits/s, or 0 when the algorithm does not pace
  /// (window-limited algorithms like Reno/CUBIC).
  virtual double pacing_rate_bps() const { return 0.0; }

  virtual std::string name() const = 0;
};

/// Factory signature used by experiment configs.
using CongestionControlFactory =
    std::unique_ptr<CongestionControl> (*)(std::uint32_t mss);

std::unique_ptr<CongestionControl> make_reno(std::uint32_t mss);
std::unique_ptr<CongestionControl> make_cubic(std::uint32_t mss);
std::unique_ptr<CongestionControl> make_bbr_lite(std::uint32_t mss);

/// Resolves a factory by name ("reno", "cubic", "bbr"); throws on unknown.
CongestionControlFactory congestion_control_by_name(const std::string& name);

}  // namespace ccsig::tcp

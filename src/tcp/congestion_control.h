// Pluggable congestion-control interface.
//
// The sender owns the loss-recovery state machine (dupack counting, fast
// recovery, RTO) and reports events here; implementations only decide how
// the congestion window evolves. The hook set follows the shape of
// OpenBSD's tcp_cc.h function table (init / ack_received /
// cong_experienced / enter-exit_fastrecovery / after_idle): the transport
// calls every hook at well-defined points and a module overrides only the
// ones it cares about.
//
// Modules register in congestion_control.cc; congestion_control_registry()
// enumerates them so tests and tools never hard-code the variant list.
//
// Hook contract (enforced by tcp_cc_conformance_test):
//  - cwnd_bytes() never drops below 1 MSS;
//  - hooks never allocate (modules preallocate in their constructor);
//  - on_loss lowers (or keeps) ssthresh, never raises it above the
//    pre-loss congestion window;
//  - enter_recovery/exit_recovery arrive strictly paired.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Connection established (handshake completed). Modules that key state
  /// off connection start time hook here; the default is stateless.
  virtual void init(sim::Time /*now*/) {}

  /// A cumulative ACK advanced the window.
  /// `acked_bytes` is the newly acknowledged byte count; `rtt` is the RTT
  /// sample for this ACK (or -1 when none, e.g. for a retransmitted
  /// segment under Karn's rule).
  virtual void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
                      sim::Time now) = 0;

  /// A loss event was detected (OpenBSD: cong_experienced). `flight_bytes`
  /// is the amount outstanding.
  virtual void on_loss(LossKind kind, std::uint64_t flight_bytes,
                       sim::Time now) = 0;

  /// The sender entered fast recovery (always directly after an on_loss
  /// with kFastRetransmit). Most modules did their window math in on_loss;
  /// the hook exists for ones that track recovery episodes.
  virtual void enter_recovery(sim::Time /*now*/) {}

  /// Fast recovery finished (full ACK arrived). Paired 1:1 with
  /// enter_recovery.
  virtual void exit_recovery(sim::Time now) = 0;

  /// The connection sat idle (no data in flight, nothing to send) for
  /// `idle` and is about to transmit again. RFC 2861-style modules decay
  /// the window here; the default keeps it (the transport only calls this
  /// hook when Config::cwnd_restart_after_idle is on).
  virtual void after_idle(sim::Duration /*idle*/, sim::Time /*now*/) {}

  /// Current congestion window in bytes.
  virtual std::uint64_t cwnd_bytes() const = 0;

  /// Slow-start threshold in bytes (reported for Web100-style stats).
  virtual std::uint64_t ssthresh_bytes() const = 0;

  virtual bool in_slow_start() const = 0;

  /// Pacing rate in bits/s, or 0 when the algorithm does not pace
  /// (window-limited algorithms like Reno/CUBIC).
  virtual double pacing_rate_bps() const { return 0.0; }

  virtual std::string name() const = 0;
};

/// Factory signature used by experiment configs.
using CongestionControlFactory =
    std::unique_ptr<CongestionControl> (*)(std::uint32_t mss);

std::unique_ptr<CongestionControl> make_reno(std::uint32_t mss);
std::unique_ptr<CongestionControl> make_cubic(std::uint32_t mss);
std::unique_ptr<CongestionControl> make_cubic_hystart(std::uint32_t mss);
std::unique_ptr<CongestionControl> make_bbr_lite(std::uint32_t mss);
std::unique_ptr<CongestionControl> make_vegas(std::uint32_t mss);
std::unique_ptr<CongestionControl> make_westwood(std::uint32_t mss);

/// One registry entry: the canonical name experiments use, a one-line
/// description for tool help text, and the factory.
struct CongestionControlInfo {
  const char* name;
  const char* summary;
  CongestionControlFactory factory;
};

/// Every registered module, in a stable order. Tests iterate this to cover
/// new variants automatically; tools print it for --cc help.
const std::vector<CongestionControlInfo>& congestion_control_registry();

/// Resolves a factory by registry name or accepted alias ("newreno" for
/// reno, "bbr"/"bbr_lite" for BBR, "westwood+" for westwood); throws
/// std::invalid_argument on unknown names.
CongestionControlFactory congestion_control_by_name(const std::string& name);

}  // namespace ccsig::tcp

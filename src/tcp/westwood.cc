#include "tcp/westwood.h"

#include <algorithm>

namespace ccsig::tcp {

WestwoodCongestionControl::WestwoodCongestionControl(std::uint32_t mss)
    : mss_(mss),
      cwnd_(static_cast<std::uint64_t>(mss) * kInitialWindowSegments) {}

void WestwoodCongestionControl::sample_bandwidth(std::uint64_t acked_bytes,
                                                 sim::Time now) {
  if (accum_start_ < 0) {
    accum_start_ = now;
    accum_bytes_ = 0;
  }
  accum_bytes_ += acked_bytes;
  const sim::Duration interval = now - accum_start_;
  // One sample per RTT (the Westwood+ fix over per-ACK Westwood sampling,
  // which overestimates through ACK compression), with a floor for the
  // pre-measurement phase.
  const sim::Duration min_interval =
      std::max<sim::Duration>(10 * sim::kMillisecond, rtt_min_);
  if (interval < min_interval) return;
  const double sample_bps =
      static_cast<double>(accum_bytes_) * 8.0 / sim::to_seconds(interval);
  accum_start_ = now;
  accum_bytes_ = 0;
  bwe_bps_ = bwe_bps_ <= 0
                 ? sample_bps
                 : (1.0 - kFilterGain) * bwe_bps_ + kFilterGain * sample_bps;
}

void WestwoodCongestionControl::on_ack(std::uint64_t acked_bytes,
                                       sim::Duration rtt, sim::Time now) {
  if (rtt > 0 && (rtt_min_ == 0 || rtt < rtt_min_)) rtt_min_ = rtt;
  sample_bandwidth(acked_bytes, now);
  // Window dynamics are Reno's; only the loss response differs.
  if (in_slow_start()) {
    cwnd_ += std::min<std::uint64_t>(acked_bytes, mss_);
    return;
  }
  ca_acked_ += acked_bytes;
  if (ca_acked_ >= cwnd_) {
    ca_acked_ -= cwnd_;
    cwnd_ += mss_;
  }
}

void WestwoodCongestionControl::on_loss(LossKind kind,
                                        std::uint64_t flight_bytes,
                                        sim::Time /*now*/) {
  const std::uint64_t floor = 2ull * mss_;
  if (bwe_bps_ > 0 && rtt_min_ > 0) {
    // The Westwood+ idea: ssthresh = estimated BDP, not cwnd/2. A random
    // (non-congestive) drop leaves the estimate — and thus the window —
    // intact; a congestion drop arrives with a collapsed estimate.
    const double bdp_bytes = bwe_bps_ / 8.0 * sim::to_seconds(rtt_min_);
    ssthresh_ = std::max(static_cast<std::uint64_t>(bdp_bytes), floor);
  } else {
    ssthresh_ = std::max(flight_bytes / 2, floor);  // no estimate yet
  }
  if (kind == LossKind::kTimeout) {
    cwnd_ = mss_;
    ca_acked_ = 0;
  } else if (cwnd_ > ssthresh_) {
    cwnd_ = ssthresh_;
  }
}

void WestwoodCongestionControl::exit_recovery(sim::Time /*now*/) {
  if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
  ca_acked_ = 0;
}

void WestwoodCongestionControl::after_idle(sim::Duration /*idle*/,
                                           sim::Time /*now*/) {
  // Restart from the initial window; the bandwidth filter keeps its state
  // but the sample accumulator restarts (the idle gap is not a sample).
  cwnd_ = std::min<std::uint64_t>(
      cwnd_, static_cast<std::uint64_t>(mss_) * kInitialWindowSegments);
  ca_acked_ = 0;
  accum_start_ = -1;
  accum_bytes_ = 0;
}

std::unique_ptr<CongestionControl> make_westwood(std::uint32_t mss) {
  return std::make_unique<WestwoodCongestionControl>(mss);
}

}  // namespace ccsig::tcp

// A BBR-flavoured, rate-based congestion control.
//
// This is a deliberately simplified model of BBR v1 (Cardwell et al., 2017):
// windowed max-bandwidth and min-RTT estimation, a startup phase with a
// 2/ln(2) pacing gain until bandwidth stops growing, a drain phase, then
// steady-state pacing at the estimated bottleneck bandwidth with periodic
// gain cycling. It exists to exercise the paper's §6 limitation — latency-
// based congestion control confounding the buffer-fill signature — not to be
// a bit-exact BBR.
#pragma once

#include <cstdint>
#include <vector>

#include "tcp/congestion_control.h"

namespace ccsig::tcp {

class BbrLiteCongestionControl : public CongestionControl {
 public:
  explicit BbrLiteCongestionControl(std::uint32_t mss);

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(LossKind kind, std::uint64_t flight_bytes,
               sim::Time now) override;
  void exit_recovery(sim::Time now) override;

  std::uint64_t cwnd_bytes() const override;
  std::uint64_t ssthresh_bytes() const override { return 0; }
  bool in_slow_start() const override { return phase_ == Phase::kStartup; }
  double pacing_rate_bps() const override;
  std::string name() const override { return "bbr"; }

  static constexpr int kGainCycleLen = 8;

 private:
  enum class Phase { kStartup, kDrain, kProbeBw };

  struct BwSample {
    sim::Time at = 0;
    double bps = 0;
  };

  void update_bandwidth(std::uint64_t acked_bytes, sim::Duration rtt,
                        sim::Time now);
  double bdp_bytes() const;

  static constexpr double kStartupGain = 2.885;  // 2/ln(2)
  static constexpr double kDrainGain = 0.348;    // 1/kStartupGain

  // Bandwidth-sample ring capacity. Samples are spaced at least 2 ms apart
  // and evicted after the 10 s window, so at most 5001 can coexist; the
  // fixed preallocated ring keeps on_ack allocation-free (the hook
  // contract) where a deque would allocate blocks mid-flow.
  static constexpr std::size_t kBwRingCapacity = 6144;

  std::uint32_t mss_;
  Phase phase_ = Phase::kStartup;

  double max_bw_bps_ = 0;          // windowed max delivery rate
  sim::Duration min_rtt_ = 0;      // windowed min RTT
  sim::Time min_rtt_stamp_ = 0;

  double full_bw_bps_ = 0;         // plateau detection
  int full_bw_rounds_ = 0;

  sim::Time cycle_stamp_ = 0;
  int cycle_index_ = 0;

  // Fixed ring of windowed bandwidth samples, oldest at bw_head_.
  std::vector<BwSample> bw_ring_;
  std::size_t bw_head_ = 0;
  std::size_t bw_size_ = 0;
  // Delivery-rate measurement interval accumulator.
  sim::Time accum_start_ = -1;
  std::uint64_t accum_bytes_ = 0;
};

}  // namespace ccsig::tcp

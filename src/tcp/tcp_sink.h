// The TCP data receiver (client side of a download).
//
// Replies to the SYN, generates cumulative ACKs (configurable delayed-ACK
// factor, with immediate duplicate ACKs for out-of-order data per RFC 5681),
// advertises a receive window, and tracks goodput.
#pragma once

#include <cstdint>
#include <map>

#include "sim/node.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "tcp/node_pool.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class TcpSink {
 public:
  struct Config {
    /// The *server-to-client* flow key, i.e. the key of the data direction;
    /// the sink listens at (key.dst_addr, key.dst_port).
    sim::FlowKey data_key;
    std::uint64_t rwnd_bytes = 4ull << 20;  // advertised window
    /// ACK every Nth in-order segment (Linux delayed-ACK behaviour is 2).
    /// A 40 ms delayed-ACK timer flushes a pending ACK either way.
    int segments_per_ack = 2;
    sim::Duration delayed_ack_timeout = 40 * sim::kMillisecond;
    bool enable_sack = true;  // attach SACK blocks for out-of-order data
    /// Linux-style quickack: ACK every segment for the first N in-order
    /// segments of the connection (slow start needs a dense ACK clock).
    int quickack_segments = 32;
  };

  struct Stats {
    std::uint64_t bytes_received = 0;      // cumulative in-order payload
    std::uint64_t segments_received = 0;   // data segments seen (incl. dup)
    std::uint64_t duplicate_segments = 0;  // below rcv_nxt (spurious retx)
    std::uint64_t out_of_order_segments = 0;
    std::uint64_t acks_sent = 0;
    sim::Time first_data_at = -1;
    sim::Time last_data_at = -1;
  };

  TcpSink(sim::Simulator& sim, sim::Node* local, Config cfg);
  ~TcpSink();
  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  const Stats& stats() const { return stats_; }

  /// In-order bytes received so far (the download's goodput numerator).
  std::uint64_t bytes_received() const { return stats_.bytes_received; }

 private:
  void on_packet(const sim::Packet& p);
  void on_data(const sim::Packet& p);
  void send_ack();
  void schedule_delayed_ack();

  sim::Simulator& sim_;
  sim::Node* local_;
  Config cfg_;
  // Guards the delayed-ACK closure against firing after destruction.
  sim::Simulator::LifetimeLease life_;

  using OooMap = std::map<std::uint64_t, std::uint64_t>;

  std::uint64_t rcv_nxt_ = 0;  // next expected wire sequence
  OooMap ooo_;                 // seq -> end (exclusive)
  MapNodePool<OooMap> ooo_pool_;  // recycles out-of-order map nodes
  int unacked_segments_ = 0;
  int quickack_sent_ = 0;
  bool delayed_ack_pending_ = false;
  std::uint64_t delack_generation_ = 0;

  Stats stats_;
};

}  // namespace ccsig::tcp

// Free-list of std::map node handles: insert/erase without heap traffic.
//
// The TCP sender's in-flight scoreboard and the receiver's out-of-order map
// insert and erase one node per segment. Recycling the extracted node
// handles through this pool makes that churn allocation-free once the pool
// has grown to the connection's high-water mark (set during the slow-start
// overshoot), which is what keeps the steady-state per-packet allocation
// count at zero.
#pragma once

#include <iterator>
#include <utility>
#include <vector>

namespace ccsig::tcp {

template <typename Map>
class MapNodePool {
 public:
  /// Emplaces (key, value), reusing a pooled node when one is available.
  /// Same contract as Map::emplace: on a key collision the map is unchanged
  /// (and the node returns to the pool).
  std::pair<typename Map::iterator, bool> insert(
      Map& map, const typename Map::key_type& key,
      const typename Map::mapped_type& value) {
    if (free_.empty()) {
      auto res = map.emplace(key, value);
      // A fresh node exists only when the map sets a new size record.
      // Size the free list for every node ever created so banking them —
      // which peaks when the map drains — never reallocates mid-run.
      if (res.second && ++total_nodes_ > free_.capacity()) {
        free_.reserve(total_nodes_ < 16 ? 16 : total_nodes_ * 2);
      }
      return res;
    }
    auto node = std::move(free_.back());
    free_.pop_back();
    node.key() = key;
    node.mapped() = value;
    auto res = map.insert(std::move(node));
    if (!res.inserted) free_.push_back(std::move(res.node));
    return {res.position, res.inserted};
  }

  /// Erases `it`, banking its node. Returns the following iterator.
  typename Map::iterator erase(Map& map, typename Map::iterator it) {
    auto next = std::next(it);
    free_.push_back(map.extract(it));
    return next;
  }

  std::size_t pooled() const { return free_.size(); }

 private:
  std::vector<typename Map::node_type> free_;
  std::size_t total_nodes_ = 0;  // nodes ever created through this pool
};

}  // namespace ccsig::tcp

#include "tcp/bbr_lite.h"

#include <algorithm>

namespace ccsig::tcp {
namespace {
constexpr double kProbeGains[BbrLiteCongestionControl::kGainCycleLen] = {
    1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr sim::Duration kBwWindow = 10 * sim::kSecond;
constexpr sim::Duration kMinRttWindow = 10 * sim::kSecond;
}  // namespace

BbrLiteCongestionControl::BbrLiteCongestionControl(std::uint32_t mss)
    : mss_(mss) {
  bw_ring_.resize(kBwRingCapacity);
}

void BbrLiteCongestionControl::update_bandwidth(std::uint64_t acked_bytes,
                                                sim::Duration rtt,
                                                sim::Time now) {
  if (rtt > 0 &&
      (min_rtt_ == 0 || rtt < min_rtt_ ||
       min_rtt_stamp_ + kMinRttWindow < now)) {
    min_rtt_ = rtt;
    min_rtt_stamp_ = now;
  }

  // Delivery-rate sampling: accumulate ACKed bytes over short measurement
  // intervals (>= 2 ms) so a sample reflects the ACK-clock rate — i.e. the
  // bottleneck bandwidth — rather than per-ACK burst artifacts.
  if (accum_start_ < 0) {
    accum_start_ = now;
    accum_bytes_ = 0;
  }
  accum_bytes_ += acked_bytes;
  const sim::Duration interval = now - accum_start_;
  const sim::Duration min_interval =
      std::max<sim::Duration>(2 * sim::kMillisecond,
                              min_rtt_ > 0 ? min_rtt_ / 4 : 0);
  if (interval < min_interval) return;
  const double sample_bps =
      static_cast<double>(accum_bytes_) * 8.0 / sim::to_seconds(interval);
  accum_start_ = now;
  accum_bytes_ = 0;

  // Drop samples older than the window, then append (evicting the oldest
  // if the ring somehow fills — unreachable at the 2 ms sample floor).
  while (bw_size_ > 0 && bw_ring_[bw_head_].at + kBwWindow < now) {
    bw_head_ = (bw_head_ + 1) % kBwRingCapacity;
    --bw_size_;
  }
  if (bw_size_ == kBwRingCapacity) {
    bw_head_ = (bw_head_ + 1) % kBwRingCapacity;
    --bw_size_;
  }
  bw_ring_[(bw_head_ + bw_size_) % kBwRingCapacity] = BwSample{now, sample_bps};
  ++bw_size_;
  max_bw_bps_ = 0;
  for (std::size_t i = 0; i < bw_size_; ++i) {
    max_bw_bps_ =
        std::max(max_bw_bps_, bw_ring_[(bw_head_ + i) % kBwRingCapacity].bps);
  }
}

double BbrLiteCongestionControl::bdp_bytes() const {
  if (max_bw_bps_ <= 0 || min_rtt_ <= 0) {
    return static_cast<double>(mss_) * kInitialWindowSegments;
  }
  return max_bw_bps_ / 8.0 * sim::to_seconds(min_rtt_);
}

void BbrLiteCongestionControl::on_ack(std::uint64_t acked_bytes,
                                      sim::Duration rtt, sim::Time now) {
  update_bandwidth(acked_bytes, rtt, now);

  switch (phase_) {
    case Phase::kStartup: {
      // Exit when bandwidth has stopped growing (<25% over three updates).
      if (max_bw_bps_ > full_bw_bps_ * 1.25) {
        full_bw_bps_ = max_bw_bps_;
        full_bw_rounds_ = 0;
      } else if (++full_bw_rounds_ >= 3) {
        phase_ = Phase::kDrain;
      }
      break;
    }
    case Phase::kDrain: {
      phase_ = Phase::kProbeBw;  // one ACK round of drain is enough here
      cycle_stamp_ = now;
      cycle_index_ = 0;
      break;
    }
    case Phase::kProbeBw: {
      if (min_rtt_ > 0 && now > cycle_stamp_ + min_rtt_) {
        cycle_stamp_ = now;
        cycle_index_ = (cycle_index_ + 1) % kGainCycleLen;
      }
      break;
    }
  }
}

void BbrLiteCongestionControl::on_loss(LossKind kind,
                                       std::uint64_t /*flight_bytes*/,
                                       sim::Time /*now*/) {
  // BBR v1 mostly ignores isolated losses; an RTO resets the model.
  if (kind == LossKind::kTimeout) {
    max_bw_bps_ = 0;
    full_bw_bps_ = 0;
    full_bw_rounds_ = 0;
    bw_head_ = 0;
    bw_size_ = 0;
    accum_start_ = -1;
    phase_ = Phase::kStartup;
  }
}

void BbrLiteCongestionControl::exit_recovery(sim::Time /*now*/) {}

std::uint64_t BbrLiteCongestionControl::cwnd_bytes() const {
  const double gain = phase_ == Phase::kStartup ? kStartupGain : 2.0;
  const double w = bdp_bytes() * gain;
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(w), 4ull * mss_);
}

double BbrLiteCongestionControl::pacing_rate_bps() const {
  if (max_bw_bps_ <= 0) return 0.0;  // unpaced until the first estimate
  double gain = 1.0;
  switch (phase_) {
    case Phase::kStartup:
      gain = kStartupGain;
      break;
    case Phase::kDrain:
      gain = kDrainGain;
      break;
    case Phase::kProbeBw:
      gain = kProbeGains[cycle_index_];
      break;
  }
  return max_bw_bps_ * gain;
}

std::unique_ptr<CongestionControl> make_bbr_lite(std::uint32_t mss) {
  return std::make_unique<BbrLiteCongestionControl>(mss);
}

}  // namespace ccsig::tcp

#include "tcp/scoreboard.h"

#include <algorithm>
#include <cassert>

namespace ccsig::tcp {

void SackScoreboard::insert(std::uint64_t seq, std::uint32_t len,
                            sim::Time now) {
  segment_pool_.insert(in_flight_, seq, Segment{len, now, false});
}

void SackScoreboard::mark_retransmitted(std::uint64_t seq, sim::Time now) {
  auto it = in_flight_.find(seq);
  if (it != in_flight_.end()) {
    it->second.retransmitted = true;
    it->second.sent_at = now;
  }
}

bool SackScoreboard::head_for_retransmit(std::uint64_t snd_una,
                                         std::uint64_t* seq,
                                         std::uint32_t* len) const {
  auto it = in_flight_.find(snd_una);
  if (it == in_flight_.end()) {
    // The head segment boundary can shift after a partial ACK of a resized
    // segment; retransmit whatever the earliest outstanding segment is.
    it = in_flight_.begin();
    if (it == in_flight_.end()) return false;
  }
  *seq = it->first;
  *len = it->second.len;
  return true;
}

void SackScoreboard::apply_sack(const sim::Packet& p) {
  for (const auto& [start, end] : p.sack_blocks) {
    // Mark every in-flight segment fully inside the block. A span cache
    // entry overlapping the block's start proves everything below its
    // resume position is already marked, so the scan starts there.
    std::uint64_t scan_from = start;
    SackSpan* hit = nullptr;
    for (auto& span : sack_spans_) {
      if (span.end != 0 && span.start <= start && start <= span.end) {
        hit = &span;
        break;
      }
    }
    if (hit != nullptr) {
      if (end <= hit->end) continue;  // block fully processed before
      scan_from = std::max(scan_from, hit->end);
    }
    auto it = in_flight_.lower_bound(scan_from);
    std::uint64_t block_high = 0;  // highest end newly marked in this block
    while (it != in_flight_.end() && it->first + it->second.len <= end) {
      if (!it->second.sacked) {
        Segment& seg = it->second;
        const std::uint64_t seg_end = it->first + seg.len;
        seg.sacked = true;
        sacked_bytes_ += seg.len;
        // If the old boundary already counted it presumed-lost, move it
        // from the loss sum to the sacked sum.
        if (seg_end <= highest_sacked_ && !seg.lost_rtx) {
          lost_unrtx_bytes_ -= seg.len;
        }
        block_high = seg_end;  // ends ascend within the block
      }
      ++it;
    }
    if (block_high > highest_sacked_) raise_highest_sacked(block_high);
    // Resume position: the first segment not fully covered (it may be a
    // straddler that a later, longer block covers entirely), or the block
    // end when everything below it was covered.
    const std::uint64_t processed_to =
        it == in_flight_.end() ? end : std::min<std::uint64_t>(end, it->first);
    if (hit != nullptr) {
      hit->end = std::max(hit->end, processed_to);
    } else {
      sack_spans_[sack_span_victim_] = SackSpan{start, processed_to};
      sack_span_victim_ = (sack_span_victim_ + 1) % kSackSpanCacheSize;
    }
  }
}

void SackScoreboard::raise_highest_sacked(std::uint64_t new_end) {
  // Segment boundaries never move except the scoreboard head (partial
  // ACK), so the old boundary always aligns with a segment start and the
  // range scan visits each segment once over the connection's lifetime.
  for (auto it = in_flight_.lower_bound(highest_sacked_);
       it != in_flight_.end() && it->first + it->second.len <= new_end;
       ++it) {
    if (!it->second.sacked && !it->second.lost_rtx) {
      lost_unrtx_bytes_ += it->second.len;
    }
  }
  highest_sacked_ = new_end;
}

bool SackScoreboard::next_lost_retransmit(std::uint64_t* seq,
                                          std::uint32_t* len) {
  // Find the first presumed-lost, not-yet-retransmitted segment. The
  // cursor skips the permanently ineligible prefix (sacked or already
  // retransmitted) so repeated calls don't re-walk the scoreboard.
  for (auto it = in_flight_.lower_bound(rtx_cursor_); it != in_flight_.end();
       ++it) {
    const std::uint64_t s = it->first;
    Segment& seg = it->second;
    if (s + seg.len > highest_sacked_) break;
    if (seg.sacked || seg.lost_rtx) {
      rtx_cursor_ = s + seg.len;
      continue;
    }
    seg.lost_rtx = true;
    lost_unrtx_bytes_ -= seg.len;  // its retransmission re-enters the pipe
    rtx_cursor_ = s + seg.len;
    *seq = s;
    *len = seg.len;
    return true;
  }
  return false;
}

sim::Duration SackScoreboard::ack_advance(std::uint64_t ack, sim::Time now) {
  // RTT sample: highest fully-covered, never-retransmitted segment (Karn).
  sim::Duration rtt_sample = -1;
  for (auto it = in_flight_.begin();
       it != in_flight_.end() && it->first + it->second.len <= ack;) {
    const Segment& seg = it->second;
    if (!seg.retransmitted) rtt_sample = now - seg.sent_at;
    if (seg.sacked) {
      sacked_bytes_ -= seg.len;
    } else if (it->first + seg.len <= highest_sacked_ && !seg.lost_rtx) {
      lost_unrtx_bytes_ -= seg.len;
    }
    it = segment_pool_.erase(in_flight_, it);
  }
  // A partial ACK inside a segment: split bookkeeping (rare; only after MSS
  // changes). Treat remainder as a fresh segment boundary, reusing the
  // extracted node.
  if (!in_flight_.empty() && in_flight_.begin()->first < ack) {
    auto node = in_flight_.extract(in_flight_.begin());
    const std::uint32_t trim = static_cast<std::uint32_t>(ack - node.key());
    // The head is never SACKed here (cumulative ACKs cannot land inside a
    // received run), so only the loss sum can be holding its bytes.
    if (node.key() + node.mapped().len <= highest_sacked_ &&
        !node.mapped().lost_rtx) {
      lost_unrtx_bytes_ -= trim;
    }
    node.mapped().len -= trim;
    node.key() = ack;
    in_flight_.insert(std::move(node));
  }
  return rtt_sample;
}

void SackScoreboard::on_rto() {
  // Allow every presumed-lost segment to be retransmitted again; SACK marks
  // stay (the receiver still holds that data). Clearing the marks
  // invalidates the recovery cursor's skipped prefix and the loss sum;
  // rebuild both (an RTO is rare enough for the full walk).
  lost_unrtx_bytes_ = 0;
  for (auto& [seq, seg] : in_flight_) {
    seg.lost_rtx = false;
    if (!seg.sacked && seq + seg.len <= highest_sacked_) {
      lost_unrtx_bytes_ += seg.len;
    }
  }
  rtx_cursor_ = 0;
}

std::uint64_t SackScoreboard::pipe_bytes(std::uint64_t flight) const {
  // RFC 6675 pipe: bytes believed in the network. SACKed bytes arrived;
  // unSACKed bytes below the highest SACK are presumed lost (unless their
  // retransmission is in flight). Both sums are maintained incrementally,
  // so this is O(1) where a scoreboard scan per recovery ACK used to make
  // loss episodes quadratic.
  assert(sacked_bytes_ + lost_unrtx_bytes_ <= flight);
  return flight - sacked_bytes_ - lost_unrtx_bytes_;
}

}  // namespace ccsig::tcp

// TCP NewReno congestion window management (RFC 5681 / 6582 semantics).
#pragma once

#include <cstdint>
#include <limits>

#include "tcp/congestion_control.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class RenoCongestionControl : public CongestionControl {
 public:
  explicit RenoCongestionControl(std::uint32_t mss);

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(LossKind kind, std::uint64_t flight_bytes,
               sim::Time now) override;
  void exit_recovery(sim::Time now) override;
  void after_idle(sim::Duration idle, sim::Time now) override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override { return "reno"; }

 private:
  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t ca_acked_ = 0;  // byte accumulator for congestion avoidance
};

}  // namespace ccsig::tcp

#include "tcp/cubic.h"

#include <algorithm>
#include <cmath>

namespace ccsig::tcp {

CubicCongestionControl::CubicCongestionControl(std::uint32_t mss, bool hystart)
    : mss_(mss),
      hystart_(hystart),
      cwnd_(static_cast<std::uint64_t>(mss) * kInitialWindowSegments) {}

double CubicCongestionControl::cubic_window(double t_seconds) const {
  const double dt = t_seconds - k_seconds_;
  return kC * dt * dt * dt + w_max_segments_;
}

void CubicCongestionControl::hystart_on_ack(std::uint64_t acked_bytes,
                                            sim::Duration rtt) {
  if (round_length_ == 0) round_length_ = cwnd_;  // first round
  if (rtt > 0 && curr_round_samples_ < kHystartMinSamples) {
    if (curr_round_samples_ == 0 || rtt < curr_round_min_rtt_) {
      curr_round_min_rtt_ = rtt;
    }
    ++curr_round_samples_;
    if (curr_round_samples_ >= kHystartMinSamples &&
        last_round_min_rtt_ > 0) {
      const sim::Duration eta =
          std::clamp<sim::Duration>(last_round_min_rtt_ / 8,
                                    4 * sim::kMillisecond,
                                    16 * sim::kMillisecond);
      if (curr_round_min_rtt_ >= last_round_min_rtt_ + eta) {
        // Delay increase: the bottleneck queue is building. End slow start
        // here instead of overshooting until loss.
        ssthresh_ = cwnd_;
      }
    }
  }
  round_acked_ += acked_bytes;
  if (round_acked_ >= round_length_) {
    // Round boundary: one cwnd of data acknowledged.
    round_acked_ -= round_length_;
    round_length_ = cwnd_;
    if (curr_round_samples_ > 0) last_round_min_rtt_ = curr_round_min_rtt_;
    curr_round_samples_ = 0;
  }
}

void CubicCongestionControl::on_ack(std::uint64_t acked_bytes,
                                    sim::Duration rtt, sim::Time now) {
  if (rtt > 0) {
    const double r = sim::to_seconds(rtt);
    est_rtt_s_ = est_rtt_s_ <= 0 ? r : 0.9 * est_rtt_s_ + 0.1 * r;
  }
  if (in_slow_start()) {
    if (hystart_) hystart_on_ack(acked_bytes, rtt);
    cwnd_ += std::min<std::uint64_t>(acked_bytes, mss_);
    return;
  }
  if (epoch_start_ < 0) {
    epoch_start_ = now;
    const double w_seg = static_cast<double>(cwnd_) / mss_;
    if (w_max_segments_ < w_seg) w_max_segments_ = w_seg;
    k_seconds_ = std::cbrt((w_max_segments_ - w_seg) / kC);
    tcp_friendly_segments_ = w_seg;
  }
  const double t = sim::to_seconds(now - epoch_start_);
  // Target: where the cubic curve says the window should be one RTT from now.
  const double target = cubic_window(t + est_rtt_s_);
  const double w_seg = static_cast<double>(cwnd_) / mss_;

  // TCP-friendly region (RFC 8312 §4.2): emulate Reno's AIMD average.
  tcp_friendly_segments_ +=
      3.0 * (1.0 - kBeta) / (1.0 + kBeta) *
      (static_cast<double>(acked_bytes) / static_cast<double>(cwnd_));

  double next = w_seg;
  if (target > w_seg) {
    next = w_seg + (target - w_seg) / w_seg;  // cubic increase per ACK batch
  } else {
    next = w_seg + 0.01 / w_seg;  // minimal growth in the plateau
  }
  next = std::max(next, tcp_friendly_segments_);
  cwnd_ = static_cast<std::uint64_t>(next * mss_);
}

void CubicCongestionControl::on_loss(LossKind kind, std::uint64_t flight_bytes,
                                     sim::Time /*now*/) {
  const double w_seg = static_cast<double>(cwnd_) / mss_;
  // Fast convergence (RFC 8312 §4.6).
  w_max_segments_ =
      w_seg < w_max_segments_ ? w_seg * (1.0 + kBeta) / 2.0 : w_seg;
  epoch_start_ = -1;
  const std::uint64_t floor = 2ull * mss_;
  if (kind == LossKind::kTimeout) {
    ssthresh_ = std::max(flight_bytes / 2, floor);
    cwnd_ = mss_;
  } else {
    ssthresh_ =
        std::max(static_cast<std::uint64_t>(w_seg * kBeta) * mss_, floor);
    cwnd_ = ssthresh_;
  }
}

void CubicCongestionControl::exit_recovery(sim::Time /*now*/) {
  cwnd_ = ssthresh_;
}

void CubicCongestionControl::after_idle(sim::Duration /*idle*/,
                                        sim::Time /*now*/) {
  // Restart from the initial window and begin a fresh cubic epoch; w_max
  // keeps the memory of the pre-idle operating point.
  cwnd_ = std::min<std::uint64_t>(
      cwnd_, static_cast<std::uint64_t>(mss_) * kInitialWindowSegments);
  epoch_start_ = -1;
  round_acked_ = 0;
  round_length_ = 0;
  curr_round_samples_ = 0;
  last_round_min_rtt_ = 0;
}

std::unique_ptr<CongestionControl> make_cubic(std::uint32_t mss) {
  return std::make_unique<CubicCongestionControl>(mss, /*hystart=*/false);
}

std::unique_ptr<CongestionControl> make_cubic_hystart(std::uint32_t mss) {
  return std::make_unique<CubicCongestionControl>(mss, /*hystart=*/true);
}

}  // namespace ccsig::tcp

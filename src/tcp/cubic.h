// CUBIC congestion control (RFC 8312 semantics), with an optional HyStart
// (Ha & Rhee) delay-based slow-start exit: plain "cubic" keeps the
// simplified no-HyStart behavior, "cubic_hystart" arms the RTT-round
// detector so deep buffers end slow start before the first loss.
#pragma once

#include <cstdint>
#include <limits>

#include "tcp/congestion_control.h"

namespace ccsig::tcp {

class CubicCongestionControl : public CongestionControl {
 public:
  explicit CubicCongestionControl(std::uint32_t mss, bool hystart = false);

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(LossKind kind, std::uint64_t flight_bytes,
               sim::Time now) override;
  void exit_recovery(sim::Time now) override;
  void after_idle(sim::Duration idle, sim::Time now) override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override {
    return hystart_ ? "cubic_hystart" : "cubic";
  }

 private:
  double cubic_window(double t_seconds) const;
  void hystart_on_ack(std::uint64_t acked_bytes, sim::Duration rtt);

  static constexpr double kC = 0.4;     // RFC 8312 scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease factor

  // HyStart delay-increase detection: compare each RTT round's min RTT
  // (first kHystartMinSamples ACK samples) against the previous round's;
  // a rise of eta = clamp(last_min/8, 4ms, 16ms) means the queue has
  // started filling and slow start should end now.
  static constexpr int kHystartMinSamples = 8;

  std::uint32_t mss_;
  bool hystart_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();

  double w_max_segments_ = 0;   // window before the last reduction
  sim::Time epoch_start_ = -1;  // start of the current growth epoch
  double k_seconds_ = 0;        // time to regain w_max
  double est_rtt_s_ = 0.1;      // smoothed RTT for the TCP-friendly region
  double tcp_friendly_segments_ = 0;

  // HyStart round state (touched only when hystart_ is on).
  std::uint64_t round_acked_ = 0;      // bytes acked in the current round
  std::uint64_t round_length_ = 0;     // cwnd at round start = round size
  sim::Duration last_round_min_rtt_ = 0;
  sim::Duration curr_round_min_rtt_ = 0;
  int curr_round_samples_ = 0;
};

}  // namespace ccsig::tcp

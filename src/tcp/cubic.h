// CUBIC congestion control (RFC 8312 semantics, simplified: no HyStart).
#pragma once

#include <cstdint>
#include <limits>

#include "tcp/congestion_control.h"

namespace ccsig::tcp {

class CubicCongestionControl : public CongestionControl {
 public:
  explicit CubicCongestionControl(std::uint32_t mss);

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(LossKind kind, std::uint64_t flight_bytes,
               sim::Time now) override;
  void on_recovery_exit(sim::Time now) override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override { return "cubic"; }

 private:
  double cubic_window(double t_seconds) const;

  static constexpr double kC = 0.4;     // RFC 8312 scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease factor

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();

  double w_max_segments_ = 0;   // window before the last reduction
  sim::Time epoch_start_ = -1;  // start of the current growth epoch
  double k_seconds_ = 0;        // time to regain w_max
  double est_rtt_s_ = 0.1;      // smoothed RTT for the TCP-friendly region
  double tcp_friendly_segments_ = 0;
};

}  // namespace ccsig::tcp

// TCP Westwood+ (Mascolo et al. 2001): Reno dynamics with a bandwidth-
// estimate loss response.
//
// The sender continuously estimates the delivery rate from ACK arrivals
// (samples aggregated over one RTT, low-pass filtered), and on loss sets
// ssthresh to the estimated bandwidth-delay product — "faster recovery" —
// instead of blindly halving. Over lossy links whose drops are not
// congestive, that keeps the window near the path's actual capacity where
// Reno collapses; on a genuinely congested path the estimate itself has
// collapsed, so the outcome matches Reno's. The shape follows ns-3's
// TcpWestwoodPlus model (bandwidth filter + ssthresh-from-BDP), restated
// for this simulator's byte-based hooks.
#pragma once

#include <cstdint>
#include <limits>

#include "tcp/congestion_control.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class WestwoodCongestionControl : public CongestionControl {
 public:
  explicit WestwoodCongestionControl(std::uint32_t mss);

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(LossKind kind, std::uint64_t flight_bytes,
               sim::Time now) override;
  void exit_recovery(sim::Time now) override;
  void after_idle(sim::Duration idle, sim::Time now) override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override { return "westwood"; }

  /// Filtered bandwidth estimate in bits/s (0 until the first sample).
  /// Exposed for the behavioral tests.
  double bandwidth_estimate_bps() const { return bwe_bps_; }
  sim::Duration min_rtt() const { return rtt_min_; }

 private:
  void sample_bandwidth(std::uint64_t acked_bytes, sim::Time now);

  // Low-pass filter: bwe = (1-kFilterGain)*bwe + kFilterGain*sample
  // (Westwood+'s 7/8 + 1/8 discrete filter).
  static constexpr double kFilterGain = 0.125;

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t ca_acked_ = 0;  // byte accumulator for congestion avoidance

  double bwe_bps_ = 0;          // filtered bandwidth estimate
  sim::Duration rtt_min_ = 0;   // lifetime min RTT; 0 = unset
  // Sample aggregation: one bandwidth sample per ~RTT of ACKed data.
  sim::Time accum_start_ = -1;
  std::uint64_t accum_bytes_ = 0;
};

}  // namespace ccsig::tcp

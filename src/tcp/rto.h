// RFC 6298 retransmission-timeout estimation.
#pragma once

#include "sim/time.h"

namespace ccsig::tcp {

/// Maintains SRTT/RTTVAR and derives the retransmission timeout, with
/// exponential backoff on timer expiry (RFC 6298).
class RtoEstimator {
 public:
  struct Config {
    sim::Duration min_rto = 200 * sim::kMillisecond;  // Linux default floor
    sim::Duration max_rto = 60 * sim::kSecond;
    sim::Duration initial_rto = 1 * sim::kSecond;
  };

  RtoEstimator() : RtoEstimator(Config{}) {}
  explicit RtoEstimator(Config cfg) : cfg_(cfg), rto_(cfg.initial_rto) {}

  /// Feeds a new RTT measurement (from a non-retransmitted segment; the
  /// caller enforces Karn's rule).
  void on_measurement(sim::Duration rtt) {
    if (rtt < 0) rtt = 0;
    if (!have_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      have_sample_ = true;
    } else {
      const sim::Duration err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = (3 * rttvar_ + err) / 4;  // beta = 1/4
      srtt_ = (7 * srtt_ + rtt) / 8;      // alpha = 1/8
    }
    rto_ = clamp(srtt_ + 4 * rttvar_);
    backoff_ = 1;
  }

  /// Doubles the timeout after a retransmission timer expiry. The max_rto
  /// clamp bounds the effective value.
  void on_timeout() {
    if (backoff_ < 4096) backoff_ *= 2;
  }

  sim::Duration rto() const { return clamp(rto_ * backoff_); }
  sim::Duration srtt() const { return srtt_; }
  sim::Duration rttvar() const { return rttvar_; }
  bool has_sample() const { return have_sample_; }

 private:
  sim::Duration clamp(sim::Duration d) const {
    if (d < cfg_.min_rto) return cfg_.min_rto;
    if (d > cfg_.max_rto) return cfg_.max_rto;
    return d;
  }

  Config cfg_;
  bool have_sample_ = false;
  sim::Duration srtt_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_;
  int backoff_ = 1;
};

}  // namespace ccsig::tcp

// Shared TCP constants and small value types.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace ccsig::tcp {

/// Maximum segment size used throughout (Ethernet MTU 1500 − 40 bytes of
/// IPv4+TCP headers − 12 bytes of timestamp options ≈ 1448, the value Linux
/// typically negotiates and the paper's testbed would have used).
inline constexpr std::uint32_t kDefaultMss = 1448;

/// Initial congestion window in segments (RFC 6928).
inline constexpr std::uint32_t kInitialWindowSegments = 10;

/// Classes of loss event reported to congestion-control modules.
enum class LossKind {
  kFastRetransmit,  // triple duplicate ACK
  kTimeout,         // retransmission timer expiry
};

/// What stopped the sender from transmitting more, Web100-style.
enum class SendLimit {
  kCongestion,  // cwnd (or recovery) limited
  kReceiver,    // peer's advertised window limited
  kApplication, // no data queued / pacing idle
};

}  // namespace ccsig::tcp

#include "tcp/reno.h"

#include <algorithm>

namespace ccsig::tcp {

RenoCongestionControl::RenoCongestionControl(std::uint32_t mss)
    : mss_(mss),
      cwnd_(static_cast<std::uint64_t>(mss) * kInitialWindowSegments) {}

void RenoCongestionControl::on_ack(std::uint64_t acked_bytes,
                                   sim::Duration /*rtt*/, sim::Time /*now*/) {
  if (in_slow_start()) {
    // Exponential growth: cwnd += min(acked, MSS) per ACK (RFC 5681 §3.1,
    // with ABC limiting growth to one MSS per ACK).
    cwnd_ += std::min<std::uint64_t>(acked_bytes, mss_);
    return;
  }
  // Congestion avoidance: one MSS per cwnd of acknowledged data.
  ca_acked_ += acked_bytes;
  if (ca_acked_ >= cwnd_) {
    ca_acked_ -= cwnd_;
    cwnd_ += mss_;
  }
}

void RenoCongestionControl::on_loss(LossKind kind, std::uint64_t flight_bytes,
                                    sim::Time /*now*/) {
  const std::uint64_t floor = 2ull * mss_;
  ssthresh_ = std::max(flight_bytes / 2, floor);
  if (kind == LossKind::kTimeout) {
    cwnd_ = mss_;  // RFC 5681: collapse to loss window, re-enter slow start
    ca_acked_ = 0;
  } else {
    cwnd_ = ssthresh_;  // halve; the sender adds dupack inflation on top
  }
}

void RenoCongestionControl::exit_recovery(sim::Time /*now*/) {
  cwnd_ = ssthresh_;
  ca_acked_ = 0;
}

void RenoCongestionControl::after_idle(sim::Duration /*idle*/,
                                       sim::Time /*now*/) {
  // RFC 2861-flavoured restart: an idle sender's cwnd no longer reflects
  // path state; resume from the initial window (ssthresh keeps the memory
  // of the last loss, so growth back is slow-start then linear).
  cwnd_ = std::min<std::uint64_t>(
      cwnd_, static_cast<std::uint64_t>(mss_) * kInitialWindowSegments);
  ca_acked_ = 0;
}

std::unique_ptr<CongestionControl> make_reno(std::uint32_t mss) {
  return std::make_unique<RenoCongestionControl>(mss);
}

}  // namespace ccsig::tcp

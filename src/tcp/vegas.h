// TCP Vegas (Brakmo & Peterson 1995): delay-based congestion avoidance.
//
// Vegas estimates how many segments the flow itself has queued at the
// bottleneck from the gap between the expected rate (cwnd / baseRTT) and
// the actual rate (cwnd / observed RTT). It adjusts the window once per
// RTT round to keep that backlog between alpha and beta segments, and
// leaves slow start as soon as the backlog exceeds gamma — so a Vegas
// sender backs off on rising RTT *without* ever seeing a loss, the exact
// confound the paper's §6 discusses for delay-based senders.
//
// Simplifications vs the original: slow-start growth is Reno-style
// (one MSS per ACK with ABC) rather than every-other-RTT doubling, and
// loss response is Reno's (Vegas inherits Reno behavior on loss anyway).
// Rounds are delimited by acknowledged byte count (one cwnd of data),
// which is exact under the simulator's deterministic ACK clock.
#pragma once

#include <cstdint>
#include <limits>

#include "tcp/congestion_control.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class VegasCongestionControl : public CongestionControl {
 public:
  explicit VegasCongestionControl(std::uint32_t mss);

  void on_ack(std::uint64_t acked_bytes, sim::Duration rtt,
              sim::Time now) override;
  void on_loss(LossKind kind, std::uint64_t flight_bytes,
               sim::Time now) override;
  void exit_recovery(sim::Time now) override;
  void after_idle(sim::Duration idle, sim::Time now) override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override { return "vegas"; }

  /// Lowest RTT ever observed (the Vegas baseRTT); 0 until the first
  /// sample. Exposed for the behavioral tests.
  sim::Duration base_rtt() const { return base_rtt_; }

 private:
  void end_round();

  // Backlog thresholds in segments (classic Vegas defaults).
  static constexpr double kAlpha = 2.0;  // grow below this
  static constexpr double kBeta = 4.0;   // shrink above this
  static constexpr double kGamma = 1.0;  // leave slow start above this

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();

  sim::Duration base_rtt_ = 0;        // lifetime min RTT; 0 = unset
  sim::Duration round_min_rtt_ = 0;   // min RTT inside the current round
  int round_samples_ = 0;
  std::uint64_t round_acked_ = 0;     // bytes acked in the current round
  std::uint64_t round_length_ = 0;    // cwnd at round start = round size
};

}  // namespace ccsig::tcp

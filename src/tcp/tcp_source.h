// The TCP data sender (server side of a download).
//
// Implements connection setup (SYN / SYN-ACK / ACK), cumulative-ACK loss
// recovery with duplicate-ACK fast retransmit and NewReno partial-ACK
// handling, RFC 6298 retransmission timeouts, optional pacing (for the
// BBR-like controller), and Web100-style accounting of what limited the
// sender (congestion window, receiver window, application).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "obs/flow_telemetry.h"
#include "sim/node.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "tcp/congestion_control.h"
#include "tcp/node_pool.h"
#include "tcp/rto.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class TcpSource {
 public:
  struct Config {
    sim::FlowKey key;                  // src must be the local node's address
    std::uint32_t mss = kDefaultMss;
    std::string congestion_control = "reno";
    RtoEstimator::Config rto;
    /// Total application bytes to transfer; 0 means unbounded (run until
    /// `stop_sending()`), which models a netperf/NDT-style timed test.
    std::uint64_t bytes_to_send = 0;
    bool enable_pacing = true;  // honored only if the CC module paces
    /// Fixed sender pacing in bits/s regardless of the CC module; 0 = off.
    /// Models a sender whose emission rate is capped elsewhere (e.g. a
    /// video CDN fetch capped by the subscriber's own downstream path).
    double fixed_pacing_bps = 0;
    /// Quota mode: the application only offers bytes explicitly handed over
    /// via release_app_bytes() (video-segment style). Without this flag the
    /// source is bulk until told otherwise.
    bool quota_mode = false;
    /// Application data release rate in bits/s; 0 = unlimited (bulk).
    /// Models rate-limited sources (video streams) that only congest a link
    /// in aggregate — used by the M-Lab campaign's diurnal load model.
    double app_rate_bps = 0;
    /// For rate-limited sources: the maximum backlog the application keeps
    /// when the network falls behind. Like a live stream, data older than
    /// this is skipped, so congested-aggregate demand stays near the
    /// nominal rate instead of compounding without bound.
    std::uint64_t app_backlog_limit_bytes = 512 * 1024;
    /// SACK-based loss recovery (RFC 6675-style scoreboard). When false,
    /// the sender falls back to NewReno partial-ACK recovery — much slower
    /// through burst losses, kept for the recovery ablation.
    bool use_sack = true;
    /// Optional passive telemetry sink: receives cwnd/ssthresh/srtt/pipe on
    /// every new ACK plus retransmit/timeout/recovery events. Purely
    /// observational — attaching one never changes sender behavior. Must
    /// outlive the source. nullptr = disabled.
    obs::FlowTelemetryRecorder* telemetry = nullptr;
  };

  /// Web100-style counters exposed after (or during) the test.
  struct Stats {
    std::uint64_t bytes_sent = 0;         // unique payload bytes sent
    std::uint64_t bytes_acked = 0;
    std::uint64_t segments_sent = 0;      // data segments incl. retx
    std::uint64_t retransmits = 0;
    std::uint64_t fast_retransmits = 0;   // loss events via 3 dupacks
    std::uint64_t timeouts = 0;           // loss events via RTO
    sim::Duration time_congestion_limited = 0;
    sim::Duration time_receiver_limited = 0;
    sim::Duration time_application_limited = 0;
    sim::Duration min_rtt = 0;
    sim::Duration smoothed_rtt = 0;
    std::uint64_t cwnd_bytes = 0;
    std::uint64_t ssthresh_bytes = 0;
    sim::Time established_at = -1;
    sim::Time completed_at = -1;          // all data acked (finite transfers)
  };

  TcpSource(sim::Simulator& sim, sim::Node* local, Config cfg);
  ~TcpSource();
  TcpSource(const TcpSource&) = delete;
  TcpSource& operator=(const TcpSource&) = delete;

  /// Initiates the handshake at the current simulation time.
  void start();

  /// Stops offering new application data (the connection stays open to
  /// drain in-flight segments). Used to end timed tests.
  void stop_sending();

  /// Changes the application release rate (rate-limited sources only).
  /// Past releases are preserved; the new rate applies from now on. Models
  /// adaptive-bitrate quality switches.
  void set_app_rate(double bps);
  double app_rate() const { return cfg_.app_rate_bps; }

  /// Quota mode (Config::quota_mode): hands the transport an explicit chunk
  /// of application data (video-segment style). Combines with
  /// `bytes_to_send`/`app_rate_bps` limits if those are set too.
  void release_app_bytes(std::uint64_t bytes);

  /// Bytes handed over via release_app_bytes but not yet sent.
  std::uint64_t app_backlog() const;

  /// Fires once all application data has been acknowledged (finite
  /// transfers only).
  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

  Stats stats() const;
  bool established() const { return state_ == State::kEstablished; }
  const CongestionControl& congestion() const { return *cc_; }

 private:
  enum class State { kClosed, kSynSent, kEstablished, kStopped };

  struct Segment {
    std::uint32_t len = 0;
    sim::Time sent_at = 0;
    bool retransmitted = false;
    bool sacked = false;    // covered by a SACK block
    bool lost_rtx = false;  // presumed lost and already retransmitted
  };
  using SegmentMap = std::map<std::uint64_t, Segment>;

  void on_packet(const sim::Packet& p);
  void on_ack_packet(const sim::Packet& p);
  void handle_new_ack(std::uint64_t ack);
  void handle_dup_ack();
  void apply_sack(const sim::Packet& p);
  // Extends highest_sacked_ to `new_end`, folding segments that the new
  // boundary makes presumed-lost into the running loss counter.
  void raise_highest_sacked(std::uint64_t new_end);
  void enter_recovery();
  std::uint64_t pipe_bytes() const;
  void recovery_send();
  void send_syn();
  void try_send();
  void emit_segment(std::uint64_t seq, std::uint32_t len, bool retransmission);
  void retransmit_head();
  void arm_rto();
  void disarm_rto();
  void on_rto_fired(std::uint64_t generation);
  void note_limit(SendLimit limit);
  void telemetry_record(obs::FlowEvent event);
  std::uint64_t flight_bytes() const { return snd_nxt_ - snd_una_; }
  std::uint64_t effective_window() const;
  std::uint64_t app_bytes_remaining() const;

  sim::Simulator& sim_;
  sim::Node* local_;
  Config cfg_;
  std::unique_ptr<CongestionControl> cc_;
  RtoEstimator rto_;
  // Guards timer closures against firing after this source is destroyed.
  sim::Simulator::LifetimeLease life_;

  State state_ = State::kClosed;
  bool app_open_ = true;  // stop_sending() closes the application tap

  // Wire sequence space: SYN = seq 0; payload byte k = wire seq k + 1.
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t peer_rwnd_ = 1 << 30;
  SegmentMap in_flight_;
  MapNodePool<SegmentMap> segment_pool_;  // recycles scoreboard nodes

  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_seq_ = 0;
  std::uint64_t recovery_inflation_ = 0;  // NewReno (non-SACK) mode only
  std::uint64_t highest_sacked_ = 0;      // seq_end of highest SACKed byte

  // SACK-recovery accelerators. Both are pure strength reductions: the
  // decisions (and therefore every emitted packet) are identical to the
  // naive full scans, which made loss recovery quadratic in the flight
  // size and dominated the simulator's profile.
  //
  // Scoreboard position below which no recovery retransmission candidate
  // remains: every earlier segment is SACKed or already retransmitted, and
  // both marks are sticky until an RTO (which resets the cursor).
  std::uint64_t rtx_cursor_ = 0;
  // Running sums over the scoreboard, kept exact at every transition so
  // the RFC 6675 pipe is O(1) instead of a full scan per recovery ACK:
  // pipe = flight - sacked - presumed-lost, where presumed-lost counts
  // unSACKed segments below highest_sacked_ whose retransmission is not
  // in flight.
  std::uint64_t sacked_bytes_ = 0;
  std::uint64_t lost_unrtx_bytes_ = 0;
  // Recently processed SACK spans. Receivers repeat the same blocks on
  // every duplicate ACK and extend one run at a time, so block scans
  // resume where the previous scan stopped instead of re-walking the
  // (already marked) run from its start. `end` is the resume position:
  // every segment fully inside [start, end) is marked sacked.
  struct SackSpan {
    std::uint64_t start = 0;
    std::uint64_t end = 0;  // 0 = empty entry
  };
  static constexpr int kSackSpanCacheSize = 4;
  SackSpan sack_spans_[kSackSpanCacheSize];
  int sack_span_victim_ = 0;  // round-robin replacement

  std::uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;
  sim::Time syn_sent_at_ = 0;

  // Pacing gate.
  sim::Time next_pace_time_ = 0;
  bool pace_scheduled_ = false;
  bool app_wakeup_scheduled_ = false;
  // Rate-release integration (supports mid-flow rate changes).
  double released_accum_bytes_ = 0;
  sim::Time released_stamp_ = -1;
  // Quota mode (release_app_bytes).
  std::uint64_t app_quota_bytes_ = 0;

  // Web100-style limit accounting.
  SendLimit current_limit_ = SendLimit::kApplication;
  sim::Time limit_since_ = 0;
  sim::Duration limit_accum_[3] = {0, 0, 0};

  Stats stats_;
  std::function<void()> on_complete_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace ccsig::tcp

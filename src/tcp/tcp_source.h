// The TCP data sender (server side of a download).
//
// A CC-agnostic transport core: connection setup (SYN / SYN-ACK / ACK),
// the ACK clock, duplicate-ACK fast retransmit with NewReno partial-ACK
// handling, RFC 6298 retransmission timeouts, optional pacing, and
// Web100-style accounting of what limited the sender. Sequence-range
// bookkeeping (which bytes are outstanding / SACKed / presumed lost)
// lives in SackScoreboard; every congestion decision lives behind the
// CongestionControl hook interface (congestion_control.h), so adding a
// sender variant never touches this file.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/flow_telemetry.h"
#include "sim/node.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "tcp/congestion_control.h"
#include "tcp/rto.h"
#include "tcp/scoreboard.h"
#include "tcp/tcp_types.h"

namespace ccsig::tcp {

class TcpSource {
 public:
  struct Config {
    sim::FlowKey key;                  // src must be the local node's address
    std::uint32_t mss = kDefaultMss;
    std::string congestion_control = "reno";
    RtoEstimator::Config rto;
    /// Total application bytes to transfer; 0 means unbounded (run until
    /// `stop_sending()`), which models a netperf/NDT-style timed test.
    std::uint64_t bytes_to_send = 0;
    bool enable_pacing = true;  // honored only if the CC module paces
    /// Fixed sender pacing in bits/s regardless of the CC module; 0 = off.
    /// Models a sender whose emission rate is capped elsewhere (e.g. a
    /// video CDN fetch capped by the subscriber's own downstream path).
    double fixed_pacing_bps = 0;
    /// Quota mode: the application only offers bytes explicitly handed over
    /// via release_app_bytes() (video-segment style). Without this flag the
    /// source is bulk until told otherwise.
    bool quota_mode = false;
    /// Application data release rate in bits/s; 0 = unlimited (bulk).
    /// Models rate-limited sources (video streams) that only congest a link
    /// in aggregate — used by the M-Lab campaign's diurnal load model.
    double app_rate_bps = 0;
    /// For rate-limited sources: the maximum backlog the application keeps
    /// when the network falls behind. Like a live stream, data older than
    /// this is skipped, so congested-aggregate demand stays near the
    /// nominal rate instead of compounding without bound.
    std::uint64_t app_backlog_limit_bytes = 512 * 1024;
    /// SACK-based loss recovery (RFC 6675-style scoreboard). When false,
    /// the sender falls back to NewReno partial-ACK recovery — much slower
    /// through burst losses, kept for the recovery ablation.
    bool use_sack = true;
    /// RFC 2861-style congestion-window restart: when the connection has
    /// been idle (nothing in flight) for at least one RTO, the CC module's
    /// after_idle hook runs before the next transmission. Off by default —
    /// bulk testbed flows never go idle, and existing experiment output is
    /// byte-stable without the extra hook.
    bool cwnd_restart_after_idle = false;
    /// Optional passive telemetry sink: receives cwnd/ssthresh/srtt/pipe on
    /// every new ACK plus retransmit/timeout/recovery events. Purely
    /// observational — attaching one never changes sender behavior. Must
    /// outlive the source. nullptr = disabled.
    obs::FlowTelemetryRecorder* telemetry = nullptr;
  };

  /// Web100-style counters exposed after (or during) the test.
  struct Stats {
    std::uint64_t bytes_sent = 0;         // unique payload bytes sent
    std::uint64_t bytes_acked = 0;
    std::uint64_t segments_sent = 0;      // data segments incl. retx
    std::uint64_t retransmits = 0;
    std::uint64_t fast_retransmits = 0;   // loss events via 3 dupacks
    std::uint64_t timeouts = 0;           // loss events via RTO
    sim::Duration time_congestion_limited = 0;
    sim::Duration time_receiver_limited = 0;
    sim::Duration time_application_limited = 0;
    sim::Duration min_rtt = 0;
    sim::Duration smoothed_rtt = 0;
    std::uint64_t cwnd_bytes = 0;
    std::uint64_t ssthresh_bytes = 0;
    sim::Time established_at = -1;
    sim::Time completed_at = -1;          // all data acked (finite transfers)
  };

  TcpSource(sim::Simulator& sim, sim::Node* local, Config cfg);
  ~TcpSource();
  TcpSource(const TcpSource&) = delete;
  TcpSource& operator=(const TcpSource&) = delete;

  /// Initiates the handshake at the current simulation time.
  void start();

  /// Stops offering new application data (the connection stays open to
  /// drain in-flight segments). Used to end timed tests.
  void stop_sending();

  /// Changes the application release rate (rate-limited sources only).
  /// Past releases are preserved; the new rate applies from now on. Models
  /// adaptive-bitrate quality switches.
  void set_app_rate(double bps);
  double app_rate() const { return cfg_.app_rate_bps; }

  /// Quota mode (Config::quota_mode): hands the transport an explicit chunk
  /// of application data (video-segment style). Combines with
  /// `bytes_to_send`/`app_rate_bps` limits if those are set too.
  void release_app_bytes(std::uint64_t bytes);

  /// Bytes handed over via release_app_bytes but not yet sent.
  std::uint64_t app_backlog() const;

  /// Fires once all application data has been acknowledged (finite
  /// transfers only).
  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

  Stats stats() const;
  bool established() const { return state_ == State::kEstablished; }
  const CongestionControl& congestion() const { return *cc_; }

 private:
  enum class State { kClosed, kSynSent, kEstablished, kStopped };

  void on_packet(const sim::Packet& p);
  void on_ack_packet(const sim::Packet& p);
  void handle_new_ack(std::uint64_t ack);
  void handle_dup_ack();
  void enter_recovery();
  void recovery_send();
  void send_syn();
  void try_send();
  void emit_segment(std::uint64_t seq, std::uint32_t len, bool retransmission);
  void retransmit_head();
  void arm_rto();
  void disarm_rto();
  void on_rto_fired(std::uint64_t generation);
  void note_limit(SendLimit limit);
  void telemetry_record(obs::FlowEvent event);
  std::uint64_t flight_bytes() const { return snd_nxt_ - snd_una_; }
  std::uint64_t effective_window() const;
  std::uint64_t app_bytes_remaining() const;

  sim::Simulator& sim_;
  sim::Node* local_;
  Config cfg_;
  std::unique_ptr<CongestionControl> cc_;
  RtoEstimator rto_;
  // Guards timer closures against firing after this source is destroyed.
  sim::Simulator::LifetimeLease life_;

  State state_ = State::kClosed;
  bool app_open_ = true;  // stop_sending() closes the application tap

  // Wire sequence space: SYN = seq 0; payload byte k = wire seq k + 1.
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t peer_rwnd_ = 1 << 30;
  SackScoreboard scoreboard_;

  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_seq_ = 0;
  std::uint64_t recovery_inflation_ = 0;  // NewReno (non-SACK) mode only

  std::uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;
  sim::Time syn_sent_at_ = 0;
  // Last data transmission, for the idle-restart check (RFC 2861); only
  // consulted when Config::cwnd_restart_after_idle is on.
  sim::Time last_emit_at_ = -1;

  // Pacing gate.
  sim::Time next_pace_time_ = 0;
  bool pace_scheduled_ = false;
  bool app_wakeup_scheduled_ = false;
  // Rate-release integration (supports mid-flow rate changes).
  double released_accum_bytes_ = 0;
  sim::Time released_stamp_ = -1;
  // Quota mode (release_app_bytes).
  std::uint64_t app_quota_bytes_ = 0;

  // Web100-style limit accounting.
  SendLimit current_limit_ = SendLimit::kApplication;
  sim::Time limit_since_ = 0;
  sim::Duration limit_accum_[3] = {0, 0, 0};

  Stats stats_;
  std::function<void()> on_complete_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace ccsig::tcp

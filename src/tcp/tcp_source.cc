#include "tcp/tcp_source.h"

#include <algorithm>
#include <cassert>

namespace ccsig::tcp {

TcpSource::TcpSource(sim::Simulator& sim, sim::Node* local, Config cfg)
    : sim_(sim),
      local_(local),
      cfg_(std::move(cfg)),
      cc_(congestion_control_by_name(cfg_.congestion_control)(cfg_.mss)),
      rto_(cfg_.rto),
      life_(sim.lease_lifetime()) {
  local_->register_endpoint(cfg_.key.src_port,
                            [this](const sim::Packet& p) { on_packet(p); });
}

TcpSource::~TcpSource() {
  local_->unregister_endpoint(cfg_.key.src_port);
  // Invalidates every pending timer closure that captured `this`: sources
  // of completed fetches are destroyed while timers are still in flight.
  sim_.release_lifetime(life_);
}

void TcpSource::start() {
  assert(state_ == State::kClosed);
  state_ = State::kSynSent;
  limit_since_ = sim_.now();
  send_syn();
}

void TcpSource::stop_sending() { app_open_ = false; }

void TcpSource::release_app_bytes(std::uint64_t bytes) {
  app_quota_bytes_ += bytes;
  try_send();
}

std::uint64_t TcpSource::app_backlog() const {
  if (!cfg_.quota_mode) return 0;
  const std::uint64_t sent_payload = snd_nxt_ > 0 ? snd_nxt_ - 1 : 0;
  return app_quota_bytes_ > sent_payload ? app_quota_bytes_ - sent_payload : 0;
}

void TcpSource::set_app_rate(double bps) {
  // Fold releases accrued at the old rate into the accumulator.
  const sim::Time since = released_stamp_ >= 0 ? released_stamp_
                                               : stats_.established_at;
  if (cfg_.app_rate_bps > 0 && since >= 0) {
    released_accum_bytes_ +=
        cfg_.app_rate_bps / 8.0 * sim::to_seconds(sim_.now() - since);
  }
  released_stamp_ = sim_.now();
  cfg_.app_rate_bps = bps;
  try_send();
}

void TcpSource::send_syn() {
  syn_sent_at_ = sim_.now();
  sim::Packet syn;
  syn.key = cfg_.key;
  syn.seq = 0;
  syn.flags.syn = true;
  syn.payload_bytes = 0;
  syn.id = next_packet_id_++;
  local_->send(syn);
  // SYN retransmission safety net. The closure checks the simulator-owned
  // lease before touching `this`: the source may be gone by the time it
  // fires, and even reading `state_` off freed memory would let a recycled
  // allocation retransmit some other flow's SYN.
  const std::uint64_t gen = ++rto_generation_;
  sim::Simulator* const sim = &sim_;
  sim_.schedule_in(rto_.rto(), [this, sim, life = life_, gen] {
    if (!sim->alive(life)) return;
    if (state_ == State::kSynSent && gen == rto_generation_) {
      rto_.on_timeout();
      send_syn();
    }
  });
}

std::uint64_t TcpSource::app_bytes_remaining() const {
  if (!app_open_) return 0;
  const std::uint64_t sent_payload = snd_nxt_ > 0 ? snd_nxt_ - 1 : 0;
  std::uint64_t remaining = 1ull << 40;  // effectively unbounded
  if (cfg_.quota_mode) {
    remaining = app_quota_bytes_ > sent_payload
                    ? app_quota_bytes_ - sent_payload
                    : 0;
  }
  if (cfg_.bytes_to_send != 0) {
    remaining = std::min(remaining, cfg_.bytes_to_send > sent_payload
                                        ? cfg_.bytes_to_send - sent_payload
                                        : 0);
  }
  if (cfg_.app_rate_bps > 0 && stats_.established_at >= 0) {
    // Rate-limited source: the application has only released rate*t bytes
    // (integrated across any set_app_rate changes), and keeps at most
    // `app_backlog_limit_bytes` of backlog (older data is skipped,
    // live-stream style).
    const sim::Time since = released_stamp_ >= 0 ? released_stamp_
                                                 : stats_.established_at;
    const double released =
        released_accum_bytes_ +
        cfg_.app_rate_bps / 8.0 * sim::to_seconds(sim_.now() - since);
    auto released_u = static_cast<std::uint64_t>(released);
    released_u =
        std::min(released_u, sent_payload + cfg_.app_backlog_limit_bytes);
    remaining = std::min(
        remaining, released_u > sent_payload ? released_u - sent_payload : 0);
  }
  return remaining;
}

std::uint64_t TcpSource::effective_window() const {
  return std::min<std::uint64_t>(cc_->cwnd_bytes() + recovery_inflation_,
                                 peer_rwnd_);
}

void TcpSource::note_limit(SendLimit limit) {
  if (limit == current_limit_) return;
  limit_accum_[static_cast<int>(current_limit_)] += sim_.now() - limit_since_;
  current_limit_ = limit;
  limit_since_ = sim_.now();
}

void TcpSource::telemetry_record(obs::FlowEvent event) {
  if (!cfg_.telemetry) return;
  obs::FlowSample s;
  s.at = sim_.now();
  s.event = event;
  s.cwnd_bytes = cc_->cwnd_bytes();
  s.ssthresh_bytes = cc_->ssthresh_bytes();
  // Outstanding-data estimate: RFC 6675 pipe when the SACK scoreboard is
  // maintained, plain flight otherwise.
  s.pipe_bytes = cfg_.use_sack ? scoreboard_.pipe_bytes(flight_bytes())
                               : flight_bytes();
  s.srtt = rto_.srtt();
  s.retransmits = stats_.retransmits;
  cfg_.telemetry->record(s);
}

void TcpSource::try_send() {
  if (state_ != State::kEstablished) return;
  // RFC 2861-style restart (opt-in): a window grown before an idle gap no
  // longer reflects path state; let the CC module decay it before the
  // connection bursts again.
  if (cfg_.cwnd_restart_after_idle && last_emit_at_ >= 0 &&
      flight_bytes() == 0) {
    const sim::Duration idle = sim_.now() - last_emit_at_;
    if (idle >= rto_.rto()) {
      cc_->after_idle(idle, sim_.now());
      last_emit_at_ = sim_.now();  // one restart per idle episode
    }
  }
  double pace_bps = cfg_.enable_pacing ? cc_->pacing_rate_bps() : 0.0;
  if (cfg_.fixed_pacing_bps > 0 &&
      (pace_bps == 0.0 || cfg_.fixed_pacing_bps < pace_bps)) {
    pace_bps = cfg_.fixed_pacing_bps;
  }

  while (true) {
    const std::uint64_t wnd = effective_window();
    if (flight_bytes() >= wnd) {
      note_limit(wnd >= peer_rwnd_ ? SendLimit::kReceiver
                                   : SendLimit::kCongestion);
      return;
    }
    std::uint64_t remaining = app_bytes_remaining();
    // Nagle-style coalescing for rate-limited sources: wait until a full
    // segment has accumulated rather than dribbling tiny packets.
    if (cfg_.app_rate_bps > 0 && remaining < cfg_.mss && flight_bytes() > 0) {
      remaining = 0;
    }
    if (remaining == 0) {
      note_limit(SendLimit::kApplication);
      // A rate-limited app will have more data shortly; wake up for it.
      if (cfg_.app_rate_bps > 0 && app_open_ && !app_wakeup_scheduled_) {
        app_wakeup_scheduled_ = true;
        const auto dt = static_cast<sim::Duration>(
            static_cast<double>(cfg_.mss) * 8.0 / cfg_.app_rate_bps *
            static_cast<double>(sim::kSecond));
        sim::Simulator* const sim = &sim_;
        sim_.schedule_in(dt, [this, sim, life = life_] {
          if (!sim->alive(life)) return;
          app_wakeup_scheduled_ = false;
          try_send();
        });
      }
      return;
    }
    if (pace_bps > 0.0) {
      if (sim_.now() < next_pace_time_) {
        if (!pace_scheduled_) {
          pace_scheduled_ = true;
          sim::Simulator* const sim = &sim_;
          sim_.schedule_at(next_pace_time_, [this, sim, life = life_] {
            if (!sim->alive(life)) return;
            pace_scheduled_ = false;
            try_send();
          });
        }
        note_limit(SendLimit::kApplication);  // pacing idle
        return;
      }
    }
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {remaining, cfg_.mss, wnd - flight_bytes()}));
    if (len == 0) {
      note_limit(SendLimit::kCongestion);
      return;
    }
    emit_segment(snd_nxt_, len, /*retransmission=*/false);
    snd_nxt_ += len;
    stats_.bytes_sent += len;
    if (pace_bps > 0.0) {
      const auto delta = static_cast<sim::Duration>(
          static_cast<double>(len + sim::kTcpIpHeaderBytes) * 8.0 / pace_bps *
          static_cast<double>(sim::kSecond));
      next_pace_time_ = std::max(next_pace_time_, sim_.now()) + delta;
    }
  }
}

void TcpSource::emit_segment(std::uint64_t seq, std::uint32_t len,
                             bool retransmission) {
  sim::Packet p;
  p.key = cfg_.key;
  p.seq = seq;
  p.ack = 1;  // we never receive data; peer's SYN consumed one sequence
  p.flags.ack = true;
  p.payload_bytes = len;
  p.id = next_packet_id_++;
  local_->send(p);
  ++stats_.segments_sent;
  last_emit_at_ = sim_.now();
  if (retransmission) {
    ++stats_.retransmits;
    scoreboard_.mark_retransmitted(seq, sim_.now());
  } else {
    scoreboard_.insert(seq, len, sim_.now());
  }
  if (!rto_armed_) arm_rto();
}

void TcpSource::retransmit_head() {
  std::uint64_t seq = 0;
  std::uint32_t len = 0;
  if (!scoreboard_.head_for_retransmit(snd_una_, &seq, &len)) return;
  emit_segment(seq, len, /*retransmission=*/true);
}

void TcpSource::arm_rto() {
  rto_armed_ = true;
  const std::uint64_t gen = ++rto_generation_;
  sim::Simulator* const sim = &sim_;
  sim_.schedule_in(rto_.rto(), [this, sim, life = life_, gen] {
    if (!sim->alive(life)) return;
    on_rto_fired(gen);
  });
}

void TcpSource::disarm_rto() {
  rto_armed_ = false;
  ++rto_generation_;
}

void TcpSource::on_rto_fired(std::uint64_t generation) {
  if (generation != rto_generation_ || state_ != State::kEstablished) return;
  if (snd_una_ >= snd_nxt_) {
    rto_armed_ = false;
    return;
  }
  ++stats_.timeouts;
  rto_.on_timeout();
  cc_->on_loss(LossKind::kTimeout, flight_bytes(), sim_.now());
  telemetry_record(obs::FlowEvent::kTimeout);
  in_recovery_ = false;
  recovery_inflation_ = 0;
  dup_acks_ = 0;
  scoreboard_.on_rto();
  retransmit_head();
  arm_rto();
}

void TcpSource::on_packet(const sim::Packet& p) {
  // We only ever receive control traffic (SYN-ACK and pure ACKs).
  if (p.flags.rst) {
    state_ = State::kStopped;
    disarm_rto();
    return;
  }
  if (state_ == State::kSynSent && p.flags.syn && p.flags.ack) {
    if (p.window > 0) peer_rwnd_ = p.window;
    state_ = State::kEstablished;
    stats_.established_at = sim_.now();
    snd_una_ = 1;
    snd_nxt_ = 1;
    disarm_rto();
    rto_.on_measurement(sim_.now() - syn_sent_at_);
    cc_->init(sim_.now());
    limit_since_ = sim_.now();
    // Complete the handshake; the ACK carries no payload.
    sim::Packet ack;
    ack.key = cfg_.key;
    ack.seq = 1;
    ack.ack = 1;
    ack.flags.ack = true;
    ack.id = next_packet_id_++;
    local_->send(ack);
    try_send();
    return;
  }
  if (state_ == State::kEstablished && p.flags.ack) on_ack_packet(p);
}

void TcpSource::on_ack_packet(const sim::Packet& p) {
  if (p.window > 0) peer_rwnd_ = p.window;
  if (p.ack > snd_nxt_) return;  // nonsense ACK
  if (cfg_.use_sack) scoreboard_.apply_sack(p);
  if (p.ack > snd_una_) {
    handle_new_ack(p.ack);
  } else if (p.ack == snd_una_ && flight_bytes() > 0 &&
             p.payload_bytes == 0) {
    handle_dup_ack();
  }
}

void TcpSource::enter_recovery() {
  ++stats_.fast_retransmits;
  cc_->on_loss(LossKind::kFastRetransmit, flight_bytes(), sim_.now());
  cc_->enter_recovery(sim_.now());
  telemetry_record(obs::FlowEvent::kFastRetransmit);
  in_recovery_ = true;
  recover_seq_ = snd_nxt_;
  disarm_rto();
  arm_rto();
  if (cfg_.use_sack) {
    recovery_send();
  } else {
    recovery_inflation_ = 3ull * cfg_.mss;
    retransmit_head();
  }
}

void TcpSource::recovery_send() {
  // Fill the window with (1) retransmissions of presumed-lost segments,
  // then (2) new data, keeping pipe below cwnd (RFC 6675 NextSeg()).
  const std::uint64_t wnd = effective_window();
  std::uint64_t pipe = scoreboard_.pipe_bytes(flight_bytes());
  while (pipe + cfg_.mss / 2 < wnd) {
    std::uint64_t seq = 0;
    std::uint32_t len = 0;
    if (scoreboard_.next_lost_retransmit(&seq, &len)) {
      emit_segment(seq, len, /*retransmission=*/true);
      pipe += len;
      continue;
    }
    // No holes left to repair: extend with new data if allowed.
    const std::uint64_t remaining = app_bytes_remaining();
    if (remaining == 0 || snd_nxt_ - snd_una_ >= peer_rwnd_) break;
    const std::uint32_t new_len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({remaining, cfg_.mss}));
    emit_segment(snd_nxt_, new_len, /*retransmission=*/false);
    snd_nxt_ += new_len;
    stats_.bytes_sent += new_len;
    pipe += new_len;
  }
}

void TcpSource::handle_new_ack(std::uint64_t ack) {
  const std::uint64_t newly = ack - snd_una_;
  stats_.bytes_acked += newly;

  const sim::Duration rtt_sample = scoreboard_.ack_advance(ack, sim_.now());
  snd_una_ = ack;

  if (rtt_sample >= 0) {
    rto_.on_measurement(rtt_sample);
    if (stats_.min_rtt == 0 || rtt_sample < stats_.min_rtt) {
      stats_.min_rtt = rtt_sample;
    }
  }

  if (in_recovery_) {
    if (ack >= recover_seq_) {
      in_recovery_ = false;
      recovery_inflation_ = 0;
      dup_acks_ = 0;
      cc_->exit_recovery(sim_.now());
      telemetry_record(obs::FlowEvent::kRecoveryExit);
    } else if (cfg_.use_sack) {
      // Partial ACK during SACK recovery: keep repairing the scoreboard.
      recovery_send();
    } else {
      // NewReno partial ACK: the next hole is lost too; retransmit it and
      // deflate the window by the amount acked.
      retransmit_head();
      recovery_inflation_ -=
          std::min<std::uint64_t>(recovery_inflation_, newly);
    }
  } else {
    dup_acks_ = 0;
    cc_->on_ack(newly, rtt_sample, sim_.now());
    telemetry_record(obs::FlowEvent::kSample);
  }

  if (flight_bytes() == 0) {
    disarm_rto();
  } else {
    disarm_rto();
    arm_rto();
  }

  if (cfg_.bytes_to_send > 0 && stats_.bytes_acked >= cfg_.bytes_to_send &&
      stats_.completed_at < 0) {
    stats_.completed_at = sim_.now();
    if (on_complete_) on_complete_();
  }
  try_send();
}

void TcpSource::handle_dup_ack() {
  ++dup_acks_;
  if (in_recovery_) {
    if (cfg_.use_sack) {
      recovery_send();
    } else {
      recovery_inflation_ += cfg_.mss;  // window inflation per extra dupack
      try_send();
    }
    return;
  }
  // Limited transmit (RFC 3042): the first two duplicate ACKs release one
  // new segment each, keeping the ACK clock alive for small windows.
  if (dup_acks_ <= 2) {
    const std::uint64_t remaining = app_bytes_remaining();
    if (remaining > 0 && flight_bytes() + cfg_.mss <= peer_rwnd_) {
      const auto len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, cfg_.mss));
      emit_segment(snd_nxt_, len, /*retransmission=*/false);
      snd_nxt_ += len;
      stats_.bytes_sent += len;
    }
  }
  // Trigger: the classic 3 duplicate ACKs, lowered when few segments are
  // outstanding (early retransmit, RFC 5827), or — with SACK — more than
  // two segments' worth of SACKed data above the cumulative ACK (RFC 6675).
  const int threshold = std::min(
      3, std::max(1, static_cast<int>(scoreboard_.size()) - 1));
  const bool sack_trigger =
      cfg_.use_sack && scoreboard_.highest_sacked() > snd_una_ + 2ull * cfg_.mss;
  if (dup_acks_ >= threshold || sack_trigger) {
    enter_recovery();
  }
}

TcpSource::Stats TcpSource::stats() const {
  Stats s = stats_;
  s.min_rtt = stats_.min_rtt;
  s.smoothed_rtt = rto_.srtt();
  s.cwnd_bytes = cc_->cwnd_bytes();
  s.ssthresh_bytes = cc_->ssthresh_bytes();
  s.time_congestion_limited =
      limit_accum_[static_cast<int>(SendLimit::kCongestion)];
  s.time_receiver_limited =
      limit_accum_[static_cast<int>(SendLimit::kReceiver)];
  s.time_application_limited =
      limit_accum_[static_cast<int>(SendLimit::kApplication)];
  // Include the still-open interval.
  if (state_ == State::kEstablished) {
    switch (current_limit_) {
      case SendLimit::kCongestion:
        s.time_congestion_limited += sim_.now() - limit_since_;
        break;
      case SendLimit::kReceiver:
        s.time_receiver_limited += sim_.now() - limit_since_;
        break;
      case SendLimit::kApplication:
        s.time_application_limited += sim_.now() - limit_since_;
        break;
    }
  }
  return s;
}

}  // namespace ccsig::tcp

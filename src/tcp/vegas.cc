#include "tcp/vegas.h"

#include <algorithm>

namespace ccsig::tcp {

VegasCongestionControl::VegasCongestionControl(std::uint32_t mss)
    : mss_(mss),
      cwnd_(static_cast<std::uint64_t>(mss) * kInitialWindowSegments) {}

void VegasCongestionControl::end_round() {
  if (round_samples_ > 0 && base_rtt_ > 0 && round_min_rtt_ > 0) {
    // Backlog estimate in segments: diff = cwnd * (rtt - baseRTT) / rtt,
    // i.e. (expected - actual) * baseRTT from the paper, expressed in
    // bytes and divided by MSS.
    const double rtt_s = sim::to_seconds(round_min_rtt_);
    const double base_s = sim::to_seconds(base_rtt_);
    const double diff_seg = static_cast<double>(cwnd_) / mss_ *
                            (rtt_s - base_s) / rtt_s;
    const std::uint64_t floor = 2ull * mss_;
    if (in_slow_start()) {
      if (diff_seg > kGamma) {
        // The queue is building before any loss: stop exponential growth
        // and settle at the current operating point.
        ssthresh_ = cwnd_;
      }
    } else if (diff_seg < kAlpha) {
      cwnd_ += mss_;  // too little backlog: the path has spare capacity
    } else if (diff_seg > kBeta) {
      cwnd_ = std::max(cwnd_ - mss_, floor);  // draining our own queue
      // Keep ssthresh at or below the shrunk window so a delay-based
      // decrease never re-opens slow start (Linux tcp_vegas clamps the
      // same way); otherwise the next round would double the window the
      // backlog estimate just asked us to shrink.
      ssthresh_ = std::min(ssthresh_, cwnd_);
    }
  }
  round_length_ = cwnd_;
  round_samples_ = 0;
  round_min_rtt_ = 0;
}

void VegasCongestionControl::on_ack(std::uint64_t acked_bytes,
                                    sim::Duration rtt, sim::Time /*now*/) {
  if (rtt > 0) {
    if (base_rtt_ == 0 || rtt < base_rtt_) base_rtt_ = rtt;
    if (round_samples_ == 0 || rtt < round_min_rtt_) round_min_rtt_ = rtt;
    ++round_samples_;
  }
  if (in_slow_start()) {
    cwnd_ += std::min<std::uint64_t>(acked_bytes, mss_);
  }
  if (round_length_ == 0) round_length_ = cwnd_;
  round_acked_ += acked_bytes;
  if (round_acked_ >= round_length_) {
    round_acked_ -= round_length_;
    end_round();
  }
}

void VegasCongestionControl::on_loss(LossKind kind, std::uint64_t flight_bytes,
                                     sim::Time /*now*/) {
  // Vegas falls back to Reno semantics on actual loss.
  const std::uint64_t floor = 2ull * mss_;
  ssthresh_ = std::max(flight_bytes / 2, floor);
  if (kind == LossKind::kTimeout) {
    cwnd_ = mss_;
    round_acked_ = 0;
    round_length_ = 0;
    round_samples_ = 0;
    round_min_rtt_ = 0;
  } else {
    cwnd_ = ssthresh_;
  }
}

void VegasCongestionControl::exit_recovery(sim::Time /*now*/) {
  cwnd_ = ssthresh_;
  round_length_ = cwnd_;
  round_acked_ = 0;
}

void VegasCongestionControl::after_idle(sim::Duration /*idle*/,
                                        sim::Time /*now*/) {
  // Restart from the initial window; baseRTT survives (a path property,
  // not a congestion estimate).
  cwnd_ = std::min<std::uint64_t>(
      cwnd_, static_cast<std::uint64_t>(mss_) * kInitialWindowSegments);
  round_acked_ = 0;
  round_length_ = 0;
  round_samples_ = 0;
  round_min_rtt_ = 0;
}

std::unique_ptr<CongestionControl> make_vegas(std::uint32_t mss) {
  return std::make_unique<VegasCongestionControl>(mss);
}

}  // namespace ccsig::tcp

#include "tcp/tcp_sink.h"

#include <algorithm>

namespace ccsig::tcp {

TcpSink::TcpSink(sim::Simulator& sim, sim::Node* local, Config cfg)
    : sim_(sim), local_(local), cfg_(std::move(cfg)),
      life_(sim.lease_lifetime()) {
  local_->register_endpoint(cfg_.data_key.dst_port,
                            [this](const sim::Packet& p) { on_packet(p); });
}

TcpSink::~TcpSink() {
  local_->unregister_endpoint(cfg_.data_key.dst_port);
  // Invalidates the pending delayed-ACK closure: sinks of completed fetches
  // are destroyed while the timer is still in flight.
  sim_.release_lifetime(life_);
}

void TcpSink::on_packet(const sim::Packet& p) {
  if (p.flags.syn) {
    // Reply SYN-ACK; the peer's SYN consumes wire sequence 0, so the next
    // expected byte is 1.
    rcv_nxt_ = 1;
    sim::Packet synack;
    synack.key = cfg_.data_key.reversed();
    synack.seq = 0;
    synack.ack = 1;
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.window = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.rwnd_bytes, 0xFFFFFFFFu));
    local_->send(synack);
    return;
  }
  if (p.payload_bytes > 0) {
    on_data(p);
    return;
  }
  if (p.flags.fin) {
    ++rcv_nxt_;
    send_ack();
  }
  // Pure ACKs from the peer (handshake completion) need no action.
}

void TcpSink::on_data(const sim::Packet& p) {
  ++stats_.segments_received;
  if (stats_.first_data_at < 0) stats_.first_data_at = sim_.now();
  stats_.last_data_at = sim_.now();

  const std::uint64_t seg_end = p.seq + p.payload_bytes;
  if (seg_end <= rcv_nxt_) {
    // Entirely duplicate (spurious retransmission): re-ACK immediately so
    // the sender's state converges.
    ++stats_.duplicate_segments;
    send_ack();
    return;
  }
  if (p.seq > rcv_nxt_) {
    // A hole precedes this segment: stash it and emit an immediate
    // duplicate ACK (RFC 5681 §3.2).
    ++stats_.out_of_order_segments;
    auto [it, inserted] = ooo_pool_.insert(ooo_, p.seq, seg_end);
    if (!inserted && seg_end > it->second) it->second = seg_end;
    send_ack();
    return;
  }
  // In-order (possibly overlapping) delivery.
  stats_.bytes_received += seg_end - rcv_nxt_;
  rcv_nxt_ = seg_end;
  // Absorb any out-of-order runs this unlocked.
  for (auto it = ooo_.begin(); it != ooo_.end() && it->first <= rcv_nxt_;) {
    if (it->second > rcv_nxt_) {
      stats_.bytes_received += it->second - rcv_nxt_;
      rcv_nxt_ = it->second;
    }
    it = ooo_pool_.erase(ooo_, it);
  }

  if (!ooo_.empty()) {
    // Filling part of a hole: ACK immediately to speed recovery.
    send_ack();
    return;
  }
  if (quickack_sent_ < cfg_.quickack_segments) {
    ++quickack_sent_;
    send_ack();
    return;
  }
  if (++unacked_segments_ >= cfg_.segments_per_ack) {
    send_ack();
  } else {
    schedule_delayed_ack();
  }
}

void TcpSink::send_ack() {
  unacked_segments_ = 0;
  delayed_ack_pending_ = false;
  ++delack_generation_;
  sim::Packet ack;
  ack.key = cfg_.data_key.reversed();
  ack.seq = 1;  // we send no data; our SYN-ACK consumed sequence 0
  ack.ack = rcv_nxt_;
  ack.flags.ack = true;
  if (cfg_.enable_sack && !ooo_.empty()) {
    // Up to 3 SACK blocks, newest-touched range first (RFC 2018). The
    // newest range is the one containing the most recently arrived data;
    // report the highest ranges, which is where recent arrivals live.
    for (auto it = ooo_.rbegin();
         it != ooo_.rend() && !ack.sack_blocks.full(); ++it) {
      ack.sack_blocks.push_back(it->first, it->second);
    }
  }
  ack.window = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cfg_.rwnd_bytes, 0xFFFFFFFFu));
  local_->send(ack);
  ++stats_.acks_sent;
}

void TcpSink::schedule_delayed_ack() {
  if (delayed_ack_pending_) return;
  delayed_ack_pending_ = true;
  const std::uint64_t gen = ++delack_generation_;
  // The lease check must come before reading any member: the sink may have
  // been destroyed (and its memory recycled) by the time the timer fires.
  sim::Simulator* const sim = &sim_;
  sim_.schedule_in(cfg_.delayed_ack_timeout, [this, sim, life = life_, gen] {
    if (!sim->alive(life)) return;
    if (delayed_ack_pending_ && gen == delack_generation_) send_ack();
  });
}

}  // namespace ccsig::tcp

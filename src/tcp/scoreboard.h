// The SACK scoreboard (RFC 6675): per-segment send/SACK/loss state and the
// incremental sums that make pipe and retransmit selection O(1)-amortized.
//
// Extracted from TcpSource so the transport core reads as the TCP state
// machine (handshake, ACK clock, recovery episodes, RTO) while everything
// keyed by sequence ranges — which segments are outstanding, SACKed,
// presumed lost, or already repaired — lives here. The class is pure
// bookkeeping: it never sends, schedules, or touches congestion control.
#pragma once

#include <cstdint>
#include <map>

#include "sim/packet.h"
#include "sim/time.h"
#include "tcp/node_pool.h"

namespace ccsig::tcp {

class SackScoreboard {
 public:
  struct Segment {
    std::uint32_t len = 0;
    sim::Time sent_at = 0;
    bool retransmitted = false;
    bool sacked = false;    // covered by a SACK block
    bool lost_rtx = false;  // presumed lost and already retransmitted
  };
  using SegmentMap = std::map<std::uint64_t, Segment>;

  /// Records a newly sent segment at `seq`.
  void insert(std::uint64_t seq, std::uint32_t len, sim::Time now);

  /// Marks the segment at `seq` retransmitted now (no-op if unknown —
  /// the head boundary can shift under partial ACKs).
  void mark_retransmitted(std::uint64_t seq, sim::Time now);

  /// The segment to retransmit on RTO or NewReno partial ACK: the one at
  /// `snd_una`, or the earliest outstanding when the head boundary moved.
  /// Returns false when nothing is outstanding.
  bool head_for_retransmit(std::uint64_t snd_una, std::uint64_t* seq,
                           std::uint32_t* len) const;

  /// Applies the packet's SACK blocks to the scoreboard.
  void apply_sack(const sim::Packet& p);

  /// RFC 6675 NextSeg() step 1: finds the first presumed-lost segment whose
  /// retransmission is not in flight, marks it as retransmitted-for-loss,
  /// and returns its range. Returns false when no hole remains.
  bool next_lost_retransmit(std::uint64_t* seq, std::uint32_t* len);

  /// A cumulative ACK advanced to `ack`: drops covered segments (splitting
  /// a straddled head) and returns the freshest Karn-valid RTT sample
  /// (-1 when every covered segment was retransmitted).
  sim::Duration ack_advance(std::uint64_t ack, sim::Time now);

  /// An RTO fired: every presumed-lost segment becomes eligible for
  /// retransmission again. SACK marks stay (the receiver holds that data);
  /// the loss sum and the recovery cursor are rebuilt from scratch.
  void on_rto();

  /// RFC 6675 pipe: bytes believed in the network, from the incrementally
  /// maintained sums (`flight` is snd_nxt - snd_una, owned by the sender).
  std::uint64_t pipe_bytes(std::uint64_t flight) const;

  std::uint64_t highest_sacked() const { return highest_sacked_; }
  std::size_t size() const { return in_flight_.size(); }
  bool empty() const { return in_flight_.empty(); }

 private:
  void raise_highest_sacked(std::uint64_t new_end);

  SegmentMap in_flight_;
  MapNodePool<SegmentMap> segment_pool_;  // recycles scoreboard nodes

  std::uint64_t highest_sacked_ = 0;  // seq_end of highest SACKed byte

  // SACK-recovery accelerators. Both are pure strength reductions: the
  // decisions (and therefore every emitted packet) are identical to the
  // naive full scans, which made loss recovery quadratic in the flight
  // size and dominated the simulator's profile.
  //
  // Scoreboard position below which no recovery retransmission candidate
  // remains: every earlier segment is SACKed or already retransmitted, and
  // both marks are sticky until an RTO (which resets the cursor).
  std::uint64_t rtx_cursor_ = 0;
  // Running sums over the scoreboard, kept exact at every transition so
  // the RFC 6675 pipe is O(1) instead of a full scan per recovery ACK:
  // pipe = flight - sacked - presumed-lost, where presumed-lost counts
  // unSACKed segments below highest_sacked_ whose retransmission is not
  // in flight.
  std::uint64_t sacked_bytes_ = 0;
  std::uint64_t lost_unrtx_bytes_ = 0;
  // Recently processed SACK spans. Receivers repeat the same blocks on
  // every duplicate ACK and extend one run at a time, so block scans
  // resume where the previous scan stopped instead of re-walking the
  // (already marked) run from its start. `end` is the resume position:
  // every segment fully inside [start, end) is marked sacked.
  struct SackSpan {
    std::uint64_t start = 0;
    std::uint64_t end = 0;  // 0 = empty entry
  };
  static constexpr int kSackSpanCacheSize = 4;
  SackSpan sack_spans_[kSackSpanCacheSize];
  int sack_span_victim_ = 0;  // round-robin replacement
};

}  // namespace ccsig::tcp

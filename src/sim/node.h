// A host or router: demultiplexes local traffic to endpoints, forwards the
// rest along routes, and exposes tcpdump-style taps.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/link.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace ccsig::sim {

class Node {
 public:
  Node(Simulator& sim, Address address, std::string name);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Address address() const { return address_; }
  const std::string& name() const { return name_; }

  /// Routes packets destined to `dst` out of `out`. `out` must outlive the
  /// node.
  void add_route(Address dst, Link* out);

  /// Fallback route for destinations without an explicit entry.
  void set_default_route(Link* out) { default_route_ = out; }

  /// Registers a local consumer for packets addressed to (address(), port).
  void register_endpoint(Port port, PacketHandler handler);
  void unregister_endpoint(Port port);

  /// Attaches a tcpdump-style observer; sees every packet this node sends or
  /// receives. `tap` must outlive the node.
  void add_tap(TraceSink* tap) { taps_.push_back(tap); }

  /// Detaches a tap previously added with add_tap (no-op if absent).
  void remove_tap(TraceSink* tap) {
    std::erase(taps_, tap);
  }

  /// Entry point for packets delivered by incoming links.
  void receive(const Packet& p);

  /// Entry point for locally generated packets.
  void send(Packet p);

  std::uint64_t forwarded_packets() const { return forwarded_; }
  std::uint64_t delivered_packets() const { return delivered_; }
  std::uint64_t undeliverable_packets() const { return undeliverable_; }

 private:
  void tap_packet(const Packet& p);
  void forward(const Packet& p);

  Simulator& sim_;
  Address address_;
  std::string name_;
  std::unordered_map<Address, Link*> routes_;
  Link* default_route_ = nullptr;
  std::unordered_map<Port, PacketHandler> endpoints_;
  std::vector<TraceSink*> taps_;

  std::uint64_t forwarded_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t undeliverable_ = 0;
};

}  // namespace ccsig::sim

// Convenience owner for a whole simulated network: the simulator, nodes,
// and the links wiring them together.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/link.h"
#include "sim/node.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace ccsig::sim {

/// Builds and owns a topology. Nodes are created with sequential addresses
/// starting at 1; links are full-duplex pairs of `Link`s wired into the
/// peer node's receive path.
class Network {
 public:
  explicit Network(std::uint64_t seed) : rng_(seed) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }
  Rng& rng() { return rng_; }

  /// Creates a node; the returned pointer is stable for the Network's life.
  Node* add_node(const std::string& name);

  Node* node(const std::string& name) const;

  /// Connects `a` and `b` with a full-duplex link; `ab` shapes a→b traffic
  /// and `ba` shapes b→a traffic. Also installs routes for each other's
  /// address. Returns the two directed links.
  struct Duplex {
    Link* ab;
    Link* ba;
  };
  Duplex connect(Node* a, Node* b, Link::Config ab, Link::Config ba);

  /// Symmetric convenience overload.
  Duplex connect(Node* a, Node* b, const Link::Config& both);

  /// Installs a route on every node lacking one so that packets for `dst`
  /// eventually arrive (simple static routing helper for linear topologies).
  void add_route(Node* at, Node* dst, Link* out) {
    at->add_route(dst->address(), out);
  }

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

 private:
  Simulator sim_;
  Rng rng_;
  Address next_address_ = 1;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<std::string, Node*> by_name_;
};

}  // namespace ccsig::sim

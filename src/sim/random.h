// Deterministic random number generation for the simulator.
//
// Every stochastic component (link loss, jitter, traffic generators, dataset
// campaigns) owns an `Rng` derived from a single campaign seed, so a seed
// fully reproduces an experiment.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ccsig::sim {

/// SplitMix64 — used to derive independent child seeds from a parent seed.
/// (Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.)
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Seedable RNG with the distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_state_(seed) {}

  /// Derives an independent child generator; successive calls yield
  /// different, deterministic children.
  Rng fork() { return Rng(splitmix64(seed_state_)); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normally distributed value.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// its weight.
  std::size_t weighted_index(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Raw 64-bit draw (e.g. to seed a child component by value).
  std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_state_;
};

}  // namespace ccsig::sim

#include "sim/node.h"

#include <utility>

namespace ccsig::sim {

Node::Node(Simulator& sim, Address address, std::string name)
    : sim_(sim), address_(address), name_(std::move(name)) {}

void Node::add_route(Address dst, Link* out) { routes_[dst] = out; }

void Node::register_endpoint(Port port, PacketHandler handler) {
  endpoints_[port] = std::move(handler);
}

void Node::unregister_endpoint(Port port) { endpoints_.erase(port); }

void Node::tap_packet(const Packet& p) {
  for (TraceSink* tap : taps_) tap->on_packet(sim_.now(), p);
}

void Node::receive(const Packet& p) {
  tap_packet(p);
  if (p.key.dst_addr == address_) {
    auto it = endpoints_.find(p.key.dst_port);
    if (it == endpoints_.end()) {
      ++undeliverable_;
      return;
    }
    ++delivered_;
    it->second(p);
    return;
  }
  ++forwarded_;
  forward(p);
}

void Node::send(Packet p) {
  p.sent_at = sim_.now();
  tap_packet(p);
  if (p.key.dst_addr == address_) {
    // Loopback delivery (used by some tests).
    auto it = endpoints_.find(p.key.dst_port);
    if (it != endpoints_.end()) {
      ++delivered_;
      it->second(p);
    } else {
      ++undeliverable_;
    }
    return;
  }
  forward(p);
}

void Node::forward(const Packet& p) {
  auto it = routes_.find(p.key.dst_addr);
  Link* out = it != routes_.end() ? it->second : default_route_;
  if (out == nullptr) {
    ++undeliverable_;
    return;
  }
  out->send(p);
}

}  // namespace ccsig::sim

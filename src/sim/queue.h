// Drop-tail FIFO byte queue used at the head of every shaped link.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.h"

namespace ccsig::sim {

/// Unbounded FIFO of recycled `Packet` slots. Storage is a power-of-two
/// ring that grows geometrically to the high-water mark and is never
/// shrunk, so steady-state push/pop performs no allocation — packets are
/// memcpy'd into and out of pooled slots.
class PacketRing {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  const Packet& front() const { return slots_[head_]; }

  void push(const Packet& p) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & (slots_.size() - 1)] = p;
    ++count_;
  }

  Packet pop() {
    Packet p = slots_[head_];
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
    return p;
  }

  /// Current slot-pool size (tests assert it stops growing in steady state).
  std::size_t slot_capacity() const { return slots_.size(); }

 private:
  void grow() {
    // Double the ring and linearize the live span to the front. Power-of-two
    // sizes keep the index math a mask.
    std::vector<Packet> next(slots_.empty() ? 16 : slots_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = slots_[(head_ + i) & (slots_.size() - 1)];
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<Packet> slots_;  // power-of-two ring, grows to high-water mark
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Byte-limited drop-tail queue. Capacity is expressed in bytes because the
/// paper sizes buffers in milliseconds at the link rate and we convert.
class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Attempts to enqueue. Returns false (and counts a drop) when the packet
  /// does not fit.
  bool push(const Packet& p) {
    if (occupancy_bytes_ + p.wire_bytes() > capacity_bytes_) {
      ++drops_;
      dropped_bytes_ += p.wire_bytes();
      return false;
    }
    occupancy_bytes_ += p.wire_bytes();
    if (occupancy_bytes_ > max_occupancy_bytes_) {
      max_occupancy_bytes_ = occupancy_bytes_;
    }
    ring_.push(p);
    return true;
  }

  bool empty() const { return ring_.empty(); }
  std::size_t size() const { return ring_.size(); }

  const Packet& front() const { return ring_.front(); }

  Packet pop() {
    Packet p = ring_.pop();
    occupancy_bytes_ -= p.wire_bytes();
    return p;
  }

  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t occupancy_bytes() const { return occupancy_bytes_; }
  std::size_t max_occupancy_bytes() const { return max_occupancy_bytes_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }

  /// Current slot-pool size (tests assert it stops growing in steady state).
  std::size_t slot_capacity() const { return ring_.slot_capacity(); }

 private:
  std::size_t capacity_bytes_;
  std::size_t occupancy_bytes_ = 0;
  std::size_t max_occupancy_bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  PacketRing ring_;
};

}  // namespace ccsig::sim

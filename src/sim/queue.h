// Drop-tail FIFO byte queue used at the head of every shaped link.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/packet.h"

namespace ccsig::sim {

/// Byte-limited drop-tail queue. Capacity is expressed in bytes because the
/// paper sizes buffers in milliseconds at the link rate and we convert.
class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Attempts to enqueue. Returns false (and counts a drop) when the packet
  /// does not fit.
  bool push(Packet p) {
    if (occupancy_bytes_ + p.wire_bytes() > capacity_bytes_) {
      ++drops_;
      dropped_bytes_ += p.wire_bytes();
      return false;
    }
    occupancy_bytes_ += p.wire_bytes();
    if (occupancy_bytes_ > max_occupancy_bytes_) {
      max_occupancy_bytes_ = occupancy_bytes_;
    }
    items_.push_back(std::move(p));
    return true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  const Packet& front() const { return items_.front(); }

  Packet pop() {
    Packet p = std::move(items_.front());
    items_.pop_front();
    occupancy_bytes_ -= p.wire_bytes();
    return p;
  }

  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t occupancy_bytes() const { return occupancy_bytes_; }
  std::size_t max_occupancy_bytes() const { return max_occupancy_bytes_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  std::size_t capacity_bytes_;
  std::size_t occupancy_bytes_ = 0;
  std::size_t max_occupancy_bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::deque<Packet> items_;
};

}  // namespace ccsig::sim

// The packet model shared by the simulator, the TCP stack, and the capture
// substrate. Payload bytes are counted, not materialized.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace ccsig::sim {

/// Host/router address. Each simulated host owns exactly one address.
using Address = std::uint32_t;

/// TCP-style port number.
using Port = std::uint16_t;

/// Connection 4-tuple. Identifies a unidirectional packet stream's owner
/// connection; the reverse direction has src/dst swapped.
struct FlowKey {
  Address src_addr = 0;
  Address dst_addr = 0;
  Port src_port = 0;
  Port dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// The same connection seen from the other direction.
  FlowKey reversed() const {
    return FlowKey{dst_addr, src_addr, dst_port, src_port};
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t a = (std::uint64_t(k.src_addr) << 32) | k.dst_addr;
    std::uint64_t b = (std::uint64_t(k.src_port) << 16) | k.dst_port;
    std::uint64_t h = a * 0x9E3779B97F4A7C15ULL ^ (b + 0x632BE59BD9B4E019ULL);
    h ^= h >> 29;
    return static_cast<std::size_t>(h * 0xBF58476D1CE4E5B9ULL);
  }
};

/// TCP header flags the simulation models.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

inline constexpr std::size_t kTcpIpHeaderBytes = 40;  // IPv4 (20) + TCP (20)

/// A simulated TCP/IP packet. Sequence/ack numbers are absolute 64-bit byte
/// offsets from the start of the stream; the pcap codec wraps them to 32 bits
/// on the wire and the reader unwraps them again.
struct Packet {
  FlowKey key;
  std::uint64_t seq = 0;          // first payload byte carried (or ISN for SYN)
  std::uint64_t ack = 0;          // next byte expected from the peer
  std::uint32_t payload_bytes = 0;
  std::uint32_t window = 0;       // advertised receive window (0 = unset)
  /// SACK option blocks [start, end) in stream offsets; at most 3, newest
  /// first (RFC 2018). Empty on data packets and plain cumulative ACKs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack_blocks;
  TcpFlags flags;
  Time sent_at = 0;               // stamped by the sending endpoint
  std::uint64_t id = 0;           // unique per transmission (retx gets new id)

  /// Bytes occupying link capacity and buffers (headers + payload).
  std::size_t wire_bytes() const { return kTcpIpHeaderBytes + payload_bytes; }
};

/// Anything that can absorb a delivered packet.
using PacketHandler = std::function<void(const Packet&)>;

}  // namespace ccsig::sim

// The packet model shared by the simulator, the TCP stack, and the capture
// substrate. Payload bytes are counted, not materialized.
//
// `Packet` is deliberately trivially copyable: packets are copied into link
// queues, scheduled-event captures, and trace records on every hop, so the
// whole hot path stays memcpy-cheap and allocation-free. SACK blocks live in
// a fixed-capacity inline array (RFC 2018 caps a SACK option at 3 blocks
// alongside timestamps) instead of a heap-backed vector.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "sim/time.h"

namespace ccsig::sim {

/// Host/router address. Each simulated host owns exactly one address.
using Address = std::uint32_t;

/// TCP-style port number.
using Port = std::uint16_t;

/// Connection 4-tuple. Identifies a unidirectional packet stream's owner
/// connection; the reverse direction has src/dst swapped.
struct FlowKey {
  Address src_addr = 0;
  Address dst_addr = 0;
  Port src_port = 0;
  Port dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// The same connection seen from the other direction.
  FlowKey reversed() const {
    return FlowKey{dst_addr, src_addr, dst_port, src_port};
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t a = (std::uint64_t(k.src_addr) << 32) | k.dst_addr;
    std::uint64_t b = (std::uint64_t(k.src_port) << 16) | k.dst_port;
    std::uint64_t h = a * 0x9E3779B97F4A7C15ULL ^ (b + 0x632BE59BD9B4E019ULL);
    h ^= h >> 29;
    return static_cast<std::size_t>(h * 0xBF58476D1CE4E5B9ULL);
  }
};

/// TCP header flags the simulation models.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

inline constexpr std::size_t kTcpIpHeaderBytes = 40;  // IPv4 (20) + TCP (20)

/// One SACK option block [start, end) in stream offsets.
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;

  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

/// RFC 2018: the 40-byte TCP option budget fits at most 3 SACK blocks when
/// the timestamp option is in use, which is how every real stack runs.
inline constexpr std::size_t kMaxSackBlocks = 3;

/// Fixed-capacity inline array of SACK blocks, newest first. Replaces a
/// heap-backed vector so `Packet` stays trivially copyable.
class SackBlocks {
 public:
  using value_type = SackBlock;
  using const_iterator = const SackBlock*;

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == kMaxSackBlocks; }
  std::size_t size() const { return size_; }
  static constexpr std::size_t capacity() { return kMaxSackBlocks; }

  void clear() { size_ = 0; }

  /// Appends a block. Precondition: !full() — callers gate on full().
  void push_back(std::uint64_t start, std::uint64_t end) {
    assert(!full());
    blocks_[size_++] = SackBlock{start, end};
  }

  const SackBlock& operator[](std::size_t i) const {
    assert(i < size_);
    return blocks_[i];
  }

  const_iterator begin() const { return blocks_; }
  const_iterator end() const { return blocks_ + size_; }

  friend bool operator==(const SackBlocks& a, const SackBlocks& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.blocks_[i] == b.blocks_[i])) return false;
    }
    return true;
  }

 private:
  SackBlock blocks_[kMaxSackBlocks];
  std::uint8_t size_ = 0;
};

/// A simulated TCP/IP packet. Sequence/ack numbers are absolute 64-bit byte
/// offsets from the start of the stream; the pcap codec wraps them to 32 bits
/// on the wire and the reader unwraps them again.
struct Packet {
  FlowKey key;
  std::uint64_t seq = 0;          // first payload byte carried (or ISN for SYN)
  std::uint64_t ack = 0;          // next byte expected from the peer
  std::uint32_t payload_bytes = 0;
  std::uint32_t window = 0;       // advertised receive window (0 = unset)
  /// SACK option blocks [start, end) in stream offsets; at most 3, newest
  /// first (RFC 2018). Empty on data packets and plain cumulative ACKs.
  SackBlocks sack_blocks;
  TcpFlags flags;
  Time sent_at = 0;               // stamped by the sending endpoint
  std::uint64_t id = 0;           // unique per transmission (retx gets new id)

  /// Bytes occupying link capacity and buffers (headers + payload).
  std::size_t wire_bytes() const { return kTcpIpHeaderBytes + payload_bytes; }
};

// The hot path copies packets by value everywhere (queues, event captures,
// handlers); this is only cheap because the copy is a memcpy.
static_assert(std::is_trivially_copyable_v<Packet>);

/// Anything that can absorb a delivered packet.
using PacketHandler = std::function<void(const Packet&)>;

}  // namespace ccsig::sim

// Unidirectional shaped link: token-bucket rate shaping (like `tc tbf`),
// drop-tail buffer, propagation delay, jitter, and i.i.d. random loss
// (like `tc netem`). A full-duplex physical link is two `Link`s.
#pragma once

#include <cstdint>
#include <string>

#include "sim/packet.h"
#include "sim/queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ccsig::sim {

/// Converts a buffer depth expressed in milliseconds at a given rate into
/// bytes, as the paper specifies buffer sizes ("a 100 ms buffer").
std::size_t buffer_bytes_for(double rate_bps, double buffer_ms);

class Link {
 public:
  struct Config {
    std::string name = "link";
    double rate_bps = 1e9;          // shaped rate
    Duration prop_delay = 0;        // one-way propagation delay
    Duration jitter = 0;            // +/- uniform jitter added to delay
    double loss_rate = 0.0;         // i.i.d. drop probability on arrival
    std::size_t buffer_bytes = 256 * 1024;  // drop-tail queue capacity
    std::size_t burst_bytes = 5 * 1024;     // token-bucket burst (tc default)
  };

  struct Stats {
    std::uint64_t arrived_packets = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t random_losses = 0;
    std::uint64_t buffer_drops = 0;
    std::size_t max_queue_bytes = 0;
  };

  Link(Simulator& sim, Config cfg, Rng rng);

  /// Sets the downstream consumer (a Node's receive entry, or an endpoint).
  void set_receiver(PacketHandler receiver) { receiver_ = std::move(receiver); }

  /// Entry point: a packet arrives at the head of the link.
  void send(const Packet& p);

  /// Instantaneous queue occupancy in bytes (for tests/instrumentation).
  std::size_t queue_bytes() const { return queue_.occupancy_bytes(); }

  /// Expected queueing delay of a packet entering now, in nanoseconds.
  Duration queueing_delay_estimate() const;

  Stats stats() const;
  const Config& config() const { return cfg_; }

 private:
  void pump();  // tries to transmit the head-of-line packet
  // Accrues tokens up to max(burst, cap_floor); the floor guarantees the
  // head-of-line packet can eventually depart.
  void refill_tokens(std::size_t cap_floor);
  Duration time_until_tokens(std::size_t bytes) const;
  // Applies propagation delay + jitter, FIFO. Takes the packet by value:
  // the argument is the queue's popped slot and Packet copies are memcpys.
  void deliver(Packet p);
  // Fires when the oldest in-flight packet reaches the far end.
  void deliver_due();

  Simulator& sim_;
  Config cfg_;
  Rng rng_;
  DropTailQueue queue_;
  PacketRing in_flight_;  // packets between departure and delivery
  PacketHandler receiver_;

  double tokens_bytes_ = 0;    // current token-bucket fill
  Time last_refill_ = 0;
  bool pump_scheduled_ = false;
  Time last_delivery_time_ = 0;  // enforces FIFO delivery despite jitter

  std::uint64_t arrived_packets_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t random_losses_ = 0;
};

}  // namespace ccsig::sim

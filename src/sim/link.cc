#include "sim/link.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace ccsig::sim {

namespace {

// Process-wide link counters, registered once. Recording is one relaxed
// atomic add per packet — allocation-free, enforced by the bench harness.
struct LinkMetrics {
  obs::Counter packets_arrived;
  obs::Counter packets_delivered;
  obs::Counter bytes_delivered;
  obs::Counter random_losses;
  obs::Counter tail_drops;
};

LinkMetrics& link_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static LinkMetrics m{reg.counter("sim.link.packets_arrived"),
                       reg.counter("sim.link.packets_delivered"),
                       reg.counter("sim.link.bytes_delivered"),
                       reg.counter("sim.link.random_losses"),
                       reg.counter("sim.link.tail_drops")};
  return m;
}

}  // namespace

std::size_t buffer_bytes_for(double rate_bps, double buffer_ms) {
  return static_cast<std::size_t>(rate_bps / 8.0 * buffer_ms / 1000.0);
}

Link::Link(Simulator& sim, Config cfg, Rng rng)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rng_(rng),
      queue_(cfg_.buffer_bytes),
      tokens_bytes_(static_cast<double>(cfg_.burst_bytes)) {}

void Link::send(const Packet& p) {
  ++arrived_packets_;
  link_metrics().packets_arrived.inc();
  if (cfg_.loss_rate > 0.0 && rng_.chance(cfg_.loss_rate)) {
    ++random_losses_;
    link_metrics().random_losses.inc();
    return;
  }
  if (!queue_.push(p)) {  // drop-tail
    link_metrics().tail_drops.inc();
    return;
  }
  pump();
}

void Link::refill_tokens(std::size_t cap_floor) {
  // The bucket must be able to hold at least one head-of-line packet, or a
  // burst size below the MTU would deadlock the link (tc tbf has the same
  // burst >= MTU requirement; we are more forgiving).
  const double cap =
      static_cast<double>(std::max(cfg_.burst_bytes, cap_floor));
  const Time now = sim_.now();
  if (now > last_refill_) {
    const double elapsed_s = to_seconds(now - last_refill_);
    tokens_bytes_ =
        std::min(cap, tokens_bytes_ + elapsed_s * cfg_.rate_bps / 8.0);
    last_refill_ = now;
  }
}

Duration Link::time_until_tokens(std::size_t bytes) const {
  const double deficit = static_cast<double>(bytes) - tokens_bytes_;
  if (deficit <= 0) return 0;
  return static_cast<Duration>(
      std::ceil(deficit * 8.0 / cfg_.rate_bps * static_cast<double>(kSecond)));
}

void Link::pump() {
  if (pump_scheduled_) return;
  while (!queue_.empty()) {
    const std::size_t need = queue_.front().wire_bytes();
    refill_tokens(need);
    const Duration wait = time_until_tokens(need);
    if (wait > 0) {
      pump_scheduled_ = true;
      sim_.schedule_in(wait, [this] {
        pump_scheduled_ = false;
        pump();
      });
      return;
    }
    tokens_bytes_ -= static_cast<double>(need);
    deliver(queue_.pop());
  }
}

void Link::deliver(Packet p) {
  Duration delay = cfg_.prop_delay;
  if (cfg_.jitter > 0) {
    delay += static_cast<Duration>(rng_.uniform(
        -static_cast<double>(cfg_.jitter), static_cast<double>(cfg_.jitter)));
    if (delay < 0) delay = 0;
  }
  // FIFO: jitter never reorders packets within a link (matches a tbf+netem
  // qdisc chain, which stays in-order).
  Time due = sim_.now() + delay;
  if (due < last_delivery_time_) due = last_delivery_time_;
  last_delivery_time_ = due;

  ++delivered_packets_;
  delivered_bytes_ += p.wire_bytes();
  LinkMetrics& m = link_metrics();
  m.packets_delivered.inc();
  m.bytes_delivered.add(p.wire_bytes());
  // Deliveries are FIFO (due times are clamped monotone above, and the
  // event queue breaks time ties in schedule order), so the packet waits in
  // the link's pooled in-flight ring rather than riding inside the closure.
  // The event then captures only `this` — a pointer-sized inline event —
  // and per-packet delivery never allocates.
  in_flight_.push(p);
  sim_.schedule_at(due, [this] { deliver_due(); });
}

void Link::deliver_due() {
  // Copy out before invoking the receiver: the callback can re-enter this
  // link (a routing loop) and grow the ring under a live reference.
  const Packet p = in_flight_.pop();
  if (receiver_) receiver_(p);
}

Duration Link::queueing_delay_estimate() const {
  return static_cast<Duration>(static_cast<double>(queue_.occupancy_bytes()) *
                               8.0 / cfg_.rate_bps *
                               static_cast<double>(kSecond));
}

Link::Stats Link::stats() const {
  return Stats{arrived_packets_,        delivered_packets_, delivered_bytes_,
               random_losses_,          queue_.drops(),
               queue_.max_occupancy_bytes()};
}

}  // namespace ccsig::sim

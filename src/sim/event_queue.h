// Binary-heap event queue with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace ccsig::sim {

/// Priority queue of timed callbacks. Events at equal times fire in the
/// order they were scheduled (FIFO tie-break via a sequence number), which
/// keeps runs reproducible.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `t`.
  void schedule(Time t, Callback cb) {
    heap_.push(Event{t, next_seq_++, std::move(cb)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time() const { return heap_.top().time; }

  /// Removes and returns the earliest pending event's callback.
  /// Precondition: !empty().
  Callback pop() {
    // std::priority_queue::top() is const; the callback must be moved out,
    // which is safe because the element is popped immediately after.
    Callback cb = std::move(const_cast<Event&>(heap_.top()).callback);
    heap_.pop();
    return cb;
  }

  /// Total number of events ever scheduled (for micro-benchmarks/tests).
  std::uint64_t scheduled_count() const { return next_seq_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ccsig::sim

// Binary-heap event queue with deterministic tie-breaking and inline
// (allocation-free) storage for event callbacks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace ccsig::sim {

/// Move-only callable with small-buffer storage, sized for the simulator's
/// event captures. The common case — an object pointer plus a few scalars —
/// is stored inline in the event itself, so scheduling does not touch the
/// heap. Oversized or non-trivially-copyable closures fall back to a heap
/// allocation.
class EventFn {
 public:
  /// Inline capture budget. The simulator's hot-path captures are an object
  /// pointer plus at most a few scalars (`[this]`, `[this, gen]`); packets
  /// in flight live in their link's pooled ring, not in closures. 48 bytes
  /// leaves headroom for six words while keeping arena slots lean (72
  /// bytes, nine per cache-line pair). Events move via memcpy, so the
  /// inline path additionally requires the capture to be trivially
  /// copyable.
  static constexpr std::size_t kInlineBytes = 48;

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineBytes && alignof(F) <= alignof(void*) &&
      std::is_trivially_copyable_v<F>;

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_.inline_bytes)) Fn(std::forward<F>(f));
      if constexpr (sizeof(Fn) < 16) {
        // The move path copies a constant 16 bytes for small captures;
        // zero the tail so it never reads uninitialized storage.
        std::memset(storage_.inline_bytes + sizeof(Fn), 0, 16 - sizeof(Fn));
      }
      invoke_ = [](EventFn& e) {
        (*std::launder(reinterpret_cast<Fn*>(e.storage_.inline_bytes)))();
      };
      destroy_ = nullptr;  // trivially destructible by construction
      size_ = static_cast<std::uint8_t>(sizeof(Fn));
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      std::memset(storage_.inline_bytes + sizeof(void*), 0,
                  16 - sizeof(void*));  // see the small-capture memset above
      invoke_ = [](EventFn& e) { (*static_cast<Fn*>(e.storage_.heap))(); };
      destroy_ = [](EventFn& e) { delete static_cast<Fn*>(e.storage_.heap); };
      size_ = static_cast<std::uint8_t>(sizeof(void*));
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      if (destroy_) destroy_(*this);
      steal(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() {
    if (destroy_) destroy_(*this);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the callable lives on the heap (oversized/non-trivial
  /// capture). Exposed for the allocation-regression benches and tests.
  bool uses_heap() const { return destroy_ != nullptr; }

  void operator()() { invoke_(*this); }

 private:
  void steal(EventFn& other) noexcept {
    // Inline callables are trivially copyable, so a byte copy of the
    // storage is a valid move; for heap callables it transfers the pointer.
    // Two constant-size tiers (which the compiler inlines, unlike a
    // variable-length copy): 16 bytes covers the common small captures —
    // `[this]`, `[this, gen]`, heap pointers — and only wider captures pay
    // for the full buffer. Empty sources have nothing to copy
    // (uninitialized storage).
    if (other.invoke_) {
      if (other.size_ <= 16) {
        std::memcpy(&storage_, &other.storage_, 16);
      } else {
        std::memcpy(&storage_, &other.storage_, sizeof(storage_));
      }
    }
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    size_ = other.size_;
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  union Storage {
    alignas(void*) unsigned char inline_bytes[kInlineBytes];
    void* heap;
  };

  // Header first: for small captures the thunk pointers, size, and capture
  // bytes then share the slot's first cache line, so moving an event in
  // and out of the arena touches one line instead of three.
  void (*invoke_)(EventFn&) = nullptr;
  void (*destroy_)(EventFn&) = nullptr;
  std::uint8_t size_ = 0;  // bytes occupied in storage_ (capture or pointer)
  Storage storage_;
};

/// Priority queue of timed callbacks. Events at equal times fire in the
/// order they were scheduled (FIFO tie-break via a sequence number), which
/// keeps runs reproducible.
///
/// Callbacks live in a slot arena (a recycled `std::vector<EventFn>`), not
/// in the heap entries themselves: the hand-rolled binary heap reorders
/// 16-byte (time, seq|slot) keys, so sift operations never move the
/// callbacks, and once the arena has grown to the simulation's peak
/// outstanding-event count, scheduling performs no allocation. Pops use
/// Floyd's sift-to-bottom-then-bubble-up, which does one sibling
/// comparison per level on the way down instead of two.
class EventQueue {
 public:
  using Callback = EventFn;

  /// Schedules `cb` to fire at absolute time `t`.
  void schedule(Time t, Callback cb) {
    if (cb.uses_heap()) ++heap_fallbacks_;
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(arena_.size());
      arena_.push_back(std::move(cb));
      // Keep the free list sized for every slot so releasing events at a
      // simulation's drain (when most slots are free at once) never
      // reallocates: growth happens only here, at a new event high-water.
      if (free_slots_.capacity() < arena_.size()) {
        free_slots_.reserve(arena_.capacity());
      }
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
      arena_[slot] = std::move(cb);
    }
    // The packed key orders by seq (slot bits only pad the low end; equal
    // times always differ in seq), preserving the FIFO tie-break exactly.
    push_entry(Entry{t, (next_seq_++ << kSlotBits) | slot});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time() const { return heap_.front().time; }

  /// Removes and returns the earliest pending event's callback.
  /// Precondition: !empty().
  Callback pop() {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(pop_entry().key & kSlotMask);
    Callback cb = std::move(arena_[slot]);
    free_slots_.push_back(slot);
    return cb;
  }

  /// Total number of events ever scheduled (for micro-benchmarks/tests).
  std::uint64_t scheduled_count() const { return next_seq_; }

  /// Events whose callback did not fit the inline buffer and heap-allocated.
  /// Steady-state simulator traffic must keep this at zero.
  std::uint64_t heap_fallback_count() const { return heap_fallbacks_; }

  /// Arena high-water mark (tests assert it stops growing in steady state).
  std::size_t arena_capacity() const { return arena_.size(); }

 private:
  // 24 slot bits allow ~16.7M outstanding events (a simulation's arena at
  // that size would already occupy gigabytes); the remaining 40 seq bits
  // allow ~10^12 events per queue lifetime.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

  struct Entry {
    Time time;
    std::uint64_t key;  // (seq << kSlotBits) | arena slot
  };

  static bool before(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.key < b.key);
  }

  void push_entry(Entry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 1;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  Entry pop_entry() {
    const Entry top = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      // Sift the hole at the root to the bottom along the smaller child,
      // then bubble the former last element up from there (Floyd).
      std::size_t i = 0;
      std::size_t child;
      while ((child = 2 * i + 1) + 1 < n) {
        if (before(heap_[child + 1], heap_[child])) ++child;
        heap_[i] = heap_[child];
        i = child;
      }
      if (child < n) {
        heap_[i] = heap_[child];
        i = child;
      }
      while (i > 0) {
        const std::size_t parent = (i - 1) >> 1;
        if (!before(last, heap_[parent])) break;
        heap_[i] = heap_[parent];
        i = parent;
      }
      heap_[i] = last;
    }
    return top;
  }

  std::vector<Entry> heap_;                // binary min-heap of packed keys
  std::vector<Callback> arena_;            // one slot per pending event
  std::vector<std::uint32_t> free_slots_;  // recycled arena slots
  std::uint64_t next_seq_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
};

}  // namespace ccsig::sim

// ICMP-echo-style responder: replies to any packet arriving at a node port
// by swapping source and destination. Used by the TSLP latency prober.
#pragma once

#include "sim/node.h"
#include "sim/packet.h"

namespace ccsig::sim {

inline constexpr Port kEchoPort = 7;

/// Registers an echo service on `node` at `port`.
class EchoResponder {
 public:
  explicit EchoResponder(Node* node, Port port = kEchoPort) : node_(node), port_(port) {
    node_->register_endpoint(port, [node](const Packet& p) {
      Packet reply = p;
      reply.key = p.key.reversed();
      node->send(reply);
    });
  }
  ~EchoResponder() { node_->unregister_endpoint(port_); }
  EchoResponder(const EchoResponder&) = delete;
  EchoResponder& operator=(const EchoResponder&) = delete;

 private:
  Node* node_;
  Port port_;
};

}  // namespace ccsig::sim

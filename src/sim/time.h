// Simulation time: signed 64-bit nanoseconds since simulation start.
//
// All simulator components exchange `Time` values; floating-point clocks are
// never used, so event ordering is exact and runs are bit-reproducible.
#pragma once

#include <cstdint>

namespace ccsig::sim {

/// Nanoseconds since the start of the simulation.
using Time = std::int64_t;

/// A duration, same representation as `Time`.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Converts a duration expressed in (possibly fractional) seconds.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Converts a duration expressed in (possibly fractional) milliseconds.
constexpr Duration from_millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Converts a duration expressed in (possibly fractional) microseconds.
constexpr Duration from_micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

/// Expresses `t` in fractional seconds (for reporting only).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Expresses `t` in fractional milliseconds (for reporting only).
constexpr double to_millis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace ccsig::sim

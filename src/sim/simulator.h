// The discrete-event simulation driver.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace ccsig::sim {

/// Owns the clock and the event queue. Components hold a `Simulator&` and
/// schedule callbacks; `run_until()` drives them. Single-threaded by design.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now if in the past).
  void schedule_at(Time t, EventQueue::Callback cb) {
    queue_.schedule(t < now_ ? now_ : t, std::move(cb));
  }

  /// Schedules `cb` after a relative delay (negative delays fire "now").
  void schedule_in(Duration d, EventQueue::Callback cb) {
    schedule_at(now_ + (d < 0 ? 0 : d), std::move(cb));
  }

  /// Runs events until the queue is exhausted or the clock passes `deadline`.
  /// Returns the number of events executed.
  std::uint64_t run_until(Time deadline) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      now_ = queue_.next_time();
      auto cb = queue_.pop();
      cb();
      ++executed;
    }
    if (now_ < deadline && queue_.empty()) now_ = deadline;
    return executed;
  }

  /// Runs until no events remain.
  std::uint64_t run() { return run_until(std::numeric_limits<Time>::max()); }

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_executed_hint() const { return queue_.scheduled_count(); }

 private:
  Time now_ = 0;
  EventQueue queue_;
};

}  // namespace ccsig::sim

// The discrete-event simulation driver.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace ccsig::sim {

/// Process-wide simulator instruments (registered once; recording is
/// lock-free and allocation-free, see obs/metrics.h).
struct SimMetrics {
  obs::Counter events_executed;
  obs::Gauge event_queue_depth;
};

inline SimMetrics& sim_metrics() {
  static SimMetrics m{
      obs::MetricsRegistry::global().counter("sim.events_executed"),
      obs::MetricsRegistry::global().gauge("sim.event_queue_depth")};
  return m;
}

/// Owns the clock and the event queue. Components hold a `Simulator&` and
/// schedule callbacks; `run_until()` drives them. Single-threaded by design.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now if in the past).
  void schedule_at(Time t, EventQueue::Callback cb) {
    queue_.schedule(t < now_ ? now_ : t, std::move(cb));
  }

  /// Schedules `cb` after a relative delay (negative delays fire "now").
  void schedule_in(Duration d, EventQueue::Callback cb) {
    schedule_at(now_ + (d < 0 ? 0 : d), std::move(cb));
  }

  /// Runs events until the queue is exhausted or the clock passes `deadline`.
  /// Returns the number of events executed.
  std::uint64_t run_until(Time deadline) {
    obs::TraceSpan span("sim.run_until", "sim");
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      now_ = queue_.next_time();
      auto cb = queue_.pop();
      cb();
      ++executed;
    }
    if (now_ < deadline && queue_.empty()) now_ = deadline;
    SimMetrics& m = sim_metrics();
    m.events_executed.add(executed);
    m.event_queue_depth.set(static_cast<double>(queue_.size()));
    return executed;
  }

  /// Runs until no events remain.
  std::uint64_t run() { return run_until(std::numeric_limits<Time>::max()); }

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_executed_hint() const { return queue_.scheduled_count(); }

  /// A lease on a liveness slot. A timer closure that captures a raw pointer
  /// to a component that can be torn down mid-simulation (a TCP endpoint of
  /// a finished fetch) also captures the lease and asks `alive()` before
  /// touching the pointer. The generation table is owned by the simulator,
  /// so the check never reads freed memory — unlike a generation counter
  /// stored inside the possibly-destroyed object itself.
  struct LifetimeLease {
    std::uint32_t slot = 0;
    std::uint64_t gen = 0;
  };

  LifetimeLease lease_lifetime() {
    std::uint32_t slot;
    if (!free_lifetime_slots_.empty()) {
      slot = free_lifetime_slots_.back();
      free_lifetime_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(lifetime_gens_.size());
      lifetime_gens_.push_back(0);
    }
    return LifetimeLease{slot, lifetime_gens_[slot]};
  }

  /// Invalidates every closure holding `l`; the slot is recycled, so churn
  /// of short-lived components does not grow the table.
  void release_lifetime(LifetimeLease l) {
    ++lifetime_gens_[l.slot];
    free_lifetime_slots_.push_back(l.slot);
  }

  bool alive(LifetimeLease l) const { return lifetime_gens_[l.slot] == l.gen; }

 private:
  Time now_ = 0;
  EventQueue queue_;
  std::vector<std::uint64_t> lifetime_gens_;
  std::vector<std::uint32_t> free_lifetime_slots_;
};

}  // namespace ccsig::sim

#include "sim/network.h"

#include <stdexcept>

namespace ccsig::sim {

Node* Network::add_node(const std::string& name) {
  auto node = std::make_unique<Node>(sim_, next_address_++, name);
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  if (!by_name_.emplace(name, raw).second) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  return raw;
}

Node* Network::node(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("no such node: " + name);
  }
  return it->second;
}

Network::Duplex Network::connect(Node* a, Node* b, Link::Config ab,
                                 Link::Config ba) {
  if (ab.name == "link") ab.name = a->name() + "->" + b->name();
  if (ba.name == "link") ba.name = b->name() + "->" + a->name();
  auto link_ab = std::make_unique<Link>(sim_, std::move(ab), rng_.fork());
  auto link_ba = std::make_unique<Link>(sim_, std::move(ba), rng_.fork());
  Link* raw_ab = link_ab.get();
  Link* raw_ba = link_ba.get();
  raw_ab->set_receiver([b](const Packet& p) { b->receive(p); });
  raw_ba->set_receiver([a](const Packet& p) { a->receive(p); });
  a->add_route(b->address(), raw_ab);
  b->add_route(a->address(), raw_ba);
  links_.push_back(std::move(link_ab));
  links_.push_back(std::move(link_ba));
  return Duplex{raw_ab, raw_ba};
}

Network::Duplex Network::connect(Node* a, Node* b, const Link::Config& both) {
  return connect(a, b, both, both);
}

}  // namespace ccsig::sim

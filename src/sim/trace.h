// Packet-observation hook: the simulator-side equivalent of tcpdump.
#pragma once

#include "sim/packet.h"
#include "sim/time.h"

namespace ccsig::sim {

/// Receives every packet that crosses the interface it is attached to.
/// Implementations: in-memory trace recorders, pcap file writers.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// `t` is the observation timestamp at the tap point.
  virtual void on_packet(Time t, const Packet& p) = 0;
};

}  // namespace ccsig::sim

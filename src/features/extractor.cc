#include "features/extractor.h"

#include <vector>

namespace ccsig::features {

std::optional<FlowFeatures> extract_features(const analysis::FlowTrace& flow,
                                             const ExtractOptions& opt) {
  if (flow.data.empty() || flow.acks.empty()) return std::nullopt;

  const analysis::SlowStartInfo ss = analysis::detect_slow_start(flow);
  if (opt.require_retransmission && !ss.ended_by_retransmission) {
    return std::nullopt;
  }

  const auto samples = analysis::extract_rtt_samples(flow, ss.end_time);
  if (samples.size() < opt.min_rtt_samples) return std::nullopt;

  std::vector<double> rtts_ms;
  rtts_ms.reserve(samples.size());
  for (const auto& s : samples) rtts_ms.push_back(sim::to_millis(s.rtt));

  const auto nd = norm_diff(rtts_ms);
  const auto cv = coefficient_of_variation(rtts_ms);
  if (!nd || !cv) return std::nullopt;

  FlowFeatures f;
  f.norm_diff = *nd;
  f.cov = *cv;
  f.rtt_slope = normalized_rtt_slope(rtts_ms).value_or(0.0);
  f.rtt_iqr = normalized_iqr(rtts_ms).value_or(0.0);
  f.rtt_samples = rtts_ms.size();
  const Summary s = summarize(rtts_ms);
  f.min_rtt_ms = s.min;
  f.max_rtt_ms = s.max;
  f.slow_start_throughput_bps =
      analysis::slow_start_throughput_bps(flow, ss).value_or(0.0);
  f.flow_throughput_bps = analysis::flow_throughput_bps(flow).value_or(0.0);
  f.slow_start_ended_by_retransmission = ss.ended_by_retransmission;
  f.flow_duration = flow.duration();
  return f;
}

}  // namespace ccsig::features

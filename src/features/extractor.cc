#include "features/extractor.h"

#include <cmath>
#include <vector>

namespace ccsig::features {

const char* to_string(Insufficiency i) {
  switch (i) {
    case Insufficiency::kNone: return "none";
    case Insufficiency::kNoData: return "no data packets";
    case Insufficiency::kNoRetransmission: return "no retransmission";
    case Insufficiency::kTooFewRttSamples:
      return "insufficient slow-start RTT samples";
    case Insufficiency::kInvalidRtts: return "invalid RTT samples";
    case Insufficiency::kNonMonotonicTimestamps:
      return "non-monotonic sample timestamps";
    case Insufficiency::kDegenerateStats:
      return "degenerate RTT statistics";
  }
  return "?";
}

ExtractResult features_from_slow_start(
    std::span<const analysis::RttSample> samples,
    const analysis::SlowStartInfo& ss,
    std::optional<double> slow_start_throughput,
    std::optional<double> flow_throughput, sim::Duration flow_duration,
    const ExtractOptions& opt) {
  ExtractResult out;
  if (opt.require_retransmission && !ss.ended_by_retransmission) {
    out.insufficiency = Insufficiency::kNoRetransmission;
    return out;
  }

  if (samples.size() < opt.min_rtt_samples) {
    out.insufficiency = Insufficiency::kTooFewRttSamples;
    return out;
  }

  // A damaged or truncated capture can decode into garbage measurements;
  // refuse to classify rather than feed the tree a fabricated signature.
  std::vector<double> rtts_ms;
  rtts_ms.reserve(samples.size());
  sim::Time prev_at = samples.front().at;
  for (const auto& s : samples) {
    const double ms = sim::to_millis(s.rtt);
    if (!std::isfinite(ms) || ms <= 0.0) {
      out.insufficiency = Insufficiency::kInvalidRtts;
      return out;
    }
    if (s.at < prev_at) {
      out.insufficiency = Insufficiency::kNonMonotonicTimestamps;
      return out;
    }
    prev_at = s.at;
    rtts_ms.push_back(ms);
  }

  const auto nd = norm_diff(rtts_ms);
  const auto cv = coefficient_of_variation(rtts_ms);
  if (!nd || !cv || !std::isfinite(*nd) || !std::isfinite(*cv)) {
    out.insufficiency = Insufficiency::kDegenerateStats;
    return out;
  }

  FlowFeatures f;
  f.norm_diff = *nd;
  f.cov = *cv;
  f.rtt_slope = normalized_rtt_slope(rtts_ms).value_or(0.0);
  f.rtt_iqr = normalized_iqr(rtts_ms).value_or(0.0);
  f.rtt_samples = rtts_ms.size();
  const Summary s = summarize(rtts_ms);
  f.min_rtt_ms = s.min;
  f.max_rtt_ms = s.max;
  f.slow_start_throughput_bps = slow_start_throughput.value_or(0.0);
  f.flow_throughput_bps = flow_throughput.value_or(0.0);
  f.slow_start_ended_by_retransmission = ss.ended_by_retransmission;
  f.flow_duration = flow_duration;
  out.features = f;
  return out;
}

ExtractResult extract_features_checked(const analysis::FlowTrace& flow,
                                       const ExtractOptions& opt) {
  ExtractResult out;
  if (flow.data.empty() || flow.acks.empty()) {
    out.insufficiency = Insufficiency::kNoData;
    return out;
  }

  const analysis::SlowStartInfo ss = analysis::detect_slow_start(flow);
  const auto samples = analysis::extract_rtt_samples(flow, ss.end_time);
  return features_from_slow_start(
      samples, ss, analysis::slow_start_throughput_bps(flow, ss),
      analysis::flow_throughput_bps(flow), flow.duration(), opt);
}

std::optional<FlowFeatures> extract_features(const analysis::FlowTrace& flow,
                                             const ExtractOptions& opt) {
  return extract_features_checked(flow, opt).features;
}

}  // namespace ccsig::features

// Flow trace → congestion-signature feature vector.
#pragma once

#include <optional>
#include <span>

#include "analysis/flow_trace.h"
#include "analysis/rtt_estimator.h"
#include "analysis/slow_start.h"
#include "features/metrics.h"

namespace ccsig::features {

/// Minimum slow-start RTT samples required for statistical validity
/// (paper §3.2 discards flows with fewer than 10).
inline constexpr std::size_t kMinRttSamples = 10;

/// The classifier's inputs, plus context useful for labeling and reporting.
struct FlowFeatures {
  double norm_diff = 0;   // (max-min)/max RTT during slow start
  double cov = 0;         // stddev/mean RTT during slow start
  // Extended features (not used by the paper's classifier; for ablations).
  double rtt_slope = 0;
  double rtt_iqr = 0;
  // Context.
  std::size_t rtt_samples = 0;
  double min_rtt_ms = 0;
  double max_rtt_ms = 0;
  double slow_start_throughput_bps = 0;
  double flow_throughput_bps = 0;
  bool slow_start_ended_by_retransmission = false;
  sim::Duration flow_duration = 0;
};

struct ExtractOptions {
  std::size_t min_rtt_samples = kMinRttSamples;
  /// Require the slow-start boundary to be an actual retransmission. The
  /// paper's definition implies it; flows that never retransmit never
  /// experienced (either kind of) congestion. Off by default because the
  /// M-Lab filters already handle it via Web100 state.
  bool require_retransmission = false;
};

/// Why a flow yielded no features. Degenerate measurement streams (bogus
/// RTTs, time going backwards) are distinguished from merely-short flows:
/// the former indicate a damaged capture, the latter are routine filtering.
enum class Insufficiency {
  kNone = 0,               // features extracted
  kNoData,                 // no data or no ack packets
  kNoRetransmission,       // require_retransmission and none seen
  kTooFewRttSamples,       // fewer than min_rtt_samples in slow start
  kInvalidRtts,            // NaN, zero, or negative RTT samples
  kNonMonotonicTimestamps, // sample timestamps go backwards
  kDegenerateStats,        // summary statistics undefined (e.g. zero mean)
};

const char* to_string(Insufficiency i);

struct ExtractResult {
  std::optional<FlowFeatures> features;
  Insufficiency insufficiency = Insufficiency::kNone;
  bool ok() const { return features.has_value(); }
};

/// Extracts the paper's features from a flow, or nullopt when the flow
/// fails the validity filters (too few slow-start RTT samples, no data,
/// optionally no retransmission).
std::optional<FlowFeatures> extract_features(const analysis::FlowTrace& flow,
                                             const ExtractOptions& opt = {});

/// Like extract_features, but reports *why* extraction was refused, so
/// callers can distinguish a short flow from a damaged capture and never
/// emit a bogus congestion label for either.
ExtractResult extract_features_checked(const analysis::FlowTrace& flow,
                                       const ExtractOptions& opt = {});

/// The final, representation-independent stage of feature extraction: from
/// a flow's slow-start RTT samples and summary scalars to the validated
/// feature vector. extract_features_checked calls this after materializing
/// the samples from a FlowTrace; the streaming engine calls it with
/// incrementally accumulated samples. Because the statistics all run over
/// the same sample values through the same code, the two paths produce
/// bit-identical features. Callers are responsible for the kNoData check
/// (a flow with no data or no ack packets must not reach this far).
ExtractResult features_from_slow_start(
    std::span<const analysis::RttSample> samples,
    const analysis::SlowStartInfo& ss,
    std::optional<double> slow_start_throughput,
    std::optional<double> flow_throughput, sim::Duration flow_duration,
    const ExtractOptions& opt = {});

}  // namespace ccsig::features

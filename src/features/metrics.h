// The paper's two congestion-signature metrics, plus descriptive statistics
// used by extended/ablation features.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "sim/time.h"

namespace ccsig::features {

/// Descriptive statistics of a sample set.
struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  // population standard deviation
  std::size_t count = 0;
};

Summary summarize(std::span<const double> values);

/// NormDiff (paper §2.3): (max − min) / max of slow-start RTT samples.
/// Measures the share of the peak RTT contributed by the flow's own
/// buffer-filling. Returns nullopt for empty input or max == 0.
std::optional<double> norm_diff(std::span<const double> rtts);

/// CoV (paper §2.3): stddev / mean of slow-start RTT samples. Measures RTT
/// variability independent of the baseline. Returns nullopt for empty input
/// or mean == 0.
std::optional<double> coefficient_of_variation(std::span<const double> rtts);

/// Ordinary-least-squares slope of RTT (ms) against sample index,
/// normalized by the mean RTT — an extended feature for ablations
/// (paper §2.3 mentions tracking RTT growth as an alternative).
std::optional<double> normalized_rtt_slope(std::span<const double> rtts);

/// Interquartile range normalized by the median — robust spread measure
/// (extended feature).
std::optional<double> normalized_iqr(std::span<const double> rtts);

/// Converts RTT samples in simulator time to milliseconds.
std::vector<double> to_millis(std::span<const sim::Duration> rtts);

}  // namespace ccsig::features

#include "features/metrics.h"

#include <algorithm>
#include <cmath>

namespace ccsig::features {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

std::optional<double> norm_diff(std::span<const double> rtts) {
  if (rtts.empty()) return std::nullopt;
  const Summary s = summarize(rtts);
  if (s.max <= 0) return std::nullopt;
  return (s.max - s.min) / s.max;
}

std::optional<double> coefficient_of_variation(std::span<const double> rtts) {
  if (rtts.empty()) return std::nullopt;
  const Summary s = summarize(rtts);
  if (s.mean <= 0) return std::nullopt;
  return s.stddev / s.mean;
}

std::optional<double> normalized_rtt_slope(std::span<const double> rtts) {
  const std::size_t n = rtts.size();
  if (n < 2) return std::nullopt;
  const Summary s = summarize(rtts);
  if (s.mean <= 0) return std::nullopt;
  // OLS slope of rtt against index.
  const double x_mean = static_cast<double>(n - 1) / 2.0;
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - x_mean;
    num += dx * (rtts[i] - s.mean);
    den += dx * dx;
  }
  if (den == 0) return std::nullopt;
  return (num / den) * static_cast<double>(n) / s.mean;
}

std::optional<double> normalized_iqr(std::span<const double> rtts) {
  if (rtts.size() < 4) return std::nullopt;
  std::vector<double> sorted(rtts.begin(), rtts.end());
  std::sort(sorted.begin(), sorted.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  };
  const double median = quantile(0.5);
  if (median <= 0) return std::nullopt;
  return (quantile(0.75) - quantile(0.25)) / median;
}

std::vector<double> to_millis(std::span<const sim::Duration> rtts) {
  std::vector<double> out;
  out.reserve(rtts.size());
  for (sim::Duration d : rtts) out.push_back(sim::to_millis(d));
  return out;
}

}  // namespace ccsig::features

#include "stream/stream.h"

#include <algorithm>
#include <chrono>
#include <list>
#include <unordered_map>

#include "analysis/flow_trace.h"
#include "analysis/from_pcap.h"
#include "obs/trace.h"
#include "pcap/cursor.h"
#include "stream/flow_state.h"

namespace ccsig::stream {

struct StreamEngine::Shard {
  // Strand: one drain task at a time consumes `inbox` in FIFO order, so
  // records are processed exactly in push order no matter how many workers
  // the pool has.
  std::mutex mu;
  std::deque<std::vector<analysis::WireRecord>> inbox;
  bool scheduled = false;

  // Flow table — touched only by the strand (or the pushing thread when
  // running inline).
  struct Entry {
    explicit Entry(const sim::FlowKey& canonical) : state(canonical) {}
    FlowState state;
    std::list<sim::FlowKey>::iterator lru_it;
    bool early_counted = false;
  };
  std::unordered_map<sim::FlowKey, Entry, sim::FlowKeyHash> flows;
  std::list<sim::FlowKey> lru;  // front = least recently seen

  struct Done {
    sim::Time start;
    FlowReport report;
  };
  std::vector<Done> done;

  StreamStats tally;
  std::size_t peak = 0;
};

StreamEngine::StreamEngine(const FlowAnalyzer& analyzer, StreamConfig cfg)
    : analyzer_(analyzer), cfg_(cfg) {
  nshards_ = cfg_.shards > 0 ? cfg_.shards : StreamConfig::kDefaultShards;
  if (cfg_.max_active_flows > 0) {
    per_shard_cap_ = std::max<std::size_t>(1, cfg_.max_active_flows / nshards_);
  }
  shards_.reserve(nshards_);
  for (std::size_t i = 0; i < nshards_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }

  auto& reg = obs::MetricsRegistry::global();
  records_ctr_ = reg.counter("stream.records_total");
  opened_ctr_ = reg.counter("stream.flows_opened");
  finalized_ctr_ = reg.counter("stream.flows_finalized");
  evicted_fin_ctr_ = reg.counter("stream.evicted_fin");
  evicted_idle_ctr_ = reg.counter("stream.evicted_idle");
  evicted_lru_ctr_ = reg.counter("stream.evicted_lru");
  evicted_forced_ctr_ = reg.counter("stream.evicted_forced");
  early_ctr_ = reg.counter("stream.early_classified");
  active_g_ = reg.gauge("stream.flows_active");
  peak_g_ = reg.gauge("stream.flows_peak");
  imbalance_g_ = reg.gauge("stream.shard_imbalance");

  unsigned jobs = cfg_.jobs == 0 ? runtime::default_jobs() : cfg_.jobs;
  if (jobs > 1) {
    pending_.resize(nshards_);
    for (auto& batch : pending_) batch.reserve(cfg_.batch_records);
    pool_.emplace(jobs);
  }
}

StreamEngine::~StreamEngine() = default;  // pool_ joins first (declared last)

void StreamEngine::push(const analysis::WireRecord& w) {
  const sim::FlowKey canonical = analysis::canonical_flow_key(w.key);
  const std::size_t idx = sim::FlowKeyHash{}(canonical) % nshards_;
  records_ctr_.inc();
  if (!pool_) {
    process_record(*shards_[idx], w);
    return;
  }
  std::vector<analysis::WireRecord>& batch = pending_[idx];
  batch.push_back(w);
  if (batch.size() >= cfg_.batch_records) dispatch(idx);
}

void StreamEngine::dispatch(std::size_t idx) {
  // Swap in a recycled (or fresh) buffer so the reader keeps batching
  // without waiting on the shard.
  std::vector<analysis::WireRecord> next;
  {
    std::lock_guard<std::mutex> lk(free_mu_);
    if (!free_batches_.empty()) {
      next = std::move(free_batches_.back());
      free_batches_.pop_back();
    }
  }
  std::vector<analysis::WireRecord> batch = std::move(pending_[idx]);
  pending_[idx] = std::move(next);

  Shard& s = *shards_[idx];
  bool need_task = false;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.inbox.push_back(std::move(batch));
    if (!s.scheduled) {
      s.scheduled = true;
      need_task = true;
    }
  }
  if (need_task) {
    pool_->submit([this, &s] { drain(s); });
  }
}

void StreamEngine::drain(Shard& s) {
  for (;;) {
    std::vector<analysis::WireRecord> batch;
    {
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.inbox.empty()) {
        s.scheduled = false;
        return;
      }
      batch = std::move(s.inbox.front());
      s.inbox.pop_front();
    }
    for (const analysis::WireRecord& w : batch) process_record(s, w);
    batch.clear();
    {
      std::lock_guard<std::mutex> lk(free_mu_);
      free_batches_.push_back(std::move(batch));
    }
  }
}

void StreamEngine::process_record(Shard& s, const analysis::WireRecord& w) {
  ++s.tally.records;
  const sim::FlowKey canonical = analysis::canonical_flow_key(w.key);

  // Idle eviction first, in capture time, oldest first — a deterministic
  // function of the record stream.
  if (cfg_.idle_timeout > 0) {
    while (!s.lru.empty()) {
      const sim::FlowKey& oldest = s.lru.front();
      const auto it = s.flows.find(oldest);
      if (w.time - it->second.state.last_seen() <= cfg_.idle_timeout) break;
      finalize_flow(s, oldest, Evict::kIdle);
    }
  }

  auto it = s.flows.find(canonical);
  if (it == s.flows.end()) {
    if (per_shard_cap_ > 0 && s.flows.size() >= per_shard_cap_) {
      evict_for_cap(s);
    }
    it = s.flows.try_emplace(canonical, canonical).first;
    s.lru.push_back(canonical);
    it->second.lru_it = std::prev(s.lru.end());
    ++s.tally.flows_opened;
    opened_ctr_.inc();
    s.peak = std::max(s.peak, s.flows.size());
  } else {
    s.lru.splice(s.lru.end(), s.lru, it->second.lru_it);
  }

  Shard::Entry& entry = it->second;
  entry.state.ingest(w);
  if (entry.state.complete()) {
    finalize_flow(s, canonical, Evict::kFin);
  } else if (!entry.early_counted && entry.state.early_ready()) {
    entry.early_counted = true;
    ++s.tally.early_classified;
    early_ctr_.inc();
  }
}

void StreamEngine::evict_for_cap(Shard& s) {
  // Prefer the least-recently-active flow whose first slow-start period
  // has closed: its congestion signature is already frozen, so evicting it
  // early cannot change its verdict.
  for (const sim::FlowKey& key : s.lru) {
    if (s.flows.find(key)->second.state.slow_start_closed()) {
      finalize_flow(s, key, Evict::kLru);
      return;
    }
  }
  // No eligible victim: the cap is genuinely too small, drop the oldest.
  const sim::FlowKey oldest = s.lru.front();
  finalize_flow(s, oldest, Evict::kForced);
}

void StreamEngine::finalize_flow(Shard& s, const sim::FlowKey& canonical,
                                 Evict reason) {
  const auto it = s.flows.find(canonical);
  FinalizedFlow fin = it->second.state.finalize(cfg_.extract);
  if (fin.has_payload) {
    s.done.push_back(Shard::Done{
        fin.start_time,
        analyzer_.report_from_extract(fin.data_key, std::move(fin.extracted),
                                      fin.throughput_bps, fin.duration,
                                      fin.data_packets)});
  }
  s.lru.erase(it->second.lru_it);
  s.flows.erase(it);
  ++s.tally.flows_finalized;
  finalized_ctr_.inc();
  switch (reason) {
    case Evict::kFin:
      ++s.tally.evicted_fin;
      evicted_fin_ctr_.inc();
      break;
    case Evict::kIdle:
      ++s.tally.evicted_idle;
      evicted_idle_ctr_.inc();
      break;
    case Evict::kLru:
      ++s.tally.evicted_lru;
      evicted_lru_ctr_.inc();
      break;
    case Evict::kForced:
      ++s.tally.evicted_forced;
      evicted_forced_ctr_.inc();
      break;
    case Evict::kEndOfCapture:
      break;
  }
}

std::vector<FlowReport> StreamEngine::finish() {
  obs::TraceSpan span("stream.finalize", "stream");
  if (pool_) {
    for (std::size_t idx = 0; idx < nshards_; ++idx) {
      if (!pending_[idx].empty()) dispatch(idx);
    }
    pool_->wait();
  }

  StreamStats total;
  std::size_t active = 0;
  std::uint64_t max_shard_records = 0;
  std::vector<Shard::Done> all;
  for (const std::unique_ptr<Shard>& sp : shards_) {
    Shard& s = *sp;
    active += s.flows.size();
    while (!s.lru.empty()) {
      finalize_flow(s, s.lru.front(), Evict::kEndOfCapture);
    }
    for (Shard::Done& d : s.done) all.push_back(std::move(d));
    s.done.clear();
    total.records += s.tally.records;
    total.flows_opened += s.tally.flows_opened;
    total.flows_finalized += s.tally.flows_finalized;
    total.evicted_fin += s.tally.evicted_fin;
    total.evicted_idle += s.tally.evicted_idle;
    total.evicted_lru += s.tally.evicted_lru;
    total.evicted_forced += s.tally.evicted_forced;
    total.early_classified += s.tally.early_classified;
    total.peak_active_flows += s.peak;
    max_shard_records = std::max(max_shard_records, s.tally.records);
  }

  std::sort(all.begin(), all.end(),
            [](const Shard::Done& a, const Shard::Done& b) {
              return analysis::flow_order_less(a.start, a.report.data_key,
                                               b.start, b.report.data_key);
            });
  std::vector<FlowReport> reports;
  reports.reserve(all.size());
  for (Shard::Done& d : all) reports.push_back(std::move(d.report));

  active_g_.set(static_cast<double>(active));
  peak_g_.set(static_cast<double>(total.peak_active_flows));
  if (total.records > 0) {
    const double mean = static_cast<double>(total.records) /
                        static_cast<double>(nshards_);
    imbalance_g_.set(static_cast<double>(max_shard_records) / mean);
  }

  final_stats_ = total;
  finished_ = true;
  return reports;
}

PcapAnalysis analyze_pcap_stream(const std::string& path,
                                 const FlowAnalyzer& analyzer,
                                 const StreamConfig& cfg) {
  PcapAnalysis out;
  StreamEngine engine(analyzer, cfg);
  obs::Counter bytes_ctr =
      obs::MetricsRegistry::global().counter("stream.bytes_ingested");
  obs::Gauge rate_g =
      obs::MetricsRegistry::global().gauge("stream.ingest_bytes_per_sec");
  std::uint64_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    obs::TraceSpan span("stream.ingest", "stream");
    pcap::PcapCursor cursor(path);
    while (const auto rec = cursor.next()) {
      bytes += rec->data.size();
      const auto w =
          analysis::wire_record_from_frame(rec->timestamp, rec->data);
      if (!w) continue;  // non-TCP/undecodable frame, same skip as batch
      engine.push(*w);
    }
  } catch (const runtime::ParseException& e) {
    // Same contract as analyze_pcap_checked: report the error, keep the
    // clean prefix's analysis.
    out.error = e.error();
  }
  bytes_ctr.add(bytes);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs > 0) rate_g.set(static_cast<double>(bytes) / secs);
  out.reports = engine.finish();
  return out;
}

}  // namespace ccsig::stream

#include "stream/stream.h"

#include <algorithm>
#include <chrono>
#include <list>
#include <mutex>
#include <unordered_map>

#include "analysis/flow_trace.h"
#include "analysis/from_pcap.h"
#include "obs/trace.h"
#include "runtime/spsc_queue.h"
#include "runtime/thread_pool.h"
#include "stream/flow_state.h"

namespace ccsig::stream {
namespace {

/// Heterogeneous lookup key carrying the hash computed at decode time, so
/// the per-record flow-table probe never rehashes the FlowKey.
struct HashedKey {
  const sim::FlowKey& key;
  std::size_t hash;
};

struct FlowHash {
  using is_transparent = void;
  std::size_t operator()(const sim::FlowKey& k) const {
    return sim::FlowKeyHash{}(k);
  }
  std::size_t operator()(const HashedKey& h) const { return h.hash; }
};

struct FlowEq {
  using is_transparent = void;
  bool operator()(const sim::FlowKey& a, const sim::FlowKey& b) const {
    return a == b;
  }
  bool operator()(const sim::FlowKey& a, const HashedKey& b) const {
    return a == b.key;
  }
  bool operator()(const HashedKey& a, const sim::FlowKey& b) const {
    return a.key == b;
  }
};

}  // namespace

struct StreamEngine::Shard {
  explicit Shard(std::size_t batches) : inbox(batches), recycle(batches) {}

  // Single-writer discipline: exactly one worker thread owns this shard
  // and is the only consumer of `inbox` / producer of `recycle`; the
  // pushing thread is the only producer of `inbox` / consumer of
  // `recycle`. Both edges are therefore strictly SPSC and the flow table
  // below needs no lock at all.
  runtime::SpscQueue<std::vector<RoutedRecord>*> inbox;
  runtime::SpscQueue<std::vector<RoutedRecord>*> recycle;

  struct Entry {
    explicit Entry(const sim::FlowKey& canonical) : state(canonical) {}
    FlowState state;
    std::list<sim::FlowKey>::iterator lru_it;
    bool early_counted = false;
  };
  std::unordered_map<sim::FlowKey, Entry, FlowHash, FlowEq> flows;
  std::list<sim::FlowKey> lru;  // front = least recently seen

  // Most-recently-touched entry, a pure cache over `flows`. Real traffic
  // interleaves data and ACK records of the same flow back-to-back, so
  // about half of all probes hit here and skip both the hash-table find
  // and the (then no-op) LRU splice. Entry pointers are node-stable;
  // finalize_flow clears this on any erase.
  Entry* hot = nullptr;
  sim::FlowKey hot_key;

  struct Done {
    sim::Time start;
    FlowReport report;
  };
  std::vector<Done> done;

  StreamStats tally;
  std::size_t peak = 0;

  // Live flow-table occupancy, published by the owning worker (single
  // writer) after every open/finalize so the control thread's statusz can
  // read it without touching `flows`.
  std::atomic<std::size_t> resident{0};

  // -- Ordered-drain state (cfg.ordered_drain only) ------------------------
  // Emission position of the record currently being processed; worker-owned
  // scratch, set by process_record before any finalize it triggers.
  std::uint64_t cur_seq = 0;
  std::uint32_t cur_emit = 0;
  // Latency freight of the record currently being processed (see
  // ReadyReport): its service ingest stamp and capture timestamp.
  std::int64_t cur_ingest_ns = 0;
  sim::Time cur_time = 0;
  // seq of the last record this shard's worker finished (release-published
  // after the batch's emissions are queued, so a reader that observes the
  // watermark also observes every emission at or below it).
  std::atomic<std::uint64_t> processed{0};
  // Batches flushed to `inbox` and not yet fully processed. Incremented by
  // the control thread before the push, decremented by the worker after
  // the batch's emissions are visible; 0 therefore means "caught up with
  // everything flushed".
  std::atomic<std::size_t> inflight{0};
  // Finalized-but-undrained emissions. Finalization is orders of magnitude
  // rarer than record processing, so a mutex here stays off the hot path.
  std::mutex ready_mu;
  std::vector<ReadyReport> ready;
};

StreamEngine::StreamEngine(const FlowAnalyzer& analyzer, StreamConfig cfg)
    : analyzer_(analyzer), cfg_(cfg) {
  nshards_ = cfg_.shards > 0 ? cfg_.shards : StreamConfig::kDefaultShards;
  // hash % nshards is a hardware divide on the per-record path; the
  // default shard count is a power of two, where it is a mask.
  shard_mask_ = (nshards_ & (nshards_ - 1)) == 0 ? nshards_ - 1 : 0;
  if (cfg_.max_active_flows > 0) {
    per_shard_cap_ = std::max<std::size_t>(1, cfg_.max_active_flows / nshards_);
  }
  batches_per_shard_ = std::max<std::size_t>(2, cfg_.batches_per_shard);
  shards_.reserve(nshards_);
  for (std::size_t i = 0; i < nshards_; ++i) {
    shards_.push_back(std::make_unique<Shard>(batches_per_shard_));
  }

  auto& reg = obs::MetricsRegistry::global();
  records_ctr_ = reg.counter("stream.records_total");
  opened_ctr_ = reg.counter("stream.flows_opened");
  finalized_ctr_ = reg.counter("stream.flows_finalized");
  evicted_fin_ctr_ = reg.counter("stream.evicted_fin");
  evicted_idle_ctr_ = reg.counter("stream.evicted_idle");
  evicted_lru_ctr_ = reg.counter("stream.evicted_lru");
  evicted_forced_ctr_ = reg.counter("stream.evicted_forced");
  early_ctr_ = reg.counter("stream.early_classified");
  active_g_ = reg.gauge("stream.flows_active");
  peak_g_ = reg.gauge("stream.flows_peak");
  imbalance_g_ = reg.gauge("stream.shard_imbalance");

  const unsigned jobs = cfg_.jobs == 0 ? runtime::default_jobs() : cfg_.jobs;
  if (jobs > 1) {
    pending_.resize(nshards_, nullptr);
    pending_first_seq_.resize(nshards_, 0);
    for (std::size_t i = 0; i < nshards_; ++i) {
      Shard& s = *shards_[i];
      for (std::size_t b = 0; b < batches_per_shard_; ++b) {
        batch_pool_.push_back(std::make_unique<std::vector<RoutedRecord>>());
        batch_pool_.back()->reserve(cfg_.batch_records);
        if (b == 0) {
          pending_[i] = batch_pool_.back().get();
        } else {
          s.recycle.try_push(batch_pool_.back().get());
        }
      }
    }
    const unsigned nworkers =
        static_cast<unsigned>(std::min<std::size_t>(jobs, nshards_));
    workers_.reserve(nworkers);
    for (unsigned w = 0; w < nworkers; ++w) {
      workers_.emplace_back([this, w, nworkers] { worker_loop(w, nworkers); });
    }
  }
}

StreamEngine::~StreamEngine() { stop_workers(); }

void StreamEngine::stop_workers() {
  if (workers_.empty()) return;
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void StreamEngine::worker_loop(unsigned worker_id, unsigned nworkers) {
  for (;;) {
    // Order matters: read the stop flag BEFORE sweeping. Every push
    // happens-before the stop store, so a sweep that starts after
    // observing stop and still finds every owned inbox empty proves the
    // inboxes are drained for good.
    const bool stopping = stop_.load(std::memory_order_acquire);
    bool did_work = false;
    for (std::size_t idx = worker_id; idx < nshards_; idx += nworkers) {
      Shard& s = *shards_[idx];
      std::vector<RoutedRecord>* batch = nullptr;
      while (s.inbox.try_pop(batch)) {
        for (const RoutedRecord& r : *batch) process_record(s, r);
        if (cfg_.ordered_drain && !batch->empty()) {
          // Release AFTER the batch's finalizations hit the ready queue:
          // a drain that acquires this watermark sees those emissions.
          s.processed.store(batch->back().seq, std::memory_order_release);
        }
        batch->clear();
        s.recycle.try_push(std::move(batch));  // capacity ≥ pool, never full
        s.inflight.fetch_sub(1, std::memory_order_release);
        did_work = true;
      }
    }
    if (did_work) continue;
    if (stopping) return;
    std::this_thread::yield();
  }
}

void StreamEngine::route(RoutedRecord r) {
  if (cfg_.ordered_drain) r.seq = seq_next_++;
  const std::size_t idx =
      shard_mask_ != 0 ? (r.hash & shard_mask_) : (r.hash % nshards_);
  if (workers_.empty()) {
    process_record(*shards_[idx], r);
    return;
  }
  enqueue_to_shard(idx, r);
}

void StreamEngine::enqueue_to_shard(std::size_t idx, const RoutedRecord& r) {
  std::vector<RoutedRecord>* batch = pending_[idx];
  if (batch->empty()) pending_first_seq_[idx] = r.seq;
  batch->push_back(r);
  if (batch->size() >= cfg_.batch_records) flush_pending(idx);
}

void StreamEngine::flush_pending(std::size_t idx) {
  Shard& s = *shards_[idx];
  std::vector<RoutedRecord>* full = pending_[idx];
  // Count the batch in flight before it becomes poppable, so the worker's
  // decrement can never be observed before our increment.
  s.inflight.fetch_add(1, std::memory_order_relaxed);
  while (!s.inbox.try_push(std::move(full))) {
    std::this_thread::yield();  // shard backlog: backpressure the reader
  }
  std::vector<RoutedRecord>* fresh = nullptr;
  while (!s.recycle.try_pop(fresh)) {
    std::this_thread::yield();
  }
  fresh->clear();
  pending_[idx] = fresh;
}

std::size_t StreamEngine::push_force_evict(std::size_t shard) {
  const std::size_t idx = shard % nshards_;
  RoutedRecord cmd;
  cmd.kind = RoutedKind::kEvictOldest;
  cmd.seq = seq_next_++;
  if (workers_.empty()) {
    process_record(*shards_[idx], cmd);
  } else {
    enqueue_to_shard(idx, cmd);
  }
  return idx;
}

std::size_t StreamEngine::resident_flows() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& sp : shards_) {
    total += sp->resident.load(std::memory_order_relaxed);
  }
  return total;
}

double StreamEngine::pressure() const {
  if (workers_.empty()) return 0.0;
  std::size_t worst = 0;
  for (const std::unique_ptr<Shard>& sp : shards_) {
    worst = std::max(worst, sp->inflight.load(std::memory_order_relaxed));
  }
  return static_cast<double>(worst) / static_cast<double>(batches_per_shard_);
}

void StreamEngine::push(const analysis::WireRecord& w) {
  records_ctr_.inc();
  route(route_record(w));
}

void StreamEngine::push_batch(std::span<const RoutedRecord> batch) {
  records_ctr_.add(batch.size());
  for (const RoutedRecord& r : batch) route(r);
}

void StreamEngine::process_record(Shard& s, const RoutedRecord& r) {
  s.cur_seq = r.seq;
  s.cur_emit = 0;
  s.cur_ingest_ns = r.kind == RoutedKind::kRecord ? r.ingest_ns : 0;
  s.cur_time = r.w.time;
  if (r.kind == RoutedKind::kEvictOldest) {
    // In-band shed command: force-finalize one resident flow at this exact
    // position in the shard's record stream (deterministic under replay).
    // An empty shard makes it a no-op — the seq is still consumed, which
    // is what keeps live and replayed emission positions aligned.
    if (!s.flows.empty()) evict_for_cap(s);
    return;
  }
  ++s.tally.records;
  const analysis::WireRecord& w = r.w;

  // Idle eviction first, in capture time, oldest first — a deterministic
  // function of the record stream.
  if (cfg_.idle_timeout > 0) {
    while (!s.lru.empty()) {
      const sim::FlowKey& oldest = s.lru.front();
      const auto it = s.flows.find(oldest);
      if (w.time - it->second.state.last_seen() <= cfg_.idle_timeout) break;
      finalize_flow(s, oldest, Evict::kIdle);
    }
  }

  Shard::Entry* entry;
  if (s.hot != nullptr && s.hot_key == r.canonical) {
    // The previous record touched this flow, so it is already at the back
    // of the LRU: the splice would be a no-op and the find redundant.
    entry = s.hot;
  } else {
    auto it = s.flows.find(HashedKey{r.canonical, r.hash});
    if (it == s.flows.end()) {
      if (per_shard_cap_ > 0 && s.flows.size() >= per_shard_cap_) {
        evict_for_cap(s);
      }
      it = s.flows.try_emplace(r.canonical, r.canonical).first;
      s.lru.push_back(r.canonical);
      it->second.lru_it = std::prev(s.lru.end());
      ++s.tally.flows_opened;
      opened_ctr_.inc();
      s.peak = std::max(s.peak, s.flows.size());
      s.resident.store(s.flows.size(), std::memory_order_relaxed);
    } else {
      s.lru.splice(s.lru.end(), s.lru, it->second.lru_it);
    }
    entry = &it->second;
    s.hot = entry;
    s.hot_key = r.canonical;
  }

  entry->state.ingest(w);
  if (entry->state.complete()) {
    finalize_flow(s, r.canonical, Evict::kFin);
  } else if (!entry->early_counted && entry->state.early_ready()) {
    entry->early_counted = true;
    ++s.tally.early_classified;
    early_ctr_.inc();
  }
}

void StreamEngine::evict_for_cap(Shard& s) {
  // Prefer the least-recently-active flow whose first slow-start period
  // has closed: its congestion signature is already frozen, so evicting it
  // early cannot change its verdict.
  for (const sim::FlowKey& key : s.lru) {
    if (s.flows.find(key)->second.state.slow_start_closed()) {
      finalize_flow(s, key, Evict::kLru);
      return;
    }
  }
  // No eligible victim: the cap is genuinely too small, drop the oldest.
  const sim::FlowKey oldest = s.lru.front();
  finalize_flow(s, oldest, Evict::kForced);
}

void StreamEngine::finalize_flow(Shard& s, const sim::FlowKey& canonical,
                                 Evict reason) {
  s.hot = nullptr;  // the erase below may invalidate the cached entry
  const auto it = s.flows.find(canonical);
  FinalizedFlow fin = it->second.state.finalize(cfg_.extract);
  if (fin.has_payload) {
    FlowReport report =
        analyzer_.report_from_extract(fin.data_key, std::move(fin.extracted),
                                      fin.throughput_bps, fin.duration,
                                      fin.data_packets);
    if (cfg_.ordered_drain && !eoc_phase_) {
      std::lock_guard<std::mutex> lk(s.ready_mu);
      s.ready.push_back(ReadyReport{s.cur_seq, s.cur_emit++, fin.start_time,
                                    s.cur_ingest_ns, s.cur_time,
                                    std::move(report)});
    } else {
      s.done.push_back(Shard::Done{fin.start_time, std::move(report)});
    }
  }
  s.lru.erase(it->second.lru_it);
  s.flows.erase(it);
  s.resident.store(s.flows.size(), std::memory_order_relaxed);
  ++s.tally.flows_finalized;
  finalized_ctr_.inc();
  switch (reason) {
    case Evict::kFin:
      ++s.tally.evicted_fin;
      evicted_fin_ctr_.inc();
      break;
    case Evict::kIdle:
      ++s.tally.evicted_idle;
      evicted_idle_ctr_.inc();
      break;
    case Evict::kLru:
      ++s.tally.evicted_lru;
      evicted_lru_ctr_.inc();
      break;
    case Evict::kForced:
      ++s.tally.evicted_forced;
      evicted_forced_ctr_.inc();
      break;
    case Evict::kEndOfCapture:
      break;
  }
}

std::vector<FlowReport> StreamEngine::finish() {
  obs::TraceSpan span("stream.finalize", "stream");
  if (!workers_.empty()) {
    for (std::size_t idx = 0; idx < nshards_; ++idx) {
      if (!pending_[idx]->empty()) flush_pending(idx);
    }
    stop_workers();
  }

  StreamStats total;
  std::size_t active = 0;
  std::uint64_t max_shard_records = 0;
  std::vector<Shard::Done> all;
  for (const std::unique_ptr<Shard>& sp : shards_) {
    Shard& s = *sp;
    active += s.flows.size();
    while (!s.lru.empty()) {
      finalize_flow(s, s.lru.front(), Evict::kEndOfCapture);
    }
    for (Shard::Done& d : s.done) all.push_back(std::move(d));
    s.done.clear();
    total.records += s.tally.records;
    total.flows_opened += s.tally.flows_opened;
    total.flows_finalized += s.tally.flows_finalized;
    total.evicted_fin += s.tally.evicted_fin;
    total.evicted_idle += s.tally.evicted_idle;
    total.evicted_lru += s.tally.evicted_lru;
    total.evicted_forced += s.tally.evicted_forced;
    total.early_classified += s.tally.early_classified;
    total.peak_active_flows += s.peak;
    max_shard_records = std::max(max_shard_records, s.tally.records);
  }

  std::sort(all.begin(), all.end(),
            [](const Shard::Done& a, const Shard::Done& b) {
              return analysis::flow_order_less(a.start, a.report.data_key,
                                               b.start, b.report.data_key);
            });
  std::vector<FlowReport> reports;
  reports.reserve(all.size());
  for (Shard::Done& d : all) reports.push_back(std::move(d.report));

  active_g_.set(static_cast<double>(active));
  peak_g_.set(static_cast<double>(total.peak_active_flows));
  if (total.records > 0) {
    const double mean = static_cast<double>(total.records) /
                        static_cast<double>(nshards_);
    imbalance_g_.set(static_cast<double>(max_shard_records) / mean);
  }

  final_stats_ = total;
  finished_ = true;
  return reports;
}

std::uint64_t StreamEngine::safe_threshold() const {
  // Exclusive bound: emissions with seq < threshold are all queued, because
  // every record that could still produce one carries a larger seq. Per
  // shard, the bound is (a) the processed watermark while batches are in
  // flight, else (b) the first unflushed pending seq, else (c) everything
  // assigned — an idle shard's future emissions can only come from records
  // not yet pushed, all of which get seqs >= seq_next_.
  std::uint64_t threshold = seq_next_;
  if (workers_.empty()) return threshold;  // inline: pushes are synchronous
  for (std::size_t i = 0; i < nshards_; ++i) {
    const Shard& s = *shards_[i];
    std::uint64_t bound;
    if (s.inflight.load(std::memory_order_acquire) > 0) {
      bound = s.processed.load(std::memory_order_acquire) + 1;
    } else if (!pending_[i]->empty()) {
      bound = pending_first_seq_[i];
    } else {
      bound = seq_next_;
    }
    threshold = std::min(threshold, bound);
  }
  return threshold;
}

void StreamEngine::extract_ready(std::uint64_t threshold,
                                 std::vector<ReadyReport>& out) {
  const auto base = static_cast<std::vector<ReadyReport>::difference_type>(
      out.size());
  for (const std::unique_ptr<Shard>& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lk(s.ready_mu);
    // Partition need not be stable: the extracted slice is sorted below
    // and the survivors get sorted on a later drain.
    const auto keep = std::partition(
        s.ready.begin(), s.ready.end(),
        [threshold](const ReadyReport& r) { return r.seq >= threshold; });
    for (auto it = keep; it != s.ready.end(); ++it) {
      out.push_back(std::move(*it));
    }
    s.ready.erase(keep, s.ready.end());
  }
  std::sort(out.begin() + base, out.end(),
            [](const ReadyReport& a, const ReadyReport& b) {
              return a.seq != b.seq ? a.seq < b.seq : a.emit_idx < b.emit_idx;
            });
}

void StreamEngine::drain_ready(std::vector<ReadyReport>& out) {
  extract_ready(safe_threshold(), out);
}

void StreamEngine::finish_ordered(std::vector<ReadyReport>& out) {
  obs::TraceSpan span("stream.finalize", "stream");
  if (!workers_.empty()) {
    for (std::size_t idx = 0; idx < nshards_; ++idx) {
      if (!pending_[idx]->empty()) flush_pending(idx);
    }
    stop_workers();
  }
  // Workers are gone and nothing is pending, so everything queued is final.
  extract_ready(seq_next_, out);

  // End-of-capture: finalize still-resident flows through the batch-shaped
  // done list, order them with the batch comparator, and append them after
  // every record-triggered emission under the first never-assigned seq.
  eoc_phase_ = true;
  StreamStats total;
  std::size_t active = 0;
  std::uint64_t max_shard_records = 0;
  std::vector<Shard::Done> eoc;
  for (const std::unique_ptr<Shard>& sp : shards_) {
    Shard& s = *sp;
    active += s.flows.size();
    while (!s.lru.empty()) {
      finalize_flow(s, s.lru.front(), Evict::kEndOfCapture);
    }
    for (Shard::Done& d : s.done) eoc.push_back(std::move(d));
    s.done.clear();
    total.records += s.tally.records;
    total.flows_opened += s.tally.flows_opened;
    total.flows_finalized += s.tally.flows_finalized;
    total.evicted_fin += s.tally.evicted_fin;
    total.evicted_idle += s.tally.evicted_idle;
    total.evicted_lru += s.tally.evicted_lru;
    total.evicted_forced += s.tally.evicted_forced;
    total.early_classified += s.tally.early_classified;
    total.peak_active_flows += s.peak;
    max_shard_records = std::max(max_shard_records, s.tally.records);
  }
  std::sort(eoc.begin(), eoc.end(),
            [](const Shard::Done& a, const Shard::Done& b) {
              return analysis::flow_order_less(a.start, a.report.data_key,
                                               b.start, b.report.data_key);
            });
  std::uint32_t emit = 0;
  for (Shard::Done& d : eoc) {
    out.push_back(ReadyReport{seq_next_, emit++, d.start, /*ingest_ns=*/0,
                              /*trigger_time=*/0, std::move(d.report)});
  }

  active_g_.set(static_cast<double>(active));
  peak_g_.set(static_cast<double>(total.peak_active_flows));
  if (total.records > 0) {
    const double mean = static_cast<double>(total.records) /
                        static_cast<double>(nshards_);
    imbalance_g_.set(static_cast<double>(max_shard_records) / mean);
  }
  final_stats_ = total;
  finished_ = true;
}

PcapAnalysis analyze_pcap_stream(const std::string& path,
                                 const FlowAnalyzer& analyzer,
                                 const StreamConfig& cfg,
                                 pcap::CursorMode mode) {
  PcapAnalysis out;
  StreamEngine engine(analyzer, cfg);
  obs::Counter bytes_ctr =
      obs::MetricsRegistry::global().counter("stream.bytes_ingested");
  obs::Gauge rate_g =
      obs::MetricsRegistry::global().gauge("stream.ingest_bytes_per_sec");
  std::uint64_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    obs::TraceSpan span("stream.ingest", "stream");
    BatchedIngest ingest(path, mode);
    std::vector<RoutedRecord> batch;
    batch.reserve(cfg.batch_records);
    while (ingest.fill(batch, cfg.batch_records) > 0) {
      engine.push_batch(batch);
      batch.clear();
    }
    if (ingest.error()) out.error = *ingest.error();
    bytes = ingest.bytes_consumed();
  } catch (const runtime::ParseException& e) {
    // A damaged file header surfaces at open; same contract as
    // analyze_pcap_checked — report the error, keep the (empty) prefix.
    out.error = e.error();
  }
  bytes_ctr.add(bytes);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs > 0) rate_g.set(static_cast<double>(bytes) / secs);
  out.reports = engine.finish();
  return out;
}

}  // namespace ccsig::stream

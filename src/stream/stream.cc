#include "stream/stream.h"

#include <algorithm>
#include <chrono>
#include <list>
#include <unordered_map>

#include "analysis/flow_trace.h"
#include "analysis/from_pcap.h"
#include "obs/trace.h"
#include "runtime/spsc_queue.h"
#include "runtime/thread_pool.h"
#include "stream/flow_state.h"

namespace ccsig::stream {
namespace {

// Batch buffers in circulation per shard: one being filled by the
// producer, the rest queued or being drained. Bounded, so a slow shard
// backpressures the reader instead of growing a queue.
constexpr std::size_t kBatchesPerShard = 4;

/// Heterogeneous lookup key carrying the hash computed at decode time, so
/// the per-record flow-table probe never rehashes the FlowKey.
struct HashedKey {
  const sim::FlowKey& key;
  std::size_t hash;
};

struct FlowHash {
  using is_transparent = void;
  std::size_t operator()(const sim::FlowKey& k) const {
    return sim::FlowKeyHash{}(k);
  }
  std::size_t operator()(const HashedKey& h) const { return h.hash; }
};

struct FlowEq {
  using is_transparent = void;
  bool operator()(const sim::FlowKey& a, const sim::FlowKey& b) const {
    return a == b;
  }
  bool operator()(const sim::FlowKey& a, const HashedKey& b) const {
    return a == b.key;
  }
  bool operator()(const HashedKey& a, const sim::FlowKey& b) const {
    return a.key == b;
  }
};

}  // namespace

struct StreamEngine::Shard {
  // Single-writer discipline: exactly one worker thread owns this shard
  // and is the only consumer of `inbox` / producer of `recycle`; the
  // pushing thread is the only producer of `inbox` / consumer of
  // `recycle`. Both edges are therefore strictly SPSC and the flow table
  // below needs no lock at all.
  runtime::SpscQueue<std::vector<RoutedRecord>*> inbox{kBatchesPerShard};
  runtime::SpscQueue<std::vector<RoutedRecord>*> recycle{kBatchesPerShard};

  struct Entry {
    explicit Entry(const sim::FlowKey& canonical) : state(canonical) {}
    FlowState state;
    std::list<sim::FlowKey>::iterator lru_it;
    bool early_counted = false;
  };
  std::unordered_map<sim::FlowKey, Entry, FlowHash, FlowEq> flows;
  std::list<sim::FlowKey> lru;  // front = least recently seen

  // Most-recently-touched entry, a pure cache over `flows`. Real traffic
  // interleaves data and ACK records of the same flow back-to-back, so
  // about half of all probes hit here and skip both the hash-table find
  // and the (then no-op) LRU splice. Entry pointers are node-stable;
  // finalize_flow clears this on any erase.
  Entry* hot = nullptr;
  sim::FlowKey hot_key;

  struct Done {
    sim::Time start;
    FlowReport report;
  };
  std::vector<Done> done;

  StreamStats tally;
  std::size_t peak = 0;
};

StreamEngine::StreamEngine(const FlowAnalyzer& analyzer, StreamConfig cfg)
    : analyzer_(analyzer), cfg_(cfg) {
  nshards_ = cfg_.shards > 0 ? cfg_.shards : StreamConfig::kDefaultShards;
  // hash % nshards is a hardware divide on the per-record path; the
  // default shard count is a power of two, where it is a mask.
  shard_mask_ = (nshards_ & (nshards_ - 1)) == 0 ? nshards_ - 1 : 0;
  if (cfg_.max_active_flows > 0) {
    per_shard_cap_ = std::max<std::size_t>(1, cfg_.max_active_flows / nshards_);
  }
  shards_.reserve(nshards_);
  for (std::size_t i = 0; i < nshards_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }

  auto& reg = obs::MetricsRegistry::global();
  records_ctr_ = reg.counter("stream.records_total");
  opened_ctr_ = reg.counter("stream.flows_opened");
  finalized_ctr_ = reg.counter("stream.flows_finalized");
  evicted_fin_ctr_ = reg.counter("stream.evicted_fin");
  evicted_idle_ctr_ = reg.counter("stream.evicted_idle");
  evicted_lru_ctr_ = reg.counter("stream.evicted_lru");
  evicted_forced_ctr_ = reg.counter("stream.evicted_forced");
  early_ctr_ = reg.counter("stream.early_classified");
  active_g_ = reg.gauge("stream.flows_active");
  peak_g_ = reg.gauge("stream.flows_peak");
  imbalance_g_ = reg.gauge("stream.shard_imbalance");

  const unsigned jobs = cfg_.jobs == 0 ? runtime::default_jobs() : cfg_.jobs;
  if (jobs > 1) {
    pending_.resize(nshards_, nullptr);
    for (std::size_t i = 0; i < nshards_; ++i) {
      Shard& s = *shards_[i];
      for (std::size_t b = 0; b < kBatchesPerShard; ++b) {
        batch_pool_.push_back(std::make_unique<std::vector<RoutedRecord>>());
        batch_pool_.back()->reserve(cfg_.batch_records);
        if (b == 0) {
          pending_[i] = batch_pool_.back().get();
        } else {
          s.recycle.try_push(batch_pool_.back().get());
        }
      }
    }
    const unsigned nworkers =
        static_cast<unsigned>(std::min<std::size_t>(jobs, nshards_));
    workers_.reserve(nworkers);
    for (unsigned w = 0; w < nworkers; ++w) {
      workers_.emplace_back([this, w, nworkers] { worker_loop(w, nworkers); });
    }
  }
}

StreamEngine::~StreamEngine() { stop_workers(); }

void StreamEngine::stop_workers() {
  if (workers_.empty()) return;
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void StreamEngine::worker_loop(unsigned worker_id, unsigned nworkers) {
  for (;;) {
    // Order matters: read the stop flag BEFORE sweeping. Every push
    // happens-before the stop store, so a sweep that starts after
    // observing stop and still finds every owned inbox empty proves the
    // inboxes are drained for good.
    const bool stopping = stop_.load(std::memory_order_acquire);
    bool did_work = false;
    for (std::size_t idx = worker_id; idx < nshards_; idx += nworkers) {
      Shard& s = *shards_[idx];
      std::vector<RoutedRecord>* batch = nullptr;
      while (s.inbox.try_pop(batch)) {
        for (const RoutedRecord& r : *batch) process_record(s, r);
        batch->clear();
        s.recycle.try_push(std::move(batch));  // capacity ≥ pool, never full
        did_work = true;
      }
    }
    if (did_work) continue;
    if (stopping) return;
    std::this_thread::yield();
  }
}

void StreamEngine::route(const RoutedRecord& r) {
  const std::size_t idx =
      shard_mask_ != 0 ? (r.hash & shard_mask_) : (r.hash % nshards_);
  if (workers_.empty()) {
    process_record(*shards_[idx], r);
    return;
  }
  std::vector<RoutedRecord>* batch = pending_[idx];
  batch->push_back(r);
  if (batch->size() >= cfg_.batch_records) flush_pending(idx);
}

void StreamEngine::flush_pending(std::size_t idx) {
  Shard& s = *shards_[idx];
  std::vector<RoutedRecord>* full = pending_[idx];
  while (!s.inbox.try_push(std::move(full))) {
    std::this_thread::yield();  // shard backlog: backpressure the reader
  }
  std::vector<RoutedRecord>* fresh = nullptr;
  while (!s.recycle.try_pop(fresh)) {
    std::this_thread::yield();
  }
  fresh->clear();
  pending_[idx] = fresh;
}

void StreamEngine::push(const analysis::WireRecord& w) {
  records_ctr_.inc();
  route(route_record(w));
}

void StreamEngine::push_batch(std::span<const RoutedRecord> batch) {
  records_ctr_.add(batch.size());
  for (const RoutedRecord& r : batch) route(r);
}

void StreamEngine::process_record(Shard& s, const RoutedRecord& r) {
  ++s.tally.records;
  const analysis::WireRecord& w = r.w;

  // Idle eviction first, in capture time, oldest first — a deterministic
  // function of the record stream.
  if (cfg_.idle_timeout > 0) {
    while (!s.lru.empty()) {
      const sim::FlowKey& oldest = s.lru.front();
      const auto it = s.flows.find(oldest);
      if (w.time - it->second.state.last_seen() <= cfg_.idle_timeout) break;
      finalize_flow(s, oldest, Evict::kIdle);
    }
  }

  Shard::Entry* entry;
  if (s.hot != nullptr && s.hot_key == r.canonical) {
    // The previous record touched this flow, so it is already at the back
    // of the LRU: the splice would be a no-op and the find redundant.
    entry = s.hot;
  } else {
    auto it = s.flows.find(HashedKey{r.canonical, r.hash});
    if (it == s.flows.end()) {
      if (per_shard_cap_ > 0 && s.flows.size() >= per_shard_cap_) {
        evict_for_cap(s);
      }
      it = s.flows.try_emplace(r.canonical, r.canonical).first;
      s.lru.push_back(r.canonical);
      it->second.lru_it = std::prev(s.lru.end());
      ++s.tally.flows_opened;
      opened_ctr_.inc();
      s.peak = std::max(s.peak, s.flows.size());
    } else {
      s.lru.splice(s.lru.end(), s.lru, it->second.lru_it);
    }
    entry = &it->second;
    s.hot = entry;
    s.hot_key = r.canonical;
  }

  entry->state.ingest(w);
  if (entry->state.complete()) {
    finalize_flow(s, r.canonical, Evict::kFin);
  } else if (!entry->early_counted && entry->state.early_ready()) {
    entry->early_counted = true;
    ++s.tally.early_classified;
    early_ctr_.inc();
  }
}

void StreamEngine::evict_for_cap(Shard& s) {
  // Prefer the least-recently-active flow whose first slow-start period
  // has closed: its congestion signature is already frozen, so evicting it
  // early cannot change its verdict.
  for (const sim::FlowKey& key : s.lru) {
    if (s.flows.find(key)->second.state.slow_start_closed()) {
      finalize_flow(s, key, Evict::kLru);
      return;
    }
  }
  // No eligible victim: the cap is genuinely too small, drop the oldest.
  const sim::FlowKey oldest = s.lru.front();
  finalize_flow(s, oldest, Evict::kForced);
}

void StreamEngine::finalize_flow(Shard& s, const sim::FlowKey& canonical,
                                 Evict reason) {
  s.hot = nullptr;  // the erase below may invalidate the cached entry
  const auto it = s.flows.find(canonical);
  FinalizedFlow fin = it->second.state.finalize(cfg_.extract);
  if (fin.has_payload) {
    s.done.push_back(Shard::Done{
        fin.start_time,
        analyzer_.report_from_extract(fin.data_key, std::move(fin.extracted),
                                      fin.throughput_bps, fin.duration,
                                      fin.data_packets)});
  }
  s.lru.erase(it->second.lru_it);
  s.flows.erase(it);
  ++s.tally.flows_finalized;
  finalized_ctr_.inc();
  switch (reason) {
    case Evict::kFin:
      ++s.tally.evicted_fin;
      evicted_fin_ctr_.inc();
      break;
    case Evict::kIdle:
      ++s.tally.evicted_idle;
      evicted_idle_ctr_.inc();
      break;
    case Evict::kLru:
      ++s.tally.evicted_lru;
      evicted_lru_ctr_.inc();
      break;
    case Evict::kForced:
      ++s.tally.evicted_forced;
      evicted_forced_ctr_.inc();
      break;
    case Evict::kEndOfCapture:
      break;
  }
}

std::vector<FlowReport> StreamEngine::finish() {
  obs::TraceSpan span("stream.finalize", "stream");
  if (!workers_.empty()) {
    for (std::size_t idx = 0; idx < nshards_; ++idx) {
      if (!pending_[idx]->empty()) flush_pending(idx);
    }
    stop_workers();
  }

  StreamStats total;
  std::size_t active = 0;
  std::uint64_t max_shard_records = 0;
  std::vector<Shard::Done> all;
  for (const std::unique_ptr<Shard>& sp : shards_) {
    Shard& s = *sp;
    active += s.flows.size();
    while (!s.lru.empty()) {
      finalize_flow(s, s.lru.front(), Evict::kEndOfCapture);
    }
    for (Shard::Done& d : s.done) all.push_back(std::move(d));
    s.done.clear();
    total.records += s.tally.records;
    total.flows_opened += s.tally.flows_opened;
    total.flows_finalized += s.tally.flows_finalized;
    total.evicted_fin += s.tally.evicted_fin;
    total.evicted_idle += s.tally.evicted_idle;
    total.evicted_lru += s.tally.evicted_lru;
    total.evicted_forced += s.tally.evicted_forced;
    total.early_classified += s.tally.early_classified;
    total.peak_active_flows += s.peak;
    max_shard_records = std::max(max_shard_records, s.tally.records);
  }

  std::sort(all.begin(), all.end(),
            [](const Shard::Done& a, const Shard::Done& b) {
              return analysis::flow_order_less(a.start, a.report.data_key,
                                               b.start, b.report.data_key);
            });
  std::vector<FlowReport> reports;
  reports.reserve(all.size());
  for (Shard::Done& d : all) reports.push_back(std::move(d.report));

  active_g_.set(static_cast<double>(active));
  peak_g_.set(static_cast<double>(total.peak_active_flows));
  if (total.records > 0) {
    const double mean = static_cast<double>(total.records) /
                        static_cast<double>(nshards_);
    imbalance_g_.set(static_cast<double>(max_shard_records) / mean);
  }

  final_stats_ = total;
  finished_ = true;
  return reports;
}

PcapAnalysis analyze_pcap_stream(const std::string& path,
                                 const FlowAnalyzer& analyzer,
                                 const StreamConfig& cfg,
                                 pcap::CursorMode mode) {
  PcapAnalysis out;
  StreamEngine engine(analyzer, cfg);
  obs::Counter bytes_ctr =
      obs::MetricsRegistry::global().counter("stream.bytes_ingested");
  obs::Gauge rate_g =
      obs::MetricsRegistry::global().gauge("stream.ingest_bytes_per_sec");
  std::uint64_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    obs::TraceSpan span("stream.ingest", "stream");
    BatchedIngest ingest(path, mode);
    std::vector<RoutedRecord> batch;
    batch.reserve(cfg.batch_records);
    while (ingest.fill(batch, cfg.batch_records) > 0) {
      engine.push_batch(batch);
      batch.clear();
    }
    if (ingest.error()) out.error = *ingest.error();
    bytes = ingest.bytes_consumed();
  } catch (const runtime::ParseException& e) {
    // A damaged file header surfaces at open; same contract as
    // analyze_pcap_checked — report the error, keep the (empty) prefix.
    out.error = e.error();
  }
  bytes_ctr.add(bytes);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs > 0) rate_g.set(static_cast<double>(bytes) / secs);
  out.reports = engine.finish();
  return out;
}

}  // namespace ccsig::stream

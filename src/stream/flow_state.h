// Incremental per-flow analysis state for the streaming engine.
//
// A FlowState consumes one connection's records in capture order and
// reproduces, field for field, what the batch pipeline computes from the
// fully materialized FlowTrace:
//
//   split_flows        -> per-direction payload/record/time accounting; the
//                         data direction is decided at finalize by payload
//                         majority, so BOTH direction hypotheses run
//                         incrementally (the losing one is nearly free: its
//                         "data" records carry no payload, so its pending
//                         map and sample vector stay empty).
//   detect_slow_start  -> first-retransmission cutoff + cumulative-ACK
//                         bookkeeping, updated per record.
//   extract_rtt_samples-> the merged two-pointer walk over data[] and
//                         acks[] is emulated exactly with a deferred-ACK
//                         FIFO: ACKs queue on arrival and are flushed once
//                         a record with a strictly later timestamp proves
//                         no more data can tie with them (the batch walk
//                         processes data first on timestamp ties, even
//                         when the ACK was captured first). The FIFO
//                         therefore only ever holds ACKs from the flow's
//                         single latest timestamp.
//   slow_start_throughput_bps -> the cumulative-ACK advance sequence is
//                         retained (pruned) and fed to the same scalar
//                         helper, so the division happens on identical
//                         integers.
//
// Equality holds for captures whose records are time-ordered (any real
// tap; every simulator capture). Two documented divergences: a 4-tuple
// reused after FIN/idle eviction starts a fresh flow here but is merged by
// the batch splitter, and captures with backwards-jumping timestamps may
// bucket ACKs differently (the batch feature extractor rejects those flows
// as kNonMonotonicTimestamps anyway).
//
// Memory: O(in-flight segments + slow-start RTT samples) per flow. Once
// the first slow-start period closes and the sampler passes its cutoff,
// every per-record structure is freed and further records touch only
// scalar counters — the bench_stream_ingest allocs_per_packet=0 bound.
// The one exception is a flow that never retransmits: its slow-start
// window extends to the end of the flow, whose midpoint is unknown until
// then, so the cumulative-ACK advances of the trailing half must be kept
// (16 bytes per advance; the LRU cap bounds the total).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "analysis/rtt_estimator.h"
#include "analysis/seq_unwrap.h"
#include "analysis/slow_start.h"
#include "features/extractor.h"
#include "sim/packet.h"
#include "sim/time.h"

namespace ccsig::stream {

/// Everything the engine needs to build the flow's FlowReport, produced
/// exactly once when the flow is finalized (FIN, idle, LRU, or end of
/// capture).
struct FinalizedFlow {
  bool has_payload = false;  // false: batch split_flows drops it too
  sim::FlowKey data_key;
  sim::Time start_time = 0;
  sim::Duration duration = 0;
  std::size_t data_packets = 0;
  double throughput_bps = 0;
  features::ExtractResult extracted;
};

class FlowState {
 public:
  explicit FlowState(const sim::FlowKey& canonical) : canonical_(canonical) {
    hyp_[0].data_dir = 0;
    hyp_[1].data_dir = 1;
  }

  /// Consumes one record of this connection (either direction).
  /// `w.key` must equal the canonical key or its reverse. Inline (defined
  /// below): this is the engine's per-record hot path, and for a quiescent
  /// flow it must compile down to scalar updates with no out-of-line call.
  void ingest(const analysis::WireRecord& w);

  /// Both directions sent a FIN and both FINs are acknowledged: no more
  /// records can belong to this flow, it can be finalized immediately.
  bool complete() const { return fin_acked(0) && fin_acked(1); }

  /// The first slow-start period of the (current payload-majority) data
  /// direction has closed — the flow is eligible for LRU eviction without
  /// losing its signature.
  bool slow_start_closed() const {
    return hyp_[payload_majority_dir()].ss_closed;
  }

  /// The flow's verdict inputs are frozen (slow start closed, sampler past
  /// its cutoff, throughput window computed): it could be classified now,
  /// before the flow ends. Basis of the stream.early_classified counter.
  bool early_ready() const {
    const Hypothesis& h = hyp_[payload_majority_dir()];
    return h.stopped && h.ss_done;
  }

  sim::Time last_seen() const { return last_seen_; }

  /// Finalizes: flushes deferred ACKs, closes the slow-start window if the
  /// flow never retransmitted, and extracts features. Call at most once.
  FinalizedFlow finalize(const features::ExtractOptions& opt);

 private:
  struct Outstanding {
    sim::Time sent_at;
    bool tainted;  // retransmitted range: excluded per Karn's rule
  };

  struct DeferredAck {
    sim::Time time;
    std::uint64_t ack;
    bool ack_flag;
    bool syn;
  };

  /// One direction-assignment hypothesis: `data_dir` is the data side.
  struct Hypothesis {
    int data_dir = 0;

    // RTT sampler (exact emulation of extract_rtt_samples' merged walk).
    std::map<std::uint64_t, Outstanding> pending;  // seq_end -> info
    std::uint64_t highest_sent = 0;
    std::vector<analysis::RttSample> samples;
    // Deferred-ACK FIFO as vector + head cursor: once drained it resets to
    // reuse its capacity, so the steady state allocates nothing.
    std::vector<DeferredAck> fifo;
    std::size_t fifo_head = 0;
    bool stopped = false;  // batch walk would have hit `break`

    // Slow-start boundary (detect_slow_start, data side).
    bool ss_closed = false;
    sim::Time ss_end = 0;

    // Slow-start ACK bookkeeping (detect_slow_start ack scan + the
    // throughput advance window), updated on ACK *arrival* — the batch
    // scans run over the raw acks vector, not the merged walk.
    std::uint64_t adv_max = 0;  // running max cumulative ACK
    std::deque<analysis::AckAdvance> advances;
    bool ss_done = false;  // ss stats computed, advances freed
    std::uint64_t ss_acked_raw = 0;
    std::optional<double> ss_throughput;

    void on_data(const analysis::TraceRecord& r);
    void on_ack(const analysis::TraceRecord& r, sim::Time flow_start);
    void flush_before(sim::Time t);
    void process_deferred(const DeferredAck& a);
    void prune_advances(sim::Time bound_end, sim::Time flow_start);
    void compute_ss_stats(sim::Time flow_start, sim::Time end,
                          bool by_retransmission);
  };

  int dir_of(const sim::FlowKey& key) const {
    return key == canonical_ ? 0 : 1;
  }

  /// The data direction the batch splitter would pick right now
  /// (`fwd_payload >= bwd_payload` keeps the canonical direction).
  int payload_majority_dir() const {
    return payload_[0] >= payload_[1] ? 0 : 1;
  }

  bool fin_acked(int dir) const {
    return fin_seen_[dir] && max_ack_[1 - dir] > fin_seq_end_[dir];
  }

  sim::Time start_time() const;
  sim::Time end_time() const;

  sim::FlowKey canonical_;
  struct DirUnwrap {
    analysis::SeqUnwrapper seq;
    analysis::SeqUnwrapper ack;
  };
  DirUnwrap unwrap_[2];

  // Per-direction accounting (dir 0 = canonical direction).
  std::uint64_t payload_[2] = {0, 0};
  std::uint64_t count_[2] = {0, 0};
  sim::Time first_time_[2] = {0, 0};
  sim::Time last_time_[2] = {0, 0};
  std::uint64_t max_ack_[2] = {0, 0};  // max r.ack among records OF dir
  bool fin_seen_[2] = {false, false};
  std::uint64_t fin_seq_end_[2] = {0, 0};
  sim::Time last_seen_ = 0;

  Hypothesis hyp_[2];
};

// ---------------------------------------------------------------------------
// Hot-path definitions, inline so the streaming engine's per-record loop
// sees through them. The cold helpers (process_deferred, compute_ss_stats,
// prune_advances, finalize) stay out of line in flow_state.cc.
// ---------------------------------------------------------------------------

inline void FlowState::Hypothesis::flush_before(sim::Time t) {
  while (fifo_head < fifo.size() && fifo[fifo_head].time < t) {
    process_deferred(fifo[fifo_head]);
    ++fifo_head;
    if (stopped) {
      // The batch walk's `break`: everything still queued is discarded and
      // nothing is retained for later records.
      std::vector<DeferredAck>().swap(fifo);
      fifo_head = 0;
      pending.clear();
      return;
    }
  }
  if (fifo_head == fifo.size()) {
    fifo.clear();  // keeps capacity: the steady state re-queues for free
    fifo_head = 0;
  }
}

inline void FlowState::Hypothesis::on_data(const analysis::TraceRecord& r) {
  if (stopped) return;
  flush_before(r.time);
  if (stopped) return;  // a flushed ACK hit the cutoff; batch skips the rest
  if (r.payload_bytes == 0) return;
  const std::uint64_t seq_end = r.seq + r.payload_bytes;
  const bool is_retx = seq_end <= highest_sent;
  auto [it, inserted] = pending.emplace(seq_end, Outstanding{r.time, is_retx});
  if (!inserted) {
    // Same range sent again: taint it and refresh the send time.
    it->second.tainted = true;
    it->second.sent_at = r.time;
  } else if (is_retx) {
    it->second.tainted = true;
  }
  highest_sent = std::max(highest_sent, seq_end);
  if (is_retx && !ss_closed) {
    ss_closed = true;
    ss_end = r.time;
  }
}

inline void FlowState::Hypothesis::on_ack(const analysis::TraceRecord& r,
                                          sim::Time flow_start) {
  // Slow-start ACK bookkeeping runs in raw arrival order with no flag
  // filter: both batch scans (detect_slow_start's acked_bytes and the
  // throughput advance builder) walk the acks vector directly and stop at
  // the first record past the slow-start end.
  if (!ss_done) {
    if (ss_closed && r.time > ss_end) {
      compute_ss_stats(flow_start, ss_end, /*by_retransmission=*/true);
    } else if (r.ack > adv_max) {
      adv_max = r.ack;
      advances.push_back(analysis::AckAdvance{r.time, r.ack});
      prune_advances(ss_closed ? ss_end : r.time, flow_start);
    }
  }
  // RTT sampler: this ACK may still tie with not-yet-captured data records
  // (which the batch walk would order first), so defer it; but any queued
  // ACK from a strictly earlier timestamp can no longer tie with future
  // data and is safe to process now.
  if (stopped) return;
  flush_before(r.time);
  if (stopped) return;
  if (!r.flags.ack || r.flags.syn) return;  // the walk ignores these anyway
  fifo.push_back(DeferredAck{r.time, r.ack, r.flags.ack, r.flags.syn});
}

inline sim::Time FlowState::start_time() const {
  sim::Time t = std::numeric_limits<sim::Time>::max();
  if (count_[0] > 0) t = std::min(t, first_time_[0]);
  if (count_[1] > 0) t = std::min(t, first_time_[1]);
  return t == std::numeric_limits<sim::Time>::max() ? 0 : t;
}

inline sim::Time FlowState::end_time() const {
  sim::Time t = 0;
  if (count_[0] > 0) t = std::max(t, last_time_[0]);
  if (count_[1] > 0) t = std::max(t, last_time_[1]);
  return t;
}

inline void FlowState::ingest(const analysis::WireRecord& w) {
  const int dir = dir_of(w.key);
  const analysis::TraceRecord r =
      analysis::unwrap_record(w, unwrap_[dir].seq, unwrap_[dir].ack);

  if (count_[dir] == 0) first_time_[dir] = r.time;
  ++count_[dir];
  last_time_[dir] = r.time;
  payload_[dir] += r.payload_bytes;
  if (r.ack > max_ack_[dir]) max_ack_[dir] = r.ack;
  if (r.flags.fin && !fin_seen_[dir]) {
    fin_seen_[dir] = true;
    fin_seq_end_[dir] = r.seq + r.payload_bytes;
  }
  last_seen_ = r.time;

  const sim::Time start = start_time();
  if (dir == 0) {
    hyp_[0].on_data(r);
    hyp_[1].on_ack(r, start);
  } else {
    hyp_[0].on_ack(r, start);
    hyp_[1].on_data(r);
  }
}

}  // namespace ccsig::stream

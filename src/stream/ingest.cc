#include "stream/ingest.h"

#include <cstring>

#include "analysis/from_pcap.h"

namespace ccsig::stream {
namespace {

// Mirrors the (packed, little-endian) on-disk record header in
// pcap_file.cc / cursor.cc. Host is little-endian on every platform the
// project targets, so a memcpy is a correct decode.
struct RecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_usec;
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

}  // namespace

BatchedIngest::BatchedIngest(const std::string& path, pcap::CursorMode mode,
                             bool tail)
    : cursor_(path, mode, tail) {}

std::size_t BatchedIngest::fill(std::vector<RoutedRecord>& out,
                                std::size_t max_records) {
  if (done_) return 0;
  std::size_t appended = 0;
  try {
    // Fused fast path (kMmap): walk the mapping directly, parsing the
    // record header and frame inline — no per-record call into next(), no
    // intermediate RecordView. Only records that are provably clean and
    // complete are consumed here; at the first byte that is not, the loop
    // falls through to the canonical cursor path below with the cursor
    // position untouched, so every edge case (truncation, corruption,
    // end-of-file) is validated — and every error produced — by the same
    // code as the streamed backend. Identical offsets, identical reasons.
    const std::uint32_t max_incl = cursor_.snaplen() + 65536u;
    const std::span<const std::uint8_t> rest = cursor_.mapped_rest();
    const std::uint8_t* p = rest.data();
    const std::uint8_t* const end = p + rest.size();
    std::uint64_t consumed_bytes = 0;
    std::uint64_t consumed_records = 0;
    while (appended < max_records) {
      if (static_cast<std::size_t>(end - p) < sizeof(RecordHeader)) break;
      RecordHeader rec;
      std::memcpy(&rec, p, sizeof(rec));
      if (rec.incl_len > max_incl ||
          static_cast<std::size_t>(end - p) - sizeof(rec) < rec.incl_len) {
        break;  // corrupt or truncated: let next() produce the error
      }
      const std::size_t total = sizeof(rec) + rec.incl_len;
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(p + total);
#endif
      const auto d = pcap::decode_frame({p + sizeof(rec), rec.incl_len});
      p += total;
      consumed_bytes += rec.incl_len;
      ++consumed_records;
      if (!d) continue;  // non-TCP/undecodable frame, same skip as batch
      // Build the routed record in place: one write per field, no
      // WireRecord intermediary bouncing through the stack.
      RoutedRecord& r = out.emplace_back();
      r.w.time = static_cast<sim::Time>(rec.ts_sec) * sim::kSecond +
                 static_cast<sim::Time>(rec.ts_usec) * sim::kMicrosecond;
      r.w.key.src_addr = d->src_ip & 0x00FFFFFFu;
      r.w.key.dst_addr = d->dst_ip & 0x00FFFFFFu;
      r.w.key.src_port = d->src_port;
      r.w.key.dst_port = d->dst_port;
      r.w.seq32 = d->seq32;
      r.w.ack32 = d->ack32;
      r.w.payload_bytes = d->payload_bytes;
      r.w.window = d->window;
      r.w.flags.syn = d->syn;
      r.w.flags.ack = d->ack;
      r.w.flags.fin = d->fin;
      r.w.flags.rst = d->rst;
      r.canonical = analysis::canonical_flow_key(r.w.key);
      r.hash = sim::FlowKeyHash{}(r.canonical);
      ++appended;
    }
    cursor_.consume_mapped(p - rest.data());
    bytes_ += consumed_bytes;
    records_ += consumed_records;
    // Canonical path: the streamed backend always, and the mmap backend's
    // file tail / anything the fused loop refused to consume.
    while (appended < max_records) {
      const auto rec = cursor_.next();
      if (!rec) {
        // A tailed capture that runs dry has merely caught up with the
        // writer; only a non-tail cursor's nullopt is a real end.
        if (!cursor_.tail()) done_ = true;
        break;
      }
      bytes_ += rec->data.size();
      ++records_;
      // Hint the upcoming bytes: in mmap mode the next record's header is
      // a page the kernel may not have faulted in yet; in stream mode it
      // is already-hot buffer memory and the prefetch is free.
      if (!rec->data.empty()) {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(rec->data.data() + rec->data.size());
#endif
      }
      const auto w = analysis::wire_record_from_frame(rec->timestamp,
                                                      rec->data);
      if (!w) continue;  // non-TCP/undecodable frame, same skip as batch
      out.push_back(route_record(*w));
      ++appended;
    }
  } catch (const runtime::ParseException& e) {
    // Same contract as analyze_pcap_checked: keep the clean prefix (the
    // records already appended) and surface the structured error.
    error_ = e.error();
    done_ = true;
  }
  return appended;
}

}  // namespace ccsig::stream

// Single-pass, bounded-memory streaming flow analysis.
//
// The batch path reads the whole capture into memory, splits it into
// flows, and analyzes each one — O(capture) memory. StreamEngine instead
// pushes records through a sharded flow table of incremental FlowStates
// and emits each flow's FlowReport the moment the flow ends (FIN handshake
// completed, idle timeout, LRU pressure, or end of capture) — O(active
// flows) memory regardless of capture size.
//
// Threading model (jobs > 1): each shard is owned by exactly one worker
// thread — a single writer — and record batches travel from the pushing
// thread to that worker over a lock-free SPSC ring (runtime/spsc_queue.h).
// There are no mutexes, no shared flow-table state, and no cross-shard
// contention anywhere on the hot path; batch buffers are recycled over a
// second SPSC ring, so steady-state ingest performs zero allocations.
//
// Determinism contract: records are routed to a shard by the hash of their
// canonical flow key, each shard processes its records strictly in push
// (capture) order (its ring is FIFO and it has one consumer), and the
// final report list is sorted with the same comparator as the batch
// splitter. The shard count — which defines the eviction partition — is a
// config value independent of `jobs`, so the output is byte-identical at
// any worker count, including jobs=1 inline. On time-ordered captures it
// is also byte-identical to FlowAnalyzer::analyze_pcap_checked (see
// flow_state.h for the exact equivalence argument and the two documented
// divergences).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/seq_unwrap.h"
#include "core/analyzer.h"
#include "features/extractor.h"
#include "obs/metrics.h"
#include "pcap/cursor.h"
#include "stream/ingest.h"
#include "sim/time.h"

namespace ccsig::stream {

struct StreamConfig {
  /// Worker threads. 1 processes inline on the pushing thread; 0 means
  /// runtime::default_jobs(). The output does not depend on this value.
  unsigned jobs = 1;
  /// Flow-table shards. The shard is part of the eviction semantics (the
  /// LRU cap is divided across shards), so this is NOT tied to `jobs`;
  /// 0 means kDefaultShards.
  unsigned shards = 0;
  static constexpr unsigned kDefaultShards = 8;
  /// Upper bound on simultaneously resident flows, divided evenly across
  /// shards (at least 1 each). 0 disables the cap.
  std::size_t max_active_flows = 65536;
  /// Evict flows with no activity for this long in *capture* time (so the
  /// result is a function of the capture, not of wall-clock scheduling).
  /// <= 0 disables idle eviction.
  sim::Duration idle_timeout = 0;
  /// Records per cross-thread batch when jobs > 1.
  std::size_t batch_records = 512;
  features::ExtractOptions extract;
};

/// Per-run tallies, valid after finish(). The same values are published to
/// obs::MetricsRegistry::global() under stream.* names; tests prefer this
/// struct because the global registry accumulates across runs.
struct StreamStats {
  std::uint64_t records = 0;
  std::uint64_t flows_opened = 0;
  std::uint64_t flows_finalized = 0;
  std::uint64_t evicted_fin = 0;
  std::uint64_t evicted_idle = 0;
  std::uint64_t evicted_lru = 0;
  /// LRU-cap evictions that found no slow-start-complete victim and had to
  /// drop the oldest flow regardless. Nonzero means max_active_flows is
  /// too small for the capture's concurrency.
  std::uint64_t evicted_forced = 0;
  /// Flows whose verdict inputs were frozen before the flow ended.
  std::uint64_t early_classified = 0;
  /// Sum over shards of each shard's peak resident flow count — the value
  /// the LRU cap bounds.
  std::size_t peak_active_flows = 0;
};

class StreamEngine {
 public:
  /// `analyzer` must outlive the engine.
  explicit StreamEngine(const FlowAnalyzer& analyzer, StreamConfig cfg = {});
  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;
  ~StreamEngine();

  /// Ingests one decoded record. Records must arrive in capture order.
  void push(const analysis::WireRecord& w);

  /// Ingests a batch of routed records (capture order within the span).
  /// The fast path: canonical keys and hashes were computed at decode
  /// time and are never recomputed.
  void push_batch(std::span<const RoutedRecord> batch);

  /// Flushes and finalizes every remaining flow and returns all reports in
  /// batch order (flow_order_less). Call exactly once; push() must not be
  /// called afterwards.
  std::vector<FlowReport> finish();

  /// Valid after finish().
  const StreamStats& stats() const { return final_stats_; }

 private:
  struct Shard;
  enum class Evict { kFin, kIdle, kLru, kForced, kEndOfCapture };

  void route(const RoutedRecord& r);
  void flush_pending(std::size_t idx);
  void worker_loop(unsigned worker_id, unsigned nworkers);
  void process_record(Shard& s, const RoutedRecord& r);
  void evict_for_cap(Shard& s);
  void finalize_flow(Shard& s, const sim::FlowKey& canonical, Evict reason);
  void stop_workers();

  const FlowAnalyzer& analyzer_;
  const StreamConfig cfg_;
  std::size_t nshards_ = 1;
  std::size_t shard_mask_ = 0;  // nshards_ - 1 when a power of two, else 0
  std::size_t per_shard_cap_ = 0;  // 0 = unlimited

  std::vector<std::unique_ptr<Shard>> shards_;
  // Producer-side per-shard batch being filled (untouched when inline).
  std::vector<std::vector<RoutedRecord>*> pending_;
  // Owns every batch buffer circulating through the rings.
  std::vector<std::unique_ptr<std::vector<RoutedRecord>>> batch_pool_;

  obs::Counter records_ctr_, opened_ctr_, finalized_ctr_;
  obs::Counter evicted_fin_ctr_, evicted_idle_ctr_, evicted_lru_ctr_,
      evicted_forced_ctr_, early_ctr_;
  obs::Gauge active_g_, peak_g_, imbalance_g_;

  StreamStats final_stats_;
  bool finished_ = false;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

/// Streaming equivalent of FlowAnalyzer::analyze_pcap_checked: analyzes the
/// longest clean record prefix of `path` in one pass and reports the parse
/// error that stopped reading, if any. `mode` selects the capture input
/// backend (mmap, buffered reads, or auto); the output is byte-identical
/// across backends.
PcapAnalysis analyze_pcap_stream(const std::string& path,
                                 const FlowAnalyzer& analyzer,
                                 const StreamConfig& cfg = {},
                                 pcap::CursorMode mode =
                                     pcap::CursorMode::kStream);

}  // namespace ccsig::stream

// Single-pass, bounded-memory streaming flow analysis.
//
// The batch path reads the whole capture into memory, splits it into
// flows, and analyzes each one — O(capture) memory. StreamEngine instead
// pushes records through a sharded flow table of incremental FlowStates
// and emits each flow's FlowReport the moment the flow ends (FIN handshake
// completed, idle timeout, LRU pressure, or end of capture) — O(active
// flows) memory regardless of capture size.
//
// Threading model (jobs > 1): each shard is owned by exactly one worker
// thread — a single writer — and record batches travel from the pushing
// thread to that worker over a lock-free SPSC ring (runtime/spsc_queue.h).
// There are no mutexes, no shared flow-table state, and no cross-shard
// contention anywhere on the hot path; batch buffers are recycled over a
// second SPSC ring, so steady-state ingest performs zero allocations.
//
// Determinism contract: records are routed to a shard by the hash of their
// canonical flow key, each shard processes its records strictly in push
// (capture) order (its ring is FIFO and it has one consumer), and the
// final report list is sorted with the same comparator as the batch
// splitter. The shard count — which defines the eviction partition — is a
// config value independent of `jobs`, so the output is byte-identical at
// any worker count, including jobs=1 inline. On time-ordered captures it
// is also byte-identical to FlowAnalyzer::analyze_pcap_checked (see
// flow_state.h for the exact equivalence argument and the two documented
// divergences).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/seq_unwrap.h"
#include "core/analyzer.h"
#include "features/extractor.h"
#include "obs/metrics.h"
#include "pcap/cursor.h"
#include "stream/ingest.h"
#include "sim/time.h"

namespace ccsig::stream {

struct StreamConfig {
  /// Worker threads. 1 processes inline on the pushing thread; 0 means
  /// runtime::default_jobs(). The output does not depend on this value.
  unsigned jobs = 1;
  /// Flow-table shards. The shard is part of the eviction semantics (the
  /// LRU cap is divided across shards), so this is NOT tied to `jobs`;
  /// 0 means kDefaultShards.
  unsigned shards = 0;
  static constexpr unsigned kDefaultShards = 8;
  /// Upper bound on simultaneously resident flows, divided evenly across
  /// shards (at least 1 each). 0 disables the cap.
  std::size_t max_active_flows = 65536;
  /// Evict flows with no activity for this long in *capture* time (so the
  /// result is a function of the capture, not of wall-clock scheduling).
  /// <= 0 disables idle eviction.
  sim::Duration idle_timeout = 0;
  /// Records per cross-thread batch when jobs > 1.
  std::size_t batch_records = 512;
  /// Batch buffers in circulation per shard when jobs > 1: one being
  /// filled by the producer, the rest queued or draining. Bounded, so a
  /// slow shard backpressures the pusher instead of growing a queue; the
  /// fill fraction of the fullest shard is what pressure() reports.
  /// Values below 2 are clamped to 2.
  std::size_t batches_per_shard = 4;
  /// Ordered incremental emission for the service layer. Every pushed
  /// record is stamped with a global arrival sequence number, finalized
  /// flows are queued per shard instead of held until finish(), and
  /// drain_ready() hands them out in an order that is a pure function of
  /// the pushed record sequence — byte-identical at any `jobs`. The
  /// batch-shaped finish() must not be used on an ordered engine (use
  /// finish_ordered()).
  bool ordered_drain = false;
  features::ExtractOptions extract;
};

/// Per-run tallies, valid after finish(). The same values are published to
/// obs::MetricsRegistry::global() under stream.* names; tests prefer this
/// struct because the global registry accumulates across runs.
struct StreamStats {
  std::uint64_t records = 0;
  std::uint64_t flows_opened = 0;
  std::uint64_t flows_finalized = 0;
  std::uint64_t evicted_fin = 0;
  std::uint64_t evicted_idle = 0;
  std::uint64_t evicted_lru = 0;
  /// LRU-cap evictions that found no slow-start-complete victim and had to
  /// drop the oldest flow regardless. Nonzero means max_active_flows is
  /// too small for the capture's concurrency.
  std::uint64_t evicted_forced = 0;
  /// Flows whose verdict inputs were frozen before the flow ended.
  std::uint64_t early_classified = 0;
  /// Sum over shards of each shard's peak resident flow count — the value
  /// the LRU cap bounds.
  std::size_t peak_active_flows = 0;
};

/// One flow verdict emitted by an ordered-drain engine, tagged with its
/// deterministic position in the emission order: `seq` is the global
/// arrival index of the record (or force-evict command) that triggered the
/// finalization, `emit_idx` breaks ties among the finalizations one record
/// triggers inside its shard (a record only ever finalizes flows in its
/// own shard, so (seq, emit_idx) is a total order). End-of-capture
/// finalizations share the first never-assigned seq and are emit_idx'd in
/// flow_order_less order.
struct ReadyReport {
  std::uint64_t seq = 0;
  std::uint32_t emit_idx = 0;
  sim::Time start = 0;
  /// Latency freight from the record that triggered this finalization:
  /// its service ingest stamp (0 = untracked, e.g. an end-of-capture or
  /// force-evict finalization) and its capture timestamp. The service
  /// layer turns these into ingest->verdict / capture->verdict latency
  /// histograms at emission; they never affect verdict bytes or order.
  std::int64_t trigger_ingest_ns = 0;
  sim::Time trigger_time = 0;
  FlowReport report;
};

class StreamEngine {
 public:
  /// `analyzer` must outlive the engine.
  explicit StreamEngine(const FlowAnalyzer& analyzer, StreamConfig cfg = {});
  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;
  ~StreamEngine();

  /// Ingests one decoded record. Records must arrive in capture order.
  void push(const analysis::WireRecord& w);

  /// Ingests a batch of routed records (capture order within the span).
  /// The fast path: canonical keys and hashes were computed at decode
  /// time and are never recomputed.
  void push_batch(std::span<const RoutedRecord> batch);

  /// Flushes and finalizes every remaining flow and returns all reports in
  /// batch order (flow_order_less). Call exactly once; push() must not be
  /// called afterwards.
  std::vector<FlowReport> finish();

  /// Valid after finish() / finish_ordered().
  const StreamStats& stats() const { return final_stats_; }

  // -- Ordered-drain interface (cfg.ordered_drain, single control thread) --
  // The service layer pushes records, periodically drains whatever has
  // become safely emittable, and finish_ordered()s at drain time. All of
  // these must be called from the one thread that also pushes.

  /// Injects an in-band force-evict command: the chosen shard's worker
  /// force-finalizes one resident flow (evict_for_cap policy) at this
  /// exact position in its record stream, so a replayed session sheds the
  /// same flow at the same point. `shard` past the shard count is taken
  /// modulo (callers round-robin without knowing the count). Returns the
  /// shard actually targeted, which the service records in the session.
  std::size_t push_force_evict(std::size_t shard);

  /// Appends every finalized flow whose emission position is already
  /// determined — no record still in flight can precede it — in (seq,
  /// emit_idx) order. Across calls the concatenated output is a pure
  /// function of the pushed record sequence, independent of `jobs` and of
  /// when drains happen.
  void drain_ready(std::vector<ReadyReport>& out);

  /// Ordered-drain finish: flushes workers, drains every queued emission,
  /// then finalizes still-resident flows in flow_order_less order (the
  /// end-of-capture tail of the emission order). Call exactly once.
  void finish_ordered(std::vector<ReadyReport>& out);

  /// Fill fraction [0, 1] of the fullest shard inbox — the engine-side
  /// overload signal the service's shed ladder keys on. Always 0 when
  /// inline (jobs == 1): pushes process synchronously and cannot lag.
  double pressure() const;

  /// Currently-resident flow count summed over shards (live flow-table
  /// occupancy for statusz). Each shard's worker publishes its table size
  /// with one relaxed store per open/finalize, so this read is cheap,
  /// lock-free, and at worst one flow stale per shard.
  std::size_t resident_flows() const;

  std::size_t shard_count() const { return nshards_; }

 private:
  struct Shard;
  enum class Evict { kFin, kIdle, kLru, kForced, kEndOfCapture };

  void route(RoutedRecord r);
  void enqueue_to_shard(std::size_t idx, const RoutedRecord& r);
  void flush_pending(std::size_t idx);
  void worker_loop(unsigned worker_id, unsigned nworkers);
  void process_record(Shard& s, const RoutedRecord& r);
  void evict_for_cap(Shard& s);
  void finalize_flow(Shard& s, const sim::FlowKey& canonical, Evict reason);
  void stop_workers();
  /// Exclusive seq bound below which every emission is already queued.
  std::uint64_t safe_threshold() const;
  /// Moves queued emissions with seq < `threshold` to `out`, sorted.
  void extract_ready(std::uint64_t threshold, std::vector<ReadyReport>& out);

  const FlowAnalyzer& analyzer_;
  const StreamConfig cfg_;
  std::size_t nshards_ = 1;
  std::size_t shard_mask_ = 0;  // nshards_ - 1 when a power of two, else 0
  std::size_t per_shard_cap_ = 0;  // 0 = unlimited
  std::size_t batches_per_shard_ = 4;
  // Next global arrival index (ordered_drain). Starts at 1 so the
  // watermark value 0 unambiguously means "nothing processed yet".
  std::uint64_t seq_next_ = 1;
  // End-of-capture phase: workers are stopped and finalize_flow routes to
  // the batch-shaped done list even on an ordered engine.
  bool eoc_phase_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  // Producer-side per-shard batch being filled (untouched when inline).
  std::vector<std::vector<RoutedRecord>*> pending_;
  // seq of pending_[i]'s first record (meaningful while it is non-empty);
  // owned by the control thread like pending_ itself.
  std::vector<std::uint64_t> pending_first_seq_;
  // Owns every batch buffer circulating through the rings.
  std::vector<std::unique_ptr<std::vector<RoutedRecord>>> batch_pool_;

  obs::Counter records_ctr_, opened_ctr_, finalized_ctr_;
  obs::Counter evicted_fin_ctr_, evicted_idle_ctr_, evicted_lru_ctr_,
      evicted_forced_ctr_, early_ctr_;
  obs::Gauge active_g_, peak_g_, imbalance_g_;

  StreamStats final_stats_;
  bool finished_ = false;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

/// Streaming equivalent of FlowAnalyzer::analyze_pcap_checked: analyzes the
/// longest clean record prefix of `path` in one pass and reports the parse
/// error that stopped reading, if any. `mode` selects the capture input
/// backend (mmap, buffered reads, or auto); the output is byte-identical
/// across backends.
PcapAnalysis analyze_pcap_stream(const std::string& path,
                                 const FlowAnalyzer& analyzer,
                                 const StreamConfig& cfg = {},
                                 pcap::CursorMode mode =
                                     pcap::CursorMode::kStream);

}  // namespace ccsig::stream

// Batched zero-copy pcap ingest for the streaming engine.
//
// The PR 5 ingest loop pulled one record at a time through the cursor,
// decoded it, and pushed it into the engine — three call chains and two
// canonical-key hash computations per packet. BatchedIngest instead
// decodes a whole chunk of records into a prefetch-friendly contiguous
// RoutedRecord batch, computing the canonical flow key and its hash once
// per record; the engine then routes and looks flows up with the
// precomputed hash and never rehashes.
//
// Error semantics are exactly the cursor's (which are exactly
// PcapReader's): on a damaged capture, fill() returns the records decoded
// before the damage and records the structured ParseError — the clean
// prefix is never lost to batching.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/flow_trace.h"
#include "analysis/seq_unwrap.h"
#include "pcap/cursor.h"
#include "runtime/parse_error.h"
#include "sim/packet.h"

namespace ccsig::stream {

/// What a RoutedRecord carries through a shard inbox. Almost always a data
/// record; kEvictOldest is an in-band control command the service layer
/// injects under memory pressure — it tells the owning shard worker to
/// force-finalize its least-recently-touched flow at a deterministic
/// position in that shard's record stream (so a replayed session sheds the
/// exact same flows at the exact same points).
enum class RoutedKind : std::uint8_t { kRecord = 0, kEvictOldest = 1 };

/// One decoded record plus its routing precomputation: the canonical
/// (direction-independent) flow key and that key's hash, computed exactly
/// once at decode time and reused for shard routing and flow-table
/// lookup. Trivially copyable so batches cross threads as memcpys.
struct RoutedRecord {
  analysis::WireRecord w;
  sim::FlowKey canonical;
  std::size_t hash = 0;
  std::uint64_t seq = 0;  // global arrival index, stamped by the engine
  /// Wall-clock nanoseconds when the record entered the service (stamped
  /// by the ingest loop; 0 = untracked). Pure observability freight: the
  /// engine copies it into the emission that the record triggers so the
  /// service can histogram ingest->verdict latency, and it never
  /// influences routing, analysis, or emission order.
  std::int64_t ingest_ns = 0;
  RoutedKind kind = RoutedKind::kRecord;
};

static_assert(std::is_trivially_copyable_v<RoutedRecord>);

inline RoutedRecord route_record(const analysis::WireRecord& w) {
  RoutedRecord r;
  r.w = w;
  r.canonical = analysis::canonical_flow_key(w.key);
  r.hash = sim::FlowKeyHash{}(r.canonical);
  return r;
}

class BatchedIngest {
 public:
  /// Opens the capture. Throws runtime::ParseException on a damaged file
  /// header, same as the cursor — except in `tail` mode, where a header
  /// still being written is a retryable state, not an error (the cursor
  /// defers parsing it; see PcapCursor's tail contract).
  explicit BatchedIngest(const std::string& path,
                         pcap::CursorMode mode = pcap::CursorMode::kStream,
                         bool tail = false);

  /// Appends up to `max_records` decoded records to `out` (which is NOT
  /// cleared), skipping non-TCP/undecodable frames exactly as the batch
  /// path does. Returns the number appended; 0 means end of capture or a
  /// parse error — check error(). After an error, further calls return 0.
  std::size_t fill(std::vector<RoutedRecord>& out, std::size_t max_records);

  /// The structured error that stopped ingest, if any. The records
  /// decoded before the damage were all returned by fill().
  const std::optional<runtime::ParseError>& error() const { return error_; }

  /// Raw capture bytes consumed so far (record bodies).
  std::uint64_t bytes_consumed() const { return bytes_; }
  std::uint64_t records_decoded() const { return records_; }
  pcap::CursorMode mode() const { return cursor_.mode(); }

  /// True once the capture has genuinely ended (clean EOF in non-tail
  /// mode, or a parse error in either mode). A tail-mode fill() that
  /// returns 0 with exhausted() false just caught up with the writer —
  /// call fill() again later.
  bool exhausted() const { return done_; }
  const pcap::PcapCursor& cursor() const { return cursor_; }

 private:
  pcap::PcapCursor cursor_;
  std::optional<runtime::ParseError> error_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
  bool done_ = false;
};

}  // namespace ccsig::stream

#include "stream/flow_state.h"

#include <algorithm>
#include <limits>

namespace ccsig::stream {

// ---------------------------------------------------------------------------
// Hypothesis: one direction assignment, run incrementally.
// ---------------------------------------------------------------------------

void FlowState::Hypothesis::flush_before(sim::Time t) {
  while (fifo_head < fifo.size() && fifo[fifo_head].time < t) {
    process_deferred(fifo[fifo_head]);
    ++fifo_head;
    if (stopped) {
      // The batch walk's `break`: everything still queued is discarded and
      // nothing is retained for later records.
      std::vector<DeferredAck>().swap(fifo);
      fifo_head = 0;
      pending.clear();
      return;
    }
  }
  if (fifo_head == fifo.size()) {
    fifo.clear();  // keeps capacity: the steady state re-queues for free
    fifo_head = 0;
  }
}

void FlowState::Hypothesis::process_deferred(const DeferredAck& a) {
  // Mirrors the ACK arm of extract_rtt_samples' merged walk, one step.
  if (!a.ack_flag || a.syn) return;
  if (ss_closed && a.time > ss_end) {
    stopped = true;  // caller frees pending + remaining FIFO
    return;
  }
  auto it = pending.upper_bound(a.ack);
  if (it == pending.begin()) return;
  --it;
  if (!it->second.tainted) {
    samples.push_back(
        analysis::RttSample{a.time, a.time - it->second.sent_at, it->first});
  }
  pending.erase(pending.begin(), std::next(it));
}

void FlowState::Hypothesis::on_data(const analysis::TraceRecord& r) {
  if (stopped) return;
  flush_before(r.time);
  if (stopped) return;  // a flushed ACK hit the cutoff; batch skips the rest
  if (r.payload_bytes == 0) return;
  const std::uint64_t seq_end = r.seq + r.payload_bytes;
  const bool is_retx = seq_end <= highest_sent;
  auto [it, inserted] = pending.emplace(seq_end, Outstanding{r.time, is_retx});
  if (!inserted) {
    // Same range sent again: taint it and refresh the send time.
    it->second.tainted = true;
    it->second.sent_at = r.time;
  } else if (is_retx) {
    it->second.tainted = true;
  }
  highest_sent = std::max(highest_sent, seq_end);
  if (is_retx && !ss_closed) {
    ss_closed = true;
    ss_end = r.time;
  }
}

void FlowState::Hypothesis::prune_advances(sim::Time bound_end,
                                           sim::Time flow_start) {
  // `bound_end` is a lower bound on the final slow-start end time, so
  // `bound` is a lower bound on the final window midpoint (integer division
  // is monotone). Advances at or before the midpoint only matter through
  // their maximum, which is the last one — everything before it can go.
  const sim::Time bound = flow_start + (bound_end - flow_start) / 2;
  while (advances.size() >= 2 && advances[1].time <= bound) {
    advances.pop_front();
  }
}

void FlowState::Hypothesis::on_ack(const analysis::TraceRecord& r,
                                   sim::Time flow_start) {
  // Slow-start ACK bookkeeping runs in raw arrival order with no flag
  // filter: both batch scans (detect_slow_start's acked_bytes and the
  // throughput advance builder) walk the acks vector directly and stop at
  // the first record past the slow-start end.
  if (!ss_done) {
    if (ss_closed && r.time > ss_end) {
      compute_ss_stats(flow_start, ss_end, /*by_retransmission=*/true);
    } else if (r.ack > adv_max) {
      adv_max = r.ack;
      advances.push_back(analysis::AckAdvance{r.time, r.ack});
      prune_advances(ss_closed ? ss_end : r.time, flow_start);
    }
  }
  // RTT sampler: this ACK may still tie with not-yet-captured data records
  // (which the batch walk would order first), so defer it; but any queued
  // ACK from a strictly earlier timestamp can no longer tie with future
  // data and is safe to process now.
  if (stopped) return;
  flush_before(r.time);
  if (stopped) return;
  if (!r.flags.ack || r.flags.syn) return;  // the walk ignores these anyway
  fifo.push_back(DeferredAck{r.time, r.ack, r.flags.ack, r.flags.syn});
}

void FlowState::Hypothesis::compute_ss_stats(sim::Time flow_start,
                                             sim::Time end,
                                             bool by_retransmission) {
  ss_done = true;
  ss_acked_raw = adv_max > 1 ? adv_max - 1 : 0;
  analysis::SlowStartInfo info;
  info.end_time = end;
  info.ended_by_retransmission = by_retransmission;
  info.acked_bytes = ss_acked_raw;
  const std::vector<analysis::AckAdvance> v(advances.begin(), advances.end());
  ss_throughput =
      analysis::slow_start_throughput_from_advances(flow_start, info, v);
  std::deque<analysis::AckAdvance>().swap(advances);
}

// ---------------------------------------------------------------------------
// FlowState
// ---------------------------------------------------------------------------

sim::Time FlowState::start_time() const {
  sim::Time t = std::numeric_limits<sim::Time>::max();
  if (count_[0] > 0) t = std::min(t, first_time_[0]);
  if (count_[1] > 0) t = std::min(t, first_time_[1]);
  return t == std::numeric_limits<sim::Time>::max() ? 0 : t;
}

sim::Time FlowState::end_time() const {
  sim::Time t = 0;
  if (count_[0] > 0) t = std::max(t, last_time_[0]);
  if (count_[1] > 0) t = std::max(t, last_time_[1]);
  return t;
}

void FlowState::ingest(const analysis::WireRecord& w) {
  const int dir = dir_of(w.key);
  const analysis::TraceRecord r =
      analysis::unwrap_record(w, unwrap_[dir].seq, unwrap_[dir].ack);

  if (count_[dir] == 0) first_time_[dir] = r.time;
  ++count_[dir];
  last_time_[dir] = r.time;
  payload_[dir] += r.payload_bytes;
  if (r.ack > max_ack_[dir]) max_ack_[dir] = r.ack;
  if (r.flags.fin && !fin_seen_[dir]) {
    fin_seen_[dir] = true;
    fin_seq_end_[dir] = r.seq + r.payload_bytes;
  }
  last_seen_ = r.time;

  const sim::Time start = start_time();
  if (dir == 0) {
    hyp_[0].on_data(r);
    hyp_[1].on_ack(r, start);
  } else {
    hyp_[0].on_ack(r, start);
    hyp_[1].on_data(r);
  }
}

FinalizedFlow FlowState::finalize(const features::ExtractOptions& opt) {
  FinalizedFlow out;
  if (payload_[0] == 0 && payload_[1] == 0) return out;  // split_flows drops
  out.has_payload = true;
  const int data_dir = payload_majority_dir();
  const int ack_dir = 1 - data_dir;
  out.data_key = data_dir == 0 ? canonical_ : canonical_.reversed();

  const sim::Time start = start_time();
  const sim::Time end = end_time();
  out.start_time = start;
  out.duration = end - start;
  out.data_packets = count_[data_dir];

  // Whole-flow goodput, FlowTrace::acked_bytes convention (highest ACK − 1
  // for the ISN-0 framing).
  const std::uint64_t max_ack = max_ack_[ack_dir];
  const std::uint64_t acked = max_ack > 1 ? max_ack - 1 : 0;
  const std::optional<double> flow_tput =
      analysis::throughput_bps(acked, out.duration);
  out.throughput_bps = flow_tput.value_or(0.0);

  Hypothesis& h = hyp_[data_dir];
  // Any ACKs still deferred can no longer tie with data (there is none
  // left); process them — the tail of the batch merge walk.
  h.flush_before(std::numeric_limits<sim::Time>::max());
  if (!h.ss_done) {
    // No ACK-direction record ever passed the slow-start end, so every
    // advance was retained; close the window exactly as detect_slow_start
    // does when no retransmission (or no later record) exists.
    h.compute_ss_stats(start, h.ss_closed ? h.ss_end : end, h.ss_closed);
  }
  analysis::SlowStartInfo ss;
  ss.end_time = h.ss_closed ? h.ss_end : end;
  ss.ended_by_retransmission = h.ss_closed;
  ss.acked_bytes = h.ss_acked_raw;

  if (count_[data_dir] == 0 || count_[ack_dir] == 0) {
    out.extracted.insufficiency = features::Insufficiency::kNoData;
  } else {
    out.extracted = features::features_from_slow_start(
        h.samples, ss, h.ss_throughput, flow_tput, out.duration, opt);
  }
  return out;
}

}  // namespace ccsig::stream

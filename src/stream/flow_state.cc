#include "stream/flow_state.h"

#include <algorithm>
#include <limits>

namespace ccsig::stream {

// ---------------------------------------------------------------------------
// Hypothesis: one direction assignment, run incrementally.
// ---------------------------------------------------------------------------

void FlowState::Hypothesis::process_deferred(const DeferredAck& a) {
  // Mirrors the ACK arm of extract_rtt_samples' merged walk, one step.
  if (!a.ack_flag || a.syn) return;
  if (ss_closed && a.time > ss_end) {
    stopped = true;  // caller frees pending + remaining FIFO
    return;
  }
  auto it = pending.upper_bound(a.ack);
  if (it == pending.begin()) return;
  --it;
  if (!it->second.tainted) {
    samples.push_back(
        analysis::RttSample{a.time, a.time - it->second.sent_at, it->first});
  }
  pending.erase(pending.begin(), std::next(it));
}

void FlowState::Hypothesis::prune_advances(sim::Time bound_end,
                                           sim::Time flow_start) {
  // `bound_end` is a lower bound on the final slow-start end time, so
  // `bound` is a lower bound on the final window midpoint (integer division
  // is monotone). Advances at or before the midpoint only matter through
  // their maximum, which is the last one — everything before it can go.
  const sim::Time bound = flow_start + (bound_end - flow_start) / 2;
  while (advances.size() >= 2 && advances[1].time <= bound) {
    advances.pop_front();
  }
}

void FlowState::Hypothesis::compute_ss_stats(sim::Time flow_start,
                                             sim::Time end,
                                             bool by_retransmission) {
  ss_done = true;
  ss_acked_raw = adv_max > 1 ? adv_max - 1 : 0;
  analysis::SlowStartInfo info;
  info.end_time = end;
  info.ended_by_retransmission = by_retransmission;
  info.acked_bytes = ss_acked_raw;
  const std::vector<analysis::AckAdvance> v(advances.begin(), advances.end());
  ss_throughput =
      analysis::slow_start_throughput_from_advances(flow_start, info, v);
  std::deque<analysis::AckAdvance>().swap(advances);
}

// ---------------------------------------------------------------------------
// FlowState
// ---------------------------------------------------------------------------

FinalizedFlow FlowState::finalize(const features::ExtractOptions& opt) {
  FinalizedFlow out;
  if (payload_[0] == 0 && payload_[1] == 0) return out;  // split_flows drops
  out.has_payload = true;
  const int data_dir = payload_majority_dir();
  const int ack_dir = 1 - data_dir;
  out.data_key = data_dir == 0 ? canonical_ : canonical_.reversed();

  const sim::Time start = start_time();
  const sim::Time end = end_time();
  out.start_time = start;
  out.duration = end - start;
  out.data_packets = count_[data_dir];

  // Whole-flow goodput, FlowTrace::acked_bytes convention (highest ACK − 1
  // for the ISN-0 framing).
  const std::uint64_t max_ack = max_ack_[ack_dir];
  const std::uint64_t acked = max_ack > 1 ? max_ack - 1 : 0;
  const std::optional<double> flow_tput =
      analysis::throughput_bps(acked, out.duration);
  out.throughput_bps = flow_tput.value_or(0.0);

  Hypothesis& h = hyp_[data_dir];
  // Any ACKs still deferred can no longer tie with data (there is none
  // left); process them — the tail of the batch merge walk.
  h.flush_before(std::numeric_limits<sim::Time>::max());
  if (!h.ss_done) {
    // No ACK-direction record ever passed the slow-start end, so every
    // advance was retained; close the window exactly as detect_slow_start
    // does when no retransmission (or no later record) exists.
    h.compute_ss_stats(start, h.ss_closed ? h.ss_end : end, h.ss_closed);
  }
  analysis::SlowStartInfo ss;
  ss.end_time = h.ss_closed ? h.ss_end : end;
  ss.ended_by_retransmission = h.ss_closed;
  ss.acked_bytes = h.ss_acked_raw;

  if (count_[data_dir] == 0 || count_[ack_dir] == 0) {
    out.extracted.insufficiency = features::Insufficiency::kNoData;
  } else {
    out.extracted = features::features_from_slow_start(
        h.samples, ss, h.ss_throughput, flow_tput, out.duration, opt);
  }
  return out;
}

}  // namespace ccsig::stream

// ccsig::obs — shared command-line wiring for the observability side
// files every tool exposes:
//
//   --metrics-out FILE    final MetricsRegistry snapshot as JSON
//   --metrics-prom FILE   the same snapshot as Prometheus text exposition
//   --trace-out FILE      Chrome trace-event JSON (chrome://tracing, Perfetto)
//
// ToolObs is constructed once in main() after flag parsing. When a trace
// path was given it installs a process-global TraceWriter so every
// obs::TraceSpan in the libraries records; finalize() (idempotent, also run
// by the destructor) uninstalls the writer and writes both files with the
// repo's atomic temp+rename discipline. Both outputs are side files: they
// never touch stdout and never change what the tool computes.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "runtime/atomic_file.h"

namespace ccsig::obs {

class ToolObs {
 public:
  ToolObs(std::string metrics_out, std::string trace_out,
          std::string process_name, std::string metrics_prom = {})
      : metrics_out_(std::move(metrics_out)),
        metrics_prom_(std::move(metrics_prom)),
        trace_out_(std::move(trace_out)),
        process_name_(std::move(process_name)) {
    if (!trace_out_.empty()) {
      writer_ = std::make_unique<TraceWriter>();
      TraceWriter::install_global(writer_.get());
    }
  }

  ToolObs(const ToolObs&) = delete;
  ToolObs& operator=(const ToolObs&) = delete;

  ~ToolObs() {
    try {
      finalize();
    } catch (...) {
      // Destructor path: losing a diagnostics side file must not turn a
      // successful run into a crash.
    }
  }

  /// Uninstalls the trace writer and writes the requested side files.
  /// Idempotent; call explicitly to surface I/O errors as exceptions.
  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    if (writer_) {
      TraceWriter::install_global(nullptr);
      runtime::write_file_atomic(trace_out_,
                                 writer_->to_json(process_name_) + "\n");
    }
    if (!metrics_out_.empty() || !metrics_prom_.empty()) {
      const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
      if (!metrics_out_.empty()) {
        runtime::write_file_atomic(metrics_out_, snap.to_json() + "\n");
      }
      if (!metrics_prom_.empty()) {
        runtime::write_file_atomic(metrics_prom_, prometheus_text(snap));
      }
    }
  }

 private:
  std::string metrics_out_;
  std::string metrics_prom_;
  std::string trace_out_;
  std::string process_name_;
  std::unique_ptr<TraceWriter> writer_;
  bool finalized_ = false;
};

}  // namespace ccsig::obs

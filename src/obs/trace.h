// ccsig::obs — Chrome trace-event JSON writer.
//
// Produces the `{"traceEvents":[...]}` format loadable in Perfetto and
// chrome://tracing: complete events (ph "X", a span with ts+dur), instant
// events (ph "i") and process/thread metadata (ph "M"). Timestamps are
// microseconds of std::chrono::steady_clock elapsed since the writer was
// constructed.
//
// Tracing is *opt-in per process*: instrumented call sites go through
// `TraceWriter::global()`, which is null until a tool installs a writer
// (see `install_global`). When no writer is installed a TraceSpan is two
// branches and no stores — cheap enough to leave in release builds, but
// unlike metrics the enabled path does allocate (event strings, vector
// growth); tracing is a diagnosis tool, not a steady-state one, which is
// why the allocation benches run without a writer installed.
//
// Thread safety: record calls lock a mutex; spans capture their start time
// outside the lock so contention never skews measured durations (only
// their recording). Under CCSIG_OBS_OFF everything here is a no-op with
// the identical API.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"  // json_escape

namespace ccsig::obs {

#ifndef CCSIG_OBS_OFF

/// Collects trace events and renders them as Chrome trace JSON.
class TraceWriter {
 public:
  TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// The process-wide writer instrumentation records into, or nullptr when
  /// tracing is disabled (the default).
  static TraceWriter* global() {
    return global_slot().load(std::memory_order_acquire);
  }

  /// Installs `w` (may be nullptr to disable) as the global writer and
  /// returns the previous one. The caller owns lifetimes: the installed
  /// writer must outlive every instrumented call, so tools install at
  /// startup and uninstall (or export) before destroying it.
  static TraceWriter* install_global(TraceWriter* w) {
    return global_slot().exchange(w, std::memory_order_acq_rel);
  }

  /// Microseconds since this writer was constructed.
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a complete event (ph "X"): a span [ts_us, ts_us + dur_us].
  void complete(std::string_view name, std::string_view category,
                std::int64_t ts_us, std::int64_t dur_us) {
    Event e;
    e.ph = 'X';
    e.name.assign(name);
    e.cat.assign(category);
    e.ts_us = ts_us;
    e.dur_us = dur_us < 0 ? 0 : dur_us;
    e.tid = current_tid();
    push(std::move(e));
  }

  /// Records an instant event (ph "i", thread scope).
  void instant(std::string_view name, std::string_view category) {
    Event e;
    e.ph = 'i';
    e.name.assign(name);
    e.cat.assign(category);
    e.ts_us = now_us();
    e.tid = current_tid();
    push(std::move(e));
  }

  std::size_t event_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return events_.size();
  }

  /// Renders all recorded events as Chrome trace JSON, sorted by
  /// timestamp (ties by thread then duration, longest first, so parents
  /// precede the children they enclose).
  std::string to_json(std::string_view process_name = "ccsig") const {
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> lk(mu_);
      events = events_;
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                       if (a.tid != b.tid) return a.tid < b.tid;
                       return a.dur_us > b.dur_us;
                     });
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\""
        << json_escape(process_name) << "\"}}";
    for (const Event& e : events) {
      out << ",{\"ph\":\"" << e.ph << "\",\"pid\":1,\"tid\":" << e.tid
          << ",\"ts\":" << e.ts_us << ",\"name\":\"" << json_escape(e.name)
          << "\",\"cat\":\"" << json_escape(e.cat) << '"';
      if (e.ph == 'X') out << ",\"dur\":" << e.dur_us;
      if (e.ph == 'i') out << ",\"s\":\"t\"";
      out << '}';
    }
    out << "]}";
    return out.str();
  }

 private:
  struct Event {
    char ph = 'X';
    std::string name;
    std::string cat;
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;
    std::uint32_t tid = 0;
  };

  static std::atomic<TraceWriter*>& global_slot() {
    static std::atomic<TraceWriter*> slot{nullptr};
    return slot;
  }

  /// Small dense thread ids (1, 2, ...) instead of opaque native handles,
  /// so trace viewers show a compact lane per worker.
  static std::uint32_t current_tid() {
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
  }

  void push(Event&& e) {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(std::move(e));
  }

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII span: captures start on construction, records a complete event on
/// destruction. No-op (two loads, no stores) when no global writer is
/// installed. The name/category string_views must outlive the span —
/// instrumented call sites use string literals.
class TraceSpan {
 public:
  TraceSpan(std::string_view name, std::string_view category)
      : writer_(TraceWriter::global()), name_(name), category_(category) {
    if (writer_) start_us_ = writer_->now_us();
  }
  ~TraceSpan() {
    if (writer_) {
      writer_->complete(name_, category_, start_us_,
                        writer_->now_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceWriter* writer_;
  std::string_view name_;
  std::string_view category_;
  std::int64_t start_us_ = 0;
};

/// Records an instant event on the global writer, if one is installed.
inline void trace_instant(std::string_view name, std::string_view category) {
  if (TraceWriter* w = TraceWriter::global()) w->instant(name, category);
}

#else  // CCSIG_OBS_OFF

class TraceWriter {
 public:
  TraceWriter() = default;
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  static TraceWriter* global() { return nullptr; }
  static TraceWriter* install_global(TraceWriter*) { return nullptr; }
  std::int64_t now_us() const { return 0; }
  void complete(std::string_view, std::string_view, std::int64_t,
                std::int64_t) {}
  void instant(std::string_view, std::string_view) {}
  std::size_t event_count() const { return 0; }
  std::string to_json(std::string_view = "ccsig") const {
    return "{\"traceEvents\":[]}";
  }
};

class TraceSpan {
 public:
  TraceSpan(std::string_view, std::string_view) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline void trace_instant(std::string_view, std::string_view) {}

#endif  // CCSIG_OBS_OFF

}  // namespace ccsig::obs

// ccsig::obs — windowed metric aggregation for live introspection.
//
// MetricsRegistry snapshots are cumulative since process start, which is
// the right shape for a whole-run dump but useless for "how fast are
// verdicts flowing *right now*". WindowAggregator turns periodic
// snapshots into per-window views: the caller ticks it on a fixed cadence
// with (now, snapshot) pairs, each tick stores the *delta* against the
// previous snapshot in a ring slot, and queries sum the ring — so rates
// and histogram quantiles cover only the last `slots` ticks, not the
// process lifetime.
//
// Clock injection: the aggregator never reads a clock. `now_ns` is passed
// into tick() by the caller (the service uses its injected clock; tests
// use a fake one), so the window math is a pure function of the tick
// sequence and byte-deterministic under a fake clock.
//
// Allocation contract: the ring and the per-slot delta arrays are sized
// by the *instrument layout* (the set of counter/histogram names in the
// snapshot). The first tick — and any later tick whose snapshot carries a
// different instrument set — performs a (re)setup that allocates; every
// tick over a stable layout is allocation-free, as is rate()/delta()
// lookup. Query helpers that build a detached HistogramSnapshot or JSON
// allocate, but they run on the admin path, never the hot path.
//
// Counter-reset tolerance: a delta that would be negative (the source
// counter restarted, e.g. after a registry reset) is treated as "counted
// from zero": the delta is the new cumulative value. Rates dip instead of
// exploding backwards.
//
// The header is deliberately independent of the CCSIG_OBS_OFF switch:
// MetricsSnapshot exists in both modes, so the aggregator compiles — and
// behaves identically — in an OBS_OFF tree (where every snapshot is
// simply empty and every query reports zero).
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace ccsig::obs {

struct WindowConfig {
  /// Ring depth: the window covers the last `slots` tick intervals. The
  /// wall-clock width of the window is slots x tick cadence, which the
  /// *caller* controls (the aggregator only sees the timestamps).
  std::size_t slots = 12;
};

class WindowAggregator {
 public:
  explicit WindowAggregator(WindowConfig cfg = {})
      : nslots_(cfg.slots == 0 ? 1 : cfg.slots) {
    // Size the ring for the initial (empty) layout up front: a snapshot
    // with no instruments — the OBS_OFF shape — matches that layout, so
    // rebuild_layout() would never run and ticking must still be safe.
    ring_.assign(nslots_, Slot{});
  }

  /// Feeds one snapshot taken at `now_ns` (any monotone clock; the unit
  /// is nanoseconds). The first tick establishes the baseline and covers
  /// nothing; tick i > 0 stores the delta over (t_{i-1}, t_i]. Ticks with
  /// now_ns <= the previous tick are ignored (a clock that did not
  /// advance cannot define a rate).
  void tick(std::int64_t now_ns, const MetricsSnapshot& snap) {
    if (have_prev_ && now_ns <= prev_ns_) return;
    if (!layout_matches(snap)) rebuild_layout(snap);
    if (!have_prev_) {
      capture_prev(snap, now_ns);
      have_prev_ = true;
      return;
    }
    Slot& slot = ring_[head_];
    slot.t0 = prev_ns_;
    slot.t1 = now_ns;
    slot.used = true;
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      const std::uint64_t cur = snap.counters[i].value;
      slot.counter_delta[i] = delta_u64(prev_counters_[i], cur);
      prev_counters_[i] = cur;
    }
    for (std::size_t b = 0; b < prev_hist_buckets_.size(); ++b) {
      const std::uint64_t cur = hist_bucket_value(snap, b);
      slot.hist_bucket_delta[b] = delta_u64(prev_hist_buckets_[b], cur);
      prev_hist_buckets_[b] = cur;
    }
    for (std::size_t h = 0; h < hist_names_.size(); ++h) {
      const double cur = snap.histograms[h].sum;
      slot.hist_sum_delta[h] = cur >= prev_hist_sums_[h]
                                   ? cur - prev_hist_sums_[h]
                                   : cur;  // reset: counted from zero
      prev_hist_sums_[h] = cur;
    }
    head_ = (head_ + 1) % nslots_;
    prev_ns_ = now_ns;
    latest_gauges_ = snap.gauges;  // last-write-wins, not windowed
  }

  /// Seconds the ring currently covers: newest tick minus the oldest
  /// retained slot's start. 0 until two ticks have happened.
  double covered_seconds() const {
    std::int64_t t0 = 0, t1 = 0;
    if (!span(t0, t1)) return 0.0;
    return static_cast<double>(t1 - t0) / 1e9;
  }

  /// Total delta of `counter` over the window (0 for unknown names).
  std::uint64_t delta(std::string_view counter) const {
    const std::size_t i = index_of(counter_names_, counter);
    if (i == npos) return 0;
    std::uint64_t total = 0;
    for (const Slot& s : ring_) {
      if (s.used) total += s.counter_delta[i];
    }
    return total;
  }

  /// Per-second rate of `counter` over the covered span (0 when the
  /// window covers nothing yet).
  double rate(std::string_view counter) const {
    const double secs = covered_seconds();
    if (secs <= 0) return 0.0;
    return static_cast<double>(delta(counter)) / secs;
  }

  /// Detached windowed view of `histogram`: bucket counts and sum are the
  /// deltas accumulated over the ring, so quantile()/mean() answer "over
  /// the last window", not "since boot". Empty-name snapshot for unknown
  /// names. Allocates (query path).
  HistogramSnapshot windowed(std::string_view histogram) const {
    HistogramSnapshot out;
    const std::size_t h = index_of(hist_names_, histogram);
    if (h == npos) return out;
    out.name = hist_names_[h];
    out.bounds = hist_bounds_[h];
    out.buckets.assign(out.bounds.size() + 1, 0);
    for (const Slot& s : ring_) {
      if (!s.used) continue;
      for (std::size_t b = 0; b < out.buckets.size(); ++b) {
        out.buckets[b] += s.hist_bucket_delta[hist_offset_[h] + b];
      }
      out.sum += s.hist_sum_delta[h];
    }
    return out;
  }

  const std::vector<std::string>& counter_names() const {
    return counter_names_;
  }
  const std::vector<std::string>& histogram_names() const {
    return hist_names_;
  }
  const std::vector<MetricsSnapshot::GaugeValue>& latest_gauges() const {
    return latest_gauges_;
  }
  std::size_t slots() const { return nslots_; }
  std::uint64_t ticks() const { return ticks_; }

  /// The varz body: one JSON object with the covered span, per-counter
  /// windowed rates and deltas, windowed histogram summaries, and the
  /// latest gauge values. Stable key order (instruments arrive sorted
  /// from MetricsSnapshot).
  std::string to_json() const {
    std::ostringstream out;
    out.precision(17);
    out << "{\"covered_s\":" << covered_seconds()
        << ",\"window_slots\":" << nslots_ << ",\"rates\":{";
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      if (i) out << ',';
      out << '"' << json_escape(counter_names_[i]) << "\":" << fmt_rate(
          rate(counter_names_[i]));
    }
    out << "},\"deltas\":{";
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      if (i) out << ',';
      out << '"' << json_escape(counter_names_[i]) << "\":"
          << delta(counter_names_[i]);
    }
    out << "},\"histograms\":{";
    for (std::size_t h = 0; h < hist_names_.size(); ++h) {
      const HistogramSnapshot w = windowed(hist_names_[h]);
      if (h) out << ',';
      out << '"' << json_escape(hist_names_[h]) << "\":{\"count\":"
          << w.count() << ",\"sum\":" << w.sum << ",\"mean\":" << w.mean()
          << ",\"p50\":" << w.quantile(0.5) << ",\"p90\":" << w.quantile(0.9)
          << ",\"p99\":" << w.quantile(0.99) << '}';
    }
    out << "},\"gauges\":{";
    for (std::size_t g = 0; g < latest_gauges_.size(); ++g) {
      if (g) out << ',';
      out << '"' << json_escape(latest_gauges_[g].name) << "\":"
          << latest_gauges_[g].value;
    }
    out << "}}";
    return out.str();
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct Slot {
    std::int64_t t0 = 0;
    std::int64_t t1 = 0;
    bool used = false;
    std::vector<std::uint64_t> counter_delta;
    std::vector<std::uint64_t> hist_bucket_delta;  // concatenated per hist
    std::vector<double> hist_sum_delta;
  };

  static std::uint64_t delta_u64(std::uint64_t prev, std::uint64_t cur) {
    return cur >= prev ? cur - prev : cur;  // reset: counted from zero
  }

  static double fmt_rate(double r) { return r; }

  static std::size_t index_of(const std::vector<std::string>& names,
                              std::string_view name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    return npos;
  }

  /// [oldest retained t0, newest t1]; false until something is covered.
  bool span(std::int64_t& t0, std::int64_t& t1) const {
    bool any = false;
    for (const Slot& s : ring_) {
      if (!s.used) continue;
      if (!any || s.t0 < t0) t0 = s.t0;
      if (!any || s.t1 > t1) t1 = s.t1;
      any = true;
    }
    return any;
  }

  std::uint64_t hist_bucket_value(const MetricsSnapshot& snap,
                                  std::size_t flat) const {
    // Invert the flattened index. Linear over histograms — there are few.
    for (std::size_t h = 0; h < hist_names_.size(); ++h) {
      const std::size_t n = hist_bounds_[h].size() + 1;
      if (flat < hist_offset_[h] + n) {
        return snap.histograms[h].buckets[flat - hist_offset_[h]];
      }
    }
    return 0;
  }

  bool layout_matches(const MetricsSnapshot& snap) const {
    if (snap.counters.size() != counter_names_.size() ||
        snap.histograms.size() != hist_names_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      if (snap.counters[i].name != counter_names_[i]) return false;
    }
    for (std::size_t h = 0; h < hist_names_.size(); ++h) {
      if (snap.histograms[h].name != hist_names_[h] ||
          snap.histograms[h].bounds != hist_bounds_[h]) {
        return false;
      }
    }
    return true;
  }

  /// (Re)derives the instrument layout and resizes every slot. The ring's
  /// accumulated deltas are discarded — a changed instrument set makes
  /// old deltas incomparable — and the next tick re-baselines.
  void rebuild_layout(const MetricsSnapshot& snap) {
    counter_names_.clear();
    for (const auto& c : snap.counters) counter_names_.push_back(c.name);
    hist_names_.clear();
    hist_bounds_.clear();
    hist_offset_.clear();
    std::size_t flat = 0;
    for (const auto& h : snap.histograms) {
      hist_names_.push_back(h.name);
      hist_bounds_.push_back(h.bounds);
      hist_offset_.push_back(flat);
      flat += h.bounds.size() + 1;
    }
    ring_.assign(nslots_, Slot{});
    for (Slot& s : ring_) {
      s.counter_delta.assign(counter_names_.size(), 0);
      s.hist_bucket_delta.assign(flat, 0);
      s.hist_sum_delta.assign(hist_names_.size(), 0.0);
    }
    head_ = 0;
    prev_counters_.assign(counter_names_.size(), 0);
    prev_hist_buckets_.assign(flat, 0);
    prev_hist_sums_.assign(hist_names_.size(), 0.0);
    have_prev_ = false;
  }

  void capture_prev(const MetricsSnapshot& snap, std::int64_t now_ns) {
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      prev_counters_[i] = snap.counters[i].value;
    }
    for (std::size_t h = 0; h < hist_names_.size(); ++h) {
      const auto& buckets = snap.histograms[h].buckets;
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        prev_hist_buckets_[hist_offset_[h] + b] = buckets[b];
      }
      prev_hist_sums_[h] = snap.histograms[h].sum;
    }
    latest_gauges_ = snap.gauges;
    prev_ns_ = now_ns;
    ++ticks_;
  }

  std::size_t nslots_;
  std::vector<Slot> ring_;
  std::size_t head_ = 0;
  bool have_prev_ = false;
  std::int64_t prev_ns_ = 0;
  std::uint64_t ticks_ = 0;

  std::vector<std::string> counter_names_;
  std::vector<std::string> hist_names_;
  std::vector<std::vector<double>> hist_bounds_;
  std::vector<std::size_t> hist_offset_;

  std::vector<std::uint64_t> prev_counters_;
  std::vector<std::uint64_t> prev_hist_buckets_;
  std::vector<double> prev_hist_sums_;
  std::vector<MetricsSnapshot::GaugeValue> latest_gauges_;
};

}  // namespace ccsig::obs

// ccsig::obs — allocation-free metrics: counters, gauges, and fixed-bucket
// latency histograms.
//
// Hot-path design. `Counter::add` / `Histogram::record` resolve to one
// relaxed atomic RMW on a *per-thread shard* of the owning registry —
// lock-free, and zero-allocation in steady state. A thread's first record
// against a registry allocates its shard (8 KB) and registers it under the
// registry mutex; every later record is a thread-local cache hit. Snapshots
// take the registry lock and merge all shards, so readers never perturb
// writers. Gauges are last-write-wins and live in a registry-level atomic
// array (per-thread values cannot be merged meaningfully).
//
// Instruments are registered once (by name) and recorded through trivially
// copyable handles; registration allocates, recording never does — the
// property `bench_micro_components` enforces with its operator-new counter.
//
// Compile-time kill switch: with `CCSIG_OBS_OFF` defined (CMake option of
// the same name) every type in this header collapses to an empty inline
// no-op with the identical API, so instrumented call sites cost nothing and
// need no #ifdefs. A translation unit compiled with CCSIG_OBS_OFF must not
// be linked into a program that also uses the instrumented definitions
// (ODR); the switch is a whole-build mode, exactly like the sanitizers.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ccsig::obs {

/// Minimal JSON string escaping (quotes, backslash, control characters) for
/// the exporters in this subsystem.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Merged view of one histogram: cumulative bucket counts plus the bucket
/// upper bounds it was registered with (the last bucket is the +inf
/// overflow bucket and has no bound).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;     // ascending upper bounds, size B
  std::vector<std::uint64_t> buckets;  // size B + 1 (overflow last)
  double sum = 0;                 // sum of recorded values

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) total += b;
    return total;
  }

  double mean() const {
    const std::uint64_t n = count();
    return n ? sum / static_cast<double>(n) : 0.0;
  }

  /// Bucket-interpolated quantile. Values in bucket i are assumed uniform
  /// over (lower_i, bounds[i]] where lower_0 = 0; the overflow bucket
  /// reports its lower bound (the last finite bound) since it has no upper
  /// edge. `q` is clamped to [0, 1]; returns 0 on an empty histogram.
  ///
  /// Exact-boundary contract: a histogram holding exactly the values at a
  /// bucket's upper bound reports that bound for every quantile that lands
  /// in the bucket — quantile(1.0) of {10} with bounds {10, 20} is 10.
  double quantile(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(total))));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const std::uint64_t prev = cum;
      cum += buckets[i];
      if (cum < rank) continue;
      if (i >= bounds.size()) {
        // Overflow bucket: unbounded above; report the last finite edge.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double frac = static_cast<double>(rank - prev) /
                          static_cast<double>(buckets[i]);
      return lower + (bounds[i] - lower) * frac;
    }
    return bounds.empty() ? 0.0 : bounds.back();
  }
};

/// Point-in-time merged view of a registry, detached from its shards.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0;
  };

  std::vector<CounterValue> counters;    // sorted by name
  std::vector<GaugeValue> gauges;        // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  const CounterValue* counter(std::string_view name) const {
    for (const auto& c : counters)
      if (c.name == name) return &c;
    return nullptr;
  }
  const GaugeValue* gauge(std::string_view name) const {
    for (const auto& g : gauges)
      if (g.name == name) return &g;
    return nullptr;
  }
  const HistogramSnapshot* histogram(std::string_view name) const {
    for (const auto& h : histograms)
      if (h.name == name) return &h;
    return nullptr;
  }

  /// Stable JSON rendering (instruments sorted by name): counters and
  /// gauges as name->value maps, histograms with bounds, buckets, count,
  /// sum, mean and the p50/p90/p99 the quantile math derives.
  ///
  /// `count` is emitted straight from the uint64 arithmetic and `sum` is
  /// emitted as an integer whenever its value is exactly integral, so a
  /// long-running daemon's totals never lose precision to double
  /// formatting past 2^53.
  std::string to_json() const {
    std::ostringstream out;
    out.precision(17);
    const auto exact = [&out](double v) -> std::ostringstream& {
      if (std::isfinite(v) && v == std::floor(v) &&
          std::fabs(v) < 9.2e18) {
        out << static_cast<std::int64_t>(v);
      } else {
        out << v;
      }
      return out;
    };
    out << "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (i) out << ',';
      out << '"' << json_escape(counters[i].name) << "\":"
          << counters[i].value;
    }
    out << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      if (i) out << ',';
      out << '"' << json_escape(gauges[i].name) << "\":" << gauges[i].value;
    }
    out << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      const HistogramSnapshot& h = histograms[i];
      if (i) out << ',';
      out << '"' << json_escape(h.name) << "\":{\"bounds\":[";
      for (std::size_t k = 0; k < h.bounds.size(); ++k) {
        if (k) out << ',';
        out << h.bounds[k];
      }
      out << "],\"buckets\":[";
      for (std::size_t k = 0; k < h.buckets.size(); ++k) {
        if (k) out << ',';
        out << h.buckets[k];
      }
      out << "],\"count\":" << h.count() << ",\"sum\":";
      exact(h.sum) << ",\"mean\":" << h.mean()
          << ",\"p50\":" << h.quantile(0.5) << ",\"p90\":" << h.quantile(0.9)
          << ",\"p99\":" << h.quantile(0.99) << '}';
    }
    out << "}}";
    return out.str();
  }
};

#ifndef CCSIG_OBS_OFF

class MetricsRegistry;

namespace detail {
/// Adds `v` to an atomic holding a bit-cast double (lock-free CAS loop).
inline void atomic_add_double(std::atomic<std::uint64_t>& a, double v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (true) {
    const double next = std::bit_cast<double>(cur) + v;
    if (a.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(next),
                                std::memory_order_relaxed)) {
      return;
    }
  }
}
}  // namespace detail

/// Trivially copyable handle to a registered counter. A default-constructed
/// handle is inert (records nowhere).
class Counter {
 public:
  inline void add(std::uint64_t delta);
  void inc() { add(1); }

 private:
  friend class MetricsRegistry;
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-write-wins double-valued gauge handle.
class Gauge {
 public:
  inline void set(double value);

 private:
  friend class MetricsRegistry;
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Fixed-bucket histogram handle. Bucket resolution happens against the
/// bounds array owned by the registry, so recording reads shared immutable
/// data and writes one shard slot — no locks, no allocation.
class Histogram {
 public:
  inline void record(double value);

 private:
  friend class MetricsRegistry;
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t first_slot_ = 0;   // buckets.. then one sum slot
  const double* bounds_ = nullptr;
  std::uint32_t n_bounds_ = 0;
};

/// Registry of named instruments with sharded per-thread storage. See the
/// file header for the concurrency and allocation contract.
class MetricsRegistry {
 public:
  /// Per-shard slot budget (counters use 1 slot; a histogram uses
  /// bounds+2). Exceeding it throws at registration time.
  static constexpr std::size_t kSlotCapacity = 1024;
  static constexpr std::size_t kMaxGauges = 256;

  MetricsRegistry() : id_(next_registry_id()) {
    for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  }
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation records into.
  /// Intentionally immortal (never destroyed) so handles cached in
  /// function-local statics stay valid through static teardown.
  static MetricsRegistry& global() {
    static auto* r = new MetricsRegistry();
    return *r;
  }

  /// Registers (or looks up) a counter. Idempotent per name.
  Counter counter(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    Counter c;
    c.reg_ = this;
    for (const auto& [n, slot] : counters_) {
      if (n == name) {
        c.slot_ = slot;
        return c;
      }
    }
    c.slot_ = allocate_slots(1);
    counters_.emplace_back(name, c.slot_);
    return c;
  }

  /// Registers (or looks up) a gauge. Idempotent per name.
  Gauge gauge(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    Gauge g;
    g.reg_ = this;
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      if (gauge_names_[i] == name) {
        g.index_ = static_cast<std::uint32_t>(i);
        return g;
      }
    }
    if (gauge_names_.size() >= kMaxGauges) {
      throw std::runtime_error("obs: gauge capacity exhausted");
    }
    g.index_ = static_cast<std::uint32_t>(gauge_names_.size());
    gauge_names_.push_back(name);
    return g;
  }

  /// Registers (or looks up) a histogram with ascending upper `bounds`
  /// (an implicit +inf overflow bucket is appended). Re-registering the
  /// same name returns the original instrument; the original bounds win.
  Histogram histogram(const std::string& name, std::vector<double> bounds) {
    if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
      throw std::runtime_error("obs: histogram bounds must be ascending");
    }
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& meta : histograms_) {
      if (meta.name == name) return make_handle(meta);
    }
    HistogramMeta meta;
    meta.name = name;
    meta.bounds = std::make_shared<const std::vector<double>>(std::move(bounds));
    // Buckets (bounds + overflow) followed by the bit-cast double sum slot.
    meta.first_slot =
        allocate_slots(static_cast<std::uint32_t>(meta.bounds->size()) + 2);
    histograms_.push_back(meta);
    return make_handle(histograms_.back());
  }

  /// Merges every shard into a detached snapshot.
  MetricsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    MetricsSnapshot snap;
    auto slot_sum = [this](std::uint32_t slot) {
      std::uint64_t total = 0;
      for (const auto& shard : shards_) {
        total += shard->slots[slot].load(std::memory_order_relaxed);
      }
      return total;
    };
    for (const auto& [name, slot] : counters_) {
      snap.counters.push_back({name, slot_sum(slot)});
    }
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      snap.gauges.push_back(
          {gauge_names_[i],
           std::bit_cast<double>(gauges_[i].load(std::memory_order_relaxed))});
    }
    for (const auto& meta : histograms_) {
      HistogramSnapshot h;
      h.name = meta.name;
      h.bounds = *meta.bounds;
      h.buckets.resize(meta.bounds->size() + 1);
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        h.buckets[b] = slot_sum(meta.first_slot + static_cast<std::uint32_t>(b));
      }
      double sum = 0;
      const std::uint32_t sum_slot =
          meta.first_slot + static_cast<std::uint32_t>(meta.bounds->size()) + 1;
      for (const auto& shard : shards_) {
        sum += std::bit_cast<double>(
            shard->slots[sum_slot].load(std::memory_order_relaxed));
      }
      h.sum = sum;
      snap.histograms.push_back(std::move(h));
    }
    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
  }

  /// Zeroes every recorded value (instrument registrations are kept).
  /// Tests and tools that want per-phase deltas call this between phases.
  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& shard : shards_) {
      for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
    }
    for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  }

  std::size_t shard_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return shards_.size();
  }

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kSlotCapacity> slots{};
  };

  struct HistogramMeta {
    std::string name;
    std::shared_ptr<const std::vector<double>> bounds;
    std::uint32_t first_slot = 0;
  };

  static std::uint64_t next_registry_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  Histogram make_handle(const HistogramMeta& meta) const {
    Histogram h;
    h.reg_ = const_cast<MetricsRegistry*>(this);
    h.first_slot_ = meta.first_slot;
    h.bounds_ = meta.bounds->data();
    h.n_bounds_ = static_cast<std::uint32_t>(meta.bounds->size());
    return h;
  }

  std::uint32_t allocate_slots(std::uint32_t n) {
    if (next_slot_ + n > kSlotCapacity) {
      throw std::runtime_error("obs: metrics slot capacity exhausted");
    }
    const std::uint32_t first = next_slot_;
    next_slot_ += n;
    return first;
  }

  /// The hot-path shard lookup. A small thread-local cache maps registry
  /// ids to shards; ids are never reused, so an entry can only resolve to
  /// a live shard of *this* registry. On a miss we attach a fresh shard
  /// and cache it round-robin — a thread can end up with several shards on
  /// pathological cache churn, which is harmless because snapshots sum
  /// across all shards.
  Shard& local_shard() {
    struct CacheEntry {
      std::uint64_t id = 0;
      Shard* shard = nullptr;
    };
    static constexpr std::size_t kCacheSize = 8;
    thread_local CacheEntry cache[kCacheSize];
    thread_local std::size_t victim = 0;
    for (auto& e : cache) {
      if (e.id == id_) return *e.shard;
    }
    Shard* shard;
    {
      std::lock_guard<std::mutex> lk(mu_);
      shards_.push_back(std::make_unique<Shard>());
      shard = shards_.back().get();
    }
    cache[victim] = CacheEntry{id_, shard};
    victim = (victim + 1) % kCacheSize;
    return *shard;
  }

  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint32_t next_slot_ = 0;
  std::vector<std::pair<std::string, std::uint32_t>> counters_;
  std::vector<HistogramMeta> histograms_;
  std::vector<std::string> gauge_names_;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges_;
};

inline void Counter::add(std::uint64_t delta) {
  if (!reg_) return;
  reg_->local_shard().slots[slot_].fetch_add(delta, std::memory_order_relaxed);
}

inline void Gauge::set(double value) {
  if (!reg_) return;
  reg_->gauges_[index_].store(std::bit_cast<std::uint64_t>(value),
                              std::memory_order_relaxed);
}

inline void Histogram::record(double value) {
  if (!reg_) return;
  const double* end = bounds_ + n_bounds_;
  const std::uint32_t bucket =
      static_cast<std::uint32_t>(std::lower_bound(bounds_, end, value) -
                                 bounds_);
  auto& slots = reg_->local_shard().slots;
  slots[first_slot_ + bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(slots[first_slot_ + n_bounds_ + 1], value);
}

#else  // CCSIG_OBS_OFF: the identical API, compiled to nothing.

class MetricsRegistry;

class Counter {
 public:
  void add(std::uint64_t) {}
  void inc() {}
};

class Gauge {
 public:
  void set(double) {}
};

class Histogram {
 public:
  void record(double) {}
};

class MetricsRegistry {
 public:
  static constexpr std::size_t kSlotCapacity = 1024;
  static constexpr std::size_t kMaxGauges = 256;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global() {
    static auto* r = new MetricsRegistry();
    return *r;
  }

  Counter counter(const std::string&) { return {}; }
  Gauge gauge(const std::string&) { return {}; }
  Histogram histogram(const std::string&, std::vector<double>) { return {}; }
  MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
  std::size_t shard_count() const { return 0; }
};

#endif  // CCSIG_OBS_OFF

}  // namespace ccsig::obs

// ccsig::obs — per-flow TCP telemetry sampler.
//
// A FlowTelemetryRecorder is attached to a TcpSource (via its Config) and
// receives the sender's congestion state on every ACK plus discrete loss /
// recovery events. Samples land in a preallocated ring that overwrites the
// oldest entries when full, so recording is allocation-free after
// construction and a runaway flow cannot exhaust memory — the same pooled
// idiom as the PR-2 packet rings. ACK-clocked kSample records can be
// thinned with `min_sample_gap`; discrete events (retransmit, timeout,
// recovery exit) always record.
//
// The recorder is deliberately simulation-passive: it observes and never
// calls back into the stack, so attaching one cannot perturb campaign
// results. Single-flow, single-thread (one simulator) by design.
//
// Under CCSIG_OBS_OFF the recorder keeps its API but records nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"  // json_escape
#include "sim/time.h"

namespace ccsig::obs {

/// What triggered a telemetry record.
enum class FlowEvent : std::uint8_t {
  kSample = 0,         // ACK-clocked periodic state sample
  kFastRetransmit = 1, // dupack/SACK-triggered recovery entry
  kTimeout = 2,        // RTO fired
  kRecoveryExit = 3,   // recovery completed, back to congestion avoidance
};

inline const char* flow_event_name(FlowEvent e) {
  switch (e) {
    case FlowEvent::kSample: return "sample";
    case FlowEvent::kFastRetransmit: return "fast_retransmit";
    case FlowEvent::kTimeout: return "timeout";
    case FlowEvent::kRecoveryExit: return "recovery_exit";
  }
  return "unknown";
}

/// One telemetry record: sender congestion state at `at`.
struct FlowSample {
  sim::Time at = 0;
  FlowEvent event = FlowEvent::kSample;
  std::uint64_t cwnd_bytes = 0;
  std::uint64_t ssthresh_bytes = 0;
  std::uint64_t pipe_bytes = 0;  // outstanding estimate (pipe or flight)
  sim::Duration srtt = 0;
  std::uint64_t retransmits = 0;  // cumulative sender retransmit count
};

/// Recorder configuration (namespace scope so it can be a default
/// argument; nested-class NSDMIs cannot).
struct FlowTelemetryConfig {
  /// Ring capacity in samples (preallocated up front).
  std::size_t capacity = 1 << 16;
  /// Minimum spacing between kSample records; 0 keeps every ACK sample.
  /// Event records ignore the gap.
  sim::Duration min_sample_gap = 0;
  /// Optional label naming the congestion control the recorded flow ran
  /// (set by sweeps/tools that know it). When non-empty, to_csv() emits a
  /// leading `# cc: <label>` comment and to_json() a "cc" field; empty —
  /// the default — renders exactly the historical byte-stable output.
  std::string cc_label;
};

#ifndef CCSIG_OBS_OFF

/// Fixed-capacity overwrite-oldest sample ring; see file header.
class FlowTelemetryRecorder {
 public:
  using Config = FlowTelemetryConfig;

  explicit FlowTelemetryRecorder(Config cfg = Config()) : cfg_(cfg) {
    if (cfg_.capacity == 0) {
      throw std::runtime_error("obs: flow telemetry capacity must be > 0");
    }
    ring_.resize(cfg_.capacity);
  }

  /// Records one sample. kSample records inside `min_sample_gap` of the
  /// previous kept kSample are dropped (counted, not stored).
  void record(const FlowSample& s) {
    if (s.event == FlowEvent::kSample && cfg_.min_sample_gap > 0 &&
        have_sample_ && s.at - last_sample_at_ < cfg_.min_sample_gap) {
      ++thinned_;
      return;
    }
    if (s.event == FlowEvent::kSample) {
      last_sample_at_ = s.at;
      have_sample_ = true;
    }
    ring_[head_] = s;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
    ++recorded_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Records accepted into the ring (including ones later overwritten).
  std::uint64_t recorded() const { return recorded_; }
  /// kSample records dropped by min_sample_gap thinning.
  std::uint64_t thinned() const { return thinned_; }
  /// Records evicted because the ring wrapped.
  std::uint64_t overwritten() const { return overwritten_; }

  /// Retained samples in chronological (record) order.
  std::vector<FlowSample> samples() const {
    std::vector<FlowSample> out;
    out.reserve(size_);
    const std::size_t start =
        size_ < ring_.size() ? 0 : head_;  // oldest retained record
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
    recorded_ = thinned_ = overwritten_ = 0;
    have_sample_ = false;
    last_sample_at_ = 0;
  }

  /// CSV rendering: header + one row per retained sample, times in
  /// seconds with the repo-wide precision-17 convention.
  std::string to_csv() const {
    std::ostringstream out;
    out.precision(17);
    if (!cfg_.cc_label.empty()) out << "# cc: " << cfg_.cc_label << '\n';
    out << "time_s,event,cwnd_bytes,ssthresh_bytes,pipe_bytes,srtt_s,"
           "retransmits\n";
    for (const FlowSample& s : samples()) {
      out << sim::to_seconds(s.at) << ',' << flow_event_name(s.event) << ','
          << s.cwnd_bytes << ',' << s.ssthresh_bytes << ',' << s.pipe_bytes
          << ',' << sim::to_seconds(s.srtt) << ',' << s.retransmits << '\n';
    }
    return out.str();
  }

  /// JSON rendering: ring accounting plus the retained sample array.
  std::string to_json() const {
    std::ostringstream out;
    out.precision(17);
    out << '{';
    if (!cfg_.cc_label.empty()) {
      out << "\"cc\":\"" << json_escape(cfg_.cc_label) << "\",";
    }
    out << "\"recorded\":" << recorded_ << ",\"thinned\":" << thinned_
        << ",\"overwritten\":" << overwritten_ << ",\"samples\":[";
    bool first = true;
    for (const FlowSample& s : samples()) {
      if (!first) out << ',';
      first = false;
      out << "{\"time_s\":" << sim::to_seconds(s.at) << ",\"event\":\""
          << flow_event_name(s.event) << "\",\"cwnd_bytes\":" << s.cwnd_bytes
          << ",\"ssthresh_bytes\":" << s.ssthresh_bytes
          << ",\"pipe_bytes\":" << s.pipe_bytes
          << ",\"srtt_s\":" << sim::to_seconds(s.srtt)
          << ",\"retransmits\":" << s.retransmits << '}';
    }
    out << "]}";
    return out.str();
  }

 private:
  Config cfg_;
  std::vector<FlowSample> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t thinned_ = 0;
  std::uint64_t overwritten_ = 0;
  bool have_sample_ = false;
  sim::Time last_sample_at_ = 0;
};

#else  // CCSIG_OBS_OFF

class FlowTelemetryRecorder {
 public:
  using Config = FlowTelemetryConfig;

  explicit FlowTelemetryRecorder(Config = Config()) {}
  void record(const FlowSample&) {}
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  std::uint64_t recorded() const { return 0; }
  std::uint64_t thinned() const { return 0; }
  std::uint64_t overwritten() const { return 0; }
  std::vector<FlowSample> samples() const { return {}; }
  void clear() {}
  std::string to_csv() const {
    return "time_s,event,cwnd_bytes,ssthresh_bytes,pipe_bytes,srtt_s,"
           "retransmits\n";
  }
  std::string to_json() const {
    return "{\"recorded\":0,\"thinned\":0,\"overwritten\":0,\"samples\":[]}";
  }
};

#endif  // CCSIG_OBS_OFF

}  // namespace ccsig::obs

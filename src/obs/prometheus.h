// ccsig::obs — Prometheus text exposition (format version 0.0.4) of a
// MetricsSnapshot.
//
// Mapping:
//   counter  "stream.records_total"  -> ccsig_stream_records_total (counter)
//   gauge    "service.pressure"      -> ccsig_service_pressure (gauge)
//   histogram "service.latency_ms"   -> ccsig_service_latency_ms_bucket{le=...}
//                                       (+Inf last), _sum, _count (histogram)
//
// Names are sanitized to the Prometheus charset [a-zA-Z0-9_:] ('.', '-'
// and anything else become '_') and prefixed "ccsig_". Histogram buckets
// are emitted *cumulatively* — each le bucket includes everything below
// it, ending at le="+Inf" == _count — exactly what the exposition format
// requires and what tools/check_metrics.py validates. _count and integral
// _sum values are printed as integers so long-daemon counts never pass
// through a double.
//
// Like window.h this header works identically under CCSIG_OBS_OFF: an
// OBS_OFF snapshot is empty and the exposition is the empty string, which
// is itself a valid (contentless) scrape body.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace ccsig::obs {

/// Sanitizes an instrument name into the Prometheus metric-name charset
/// and prefixes the repo namespace.
inline std::string prometheus_name(const std::string& name) {
  std::string out = "ccsig_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace detail {
/// Prints a double the exposition way: integers without a fraction (and
/// without a detour through double formatting when exact), everything
/// else with enough digits to round-trip.
inline void prometheus_value(std::ostringstream& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.2e18) {
    out << static_cast<std::int64_t>(v);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}
}  // namespace detail

/// Renders `snap` as Prometheus text exposition v0.0.4. Every metric gets
/// a `# TYPE` line before its first sample; samples follow the snapshot's
/// name-sorted order, so output is stable across scrapes.
inline std::string prometheus_text(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& c : snap.counters) {
    const std::string n = prometheus_name(c.name);
    out << "# TYPE " << n << " counter\n" << n << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string n = prometheus_name(g.name);
    out << "# TYPE " << n << " gauge\n" << n << ' ';
    detail::prometheus_value(out, g.value);
    out << '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string n = prometheus_name(h.name);
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cum += h.buckets[b];
      out << n << "_bucket{le=\"";
      if (b < h.bounds.size()) {
        detail::prometheus_value(out, h.bounds[b]);
      } else {
        out << "+Inf";
      }
      out << "\"} " << cum << '\n';
    }
    out << n << "_sum ";
    detail::prometheus_value(out, h.sum);
    out << '\n' << n << "_count " << h.count() << '\n';
  }
  return out.str();
}

}  // namespace ccsig::obs

// The library's headline API: classify what kind of congestion a TCP flow
// experienced, from its slow-start RTT signature (the paper's contribution).
#pragma once

#include <optional>
#include <string>

#include "features/extractor.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace ccsig {

/// What limited the flow.
enum class Verdict {
  kExternalCongestion = 0,  // the path was already congested (e.g. a
                            // disputed interconnect): not the user's plan
  kSelfInducedCongestion = 1,  // the flow filled an otherwise idle
                               // bottleneck (e.g. the last-mile link)
  kInsufficientData = 2,  // the flow's RTT stream was too short or too
                          // damaged to yield a trustworthy signature; a
                          // congestion label would be fabricated
};

const char* to_string(Verdict v);

struct Classification {
  Verdict verdict = Verdict::kSelfInducedCongestion;
  /// Leaf purity of the decision path — a rough confidence in [0.5, 1].
  double confidence = 0;
};

/// Depth-4 CART decision tree over (NormDiff, CoV), as in the paper (§3.2).
class CongestionClassifier {
 public:
  /// An untrained classifier; call train() or use pretrained()/load().
  CongestionClassifier() = default;

  /// The model shipped with the library, trained on the full controlled-
  /// testbed sweep at congestion threshold 0.8.
  static CongestionClassifier pretrained();

  /// Trains on a dataset whose rows are (norm_diff, cov) and whose labels
  /// use the CongestionClass encoding (0 external, 1 self).
  void train(const ml::Dataset& data, int max_depth = 4);

  bool trained() const { return tree_.trained(); }

  Classification classify(double norm_diff, double cov) const;
  Classification classify(const features::FlowFeatures& f) const {
    return classify(f.norm_diff, f.cov);
  }

  /// Text round trip (same format as ml::DecisionTree).
  std::string serialize() const { return tree_.to_text(); }
  static CongestionClassifier deserialize(const std::string& text);
  void save(const std::string& path) const;
  static CongestionClassifier load(const std::string& path);

  /// Human-readable if/else rendering of the tree.
  std::string describe() const;

  const ml::DecisionTree& tree() const { return tree_; }

 private:
  ml::DecisionTree tree_;
};

}  // namespace ccsig

// End-to-end flow diagnosis: capture (live trace or pcap file) -> per-flow
// features -> congestion verdict.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/flow_trace.h"
#include "analysis/trace_record.h"
#include "core/classifier.h"
#include "features/extractor.h"
#include "runtime/parse_error.h"

namespace ccsig {

/// Everything the analyzer can say about one TCP flow in a capture.
struct FlowReport {
  sim::FlowKey data_key;  // the payload-carrying direction
  std::optional<features::FlowFeatures> features;
  std::optional<Classification> classification;  // set when features valid
  /// Why `features`/`classification` are absent (kNone when present).
  features::Insufficiency insufficiency = features::Insufficiency::kNone;
  double throughput_bps = 0;
  sim::Duration duration = 0;
  std::size_t data_packets = 0;
  /// For flows classified self-induced, the late-slow-start delivery rate
  /// is a bottleneck-capacity estimate (paper §2.3: slow-start throughput
  /// "is indicative of the capacity of the bottleneck link during a
  /// self-induced congestion event"). 0 otherwise.
  double estimated_capacity_bps = 0;

  /// Three-way verdict: a congestion label when the flow carried a valid
  /// signature, Verdict::kInsufficientData otherwise — degenerate RTT
  /// streams are never given a fabricated congestion label.
  Verdict verdict() const {
    return classification ? classification->verdict
                          : Verdict::kInsufficientData;
  }
};

/// analyze_pcap_checked: reports for the readable prefix of a (possibly
/// damaged) capture, plus the structured error that stopped reading.
struct PcapAnalysis {
  std::vector<FlowReport> reports;
  std::optional<runtime::ParseError> error;
  bool ok() const { return !error.has_value(); }
};

class FlowAnalyzer {
 public:
  /// Uses the bundled pretrained model.
  FlowAnalyzer() : classifier_(CongestionClassifier::pretrained()) {}
  explicit FlowAnalyzer(CongestionClassifier classifier)
      : classifier_(std::move(classifier)) {}

  /// Analyzes every flow in a mixed trace.
  std::vector<FlowReport> analyze(const analysis::Trace& trace,
                                  const features::ExtractOptions& opt = {}) const;

  /// Analyzes a single known flow.
  FlowReport analyze_flow(const analysis::FlowTrace& flow,
                          const features::ExtractOptions& opt = {}) const;

  /// Builds a FlowReport from an already-extracted feature result plus the
  /// flow-level scalars. This is the single place the classifier verdict,
  /// insufficiency bookkeeping, and capacity estimate are assembled —
  /// analyze_flow goes through it, and the streaming engine feeds it with
  /// incrementally computed inputs so both paths agree byte for byte.
  FlowReport report_from_extract(const sim::FlowKey& data_key,
                                 features::ExtractResult extracted,
                                 double throughput_bps, sim::Duration duration,
                                 std::size_t data_packets) const;

  /// Reads a tcpdump-format capture and analyzes it. Malformed input
  /// raises runtime::ParseException (file, byte offset, reason).
  std::vector<FlowReport> analyze_pcap(const std::string& path,
                                       const features::ExtractOptions& opt = {}) const;

  /// Non-throwing variant for damaged captures: analyzes the longest clean
  /// record prefix and reports the error that stopped reading.
  PcapAnalysis analyze_pcap_checked(const std::string& path,
                                    const features::ExtractOptions& opt = {}) const;

  const CongestionClassifier& classifier() const { return classifier_; }

  /// One-line human-readable rendering of a report.
  static std::string render(const FlowReport& report);

 private:
  CongestionClassifier classifier_;
};

}  // namespace ccsig

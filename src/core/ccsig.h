// Umbrella header for the ccsig library.
//
// ccsig reproduces "TCP Congestion Signatures" (Sundaresan, Dhamdhere,
// Allman, claffy — IMC 2017): given a server-side view of a TCP flow, decide
// whether its throughput was limited by congestion it induced itself (an
// otherwise-idle bottleneck such as the user's access link) or by a link
// that was congested before the flow started (such as a disputed
// interconnect).
//
// Typical use:
//
//   #include "core/ccsig.h"
//
//   ccsig::FlowAnalyzer analyzer;                       // pretrained model
//   for (const auto& report : analyzer.analyze_pcap("capture.pcap")) {
//     std::cout << ccsig::FlowAnalyzer::render(report) << "\n";
//   }
//
// Retraining on your own labeled data:
//
//   ccsig::ml::Dataset data({"norm_diff", "cov"});
//   data.add({0.82, 0.45}, 1);  // self-induced
//   data.add({0.21, 0.06}, 0);  // external
//   ccsig::CongestionClassifier clf;
//   clf.train(data);
//   clf.save("my_model.tree");
#pragma once

#include "core/analyzer.h"       // IWYU pragma: export
#include "core/classifier.h"     // IWYU pragma: export
#include "features/extractor.h"  // IWYU pragma: export

#include "core/analyzer.h"

#include <sstream>

#include "analysis/from_pcap.h"
#include "analysis/slow_start.h"

namespace ccsig {

FlowReport FlowAnalyzer::report_from_extract(
    const sim::FlowKey& data_key, features::ExtractResult extracted,
    double throughput_bps, sim::Duration duration,
    std::size_t data_packets) const {
  FlowReport report;
  report.data_key = data_key;
  report.duration = duration;
  report.data_packets = data_packets;
  report.throughput_bps = throughput_bps;
  report.features = std::move(extracted.features);
  report.insufficiency = extracted.insufficiency;
  if (report.features) {
    report.classification = classifier_.classify(*report.features);
    if (report.classification->verdict == Verdict::kSelfInducedCongestion) {
      report.estimated_capacity_bps =
          report.features->slow_start_throughput_bps;
    }
  }
  return report;
}

FlowReport FlowAnalyzer::analyze_flow(const analysis::FlowTrace& flow,
                                      const features::ExtractOptions& opt) const {
  return report_from_extract(
      flow.data_key, features::extract_features_checked(flow, opt),
      analysis::flow_throughput_bps(flow).value_or(0.0), flow.duration(),
      flow.data.size());
}

std::vector<FlowReport> FlowAnalyzer::analyze(
    const analysis::Trace& trace, const features::ExtractOptions& opt) const {
  std::vector<FlowReport> reports;
  for (const analysis::FlowTrace& flow : analysis::split_flows(trace)) {
    reports.push_back(analyze_flow(flow, opt));
  }
  return reports;
}

std::vector<FlowReport> FlowAnalyzer::analyze_pcap(
    const std::string& path, const features::ExtractOptions& opt) const {
  return analyze(analysis::trace_from_pcap(path), opt);
}

PcapAnalysis FlowAnalyzer::analyze_pcap_checked(
    const std::string& path, const features::ExtractOptions& opt) const {
  analysis::TraceReadResult raw = analysis::trace_from_pcap_checked(path);
  PcapAnalysis out;
  out.reports = analyze(raw.trace, opt);
  out.error = std::move(raw.error);
  return out;
}

std::string FlowAnalyzer::render(const FlowReport& r) {
  std::ostringstream os;
  os.precision(3);
  os << r.data_key.src_addr << ":" << r.data_key.src_port << " -> "
     << r.data_key.dst_addr << ":" << r.data_key.dst_port << "  "
     << r.throughput_bps / 1e6 << " Mbps over "
     << sim::to_seconds(r.duration) << " s";
  if (r.classification) {
    os << "  => " << to_string(r.classification->verdict) << " (confidence "
       << r.classification->confidence << ", norm_diff "
       << r.features->norm_diff << ", cov " << r.features->cov << ")";
  } else {
    os << "  => " << to_string(Verdict::kInsufficientData) << " ("
       << features::to_string(r.insufficiency) << ")";
  }
  return os.str();
}

}  // namespace ccsig

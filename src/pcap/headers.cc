#include "pcap/headers.h"

#include <cstring>

namespace ccsig::pcap {
namespace {

void put16(std::uint8_t* at, std::uint16_t v) {
  at[0] = static_cast<std::uint8_t>(v >> 8);
  at[1] = static_cast<std::uint8_t>(v & 0xFF);
}

void put32(std::uint8_t* at, std::uint32_t v) {
  at[0] = static_cast<std::uint8_t>(v >> 24);
  at[1] = static_cast<std::uint8_t>(v >> 16);
  at[2] = static_cast<std::uint8_t>(v >> 8);
  at[3] = static_cast<std::uint8_t>(v & 0xFF);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::array<std::uint8_t, kFrameHeaderBytes> encode_frame(const sim::Packet& p) {
  std::array<std::uint8_t, kFrameHeaderBytes> f{};
  std::uint8_t* eth = f.data();
  std::uint8_t* ip = eth + kEthernetHeaderBytes;
  std::uint8_t* tcp = ip + kIpv4HeaderBytes;

  // Ethernet: synthetic locally-administered MACs derived from addresses.
  eth[0] = 0x02;
  put32(eth + 1, to_ipv4(p.key.dst_addr));
  eth[5] = 0x01;
  eth[6] = 0x02;
  put32(eth + 7, to_ipv4(p.key.src_addr));
  eth[11] = 0x01;
  put16(eth + 12, 0x0800);  // IPv4 ethertype

  // IPv4.
  ip[0] = 0x45;  // version 4, IHL 5
  ip[1] = 0;
  const std::uint16_t total_len = static_cast<std::uint16_t>(
      kIpv4HeaderBytes + kTcpHeaderBytes + p.payload_bytes);
  put16(ip + 2, total_len);
  put16(ip + 4, static_cast<std::uint16_t>(p.id & 0xFFFF));  // IP id
  put16(ip + 6, 0x4000);  // DF
  ip[8] = 64;             // TTL
  ip[9] = 6;              // protocol TCP
  put16(ip + 10, 0);      // checksum placeholder
  put32(ip + 12, to_ipv4(p.key.src_addr));
  put32(ip + 16, to_ipv4(p.key.dst_addr));
  put16(ip + 10, internet_checksum({ip, kIpv4HeaderBytes}));

  // TCP.
  put16(tcp + 0, p.key.src_port);
  put16(tcp + 2, p.key.dst_port);
  put32(tcp + 4, static_cast<std::uint32_t>(p.seq));  // wraps, as on the wire
  put32(tcp + 8, static_cast<std::uint32_t>(p.ack));
  tcp[12] = 5 << 4;  // data offset: 5 words
  std::uint8_t flags = 0;
  if (p.flags.fin) flags |= 0x01;
  if (p.flags.syn) flags |= 0x02;
  if (p.flags.rst) flags |= 0x04;
  if (p.flags.ack) flags |= 0x10;
  tcp[13] = flags;
  // Scale the true window into the 16-bit field (as if wscale 8 were
  // negotiated); the reader re-expands symmetrically.
  put16(tcp + 14, static_cast<std::uint16_t>(
                      p.window > 0 ? std::min<std::uint32_t>(
                                         p.window >> 8, 0xFFFF)
                                   : 0));
  put16(tcp + 16, 0);  // checksum: payload is synthetic; left zero
  put16(tcp + 18, 0);  // urgent pointer
  return f;
}

}  // namespace ccsig::pcap

// tcpdump-at-the-server: a TraceSink that serializes simulator packets into
// real pcap files.
#pragma once

#include <string>

#include "pcap/headers.h"
#include "pcap/pcap_file.h"
#include "sim/trace.h"

namespace ccsig::pcap {

/// Attach to a Node (via Node::add_tap) to capture every packet it sends or
/// receives into a pcap file, headers-only (snaplen 54) like a typical
/// server-side TCP capture.
class PcapCaptureTap : public sim::TraceSink {
 public:
  explicit PcapCaptureTap(const std::string& path)
      : writer_(path, kFrameHeaderBytes) {}

  void on_packet(sim::Time t, const sim::Packet& p) override {
    const auto frame = encode_frame(p);
    const std::uint32_t orig_len = static_cast<std::uint32_t>(
        kFrameHeaderBytes + p.payload_bytes);
    writer_.write(t, frame, orig_len);
  }

  void flush() { writer_.flush(); }
  std::uint64_t packets_captured() const { return writer_.records_written(); }

 private:
  PcapWriter writer_;
};

}  // namespace ccsig::pcap

#include "pcap/pcap_file.h"

#include <cstring>
#include <stdexcept>

namespace ccsig::pcap {
namespace {

// On-disk structures are little-endian; x86-64 is little-endian, so plain
// memcpy of packed fields is byte-exact. (A big-endian port would need
// byte swapping here and nowhere else.)
struct FileHeader {
  std::uint32_t magic;
  std::uint16_t version_major;
  std::uint16_t version_minor;
  std::int32_t thiszone;
  std::uint32_t sigfigs;
  std::uint32_t snaplen;
  std::uint32_t linktype;
};
static_assert(sizeof(FileHeader) == 24);

struct RecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_usec;
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc), snaplen_(snaplen) {
  if (!out_) throw std::runtime_error("cannot open pcap for writing: " + path);
  const FileHeader hdr{kPcapMagic, 2, 4, 0, 0, snaplen_, kLinktypeEthernet};
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
}

void PcapWriter::write(sim::Time timestamp,
                       std::span<const std::uint8_t> data,
                       std::uint32_t orig_len) {
  const std::uint32_t incl =
      static_cast<std::uint32_t>(std::min<std::size_t>(data.size(), snaplen_));
  RecordHeader rec;
  rec.ts_sec = static_cast<std::uint32_t>(timestamp / sim::kSecond);
  rec.ts_usec = static_cast<std::uint32_t>((timestamp % sim::kSecond) /
                                           sim::kMicrosecond);
  rec.incl_len = incl;
  rec.orig_len = orig_len;
  out_.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  out_.write(reinterpret_cast<const char*>(data.data()), incl);
  ++records_;
}

void PcapReader::fail(std::string reason) const {
  runtime::throw_parse_error(path_, offset_, "byte", std::move(reason));
}

PcapReader::PcapReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
  if (!in_) fail("cannot open pcap for reading");
  FileHeader hdr;
  in_.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in_) {
    fail("truncated file header (need " + std::to_string(sizeof(hdr)) +
         " bytes, got " + std::to_string(in_.gcount()) + ")");
  }
  if (hdr.magic != kPcapMagic) {
    fail("not a (little-endian, µs) pcap file: bad magic");
  }
  snaplen_ = hdr.snaplen;
  linktype_ = hdr.linktype;
  offset_ = sizeof(hdr);
}

std::optional<PcapRecord> PcapReader::next() {
  RecordHeader rec;
  in_.read(reinterpret_cast<char*>(&rec), sizeof(rec));
  if (!in_) {
    if (in_.gcount() == 0) return std::nullopt;  // clean end of file
    fail("truncated record header (need " + std::to_string(sizeof(rec)) +
         " bytes, got " + std::to_string(in_.gcount()) + ")");
  }
  // A snaplen-exceeding capture length cannot have been written by any
  // sane writer; treat it as corruption rather than allocating blindly.
  if (rec.incl_len > snaplen_ + 65536u) {
    fail("corrupt record header: incl_len " + std::to_string(rec.incl_len) +
         " exceeds snaplen " + std::to_string(snaplen_));
  }
  offset_ += sizeof(rec);
  PcapRecord out;
  out.timestamp = static_cast<sim::Time>(rec.ts_sec) * sim::kSecond +
                  static_cast<sim::Time>(rec.ts_usec) * sim::kMicrosecond;
  out.orig_len = rec.orig_len;
  out.data.resize(rec.incl_len);
  in_.read(reinterpret_cast<char*>(out.data.data()), rec.incl_len);
  if (!in_) {
    fail("truncated record body (need " + std::to_string(rec.incl_len) +
         " bytes, got " + std::to_string(in_.gcount()) + ")");
  }
  offset_ += rec.incl_len;
  return out;
}

std::vector<PcapRecord> read_all(const std::string& path) {
  PcapReader reader(path);
  std::vector<PcapRecord> records;
  while (auto r = reader.next()) records.push_back(std::move(*r));
  return records;
}

PcapReadResult read_all_checked(const std::string& path) {
  PcapReadResult result;
  try {
    PcapReader reader(path);
    while (auto r = reader.next()) result.records.push_back(std::move(*r));
  } catch (const runtime::ParseException& e) {
    result.error = e.error();
  }
  return result;
}

}  // namespace ccsig::pcap

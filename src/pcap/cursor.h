// Zero-copy pcap record cursor.
//
// PcapReader materializes every record into its own heap vector, which is
// fine for batch analysis but defeats a single-pass streaming engine. The
// cursor instead refills one reusable buffer with large sequential reads
// and hands out spans into it: no per-record allocation, O(buffer) memory
// regardless of capture size.
//
// Error semantics are contractually identical to PcapReader: the same
// validation rules, the same ParseException reasons and byte offsets, so
// `read_all_checked` and a cursor loop stop at the same place with the
// same structured error on a damaged capture — the property the fault
// corpus tests pin down.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ccsig::pcap {

/// One record viewed in place. `data` points into the cursor's buffer and
/// is invalidated by the next call to next().
struct RecordView {
  sim::Time timestamp = 0;
  std::uint32_t orig_len = 0;
  std::span<const std::uint8_t> data;
};

class PcapCursor {
 public:
  /// Opens and validates the file header. Throws runtime::ParseException
  /// with the same reasons/offsets as PcapReader.
  explicit PcapCursor(const std::string& path);

  /// Next record, or nullopt at clean end of file. The returned view is
  /// valid until the next call.
  std::optional<RecordView> next();

  std::uint32_t snaplen() const { return snaplen_; }
  std::uint32_t linktype() const { return linktype_; }

  /// Byte offset of the next unread position (for error reporting).
  std::uint64_t offset() const { return offset_; }

 private:
  [[noreturn]] void fail(std::string reason) const;

  /// Ensures at least `need` contiguous unconsumed bytes are buffered, or
  /// as many as the file still has. Returns the available byte count.
  std::size_t ensure(std::size_t need);

  std::string path_;
  std::ifstream in_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;   // first unconsumed byte in buf_
  std::size_t end_ = 0;   // one past the last valid byte in buf_
  bool eof_ = false;      // underlying file exhausted
  std::uint32_t snaplen_ = 0;
  std::uint32_t linktype_ = 0;
  std::uint64_t offset_ = 0;
};

}  // namespace ccsig::pcap

// Zero-copy pcap record cursor with two input backends.
//
// PcapReader materializes every record into its own heap vector, which is
// fine for batch analysis but defeats a single-pass streaming engine. The
// cursor instead hands out spans into a window of the file:
//
//   kStream — refills one reusable buffer with large sequential reads:
//             no per-record allocation, O(buffer) memory regardless of
//             capture size. Works on anything std::ifstream can read.
//   kMmap   — maps the whole file read-only and walks the mapping: no
//             read syscalls, no copies at all; the kernel pages data in
//             as the cursor advances (madvise SEQUENTIAL). Views stay
//             valid until the cursor is destroyed.
//   kAuto   — kMmap when the platform and file support it, else kStream.
//
// Both backends run the *same* validation code over the same windowed
// representation — only the refill step differs — so a damaged capture
// stops at the same byte offset with the same ParseException reason no
// matter the backend (the property ingest_corpus_test's mmap/stream
// differential pins down). Error semantics are in turn contractually
// identical to PcapReader.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ccsig::pcap {

/// One record viewed in place. `data` points into the cursor's window and
/// is invalidated by the next call to next() in kStream mode; in kMmap
/// mode it stays valid for the cursor's lifetime.
struct RecordView {
  sim::Time timestamp = 0;
  std::uint32_t orig_len = 0;
  std::span<const std::uint8_t> data;
};

enum class CursorMode {
  kStream,  // buffered sequential reads (the PR 5 path)
  kMmap,    // map the file; throws ParseException if mapping fails
  kAuto,    // kMmap when possible, silently falling back to kStream
};

class PcapCursor {
 public:
  /// Opens and validates the file header. Throws runtime::ParseException
  /// with the same reasons/offsets as PcapReader.
  ///
  /// `tail` opts into tail-past-EOF reading for a capture that is still
  /// being written (ccsigd's growing-file sources): a record whose final
  /// bytes are not on disk yet — or a file header still shorter than 24
  /// bytes — is an *incomplete tail*, not corruption. next() then returns
  /// nullopt without consuming anything and a later call retries the read,
  /// resuming exactly where the partial record starts once the writer has
  /// appended the rest. Genuine corruption (bad magic, absurd incl_len)
  /// still throws. Tail mode always uses the buffered kStream backend
  /// (a fixed-size mapping cannot see appended bytes).
  explicit PcapCursor(const std::string& path,
                      CursorMode mode = CursorMode::kStream,
                      bool tail = false);
  PcapCursor(const PcapCursor&) = delete;
  PcapCursor& operator=(const PcapCursor&) = delete;
  ~PcapCursor();

  /// Next record, or nullopt at clean end of file — or, in tail mode, at
  /// an incomplete tail (see incomplete_tail() to distinguish). The
  /// returned view is valid until the next call (kStream) or until
  /// destruction (kMmap).
  std::optional<RecordView> next();

  bool tail() const { return tail_; }

  /// Tail mode only: true when the last next() stopped inside a partial
  /// record (or the still-growing file header) rather than at a clean
  /// record boundary. Either way the stream may grow; retry next() later.
  bool incomplete_tail() const { return incomplete_tail_; }

  /// Tail mode only: false until the 24-byte pcap file header has been
  /// fully written and validated.
  bool header_ready() const { return header_ready_; }

  std::uint32_t snaplen() const { return snaplen_; }
  std::uint32_t linktype() const { return linktype_; }

  /// The backend actually in use (kAuto resolves at construction).
  CursorMode mode() const { return mmap_base_ ? CursorMode::kMmap
                                              : CursorMode::kStream; }

  /// Byte offset of the next unread position (for error reporting).
  std::uint64_t offset() const { return offset_; }

  // -- Fused-reader interface (kMmap only) ---------------------------------
  // BatchedIngest's fast path walks the mapping directly and parses record
  // headers inline, consuming clean records without the per-record call
  // into next(). Anything that is not a provably clean, complete record is
  // NOT consumed this way: the fused reader leaves the cursor position
  // untouched and calls next(), so every validation failure is produced by
  // the one canonical code path (identical offsets and reasons).

  /// Remaining unconsumed bytes of the mapping, or an empty span when the
  /// cursor is not in kMmap mode.
  std::span<const std::uint8_t> mapped_rest() const {
    if (!mmap_base_) return {};
    return {mmap_base_ + pos_, end_ - pos_};
  }

  /// Consumes `n` bytes previously obtained via mapped_rest(). Only valid
  /// for whole clean records the fused reader has fully validated.
  void consume_mapped(std::size_t n) {
    pos_ += n;
    offset_ += n;
  }

 private:
  [[noreturn]] void fail(std::string reason) const;

  /// Parses the 24-byte file header once enough bytes exist. Returns false
  /// (tail mode only) when the header is still incomplete; throws on a bad
  /// magic or, in non-tail mode, on truncation.
  bool parse_file_header();

  /// Tail mode: clears the eof/failbit state left by a short read so the
  /// next ensure() call re-attempts reads on the (possibly grown) file.
  void retry_reads();

  /// Ensures at least `need` contiguous unconsumed bytes are windowed, or
  /// as many as the file still has. Returns the available byte count. In
  /// kMmap mode the window is the whole file and this is a subtraction.
  std::size_t ensure(std::size_t need);

  /// Tries to map the file; returns false (leaving the cursor in kStream
  /// state) when the platform or the file does not support it.
  bool try_mmap();

  const std::uint8_t* window() const {
    return mmap_base_ ? mmap_base_ : buf_.data();
  }

  std::string path_;
  std::ifstream in_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;   // first unconsumed byte in the window
  std::size_t end_ = 0;   // one past the last valid byte in the window
  bool eof_ = false;      // underlying file exhausted
  const std::uint8_t* mmap_base_ = nullptr;  // non-null in kMmap mode
  std::size_t mmap_len_ = 0;
  std::uint32_t snaplen_ = 0;
  std::uint32_t linktype_ = 0;
  std::uint64_t offset_ = 0;
  bool tail_ = false;
  bool incomplete_tail_ = false;
  bool header_ready_ = false;
};

}  // namespace ccsig::pcap

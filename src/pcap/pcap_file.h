// Classic libpcap file format (the format tcpdump writes by default).
//
// Little-endian, magic 0xa1b2c3d4, microsecond timestamps — readable by
// tcpdump/tshark/wireshark. Only what the project needs: linktype EN10MB.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "runtime/parse_error.h"
#include "sim/time.h"

namespace ccsig::pcap {

inline constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
inline constexpr std::uint32_t kLinktypeEthernet = 1;

/// One captured record: timestamp, the bytes actually stored (possibly
/// truncated at the snap length), and the original frame length.
struct PcapRecord {
  sim::Time timestamp = 0;       // nanoseconds (µs precision on disk)
  std::uint32_t orig_len = 0;    // length of the frame on the wire
  std::vector<std::uint8_t> data;  // captured bytes (<= snaplen)
};

/// Streams records into a pcap file.
class PcapWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit PcapWriter(const std::string& path,
                      std::uint32_t snaplen = 65535);

  /// Writes one record; `data` is truncated to the snap length.
  void write(sim::Time timestamp, std::span<const std::uint8_t> data,
             std::uint32_t orig_len);

  void flush() { out_.flush(); }
  std::uint64_t records_written() const { return records_; }

 private:
  std::ofstream out_;
  std::uint32_t snaplen_;
  std::uint64_t records_ = 0;
};

/// Reads a whole pcap file. Malformed input raises runtime::ParseException
/// carrying (file, byte offset, reason) — still a std::runtime_error, so
/// legacy catch sites keep working, but callers that care can recover the
/// structured runtime::ParseError.
class PcapReader {
 public:
  explicit PcapReader(const std::string& path);

  /// Next record, or nullopt at end of file.
  std::optional<PcapRecord> next();

  std::uint32_t snaplen() const { return snaplen_; }
  std::uint32_t linktype() const { return linktype_; }

  /// Byte offset of the next unread position (for error reporting).
  std::uint64_t offset() const { return offset_; }

 private:
  [[noreturn]] void fail(std::string reason) const;

  std::string path_;
  std::ifstream in_;
  std::uint32_t snaplen_ = 0;
  std::uint32_t linktype_ = 0;
  std::uint64_t offset_ = 0;
};

/// Convenience: reads every record. Throws runtime::ParseException on
/// malformed input.
std::vector<PcapRecord> read_all(const std::string& path);

/// Everything readable from a (possibly damaged) capture: the longest
/// clean prefix of records, plus the structured error that stopped
/// parsing, if any.
struct PcapReadResult {
  std::vector<PcapRecord> records;
  std::optional<runtime::ParseError> error;
  bool ok() const { return !error.has_value(); }
};

/// Non-throwing read: truncated or corrupt captures yield the good prefix
/// and a ParseError instead of an exception.
PcapReadResult read_all_checked(const std::string& path);

}  // namespace ccsig::pcap

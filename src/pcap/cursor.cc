#include "pcap/cursor.h"

#include <cstring>

#include "pcap/pcap_file.h"
#include "runtime/parse_error.h"

#if defined(__unix__) || defined(__APPLE__)
#define CCSIG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ccsig::pcap {
namespace {

// Mirrors the (packed, little-endian) on-disk structs in pcap_file.cc.
struct FileHeader {
  std::uint32_t magic;
  std::uint16_t version_major;
  std::uint16_t version_minor;
  std::int32_t thiszone;
  std::uint32_t sigfigs;
  std::uint32_t snaplen;
  std::uint32_t linktype;
};
static_assert(sizeof(FileHeader) == 24);

struct RecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_usec;
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

constexpr std::size_t kChunkBytes = 256 * 1024;

}  // namespace

void PcapCursor::fail(std::string reason) const {
  runtime::throw_parse_error(path_, offset_, "byte", std::move(reason));
}

bool PcapCursor::try_mmap() {
#ifdef CCSIG_HAVE_MMAP
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return false;
  }
  if (st.st_size == 0) {
    // An empty regular file needs no mapping: an empty window reproduces
    // the streamed path's "truncated file header" error exactly.
    ::close(fd);
    static const std::uint8_t kEmptyWindow = 0;
    mmap_base_ = &kEmptyWindow;
    mmap_len_ = 0;
    end_ = 0;
    eof_ = true;
    return true;
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                      PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return false;
#ifdef POSIX_MADV_SEQUENTIAL
  ::posix_madvise(base, static_cast<std::size_t>(st.st_size),
                  POSIX_MADV_SEQUENTIAL);
#endif
  mmap_base_ = static_cast<const std::uint8_t*>(base);
  mmap_len_ = static_cast<std::size_t>(st.st_size);
  end_ = mmap_len_;  // the window is the whole file
  eof_ = true;
  return true;
#else
  return false;
#endif
}

PcapCursor::~PcapCursor() {
#ifdef CCSIG_HAVE_MMAP
  if (mmap_base_ && mmap_len_ > 0) {
    ::munmap(const_cast<std::uint8_t*>(mmap_base_), mmap_len_);
  }
#endif
}

std::size_t PcapCursor::ensure(std::size_t need) {
  if (end_ - pos_ >= need) return end_ - pos_;
  if (mmap_base_) return end_ - pos_;  // the whole file is the window
  // Compact: move the unconsumed tail to the front of the buffer.
  if (pos_ > 0) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  // A record larger than the buffer (legal: snaplen-sized bodies) forces a
  // one-time growth; steady state never reallocates.
  if (need > buf_.size()) buf_.resize(need);
  while (!eof_ && end_ - pos_ < need) {
    in_.read(reinterpret_cast<char*>(buf_.data() + end_),
             static_cast<std::streamsize>(buf_.size() - end_));
    end_ += static_cast<std::size_t>(in_.gcount());
    if (!in_) eof_ = true;
  }
  return end_ - pos_;
}

PcapCursor::PcapCursor(const std::string& path, CursorMode mode, bool tail)
    : path_(path), tail_(tail) {
  // A fixed-size mapping cannot see bytes appended after construction, so
  // tailing always takes the buffered backend.
  if (tail_) mode = CursorMode::kStream;
  if (mode != CursorMode::kStream) {
    if (!try_mmap() && mode == CursorMode::kMmap) {
      fail("cannot mmap pcap for reading");
    }
  }
  if (!mmap_base_) {
    in_.open(path, std::ios::binary);
    if (!in_) fail("cannot open pcap for reading");
    buf_.resize(kChunkBytes);
  }
  if (!parse_file_header()) incomplete_tail_ = true;
}

bool PcapCursor::parse_file_header() {
  FileHeader hdr;
  const std::size_t got = ensure(sizeof(hdr));
  if (got < sizeof(hdr)) {
    if (tail_) return false;  // writer has not finished the header yet
    fail("truncated file header (need " + std::to_string(sizeof(hdr)) +
         " bytes, got " + std::to_string(got) + ")");
  }
  std::memcpy(&hdr, window() + pos_, sizeof(hdr));
  if (hdr.magic != kPcapMagic) {
    fail("not a (little-endian, µs) pcap file: bad magic");
  }
  pos_ += sizeof(hdr);
  snaplen_ = hdr.snaplen;
  linktype_ = hdr.linktype;
  offset_ = sizeof(hdr);
  header_ready_ = true;
  return true;
}

void PcapCursor::retry_reads() {
  if (!eof_) return;
  eof_ = false;
  in_.clear();
}

std::optional<RecordView> PcapCursor::next() {
  if (tail_) {
    incomplete_tail_ = false;
    retry_reads();
    if (!header_ready_ && !parse_file_header()) {
      incomplete_tail_ = true;
      return std::nullopt;
    }
  }
  RecordHeader rec;
  const std::size_t have = ensure(sizeof(rec));
  if (have < sizeof(rec)) {
    if (tail_) {
      incomplete_tail_ = have != 0;  // mid-header vs. clean record boundary
      return std::nullopt;
    }
    if (have == 0) return std::nullopt;  // clean end of file
    fail("truncated record header (need " + std::to_string(sizeof(rec)) +
         " bytes, got " + std::to_string(have) + ")");
  }
  std::memcpy(&rec, window() + pos_, sizeof(rec));
  // A snaplen-exceeding capture length cannot have been written by any
  // sane writer; treat it as corruption rather than allocating blindly —
  // tail mode included, since no amount of waiting repairs a bad header.
  if (rec.incl_len > snaplen_ + 65536u) {
    fail("corrupt record header: incl_len " + std::to_string(rec.incl_len) +
         " exceeds snaplen " + std::to_string(snaplen_));
  }
  // Peek-then-consume: nothing advances until the header AND body are both
  // windowed, so a tail-mode retry resumes at the same record boundary.
  const std::size_t need =
      sizeof(rec) + static_cast<std::size_t>(rec.incl_len);
  const std::size_t avail = ensure(need);
  if (avail < need) {
    if (tail_) {
      incomplete_tail_ = true;
      return std::nullopt;
    }
    // The legacy path consumed the record header before discovering the
    // body truncation; consume it here too so the reported offset (and the
    // "got" count) stay byte-identical for damaged non-tail captures.
    pos_ += sizeof(rec);
    offset_ += sizeof(rec);
    fail("truncated record body (need " + std::to_string(rec.incl_len) +
         " bytes, got " + std::to_string(avail - sizeof(rec)) + ")");
  }
  pos_ += sizeof(rec);
  offset_ += sizeof(rec);
  RecordView view;
  view.timestamp = static_cast<sim::Time>(rec.ts_sec) * sim::kSecond +
                   static_cast<sim::Time>(rec.ts_usec) * sim::kMicrosecond;
  view.orig_len = rec.orig_len;
  view.data =
      std::span<const std::uint8_t>(window() + pos_, rec.incl_len);
  pos_ += rec.incl_len;
  offset_ += rec.incl_len;
  return view;
}

}  // namespace ccsig::pcap

// Ethernet II / IPv4 / TCP header encoding and decoding.
//
// The simulator does not materialize payload bytes, so captures are written
// the way operators actually run tcpdump for TCP analysis: headers only
// (snap length 54), with the true frame length recorded in the pcap record
// header. Sequence/ack numbers wrap to 32 bits on the wire exactly as real
// TCP does; the reader unwraps them back to 64-bit stream offsets.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "sim/packet.h"

namespace ccsig::pcap {

inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kFrameHeaderBytes =
    kEthernetHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes;

/// Decoded view of one TCP/IPv4 frame's headers.
struct DecodedFrame {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq32 = 0;
  std::uint32_t ack32 = 0;
  std::uint16_t window = 0;
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  /// Payload length derived from the IP total-length field.
  std::uint32_t payload_bytes = 0;
};

/// Maps a simulator address into the synthetic 10.0.0.0/8 capture subnet.
constexpr std::uint32_t to_ipv4(sim::Address a) {
  return (10u << 24) | (a & 0x00FFFFFFu);
}

/// Internet checksum (RFC 1071) over `data`.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Encodes the headers of `p` into a 54-byte frame. The IP total length
/// field accounts for the (non-materialized, all-zero) payload.
std::array<std::uint8_t, kFrameHeaderBytes> encode_frame(const sim::Packet& p);

namespace detail {

inline std::uint16_t get16(const std::uint8_t* at) {
  return static_cast<std::uint16_t>((at[0] << 8) | at[1]);
}

inline std::uint32_t get32(const std::uint8_t* at) {
  return (std::uint32_t(at[0]) << 24) | (std::uint32_t(at[1]) << 16) |
         (std::uint32_t(at[2]) << 8) | std::uint32_t(at[3]);
}

}  // namespace detail

/// Decodes a frame's headers; returns nullopt if the buffer is too short,
/// not IPv4, or not TCP. Defined inline: this runs once per captured
/// record on the ingest fast path, where an out-of-line call (plus the
/// 40-byte struct return through memory) is measurable.
inline std::optional<DecodedFrame> decode_frame(
    std::span<const std::uint8_t> data) {
  using detail::get16;
  using detail::get32;
  if (data.size() < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* eth = data.data();
  if (get16(eth + 12) != 0x0800) return std::nullopt;  // not IPv4
  const std::uint8_t* ip = eth + kEthernetHeaderBytes;
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
  if (ihl < kIpv4HeaderBytes || ip[9] != 6) return std::nullopt;
  if (data.size() < kEthernetHeaderBytes + ihl + kTcpHeaderBytes) {
    return std::nullopt;
  }
  const std::uint8_t* tcp = ip + ihl;
  const std::size_t tcp_hdr = static_cast<std::size_t>(tcp[12] >> 4) * 4;

  DecodedFrame d;
  d.src_ip = get32(ip + 12);
  d.dst_ip = get32(ip + 16);
  d.src_port = get16(tcp + 0);
  d.dst_port = get16(tcp + 2);
  d.seq32 = get32(tcp + 4);
  d.ack32 = get32(tcp + 8);
  d.window = get16(tcp + 14);
  d.fin = tcp[13] & 0x01;
  d.syn = tcp[13] & 0x02;
  d.rst = tcp[13] & 0x04;
  d.ack = tcp[13] & 0x10;
  const std::uint16_t total_len = get16(ip + 2);
  const std::size_t hdrs = ihl + tcp_hdr;
  d.payload_bytes =
      total_len > hdrs ? static_cast<std::uint32_t>(total_len - hdrs) : 0;
  return d;
}

}  // namespace ccsig::pcap

// Ethernet II / IPv4 / TCP header encoding and decoding.
//
// The simulator does not materialize payload bytes, so captures are written
// the way operators actually run tcpdump for TCP analysis: headers only
// (snap length 54), with the true frame length recorded in the pcap record
// header. Sequence/ack numbers wrap to 32 bits on the wire exactly as real
// TCP does; the reader unwraps them back to 64-bit stream offsets.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "sim/packet.h"

namespace ccsig::pcap {

inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kFrameHeaderBytes =
    kEthernetHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes;

/// Decoded view of one TCP/IPv4 frame's headers.
struct DecodedFrame {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq32 = 0;
  std::uint32_t ack32 = 0;
  std::uint16_t window = 0;
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  /// Payload length derived from the IP total-length field.
  std::uint32_t payload_bytes = 0;
};

/// Maps a simulator address into the synthetic 10.0.0.0/8 capture subnet.
constexpr std::uint32_t to_ipv4(sim::Address a) {
  return (10u << 24) | (a & 0x00FFFFFFu);
}

/// Internet checksum (RFC 1071) over `data`.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Encodes the headers of `p` into a 54-byte frame. The IP total length
/// field accounts for the (non-materialized, all-zero) payload.
std::array<std::uint8_t, kFrameHeaderBytes> encode_frame(const sim::Packet& p);

/// Decodes a frame's headers; returns nullopt if the buffer is too short,
/// not IPv4, or not TCP.
std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> data);

}  // namespace ccsig::pcap

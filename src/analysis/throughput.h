// Windowed throughput series from a flow trace — the view NDT/Web100
// reports in 5 ms intervals, and what Figure 6-style time series plot.
#pragma once

#include <vector>

#include "analysis/flow_trace.h"
#include "sim/time.h"

namespace ccsig::analysis {

struct ThroughputPoint {
  sim::Time window_start = 0;
  double bps = 0;  // delivery rate (ACK progress) in that window
};

/// Cumulative-ACK progress bucketed into fixed windows across the flow's
/// lifetime. Windows with no ACK progress report 0.
std::vector<ThroughputPoint> throughput_series(const FlowTrace& flow,
                                               sim::Duration window);

/// Peak windowed delivery rate — a robust "what could the path carry"
/// measure for short flows.
double peak_windowed_throughput_bps(const FlowTrace& flow,
                                    sim::Duration window);

/// Delivery rate between two absolute times (ACK progress over the span).
double throughput_between_bps(const FlowTrace& flow, sim::Time from,
                              sim::Time to);

}  // namespace ccsig::analysis

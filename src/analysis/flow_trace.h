// Per-connection view of a capture: splits a mixed trace into flows and,
// within each flow, into the data direction (server → client) and the ACK
// direction.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/trace_record.h"
#include "sim/packet.h"

namespace ccsig::analysis {

/// One TCP connection as seen at the capture point. `data_key` is the
/// direction that carried payload (for a download: server → client).
struct FlowTrace {
  sim::FlowKey data_key;
  std::vector<TraceRecord> data;  // payload-bearing + SYN/FIN from server
  std::vector<TraceRecord> acks;  // packets in the reverse direction

  /// Total unique payload bytes acknowledged (highest ACK − 1 for our ISN
  /// convention), i.e. goodput numerator.
  std::uint64_t acked_bytes() const;

  /// Time of the first and last record across both directions.
  sim::Time start_time() const;
  sim::Time end_time() const;
  sim::Duration duration() const { return end_time() - start_time(); }
};

/// Canonicalizes the two directional keys of a connection to one value, so
/// both directions of a flow land in the same table slot. Shared by the
/// batch splitter and the streaming flow table — they must agree.
inline sim::FlowKey canonical_flow_key(const sim::FlowKey& k) {
  const sim::FlowKey rev = k.reversed();
  const bool keep = (k.src_addr != rev.src_addr) ? k.src_addr < rev.src_addr
                                                 : k.src_port <= rev.src_port;
  return keep ? k : rev;
}

/// Total order on flows: by first activity, ties broken by the data-
/// direction key so the output never depends on hash-table iteration
/// order. The streaming engine sorts its reports with the same comparator
/// to stay byte-identical with the batch path.
inline bool flow_order_less(sim::Time a_start, const sim::FlowKey& a_key,
                            sim::Time b_start, const sim::FlowKey& b_key) {
  if (a_start != b_start) return a_start < b_start;
  if (a_key.src_addr != b_key.src_addr) return a_key.src_addr < b_key.src_addr;
  if (a_key.dst_addr != b_key.dst_addr) return a_key.dst_addr < b_key.dst_addr;
  if (a_key.src_port != b_key.src_port) return a_key.src_port < b_key.src_port;
  return a_key.dst_port < b_key.dst_port;
}

/// Groups a raw trace into connections. A connection's canonical (data)
/// direction is chosen as the side that sent more payload bytes. Flows with
/// no payload at all are dropped.
std::vector<FlowTrace> split_flows(const Trace& trace);

/// Extracts a single flow matching `data_key` (exact direction match);
/// returns an empty FlowTrace if absent.
FlowTrace extract_flow(const Trace& trace, const sim::FlowKey& data_key);

}  // namespace ccsig::analysis

// Per-connection view of a capture: splits a mixed trace into flows and,
// within each flow, into the data direction (server → client) and the ACK
// direction.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/trace_record.h"
#include "sim/packet.h"

namespace ccsig::analysis {

/// One TCP connection as seen at the capture point. `data_key` is the
/// direction that carried payload (for a download: server → client).
struct FlowTrace {
  sim::FlowKey data_key;
  std::vector<TraceRecord> data;  // payload-bearing + SYN/FIN from server
  std::vector<TraceRecord> acks;  // packets in the reverse direction

  /// Total unique payload bytes acknowledged (highest ACK − 1 for our ISN
  /// convention), i.e. goodput numerator.
  std::uint64_t acked_bytes() const;

  /// Time of the first and last record across both directions.
  sim::Time start_time() const;
  sim::Time end_time() const;
  sim::Duration duration() const { return end_time() - start_time(); }
};

/// Groups a raw trace into connections. A connection's canonical (data)
/// direction is chosen as the side that sent more payload bytes. Flows with
/// no payload at all are dropped.
std::vector<FlowTrace> split_flows(const Trace& trace);

/// Extracts a single flow matching `data_key` (exact direction match);
/// returns an empty FlowTrace if absent.
FlowTrace extract_flow(const Trace& trace, const sim::FlowKey& data_key);

}  // namespace ccsig::analysis

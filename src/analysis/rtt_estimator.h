// Per-packet RTT extraction from a server-side capture.
//
// An RTT sample pairs a downstream data segment with the ACK that covers it
// (paper §3.2). Retransmitted sequence ranges never produce samples (Karn's
// rule), matching what tshark-style trace analysis yields.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/flow_trace.h"
#include "sim/time.h"

namespace ccsig::analysis {

struct RttSample {
  sim::Time at = 0;        // when the ACK arrived at the server
  sim::Duration rtt = 0;
  std::uint64_t acked_seq = 0;  // stream offset the sample belongs to
};

/// Extracts all RTT samples of a flow, in time order.
std::vector<RttSample> extract_rtt_samples(const FlowTrace& flow);

/// Extracts samples whose ACK arrived at or before `cutoff` — used to keep
/// only the slow-start portion.
std::vector<RttSample> extract_rtt_samples(const FlowTrace& flow,
                                           sim::Time cutoff);

}  // namespace ccsig::analysis

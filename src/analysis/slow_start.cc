#include "analysis/slow_start.h"

#include <algorithm>

namespace ccsig::analysis {

SlowStartInfo detect_slow_start(const FlowTrace& flow) {
  SlowStartInfo info;
  std::uint64_t highest_sent = 0;
  sim::Time retx_at = -1;
  for (const auto& d : flow.data) {
    if (d.payload_bytes == 0) continue;
    const std::uint64_t seq_end = d.seq + d.payload_bytes;
    if (seq_end <= highest_sent) {
      retx_at = d.time;
      break;
    }
    highest_sent = seq_end;
  }
  if (retx_at >= 0) {
    info.end_time = retx_at;
    info.ended_by_retransmission = true;
  } else {
    info.end_time = flow.end_time();
    info.ended_by_retransmission = false;
  }
  std::uint64_t max_ack = 0;
  for (const auto& a : flow.acks) {
    if (a.time > info.end_time) break;
    max_ack = std::max(max_ack, a.ack);
  }
  info.acked_bytes = max_ack > 1 ? max_ack - 1 : 0;
  return info;
}

std::optional<double> slow_start_throughput_from_advances(
    sim::Time start, const SlowStartInfo& ss,
    std::span<const AckAdvance> advances) {
  if (ss.end_time <= start || ss.acked_bytes == 0) return std::nullopt;
  // Delivery rate over the SECOND HALF of the slow-start window. The whole-
  // window mean is dragged far below link rate by the exponential ramp; by
  // the later rounds a flow that saturates its bottleneck delivers at
  // exactly the bottleneck rate, which is what capacity-threshold labeling
  // needs to compare against.
  const sim::Time mid = start + (ss.end_time - start) / 2;
  std::uint64_t ack_mid = 0;
  std::uint64_t ack_end = 0;
  sim::Time last_advance = mid;
  for (const auto& a : advances) {
    if (a.time > ss.end_time) break;
    if (a.ack > ack_end) {
      ack_end = a.ack;
      if (a.time > mid) last_advance = a.time;
    }
    if (a.time <= mid) ack_mid = std::max(ack_mid, a.ack);
  }
  // The window ends at the *last cumulative-ACK advance*: after the packet
  // loss that terminates slow start, ACKs stall for a round trip until the
  // retransmission; counting that stall would deflate the rate.
  if (ack_end <= ack_mid || last_advance <= mid) return 0.0;
  return static_cast<double>(ack_end - ack_mid) * 8.0 /
         sim::to_seconds(last_advance - mid);
}

std::optional<double> slow_start_throughput_bps(const FlowTrace& flow,
                                                const SlowStartInfo& ss) {
  // Collapse the raw ACK records into the cumulative-advance sequence; the
  // running maximum makes every non-advance record a no-op for both the
  // ack_end and the ack_mid scans, so the advance list is lossless here.
  std::vector<AckAdvance> advances;
  std::uint64_t max_ack = 0;
  for (const auto& a : flow.acks) {
    if (a.time > ss.end_time) break;
    if (a.ack > max_ack) {
      max_ack = a.ack;
      advances.push_back(AckAdvance{a.time, a.ack});
    }
  }
  return slow_start_throughput_from_advances(flow.start_time(), ss, advances);
}

std::optional<double> throughput_bps(std::uint64_t acked_bytes,
                                     sim::Duration duration) {
  if (duration <= 0 || acked_bytes == 0) return std::nullopt;
  return static_cast<double>(acked_bytes) * 8.0 / sim::to_seconds(duration);
}

std::optional<double> flow_throughput_bps(const FlowTrace& flow) {
  return throughput_bps(flow.acked_bytes(), flow.duration());
}

}  // namespace ccsig::analysis

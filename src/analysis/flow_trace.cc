#include "analysis/flow_trace.h"

#include <algorithm>
#include <unordered_map>

namespace ccsig::analysis {

std::uint64_t FlowTrace::acked_bytes() const {
  std::uint64_t max_ack = 0;
  for (const auto& r : acks) max_ack = std::max(max_ack, r.ack);
  // Wire sequence 0 is the SYN; payload starts at 1.
  return max_ack > 1 ? max_ack - 1 : 0;
}

sim::Time FlowTrace::start_time() const {
  sim::Time t = INT64_MAX;
  if (!data.empty()) t = std::min(t, data.front().time);
  if (!acks.empty()) t = std::min(t, acks.front().time);
  return t == INT64_MAX ? 0 : t;
}

sim::Time FlowTrace::end_time() const {
  sim::Time t = 0;
  if (!data.empty()) t = std::max(t, data.back().time);
  if (!acks.empty()) t = std::max(t, acks.back().time);
  return t;
}

std::vector<FlowTrace> split_flows(const Trace& trace) {
  struct Halves {
    std::vector<TraceRecord> forward;   // canonical-key direction
    std::vector<TraceRecord> backward;
    std::uint64_t fwd_payload = 0;
    std::uint64_t bwd_payload = 0;
    sim::FlowKey canonical;
  };
  std::unordered_map<sim::FlowKey, Halves, sim::FlowKeyHash> flows;
  for (const auto& r : trace) {
    const sim::FlowKey canon = canonical_flow_key(r.key);
    Halves& h = flows[canon];
    h.canonical = canon;
    if (r.key == canon) {
      h.forward.push_back(r);
      h.fwd_payload += r.payload_bytes;
    } else {
      h.backward.push_back(r);
      h.bwd_payload += r.payload_bytes;
    }
  }

  std::vector<FlowTrace> out;
  out.reserve(flows.size());
  for (auto& [key, h] : flows) {
    if (h.fwd_payload == 0 && h.bwd_payload == 0) continue;
    FlowTrace ft;
    if (h.fwd_payload >= h.bwd_payload) {
      ft.data_key = h.canonical;
      ft.data = std::move(h.forward);
      ft.acks = std::move(h.backward);
    } else {
      ft.data_key = h.canonical.reversed();
      ft.data = std::move(h.backward);
      ft.acks = std::move(h.forward);
    }
    out.push_back(std::move(ft));
  }
  // Deterministic order: by first activity, key tie-break (equal start
  // times would otherwise surface unordered_map iteration order).
  std::sort(out.begin(), out.end(), [](const FlowTrace& a, const FlowTrace& b) {
    return flow_order_less(a.start_time(), a.data_key, b.start_time(),
                           b.data_key);
  });
  return out;
}

FlowTrace extract_flow(const Trace& trace, const sim::FlowKey& data_key) {
  FlowTrace ft;
  ft.data_key = data_key;
  const sim::FlowKey rev = data_key.reversed();
  for (const auto& r : trace) {
    if (r.key == data_key) {
      ft.data.push_back(r);
    } else if (r.key == rev) {
      ft.acks.push_back(r);
    }
  }
  return ft;
}

}  // namespace ccsig::analysis

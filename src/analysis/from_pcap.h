// Bridges pcap files into the analysis representation.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/seq_unwrap.h"
#include "analysis/trace_record.h"
#include "pcap/headers.h"
#include "pcap/pcap_file.h"

namespace ccsig::analysis {

/// Decodes one captured frame's headers into a WireRecord (timestamp,
/// 4-tuple, 32-bit wire fields). Returns nullopt for frames that are not
/// TCP/IPv4 — the same frames trace_from_records skips. Inline because it
/// runs once per record on the ingest fast path.
inline std::optional<WireRecord> wire_record_from_frame(
    sim::Time timestamp, std::span<const std::uint8_t> frame) {
  const auto decoded = pcap::decode_frame(frame);
  if (!decoded) return std::nullopt;
  WireRecord w;
  w.time = timestamp;
  w.key.src_addr = decoded->src_ip & 0x00FFFFFFu;
  w.key.dst_addr = decoded->dst_ip & 0x00FFFFFFu;
  w.key.src_port = decoded->src_port;
  w.key.dst_port = decoded->dst_port;
  w.seq32 = decoded->seq32;
  w.ack32 = decoded->ack32;
  w.payload_bytes = decoded->payload_bytes;
  w.window = decoded->window;
  w.flags.syn = decoded->syn;
  w.flags.ack = decoded->ack;
  w.flags.fin = decoded->fin;
  w.flags.rst = decoded->rst;
  return w;
}

/// Decodes captured frames into TraceRecords, unwrapping 32-bit wire
/// sequence/ack numbers into 64-bit stream offsets (per flow direction).
/// Non-TCP/IPv4 records are skipped.
Trace trace_from_records(const std::vector<pcap::PcapRecord>& records);

/// Convenience: read + decode a pcap file. Throws runtime::ParseException
/// (with file/offset/reason) on malformed input.
Trace trace_from_pcap(const std::string& path);

/// Non-throwing bridge for damaged captures: decodes the longest clean
/// record prefix and reports the structured error that stopped reading.
struct TraceReadResult {
  Trace trace;
  std::optional<runtime::ParseError> error;
  bool ok() const { return !error.has_value(); }
};

TraceReadResult trace_from_pcap_checked(const std::string& path);

}  // namespace ccsig::analysis

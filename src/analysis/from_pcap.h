// Bridges pcap files into the analysis representation.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/seq_unwrap.h"
#include "analysis/trace_record.h"
#include "pcap/pcap_file.h"

namespace ccsig::analysis {

/// Decodes one captured frame's headers into a WireRecord (timestamp,
/// 4-tuple, 32-bit wire fields). Returns nullopt for frames that are not
/// TCP/IPv4 — the same frames trace_from_records skips.
std::optional<WireRecord> wire_record_from_frame(
    sim::Time timestamp, std::span<const std::uint8_t> frame);

/// Decodes captured frames into TraceRecords, unwrapping 32-bit wire
/// sequence/ack numbers into 64-bit stream offsets (per flow direction).
/// Non-TCP/IPv4 records are skipped.
Trace trace_from_records(const std::vector<pcap::PcapRecord>& records);

/// Convenience: read + decode a pcap file. Throws runtime::ParseException
/// (with file/offset/reason) on malformed input.
Trace trace_from_pcap(const std::string& path);

/// Non-throwing bridge for damaged captures: decodes the longest clean
/// record prefix and reports the structured error that stopped reading.
struct TraceReadResult {
  Trace trace;
  std::optional<runtime::ParseError> error;
  bool ok() const { return !error.has_value(); }
};

TraceReadResult trace_from_pcap_checked(const std::string& path);

}  // namespace ccsig::analysis

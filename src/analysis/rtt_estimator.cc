#include "analysis/rtt_estimator.h"

#include <algorithm>
#include <limits>
#include <map>

namespace ccsig::analysis {
namespace {

struct Outstanding {
  sim::Time sent_at;
  bool tainted;  // retransmitted range: excluded per Karn's rule
};

}  // namespace

std::vector<RttSample> extract_rtt_samples(const FlowTrace& flow,
                                           sim::Time cutoff) {
  // Merge the two directions into one time-ordered walk. Both vectors are
  // individually time-sorted (capture order).
  std::vector<RttSample> samples;
  std::map<std::uint64_t, Outstanding> pending;  // seq_end -> info
  std::uint64_t highest_sent = 0;  // highest seq_end ever transmitted

  std::size_t di = 0, ai = 0;
  while (di < flow.data.size() || ai < flow.acks.size()) {
    const bool take_data =
        ai >= flow.acks.size() ||
        (di < flow.data.size() && flow.data[di].time <= flow.acks[ai].time);
    if (take_data) {
      const TraceRecord& d = flow.data[di++];
      if (d.payload_bytes == 0) continue;  // SYN / pure control
      const std::uint64_t seq_end = d.seq + d.payload_bytes;
      const bool is_retx = seq_end <= highest_sent;
      auto [it, inserted] = pending.emplace(
          seq_end, Outstanding{d.time, is_retx});
      if (!inserted) {
        // Same range sent again: taint and refresh timestamp.
        it->second.tainted = true;
        it->second.sent_at = d.time;
      } else if (is_retx) {
        it->second.tainted = true;
      }
      highest_sent = std::max(highest_sent, seq_end);
      continue;
    }
    const TraceRecord& a = flow.acks[ai++];
    if (!a.flags.ack || a.flags.syn) continue;
    if (a.time > cutoff) break;
    // Find the newest covered segment; prefer the exact boundary match the
    // ACK names, falling back to the highest boundary below it (delayed or
    // cumulative ACKs).
    auto it = pending.upper_bound(a.ack);
    if (it == pending.begin()) continue;  // duplicate ACK, nothing covered
    --it;
    if (!it->second.tainted) {
      samples.push_back(RttSample{a.time, a.time - it->second.sent_at, it->first});
    }
    // Everything at or below the ACK is now accounted for.
    pending.erase(pending.begin(), std::next(it));
  }
  return samples;
}

std::vector<RttSample> extract_rtt_samples(const FlowTrace& flow) {
  return extract_rtt_samples(flow, std::numeric_limits<sim::Time>::max());
}

}  // namespace ccsig::analysis

#include "analysis/rtt_estimator.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace ccsig::analysis {
namespace {

struct Outstanding {
  std::uint64_t seq_end;
  sim::Time sent_at;
  bool tainted;  // retransmitted range: excluded per Karn's rule
};

}  // namespace

std::vector<RttSample> extract_rtt_samples(const FlowTrace& flow,
                                           sim::Time cutoff) {
  // Merge the two directions into one time-ordered walk. Both vectors are
  // individually time-sorted (capture order).
  //
  // Outstanding segments live in a flat vector kept sorted by seq_end with
  // a head cursor instead of a std::map: data almost always arrives with
  // strictly increasing seq_end (push_back), ACKs consume a prefix
  // (advance `head`), and retransmissions — the only case needing a real
  // ordered lookup — binary-search the live range. No per-segment node
  // allocation, no rebalancing, and the hot paths are O(1) amortized.
  std::vector<RttSample> samples;
  std::vector<Outstanding> pending;
  pending.reserve(64);
  std::size_t head = 0;            // first live entry
  std::uint64_t highest_sent = 0;  // highest seq_end ever transmitted

  const auto live_begin = [&] { return pending.begin() + head; };
  const auto compact = [&] {
    // Amortized cleanup of the consumed prefix so memory stays bounded by
    // the flight size, not the flow length.
    if (head >= 1024 && head * 2 >= pending.size()) {
      pending.erase(pending.begin(), live_begin());
      head = 0;
    }
  };

  std::size_t di = 0, ai = 0;
  while (di < flow.data.size() || ai < flow.acks.size()) {
    const bool take_data =
        ai >= flow.acks.size() ||
        (di < flow.data.size() && flow.data[di].time <= flow.acks[ai].time);
    if (take_data) {
      const TraceRecord& d = flow.data[di++];
      if (d.payload_bytes == 0) continue;  // SYN / pure control
      const std::uint64_t seq_end = d.seq + d.payload_bytes;
      if (seq_end > highest_sent) {
        // Fresh data: by definition the largest boundary seen, so it
        // belongs at the back and is untainted.
        pending.push_back(Outstanding{seq_end, d.time, false});
        highest_sent = seq_end;
        continue;
      }
      // Retransmitted range (seq_end <= highest_sent): tainted either way.
      const auto it = std::lower_bound(
          live_begin(), pending.end(), seq_end,
          [](const Outstanding& o, std::uint64_t v) { return o.seq_end < v; });
      if (it != pending.end() && it->seq_end == seq_end) {
        // Same range sent again: taint and refresh timestamp.
        it->tainted = true;
        it->sent_at = d.time;
      } else {
        // A boundary below ones already outstanding (e.g. a partial
        // retransmit after loss): rare, so the O(n) insert is fine.
        pending.insert(it, Outstanding{seq_end, d.time, true});
      }
      continue;
    }
    const TraceRecord& a = flow.acks[ai++];
    if (!a.flags.ack || a.flags.syn) continue;
    if (a.time > cutoff) break;
    // Find the newest covered segment; prefer the exact boundary match the
    // ACK names, falling back to the highest boundary below it (delayed or
    // cumulative ACKs).
    const auto it = std::upper_bound(
        live_begin(), pending.end(), a.ack,
        [](std::uint64_t v, const Outstanding& o) { return v < o.seq_end; });
    if (it == live_begin()) continue;  // duplicate ACK, nothing covered
    const Outstanding& covered = *std::prev(it);
    if (!covered.tainted) {
      samples.push_back(
          RttSample{a.time, a.time - covered.sent_at, covered.seq_end});
    }
    // Everything at or below the ACK is now accounted for: the prefix
    // erase is just a cursor advance.
    head = static_cast<std::size_t>(it - pending.begin());
    compact();
  }
  return samples;
}

std::vector<RttSample> extract_rtt_samples(const FlowTrace& flow) {
  return extract_rtt_samples(flow, std::numeric_limits<sim::Time>::max());
}

}  // namespace ccsig::analysis

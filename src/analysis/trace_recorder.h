// In-memory tcpdump: a TraceSink that appends to a Trace.
#pragma once

#include "analysis/trace_record.h"
#include "sim/trace.h"

namespace ccsig::analysis {

class TraceRecorder : public sim::TraceSink {
 public:
  void on_packet(sim::Time t, const sim::Packet& p) override {
    TraceRecord r;
    r.time = t;
    r.key = p.key;
    r.seq = p.seq;
    r.ack = p.ack;
    r.payload_bytes = p.payload_bytes;
    r.window = p.window;
    r.flags = p.flags;
    trace_.push_back(r);
  }

  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }
  void clear() { trace_.clear(); }

 private:
  Trace trace_;
};

}  // namespace ccsig::analysis

// Slow-start boundary detection from the server-side trace.
//
// The paper defines the slow-start period as everything up to the first
// retransmission or fast retransmission (§2.3). From a capture, both appear
// as a data segment whose sequence range was already transmitted.
#pragma once

#include <optional>
#include <span>

#include "analysis/flow_trace.h"
#include "sim/time.h"

namespace ccsig::analysis {

struct SlowStartInfo {
  /// Time of the first retransmitted data segment; the slow-start RTT
  /// window is [flow start, end_time).
  sim::Time end_time = 0;
  /// True when a retransmission was found; false means the flow never
  /// retransmitted and `end_time` is the end of the trace.
  bool ended_by_retransmission = false;
  /// Unique payload bytes cumulatively ACKed by `end_time` — the basis of
  /// the slow-start throughput used for labeling.
  std::uint64_t acked_bytes = 0;
};

/// Locates the end of the first slow-start period.
SlowStartInfo detect_slow_start(const FlowTrace& flow);

/// One strict advance of the cumulative ACK: the running maximum of the
/// ACK field increased to `ack` at `time`. The advance sequence is the
/// sufficient statistic for slow-start throughput, so the streaming engine
/// keeps only these (pruned) instead of every ACK record.
struct AckAdvance {
  sim::Time time = 0;
  std::uint64_t ack = 0;
};

/// Slow-start throughput from a flow's cumulative-ACK advance sequence
/// (strictly increasing ack values in time order, truncated at the first
/// raw ACK past `ss.end_time`). Both the batch path and the streaming
/// engine call this with integer inputs derived identically, so the double
/// result is bit-identical between them.
std::optional<double> slow_start_throughput_from_advances(
    sim::Time start, const SlowStartInfo& ss,
    std::span<const AckAdvance> advances);

/// Mean downstream throughput (bits/s) achieved during slow start, measured
/// from cumulative ACK progress. Returns nullopt when the window is empty.
std::optional<double> slow_start_throughput_bps(const FlowTrace& flow,
                                                const SlowStartInfo& ss);

/// Mean throughput of `acked_bytes` delivered over `duration` (bits/s);
/// nullopt when either is zero. Scalar core of flow_throughput_bps, shared
/// with the streaming engine.
std::optional<double> throughput_bps(std::uint64_t acked_bytes,
                                     sim::Duration duration);

/// Whole-flow mean throughput in bits/s (acked bytes over duration).
std::optional<double> flow_throughput_bps(const FlowTrace& flow);

}  // namespace ccsig::analysis

// Slow-start boundary detection from the server-side trace.
//
// The paper defines the slow-start period as everything up to the first
// retransmission or fast retransmission (§2.3). From a capture, both appear
// as a data segment whose sequence range was already transmitted.
#pragma once

#include <optional>

#include "analysis/flow_trace.h"
#include "sim/time.h"

namespace ccsig::analysis {

struct SlowStartInfo {
  /// Time of the first retransmitted data segment; the slow-start RTT
  /// window is [flow start, end_time).
  sim::Time end_time = 0;
  /// True when a retransmission was found; false means the flow never
  /// retransmitted and `end_time` is the end of the trace.
  bool ended_by_retransmission = false;
  /// Unique payload bytes cumulatively ACKed by `end_time` — the basis of
  /// the slow-start throughput used for labeling.
  std::uint64_t acked_bytes = 0;
};

/// Locates the end of the first slow-start period.
SlowStartInfo detect_slow_start(const FlowTrace& flow);

/// Mean downstream throughput (bits/s) achieved during slow start, measured
/// from cumulative ACK progress. Returns nullopt when the window is empty.
std::optional<double> slow_start_throughput_bps(const FlowTrace& flow,
                                                const SlowStartInfo& ss);

/// Whole-flow mean throughput in bits/s (acked bytes over duration).
std::optional<double> flow_throughput_bps(const FlowTrace& flow);

}  // namespace ccsig::analysis

#include "analysis/from_pcap.h"

#include <unordered_map>

#include "pcap/headers.h"

namespace ccsig::analysis {
namespace {

/// Extends wrapped 32-bit wire values into a monotonically consistent 64-bit
/// space. Tracks the current epoch per direction; a backward jump of more
/// than half the sequence space is a wrap.
class SeqUnwrapper {
 public:
  std::uint64_t unwrap(std::uint32_t v32) {
    const std::uint64_t candidate = epoch_ + v32;
    if (!have_last_) {
      have_last_ = true;
      last_ = candidate;
      return candidate;
    }
    std::uint64_t best = candidate;
    // Consider the neighbouring epochs and pick the value closest to the
    // last one seen (handles both wraps and in-window retransmissions).
    if (candidate + (1ull << 32) >= last_ &&
        diff(candidate + (1ull << 32)) < diff(best)) {
      best = candidate + (1ull << 32);
    }
    if (candidate >= (1ull << 32) && diff(candidate - (1ull << 32)) < diff(best)) {
      best = candidate - (1ull << 32);
    }
    if (best > last_ && best - last_ < (1ull << 31)) last_ = best;
    epoch_ = best & ~0xFFFFFFFFull;
    return best;
  }

 private:
  std::uint64_t diff(std::uint64_t v) const {
    return v > last_ ? v - last_ : last_ - v;
  }
  std::uint64_t epoch_ = 0;
  std::uint64_t last_ = 0;
  bool have_last_ = false;
};

sim::Address from_ipv4(std::uint32_t ip) { return ip & 0x00FFFFFFu; }

}  // namespace

Trace trace_from_records(const std::vector<pcap::PcapRecord>& records) {
  Trace out;
  out.reserve(records.size());
  struct DirState {
    SeqUnwrapper seq;
    SeqUnwrapper ack;
  };
  std::unordered_map<sim::FlowKey, DirState, sim::FlowKeyHash> dirs;

  for (const auto& rec : records) {
    auto decoded = pcap::decode_frame(rec.data);
    if (!decoded) continue;
    TraceRecord r;
    r.time = rec.timestamp;
    r.key.src_addr = from_ipv4(decoded->src_ip);
    r.key.dst_addr = from_ipv4(decoded->dst_ip);
    r.key.src_port = decoded->src_port;
    r.key.dst_port = decoded->dst_port;
    DirState& st = dirs[r.key];
    r.seq = st.seq.unwrap(decoded->seq32);
    r.ack = decoded->ack ? st.ack.unwrap(decoded->ack32) : 0;
    r.payload_bytes = decoded->payload_bytes;
    r.window = static_cast<std::uint32_t>(decoded->window) << 8;  // wscale 8
    r.flags.syn = decoded->syn;
    r.flags.ack = decoded->ack;
    r.flags.fin = decoded->fin;
    r.flags.rst = decoded->rst;
    out.push_back(r);
  }
  return out;
}

Trace trace_from_pcap(const std::string& path) {
  return trace_from_records(pcap::read_all(path));
}

TraceReadResult trace_from_pcap_checked(const std::string& path) {
  pcap::PcapReadResult raw = pcap::read_all_checked(path);
  TraceReadResult out;
  out.trace = trace_from_records(raw.records);
  out.error = std::move(raw.error);
  return out;
}

}  // namespace ccsig::analysis

#include "analysis/from_pcap.h"

#include <unordered_map>

#include "pcap/headers.h"

namespace ccsig::analysis {

Trace trace_from_records(const std::vector<pcap::PcapRecord>& records) {
  Trace out;
  out.reserve(records.size());
  struct DirState {
    SeqUnwrapper seq;
    SeqUnwrapper ack;
  };
  std::unordered_map<sim::FlowKey, DirState, sim::FlowKeyHash> dirs;

  for (const auto& rec : records) {
    const auto w = wire_record_from_frame(rec.timestamp, rec.data);
    if (!w) continue;
    DirState& st = dirs[w->key];
    out.push_back(unwrap_record(*w, st.seq, st.ack));
  }
  return out;
}

Trace trace_from_pcap(const std::string& path) {
  return trace_from_records(pcap::read_all(path));
}

TraceReadResult trace_from_pcap_checked(const std::string& path) {
  pcap::PcapReadResult raw = pcap::read_all_checked(path);
  TraceReadResult out;
  out.trace = trace_from_records(raw.records);
  out.error = std::move(raw.error);
  return out;
}

}  // namespace ccsig::analysis

#include "analysis/from_pcap.h"

#include <unordered_map>

#include "pcap/headers.h"

namespace ccsig::analysis {
namespace {

sim::Address from_ipv4(std::uint32_t ip) { return ip & 0x00FFFFFFu; }

}  // namespace

std::optional<WireRecord> wire_record_from_frame(
    sim::Time timestamp, std::span<const std::uint8_t> frame) {
  const auto decoded = pcap::decode_frame(frame);
  if (!decoded) return std::nullopt;
  WireRecord w;
  w.time = timestamp;
  w.key.src_addr = from_ipv4(decoded->src_ip);
  w.key.dst_addr = from_ipv4(decoded->dst_ip);
  w.key.src_port = decoded->src_port;
  w.key.dst_port = decoded->dst_port;
  w.seq32 = decoded->seq32;
  w.ack32 = decoded->ack32;
  w.payload_bytes = decoded->payload_bytes;
  w.window = decoded->window;
  w.flags.syn = decoded->syn;
  w.flags.ack = decoded->ack;
  w.flags.fin = decoded->fin;
  w.flags.rst = decoded->rst;
  return w;
}

Trace trace_from_records(const std::vector<pcap::PcapRecord>& records) {
  Trace out;
  out.reserve(records.size());
  struct DirState {
    SeqUnwrapper seq;
    SeqUnwrapper ack;
  };
  std::unordered_map<sim::FlowKey, DirState, sim::FlowKeyHash> dirs;

  for (const auto& rec : records) {
    const auto w = wire_record_from_frame(rec.timestamp, rec.data);
    if (!w) continue;
    DirState& st = dirs[w->key];
    out.push_back(unwrap_record(*w, st.seq, st.ack));
  }
  return out;
}

Trace trace_from_pcap(const std::string& path) {
  return trace_from_records(pcap::read_all(path));
}

TraceReadResult trace_from_pcap_checked(const std::string& path) {
  pcap::PcapReadResult raw = pcap::read_all_checked(path);
  TraceReadResult out;
  out.trace = trace_from_records(raw.records);
  out.error = std::move(raw.error);
  return out;
}

}  // namespace ccsig::analysis

#include "analysis/throughput.h"

#include <algorithm>

namespace ccsig::analysis {

std::vector<ThroughputPoint> throughput_series(const FlowTrace& flow,
                                               sim::Duration window) {
  std::vector<ThroughputPoint> out;
  if (window <= 0 || flow.acks.empty()) return out;
  const sim::Time start = flow.start_time();
  const sim::Time end = flow.end_time();
  const auto n_windows =
      static_cast<std::size_t>((end - start) / window + 1);
  out.resize(n_windows);
  for (std::size_t i = 0; i < n_windows; ++i) {
    out[i].window_start = start + static_cast<sim::Duration>(i) * window;
  }
  // Walk ACKs once, attributing progress to the window it lands in.
  std::uint64_t max_ack = 0;
  for (const auto& a : flow.acks) {
    if (a.ack <= max_ack) continue;
    const std::uint64_t progress = a.ack - std::max<std::uint64_t>(max_ack, 1);
    max_ack = a.ack;
    const auto idx = static_cast<std::size_t>((a.time - start) / window);
    if (idx < out.size()) {
      out[idx].bps += static_cast<double>(progress) * 8.0;
    }
  }
  const double window_s = sim::to_seconds(window);
  for (auto& p : out) p.bps /= window_s;
  return out;
}

double peak_windowed_throughput_bps(const FlowTrace& flow,
                                    sim::Duration window) {
  double peak = 0;
  for (const auto& p : throughput_series(flow, window)) {
    peak = std::max(peak, p.bps);
  }
  return peak;
}

double throughput_between_bps(const FlowTrace& flow, sim::Time from,
                              sim::Time to) {
  if (to <= from) return 0.0;
  std::uint64_t ack_from = 0, ack_to = 0;
  for (const auto& a : flow.acks) {
    if (a.time <= from) ack_from = std::max(ack_from, a.ack);
    if (a.time <= to) ack_to = std::max(ack_to, a.ack);
  }
  if (ack_to <= ack_from) return 0.0;
  return static_cast<double>(ack_to - ack_from) * 8.0 /
         sim::to_seconds(to - from);
}

}  // namespace ccsig::analysis

// 32-bit wire value unwrapping shared by the batch pcap decoder and the
// streaming engine. Both must run the *same* stateful math per direction so
// a capture decodes to bit-identical 64-bit stream offsets either way.
#pragma once

#include <cstdint>

#include "analysis/trace_record.h"
#include "sim/packet.h"
#include "sim/time.h"

namespace ccsig::analysis {

/// Extends wrapped 32-bit wire values into a monotonically consistent 64-bit
/// space. Tracks the current epoch per direction; a backward jump of more
/// than half the sequence space is a wrap.
class SeqUnwrapper {
 public:
  std::uint64_t unwrap(std::uint32_t v32) {
    const std::uint64_t candidate = epoch_ + v32;
    if (!have_last_) {
      have_last_ = true;
      last_ = candidate;
      return candidate;
    }
    std::uint64_t best = candidate;
    // Consider the neighbouring epochs and pick the value closest to the
    // last one seen (handles both wraps and in-window retransmissions).
    if (candidate + (1ull << 32) >= last_ &&
        diff(candidate + (1ull << 32)) < diff(best)) {
      best = candidate + (1ull << 32);
    }
    if (candidate >= (1ull << 32) && diff(candidate - (1ull << 32)) < diff(best)) {
      best = candidate - (1ull << 32);
    }
    if (best > last_ && best - last_ < (1ull << 31)) last_ = best;
    epoch_ = best & ~0xFFFFFFFFull;
    return best;
  }

 private:
  std::uint64_t diff(std::uint64_t v) const {
    return v > last_ ? v - last_ : last_ - v;
  }
  std::uint64_t epoch_ = 0;
  std::uint64_t last_ = 0;
  bool have_last_ = false;
};

/// One decoded-but-not-yet-unwrapped TCP observation: the frame fields that
/// matter for analysis plus the capture timestamp and 4-tuple. Trivially
/// copyable so the streaming engine can batch these across threads.
struct WireRecord {
  sim::Time time = 0;
  sim::FlowKey key;
  std::uint32_t seq32 = 0;
  std::uint32_t ack32 = 0;
  std::uint32_t payload_bytes = 0;
  std::uint16_t window = 0;
  sim::TcpFlags flags;
};

static_assert(std::is_trivially_copyable_v<WireRecord>);

/// Converts a wire observation into the analysis record, advancing the
/// per-direction unwrappers. This is the single definition of the wire →
/// stream-offset mapping (ack unwrapped only when the ACK flag is set,
/// window scaled by the fixed wscale of 8).
inline TraceRecord unwrap_record(const WireRecord& w, SeqUnwrapper& seq,
                                 SeqUnwrapper& ack) {
  TraceRecord r;
  r.time = w.time;
  r.key = w.key;
  r.seq = seq.unwrap(w.seq32);
  r.ack = w.flags.ack ? ack.unwrap(w.ack32) : 0;
  r.payload_bytes = w.payload_bytes;
  r.window = static_cast<std::uint32_t>(w.window) << 8;  // wscale 8
  r.flags = w.flags;
  return r;
}

}  // namespace ccsig::analysis

// The normalized packet-observation record all analysis code consumes,
// whether it came from a live simulator tap or from a pcap file.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.h"
#include "sim/time.h"

namespace ccsig::analysis {

struct TraceRecord {
  sim::Time time = 0;
  sim::FlowKey key;
  std::uint64_t seq = 0;   // 64-bit stream offset (unwrapped)
  std::uint64_t ack = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t window = 0;
  sim::TcpFlags flags;
};

using Trace = std::vector<TraceRecord>;

}  // namespace ccsig::analysis

#include "mlab/rowstore.h"

#include <array>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "runtime/parse_error.h"

namespace ccsig::mlab {
namespace {

constexpr char kMagic[4] = {'C', 'C', 'R', 'S'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kBlockMagic = 0x314B4C42;  // "BLK1"
constexpr std::size_t kBlockHeaderBytes = 16;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t double_bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

double bits_double(std::uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

/// First-appearance-order string dictionary for one column.
class Dict {
 public:
  std::uint8_t id_of(const std::string& s) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i] == s) return static_cast<std::uint8_t>(i);
    }
    if (entries_.size() >= 255 || s.size() > 255) {
      throw std::runtime_error("row store dictionary overflow");
    }
    entries_.push_back(s);
    return static_cast<std::uint8_t>(entries_.size() - 1);
  }
  void encode(std::vector<std::uint8_t>& out) const {
    out.push_back(static_cast<std::uint8_t>(entries_.size()));
    for (const std::string& s : entries_) {
      out.push_back(static_cast<std::uint8_t>(s.size()));
      out.insert(out.end(), s.begin(), s.end());
    }
  }

 private:
  std::vector<std::string> entries_;
};

std::vector<std::uint8_t> encode_block_payload(
    const std::vector<NdtObservation>& rows) {
  const std::size_t n = rows.size();
  Dict transit, site, isp;
  std::vector<std::uint8_t> tid(n), sid(n), iid(n);
  for (std::size_t i = 0; i < n; ++i) {
    tid[i] = transit.id_of(rows[i].transit);
    sid[i] = site.id_of(rows[i].site);
    iid[i] = isp.id_of(rows[i].isp);
  }
  std::vector<std::uint8_t> out;
  out.reserve(n * 49 + 64);
  transit.encode(out);
  site.encode(out);
  isp.encode(out);
  out.insert(out.end(), tid.begin(), tid.end());
  out.insert(out.end(), sid.begin(), sid.end());
  out.insert(out.end(), iid.begin(), iid.end());
  for (const auto& r : rows) {
    out.push_back(static_cast<std::uint8_t>(r.month));
  }
  for (const auto& r : rows) {
    out.push_back(static_cast<std::uint8_t>(r.hour));
  }
  for (const auto& r : rows) {
    out.push_back(static_cast<std::uint8_t>((r.has_features ? 1 : 0) |
                                            (r.passes_filters ? 2 : 0) |
                                            (r.truth_external ? 4 : 0)));
  }
  for (const auto& r : rows) put_u64(out, double_bits(r.plan_mbps));
  for (const auto& r : rows) put_u64(out, double_bits(r.throughput_mbps));
  for (const auto& r : rows) put_u64(out, double_bits(r.ss_tput_mbps));
  for (const auto& r : rows) put_u64(out, double_bits(r.norm_diff));
  for (const auto& r : rows) put_u64(out, double_bits(r.cov));
  return out;
}

/// Decodes one block payload into `rows`. Returns false (leaving `rows`
/// unspecified) on any structural inconsistency — the caller treats the
/// block, and everything after it, as an uncommitted tail.
bool decode_block_payload(const std::uint8_t* p, std::size_t len,
                          std::uint32_t nrows,
                          std::vector<NdtObservation>& rows) {
  const std::uint8_t* end = p + len;
  auto decode_dict = [&](std::vector<std::string>& dict) -> bool {
    if (p >= end) return false;
    const std::uint8_t n = *p++;
    dict.clear();
    for (std::uint8_t i = 0; i < n; ++i) {
      if (p >= end) return false;
      const std::uint8_t slen = *p++;
      if (p + slen > end) return false;
      dict.emplace_back(reinterpret_cast<const char*>(p), slen);
      p += slen;
    }
    return true;
  };
  std::vector<std::string> transit, site, isp;
  if (!decode_dict(transit) || !decode_dict(site) || !decode_dict(isp)) {
    return false;
  }
  const std::size_t n = nrows;
  // 6 byte columns + 5 double columns.
  if (static_cast<std::size_t>(end - p) != n * 6 + n * 5 * 8) return false;
  const std::uint8_t* tid = p;
  const std::uint8_t* sid = tid + n;
  const std::uint8_t* iid = sid + n;
  const std::uint8_t* month = iid + n;
  const std::uint8_t* hour = month + n;
  const std::uint8_t* flags = hour + n;
  const std::uint8_t* doubles = flags + n;
  rows.clear();
  rows.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    NdtObservation& r = rows[i];
    if (tid[i] >= transit.size() || sid[i] >= site.size() ||
        iid[i] >= isp.size()) {
      return false;
    }
    r.transit = transit[tid[i]];
    r.site = site[sid[i]];
    r.isp = isp[iid[i]];
    r.month = month[i];
    r.hour = hour[i];
    r.has_features = flags[i] & 1;
    r.passes_filters = flags[i] & 2;
    r.truth_external = flags[i] & 4;
    r.plan_mbps = bits_double(get_u64(doubles + (0 * n + i) * 8));
    r.throughput_mbps = bits_double(get_u64(doubles + (1 * n + i) * 8));
    r.ss_tput_mbps = bits_double(get_u64(doubles + (2 * n + i) * 8));
    r.norm_diff = bits_double(get_u64(doubles + (3 * n + i) * 8));
    r.cov = bits_double(get_u64(doubles + (4 * n + i) * 8));
  }
  return true;
}

/// Reads and validates the file header. Returns the fingerprint and sets
/// `*header_bytes`; throws ParseException on damage (a store whose header
/// is unreadable has no committed prefix to trust).
std::string read_header(std::ifstream& in, const std::string& path,
                        std::uint64_t* header_bytes) {
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    runtime::throw_parse_error(path, 0, "byte", "not a ccsig row store");
  }
  std::uint8_t word[8];
  if (!in.read(reinterpret_cast<char*>(word), 8)) {
    runtime::throw_parse_error(path, 4, "byte", "truncated row store header");
  }
  const std::uint32_t version = get_u32(word);
  if (version != kVersion) {
    runtime::throw_parse_error(path, 4, "byte",
                               "unsupported row store version " +
                                   std::to_string(version));
  }
  const std::uint32_t fp_len = get_u32(word + 4);
  std::string fingerprint(fp_len, '\0');
  if (fp_len > 0 && !in.read(fingerprint.data(), fp_len)) {
    runtime::throw_parse_error(path, 12, "byte",
                               "truncated row store fingerprint");
  }
  *header_bytes = 12 + fp_len;
  return fingerprint;
}

/// Walks committed blocks from the current stream position, invoking
/// `on_block` (when non-null) with each decoded block. Stops at the first
/// torn or corrupt block — by the append-only contract everything at and
/// after it is uncommitted tail.
RowStoreInfo scan_blocks(
    std::ifstream& in, const std::string& fingerprint,
    std::uint64_t header_bytes,
    const std::function<void(const std::vector<NdtObservation>&)>& on_block) {
  RowStoreInfo info;
  info.fingerprint = fingerprint;
  info.committed_bytes = header_bytes;
  std::vector<std::uint8_t> payload;
  std::vector<NdtObservation> rows;
  for (;;) {
    std::uint8_t hdr[kBlockHeaderBytes];
    if (!in.read(reinterpret_cast<char*>(hdr), kBlockHeaderBytes)) break;
    if (get_u32(hdr) != kBlockMagic) break;
    const std::uint32_t nrows = get_u32(hdr + 4);
    const std::uint32_t payload_bytes = get_u32(hdr + 8);
    const std::uint32_t want_crc = get_u32(hdr + 12);
    payload.resize(payload_bytes);
    if (payload_bytes > 0 &&
        !in.read(reinterpret_cast<char*>(payload.data()), payload_bytes)) {
      break;
    }
    if (crc32(payload.data(), payload.size()) != want_crc) break;
    if (on_block) {
      if (!decode_block_payload(payload.data(), payload.size(), nrows, rows)) {
        break;
      }
      on_block(rows);
    }
    info.rows += nrows;
    info.blocks += 1;
    info.committed_bytes += kBlockHeaderBytes + payload_bytes;
  }
  return info;
}

}  // namespace

RowStoreInfo row_store_info(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    runtime::throw_parse_error(path, 0, "byte", "cannot read row store");
  }
  std::uint64_t header_bytes = 0;
  const std::string fingerprint = read_header(in, path, &header_bytes);
  return scan_blocks(in, fingerprint, header_bytes, nullptr);
}

RowStoreWriter::RowStoreWriter(const std::string& path,
                               const std::string& fingerprint)
    : path_(path) {
  namespace fs = std::filesystem;
  if (fs::exists(path)) {
    const RowStoreInfo info = row_store_info(path);
    if (info.fingerprint != fingerprint) {
      runtime::throw_parse_error(
          path, 12, "byte",
          "row store fingerprint mismatch (have \"" + info.fingerprint +
              "\", want \"" + fingerprint + "\")");
    }
    // Drop any torn tail from a kill mid-append, so we always resume
    // writing at a clean block boundary.
    if (fs::file_size(path) > info.committed_bytes) {
      fs::resize_file(path, info.committed_bytes);
    }
    rows_ = info.rows;
    out_.open(path, std::ios::binary | std::ios::app);
  } else {
    out_.open(path, std::ios::binary);
    if (out_) {
      std::vector<std::uint8_t> hdr;
      hdr.insert(hdr.end(), kMagic, kMagic + 4);
      put_u32(hdr, kVersion);
      put_u32(hdr, static_cast<std::uint32_t>(fingerprint.size()));
      hdr.insert(hdr.end(), fingerprint.begin(), fingerprint.end());
      out_.write(reinterpret_cast<const char*>(hdr.data()),
                 static_cast<std::streamsize>(hdr.size()));
      out_.flush();
    }
  }
  if (!out_) {
    throw std::runtime_error("cannot open row store for append: " + path_);
  }
}

void RowStoreWriter::append_block(const std::vector<NdtObservation>& rows) {
  if (rows.empty()) return;
  const std::vector<std::uint8_t> payload = encode_block_payload(rows);
  std::vector<std::uint8_t> hdr;
  hdr.reserve(kBlockHeaderBytes);
  put_u32(hdr, kBlockMagic);
  put_u32(hdr, static_cast<std::uint32_t>(rows.size()));
  put_u32(hdr, static_cast<std::uint32_t>(payload.size()));
  put_u32(hdr, crc32(payload.data(), payload.size()));
  out_.write(reinterpret_cast<const char*>(hdr.data()),
             static_cast<std::streamsize>(hdr.size()));
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("row store append failed: " + path_);
  }
  rows_ += rows.size();
}

std::uint64_t for_each_row(
    const std::string& path,
    const std::function<void(const NdtObservation&)>& fn,
    std::string* fingerprint_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    runtime::throw_parse_error(path, 0, "byte", "cannot read row store");
  }
  std::uint64_t header_bytes = 0;
  const std::string fingerprint = read_header(in, path, &header_bytes);
  if (fingerprint_out) *fingerprint_out = fingerprint;
  const RowStoreInfo info =
      scan_blocks(in, fingerprint, header_bytes,
                  [&fn](const std::vector<NdtObservation>& rows) {
                    for (const NdtObservation& r : rows) fn(r);
                  });
  return info.rows;
}

void export_rows_csv(const std::string& store_path,
                     const std::string& csv_path) {
  namespace fs = std::filesystem;
  // Stream to a sibling temp file and rename, matching write_file_atomic's
  // crash semantics without materializing a million-row string.
  const std::string tmp = csv_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) {
      throw std::runtime_error("cannot write csv export: " + tmp);
    }
    std::string fingerprint;
    std::ifstream in(store_path, std::ios::binary);
    if (!in) {
      runtime::throw_parse_error(store_path, 0, "byte",
                                 "cannot read row store");
    }
    std::uint64_t header_bytes = 0;
    fingerprint = read_header(in, store_path, &header_bytes);
    if (!fingerprint.empty()) {
      out << observations_fingerprint_prefix() << fingerprint << "\n";
    }
    out << observations_csv_header() << "\n";
    scan_blocks(in, fingerprint, header_bytes,
                [&out](const std::vector<NdtObservation>& rows) {
                  for (const NdtObservation& r : rows) {
                    out << format_observation_row(r) << "\n";
                  }
                });
    out.flush();
    if (!out) {
      throw std::runtime_error("csv export write failed: " + tmp);
    }
  }
  fs::rename(tmp, csv_path);
}

}  // namespace ccsig::mlab

// Synthetic reconstruction of the paper's Dispute2014 M-Lab/NDT dataset
// (§4.1): NDT throughput tests from four access ISPs to three transit-hosted
// M-Lab sites across January–April 2014, spanning the Cogent peering
// dispute. Every observation is an actual simulated TCP flow through a
// two-bottleneck path whose interconnect load follows a diurnal curve; for
// the disputed combinations the evening peak exceeds capacity in Jan–Feb
// and is relieved in Mar–Apr (Comcast's Netflix agreement / Cogent's
// prioritization). Cox peered directly and is never affected.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mlab/path.h"
#include "runtime/campaign.h"
#include "runtime/fault_injection.h"
#include "runtime/job_result.h"
#include "sim/random.h"

namespace ccsig::mlab {

struct TransitSite {
  std::string transit;  // "Cogent" / "Level3"
  std::string site;     // "LAX" / "LGA" / "ATL"
  bool disputed;        // carried the contested Netflix traffic
};

struct AccessIsp {
  std::string name;
  bool direct_peering;  // Cox: yes -> unaffected by the dispute
  std::vector<double> plan_mbps;
  std::vector<double> plan_weights;
};

/// The measured entities (paper §4.1).
std::vector<TransitSite> dispute_sites();
std::vector<AccessIsp> dispute_isps();

/// Diurnal interconnect demand multiplier for local hour h (0–23):
/// ~0.35 overnight, rising to 1.0 at the evening peak.
double diurnal_curve(int hour);

/// True when the (site, isp, month) combination suffered interconnect
/// congestion at peak (the dispute was active for non-peered ISPs through
/// Cogent in January–February).
bool dispute_active(const TransitSite& site, const AccessIsp& isp, int month);

struct NdtObservation {
  std::string transit;
  std::string site;
  std::string isp;
  int month = 1;  // 1..4 (Jan..Apr 2014)
  int hour = 0;   // local hour of day
  double plan_mbps = 0;
  double throughput_mbps = 0;
  double ss_tput_mbps = 0;
  double norm_diff = 0;
  double cov = 0;
  bool has_features = false;
  bool passes_filters = false;
  /// Ground truth: was the interconnect demand above capacity during the
  /// test? (Available here because we generated the world; the paper had
  /// to approximate this with coarse labels.)
  bool truth_external = false;
};

struct Dispute2014Options {
  int tests_per_cell = 1;  // per (site, isp, month, hour)
  std::vector<int> months = {1, 2, 3, 4};
  std::vector<int> hours = {0, 1, 2,  3,  4,  5,  6,  7,  8,  9,  10, 11,
                            12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23};
  /// Interconnect capacity of the modeled (scaled-down) transit port.
  double interconnect_mbps = 300.0;
  double interconnect_buffer_ms = 25.0;
  /// Demand multiplier applied on top of the diurnal curve when the
  /// dispute is active (evening-peak load ≈ 1.2–1.35 × capacity).
  double dispute_intensity = 1.35;
  double normal_intensity = 0.75;
  sim::Duration ndt_duration = sim::from_seconds(10.0);
  sim::Duration warmup = sim::from_seconds(2.0);
  /// Congestion control of the measured NDT flows (registry name or alias;
  /// see tcp/congestion_control.h). Part of the cache fingerprint, appended
  /// only when it differs from the historical default so existing caches
  /// stay valid.
  std::string ndt_cc = "cubic";
  std::uint64_t seed = 2014;
  /// Worker threads: 0 = every hardware thread, 1 = serial. Output is
  /// identical for any value (per-observation path configs and seeds are
  /// drawn in a deterministic pre-pass, results collected in slot order).
  int jobs = 0;
  /// Progress callback; invocations are serialized even when `jobs > 1`.
  std::function<void(std::size_t, std::size_t)> progress;

  // --- Fault tolerance (see runtime/campaign.h) ---------------------------
  /// Shard-checkpoint file for kill/resume; empty disables checkpointing.
  /// load_or_generate_dispute2014 sets this to `<cache>.ckpt` automatically.
  std::string checkpoint_path;
  int checkpoint_every = 16;
  runtime::RetryPolicy retry = runtime::RetryPolicy::attempts(2);
  std::chrono::milliseconds soft_deadline{0};
  bool abandon_on_deadline = false;
  const runtime::FaultPlan* faults = nullptr;
  /// Receives one JobError per observation that ultimately failed (the
  /// observation is absent from the result). nullptr = discard errors.
  std::vector<runtime::JobError>* errors_out = nullptr;
  /// When non-null and every observation succeeded, receives a callback
  /// that deletes the shard checkpoint; the checkpoint is kept until the
  /// caller invokes it (after atomically writing the final CSV). See
  /// runtime::CheckpointedRunOptions::commit_out.
  std::function<void()>* checkpoint_commit_out = nullptr;
  /// When non-null, receives the campaign's slot accounting
  /// (restored/executed/failed/retried/abandoned counts).
  runtime::CampaignStats* stats_out = nullptr;
};

/// Runs the campaign (one independent path simulation per observation).
std::vector<NdtObservation> generate_dispute2014(const Dispute2014Options& opt);

/// The paper's coarse labeling (§4.1): peak-hour (16–23h) Jan–Feb tests on
/// affected combinations are external; off-peak (1–8h) Mar–Apr tests are
/// self-induced; everything else is unlabeled. Returns the CongestionClass
/// encoding (0 external / 1 self) or nullopt.
std::optional<int> dispute_coarse_label(const NdtObservation& obs);

/// Peak / off-peak helpers matching the paper's windows.
inline bool is_peak_hour(int hour) { return hour >= 16 && hour <= 23; }
inline bool is_offpeak_hour(int hour) { return hour >= 1 && hour <= 8; }

/// One-line digest of every option affecting campaign content (not
/// `jobs`/`progress`); embedded in cache CSVs to invalidate stale caches.
std::string dispute_fingerprint(const Dispute2014Options& opt);

/// One fully-specified NDT test: the path it runs over plus the metadata
/// that identifies its cell. Built in a deterministic pre-pass (fixed
/// enumeration and RNG draw order), so campaign content never depends on
/// execution order, worker count, or chunking.
struct PlannedNdt {
  PathConfig pc;
  std::string transit;
  std::string site;
  std::string isp;
  int month = 0;
  int hour = 0;
  double load = 0;
};

/// Incremental enumeration of the campaign plan in the exact order (and
/// with the exact RNG draw sequence) of generate_dispute2014's serial
/// pre-pass. Lets the million-row scale driver (mlab/scale.h) walk an
/// arbitrarily large plan in O(1) memory — and, by calling next() past
/// already-completed rows, resume mid-campaign with bit-identical draws.
class DisputePlanCursor {
 public:
  explicit DisputePlanCursor(const Dispute2014Options& opt);
  /// Total plan size (cells × tests_per_cell).
  std::uint64_t total() const { return total_; }
  /// Next planned test, or nullopt when the plan is exhausted.
  std::optional<PlannedNdt> next();

 private:
  Dispute2014Options opt_;
  std::vector<TransitSite> sites_;
  std::vector<AccessIsp> isps_;
  sim::Rng rng_;
  std::uint64_t total_ = 0;
  std::size_t si_ = 0, ii_ = 0, mi_ = 0, hi_ = 0;
  int t_ = 0;
};

/// Runs one planned test through the full PathSim model (warmup + NDT) and
/// fills in the observation. Deterministic given `p.pc.seed`.
NdtObservation run_planned_ndt(const PlannedNdt& p,
                               const Dispute2014Options& opt);

/// The one precision-17 row formatter behind the cache CSV, the shard
/// checkpoint, and the binary row store's CSV export (mlab/rowstore.h):
/// every consumer sharing it is what makes kill/resume byte-reproducible.
std::string format_observation_row(const NdtObservation& o);
/// Inverse of format_observation_row; malformed input raises
/// runtime::ParseException against (`file`, `line_no`).
NdtObservation parse_observation_row(const std::string& line,
                                     const std::string& file,
                                     std::uint64_t line_no);
/// The exact header line save_observations_csv writes.
const char* observations_csv_header();
/// The "# options: " prefix introducing the fingerprint line.
const char* observations_fingerprint_prefix();

/// Writes the observations atomically (temp file + rename).
void save_observations_csv(const std::string& path,
                           const std::vector<NdtObservation>& obs,
                           const std::string& fingerprint = "");
/// Malformed input raises runtime::ParseException (file, line, reason).
std::vector<NdtObservation> load_observations_csv(
    const std::string& path, std::string* fingerprint_out = nullptr);

/// Loads `cache_path` when present and not stale (legacy caches without a
/// fingerprint are trusted); otherwise generates — resuming from
/// `<cache_path>.ckpt` when a matching checkpoint survives a previous
/// kill — and atomically rewrites the cache. A corrupt cache is treated
/// as stale, never fatal. A campaign with permanently failed observations
/// returns its partial result but is NOT cached: the checkpoint is kept so
/// the next invocation retries only the failed slots. On success the
/// checkpoint is removed only after the cache CSV is safely on disk.
std::vector<NdtObservation> load_or_generate_dispute2014(
    const std::string& cache_path, const Dispute2014Options& opt);

}  // namespace ccsig::mlab

#include "mlab/path.h"

#include <algorithm>
#include <cmath>

#include "analysis/flow_trace.h"
#include "analysis/trace_recorder.h"

namespace ccsig::mlab {
namespace {

sim::Link::Config make_link(std::string name, double rate_bps, double delay_ms,
                            double buffer_ms, double loss = 0.0,
                            double jitter_ms = 0.0) {
  sim::Link::Config c;
  c.name = std::move(name);
  c.rate_bps = rate_bps;
  c.prop_delay = sim::from_millis(delay_ms);
  c.jitter = sim::from_millis(jitter_ms);
  c.loss_rate = loss;
  c.buffer_bytes = sim::buffer_bytes_for(rate_bps, buffer_ms);
  return c;
}

constexpr sim::Port kNdtServerPort = 3001;
constexpr sim::Port kNdtClientPort = 3002;

}  // namespace

ChunkedStream::ChunkedStream(sim::Simulator& sim, tcp::TcpSource* source,
                             double nominal_bps, sim::Duration period,
                             sim::Rng rng)
    : sim_(sim),
      source_(source),
      chunk_bytes_(static_cast<std::uint64_t>(
          nominal_bps / 8.0 * sim::to_seconds(period))),
      period_(period),
      rng_(rng) {
  // Random phase so players' segment clocks are desynchronized.
  sim_.schedule_in(
      static_cast<sim::Duration>(
          rng_.uniform(0.0, sim::to_seconds(period_)) *
          static_cast<double>(sim::kSecond)),
      [this] { tick(); });
}

void ChunkedStream::tick() {
  // Tolerate a couple of chunks of backlog (player buffer) before skipping;
  // a congested stream keeps pressing the link rather than going quiet the
  // moment it falls behind.
  if (source_->app_backlog() < 2 * chunk_bytes_) {
    source_->release_app_bytes(chunk_bytes_);
    ++chunks_;
  } else {
    ++skipped_;  // player stalled; skip ahead rather than pile up demand
  }
  const double jitter = rng_.uniform(0.95, 1.05);
  sim_.schedule_in(
      static_cast<sim::Duration>(static_cast<double>(period_) * jitter),
      [this] { tick(); });
}

AdaptiveStream::AdaptiveStream(sim::Simulator& sim, tcp::TcpSource* source,
                               double nominal_bps, double floor_fraction,
                               sim::Rng rng)
    : sim_(sim),
      source_(source),
      nominal_bps_(nominal_bps),
      floor_bps_(nominal_bps * floor_fraction),
      current_bps_(nominal_bps),
      rng_(rng) {
  last_tick_ = sim_.now();
  // Desynchronized decision epochs, like real players' segment clocks.
  sim_.schedule_in(
      static_cast<sim::Duration>(rng_.uniform(1.0, 2.0) *
                                 static_cast<double>(sim::kSecond)),
      [this] { tick(); });
}

void AdaptiveStream::tick() {
  const sim::Time now = sim_.now();
  const std::uint64_t acked = source_->stats().bytes_acked;
  const double dt = sim::to_seconds(now - last_tick_);
  if (dt > 0) {
    const double achieved_bps =
        static_cast<double>(acked - last_acked_) * 8.0 / dt;
    if (achieved_bps < 0.9 * current_bps_) {
      current_bps_ = std::max(floor_bps_, current_bps_ * 0.75);
      source_->set_app_rate(current_bps_);
    } else if (current_bps_ < nominal_bps_) {
      current_bps_ = std::min(nominal_bps_, current_bps_ * 1.15);
      source_->set_app_rate(current_bps_);
    }
  }
  last_acked_ = acked;
  last_tick_ = now;
  sim_.schedule_in(
      static_cast<sim::Duration>(rng_.uniform(1.2, 1.8) *
                                 static_cast<double>(sim::kSecond)),
      [this] { tick(); });
}

PathSim::PathSim(const PathConfig& cfg) : cfg_(cfg) {
  net_ = std::make_unique<sim::Network>(cfg.seed);

  client_ = net_->add_node("client");
  sim::Node* isp_router = net_->add_node("isp_router");
  sim::Node* transit_router = net_->add_node("transit_router");
  server_ = net_->add_node("server");
  sim::Node* bg_server = net_->add_node("bg_server");
  sim::Node* bg_sink = net_->add_node("bg_sink");

  const double plan_bps = cfg.plan_mbps * 1e6;
  const double ic_bps = cfg.interconnect_mbps * 1e6;

  // Access link (both directions carry the propagation latency; the plan
  // rate shapes downstream, and a matching upstream is ample for ACKs).
  sim::Link::Config acc_down =
      make_link("access-down", plan_bps, cfg.access_latency_ms,
                cfg.access_buffer_ms, cfg.access_loss, 1.0);
  sim::Link::Config acc_up = acc_down;
  acc_up.name = "access-up";
  acc_up.loss_rate = 0;
  acc_up.jitter = 0;
  const auto l_acc = net_->connect(isp_router, client_, acc_down, acc_up);

  // Interconnect.
  sim::Link::Config ic_down = make_link(
      "interconnect-down", ic_bps, 0.5, cfg.interconnect_buffer_ms);
  sim::Link::Config ic_up = ic_down;
  ic_up.name = "interconnect-up";
  const auto l_ic = net_->connect(transit_router, isp_router, ic_down, ic_up);
  interconnect_down_ = l_ic.ab;

  // Server and background attachments.
  const auto l_srv =
      net_->connect(server_, transit_router, make_link("server", 1e9, 0.5, 100));
  const auto l_bgs = net_->connect(bg_server, transit_router,
                                   make_link("bg-server", 1e9, 1.0, 100));
  const auto l_bgk = net_->connect(isp_router, bg_sink,
                                   make_link("bg-sink", 1e9, 1.0, 100));

  // Routing: leaves default through their attachment; routers toward each
  // other across the interconnect.
  client_->set_default_route(l_acc.ba);
  server_->set_default_route(l_srv.ab);
  bg_server->set_default_route(l_bgs.ab);
  bg_sink->set_default_route(l_bgk.ba);
  transit_router->set_default_route(l_ic.ab);
  isp_router->set_default_route(l_ic.ba);

  // Echo services for TSLP.
  echoes_.push_back(std::make_unique<sim::EchoResponder>(isp_router));
  echoes_.push_back(std::make_unique<sim::EchoResponder>(transit_router));
  near_prober_ = std::make_unique<TslpProber>(net_->sim(), client_,
                                              isp_router, next_port_++);
  far_prober_ = std::make_unique<TslpProber>(net_->sim(), client_,
                                             transit_router, next_port_++);

  // Background demand: N rate-limited streams, staggered starts. In kMixed
  // mode the first `cbr_fraction` of them release smoothly (CBR) and the
  // rest fetch in chunks.
  const int n_streams = static_cast<int>(std::lround(
      cfg.background_load * ic_bps / (cfg.background_stream_mbps * 1e6)));
  const int n_cbr =
      cfg.background_mode == PathConfig::BackgroundMode::kMixed
          ? static_cast<int>(std::lround(cfg.cbr_fraction * n_streams))
          : 0;
  sim::Rng rng = net_->rng().fork();
  for (int i = 0; i < n_streams; ++i) {
    sim::FlowKey key;
    key.src_addr = bg_server->address();
    key.dst_addr = bg_sink->address();
    key.src_port = next_port_++;
    key.dst_port = next_port_++;

    tcp::TcpSink::Config sk;
    sk.data_key = key;
    bg_sinks_.push_back(
        std::make_unique<tcp::TcpSink>(net_->sim(), bg_sink, sk));

    enum class Kind { kCbr, kChunked, kAdaptive };
    Kind kind = Kind::kCbr;
    switch (cfg.background_mode) {
      case PathConfig::BackgroundMode::kMixed:
        kind = i < n_cbr ? Kind::kCbr : Kind::kChunked;
        break;
      case PathConfig::BackgroundMode::kChunked:
        kind = Kind::kChunked;
        break;
      case PathConfig::BackgroundMode::kCbr:
        kind = Kind::kCbr;
        break;
      case PathConfig::BackgroundMode::kAdaptive:
        kind = Kind::kAdaptive;
        break;
    }

    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.bytes_to_send = 0;
    sc.congestion_control = cfg.background_cc;
    if (kind == Kind::kChunked) {
      sc.quota_mode = true;  // data arrives via release_app_bytes chunks
      sc.fixed_pacing_bps =
          cfg.background_stream_mbps * 1e6 * cfg.chunk_fetch_multiple;
    } else {
      sc.app_rate_bps = cfg.background_stream_mbps * 1e6;
    }
    auto src = std::make_unique<tcp::TcpSource>(net_->sim(), bg_server, sc);
    tcp::TcpSource* raw = src.get();
    net_->sim().schedule_at(
        static_cast<sim::Time>(rng.uniform(0.0, 1.0) *
                               static_cast<double>(sim::kSecond)),
        [raw] { raw->start(); });
    switch (kind) {
      case Kind::kChunked:
        bg_chunkers_.push_back(std::make_unique<ChunkedStream>(
            net_->sim(), raw, cfg.background_stream_mbps * 1e6,
            cfg.chunk_period, rng.fork()));
        break;
      case Kind::kAdaptive:
        bg_adapters_.push_back(std::make_unique<AdaptiveStream>(
            net_->sim(), raw, cfg.background_stream_mbps * 1e6,
            cfg.adaptive_floor_fraction, rng.fork()));
        break;
      case Kind::kCbr:
        break;
    }
    bg_sources_.push_back(std::move(src));
  }
}

void PathSim::warmup(sim::Duration d) {
  net_->sim().run_until(net_->sim().now() + d);
}

NdtResult PathSim::run_ndt(sim::Duration duration) {
  sim::Simulator& sim = net_->sim();

  analysis::TraceRecorder recorder;
  server_->add_tap(&recorder);

  sim::FlowKey key;
  key.src_addr = server_->address();
  key.dst_addr = client_->address();
  key.src_port = kNdtServerPort;
  key.dst_port = kNdtClientPort;

  tcp::TcpSink::Config sk;
  sk.data_key = key;
  tcp::TcpSink sink(sim, client_, sk);

  tcp::TcpSource::Config sc;
  sc.key = key;
  sc.bytes_to_send = 0;
  sc.congestion_control = cfg_.ndt_cc;  // default "cubic": Linux M-Lab era
  tcp::TcpSource source(sim, server_, sc);

  const sim::Time start = sim.now();
  source.start();
  sim.schedule_at(start + duration, [&source] { source.stop_sending(); });
  sim.run_until(start + duration + 300 * sim::kMillisecond);

  NdtResult result;
  result.duration = duration;
  result.throughput_bps = static_cast<double>(sink.bytes_received()) * 8.0 /
                          sim::to_seconds(duration);
  const auto stats = source.stats();
  const sim::Duration active =
      stats.established_at >= 0 ? (start + duration) - stats.established_at
                                : 0;
  result.congestion_limited_fraction =
      active > 0 ? static_cast<double>(stats.time_congestion_limited) /
                       static_cast<double>(active)
                 : 0.0;
  const bool long_enough =
      stats.established_at >= 0 &&
      active >= static_cast<sim::Duration>(0.9 * static_cast<double>(duration));
  result.passes_mlab_filters =
      long_enough && result.congestion_limited_fraction >= 0.9;

  server_->remove_tap(&recorder);
  const analysis::Trace trace = recorder.take();
  const analysis::FlowTrace flow = analysis::extract_flow(trace, key);
  result.features = features::extract_features(flow);
  return result;
}

sim::Duration PathSim::probe_far() {
  far_prober_->probe();
  const std::size_t idx = far_prober_->samples().size() - 1;
  net_->sim().run_until(net_->sim().now() + 500 * sim::kMillisecond);
  return far_prober_->samples()[idx].rtt;
}

sim::Duration PathSim::probe_near() {
  near_prober_->probe();
  const std::size_t idx = near_prober_->samples().size() - 1;
  net_->sim().run_until(net_->sim().now() + 500 * sim::kMillisecond);
  return near_prober_->samples()[idx].rtt;
}

}  // namespace ccsig::mlab

#include "mlab/tslp2017.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mlab/dispute2014.h"  // diurnal_curve
#include "runtime/atomic_file.h"
#include "runtime/campaign.h"
#include "runtime/csv.h"
#include "sim/random.h"

namespace ccsig::mlab {
namespace {

bool is_tslp_peak(int hour) { return hour >= 16 && hour <= 23; }

/// One measurement slot with its path fully specified (seed drawn in the
/// deterministic pre-pass), ready to run on any worker thread.
struct PlannedSlot {
  PathConfig pc;
  int day = 0;
  int hour = 0;
  int minute = 0;
  double load = 0;
};

TslpObservation run_planned_slot(const PlannedSlot& p,
                                 const Tslp2017Options& opt) {
  PathSim path(p.pc);
  path.warmup(opt.warmup);

  TslpObservation obs;
  obs.day = p.day;
  obs.hour = p.hour;
  obs.minute = p.minute;
  obs.truth_external = p.load > 1.0;
  obs.near_rtt_ms = sim::to_millis(path.probe_near());
  obs.far_rtt_ms = sim::to_millis(path.probe_far());

  const NdtResult ndt = path.run_ndt(opt.ndt_duration);
  obs.ndt_ran = true;
  obs.throughput_mbps = ndt.throughput_bps / 1e6;
  if (ndt.features) {
    obs.has_features = true;
    obs.norm_diff = ndt.features->norm_diff;
    obs.cov = ndt.features->cov;
    obs.min_flow_rtt_ms = ndt.features->min_rtt_ms;
  }
  return obs;
}

constexpr char kHeader[] =
    "day,hour,minute,far_rtt_ms,near_rtt_ms,ndt_ran,throughput_mbps,"
    "min_flow_rtt_ms,norm_diff,cov,has_features,truth_external";
constexpr char kFingerprintPrefix[] = "# options: ";

/// The one formatter behind both the cache CSV and the shard checkpoint:
/// byte-identical rows are what make kill/resume reproducible.
std::string format_tslp_row(const TslpObservation& o) {
  std::ostringstream out;
  out.precision(17);
  out << o.day << ',' << o.hour << ',' << o.minute << ',' << o.far_rtt_ms
      << ',' << o.near_rtt_ms << ',' << (o.ndt_ran ? 1 : 0) << ','
      << o.throughput_mbps << ',' << o.min_flow_rtt_ms << ',' << o.norm_diff
      << ',' << o.cov << ',' << (o.has_features ? 1 : 0) << ','
      << (o.truth_external ? 1 : 0);
  return out.str();
}

TslpObservation parse_tslp_row(const std::string& line,
                               const std::string& file,
                               std::uint64_t line_no) {
  runtime::CsvRow row(line, file, line_no);
  TslpObservation o;
  o.day = row.next_int();
  o.hour = row.next_int();
  o.minute = row.next_int();
  o.far_rtt_ms = row.next_double();
  o.near_rtt_ms = row.next_double();
  o.ndt_ran = row.next_bool01();
  o.throughput_mbps = row.next_double();
  o.min_flow_rtt_ms = row.next_double();
  o.norm_diff = row.next_double();
  o.cov = row.next_double();
  o.has_features = row.next_bool01();
  o.truth_external = row.next_bool01();
  row.expect_end();
  return o;
}

}  // namespace

std::vector<TslpObservation> generate_tslp2017(const Tslp2017Options& opt) {
  sim::Rng rng(opt.seed);

  // Pre-draw the congestion episodes: each evening hour block 19–23 is
  // congested with the configured probability.
  std::vector<std::vector<bool>> congested(
      static_cast<std::size_t>(opt.days), std::vector<bool>(24, false));
  for (int d = 0; d < opt.days; ++d) {
    for (int h = 19; h <= 23; ++h) {
      congested[static_cast<std::size_t>(d)][static_cast<std::size_t>(h)] =
          rng.chance(opt.episode_probability);
    }
  }

  // Deterministic pre-pass: enumerate slots and draw their seeds in
  // schedule order, independent of which thread later runs them.
  std::vector<PlannedSlot> plan;
  for (int day = 0; day < opt.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const int slots = is_tslp_peak(hour) ? 4 : 1;  // 15 min vs hourly
      for (int s = 0; s < slots; ++s) {
        const bool episode =
            congested[static_cast<std::size_t>(day)]
                     [static_cast<std::size_t>(hour)];
        const double load = episode ? opt.congested_load
                                    : opt.normal_peak_load *
                                          diurnal_curve(hour);

        PlannedSlot p;
        p.pc.plan_mbps = opt.plan_mbps;
        p.pc.access_buffer_ms = opt.access_buffer_ms;
        p.pc.access_latency_ms = opt.base_one_way_ms;
        p.pc.interconnect_mbps = opt.interconnect_mbps;
        p.pc.interconnect_buffer_ms = opt.interconnect_buffer_ms;
        p.pc.background_load = load;
        p.pc.ndt_cc = opt.ndt_cc;
        p.pc.seed = rng.next_u64();
        p.day = day;
        p.hour = hour;
        p.minute = s * 15;
        p.load = load;
        plan.push_back(p);
      }
    }
  }

  runtime::CheckpointedRunOptions ropt;
  ropt.checkpoint_path = opt.checkpoint_path;
  ropt.fingerprint = tslp_fingerprint(opt);
  ropt.checkpoint_every = opt.checkpoint_every;
  ropt.jobs = opt.jobs;
  ropt.retry = opt.retry;
  ropt.soft_deadline = opt.soft_deadline;
  ropt.abandon_on_deadline = opt.abandon_on_deadline;
  ropt.faults = opt.faults;
  ropt.progress = opt.progress;
  // By value: abandoned jobs may report errors after this frame is gone.
  std::vector<std::uint64_t> seeds(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) seeds[i] = plan[i].pc.seed;
  ropt.seed_of = [seeds](std::size_t slot) { return seeds[slot]; };
  ropt.errors_out = opt.errors_out;
  ropt.commit_out = opt.checkpoint_commit_out;
  ropt.stats_out = opt.stats_out;

  const auto slots = runtime::run_checkpointed(
      plan, [opt](const PlannedSlot& p) { return run_planned_slot(p, opt); },
      format_tslp_row,
      [&ropt](const std::string& line) {
        return parse_tslp_row(line, ropt.checkpoint_path, 0);
      },
      ropt);

  std::vector<TslpObservation> out;
  out.reserve(slots.size());
  for (const auto& slot : slots) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

int tslp_label(const TslpObservation& obs) {
  if (!obs.ndt_ran || !obs.has_features) return -1;
  if (obs.throughput_mbps < 15.0 && obs.min_flow_rtt_ms > 30.0) return 0;
  if (obs.throughput_mbps > 20.0 && obs.min_flow_rtt_ms < 20.0) return 1;
  return -1;
}

std::string tslp_fingerprint(const Tslp2017Options& opt) {
  std::ostringstream out;
  out.precision(17);
  out << "tslp2017-v1 days=" << opt.days << " plan=" << opt.plan_mbps
      << " base_owd=" << opt.base_one_way_ms
      << " access_buffer=" << opt.access_buffer_ms
      << " interconnect=" << opt.interconnect_mbps
      << " ic_buffer=" << opt.interconnect_buffer_ms
      << " episode_p=" << opt.episode_probability
      << " congested_load=" << opt.congested_load
      << " normal_peak_load=" << opt.normal_peak_load
      << " ndt=" << sim::to_seconds(opt.ndt_duration)
      << " warmup=" << sim::to_seconds(opt.warmup) << " seed=" << opt.seed;
  // Appended only when non-default so pre-knob caches keep verifying.
  if (opt.ndt_cc != "cubic") out << " cc=" << opt.ndt_cc;
  return out.str();
}

void save_tslp_csv(const std::string& path,
                   const std::vector<TslpObservation>& obs,
                   const std::string& fingerprint) {
  std::ostringstream out;
  if (!fingerprint.empty()) out << kFingerprintPrefix << fingerprint << "\n";
  out << kHeader << "\n";
  for (const auto& o : obs) out << format_tslp_row(o) << "\n";
  runtime::write_file_atomic(path, out.str());
}

std::vector<TslpObservation> load_tslp_csv(const std::string& path,
                                           std::string* fingerprint_out) {
  std::ifstream in(path);
  if (!in) {
    runtime::throw_parse_error(path, 0, "line", "cannot read tslp csv");
  }
  std::string line;
  std::string fingerprint;
  std::uint64_t line_no = 1;
  if (!std::getline(in, line)) {
    runtime::throw_parse_error(path, line_no, "line",
                               "empty file (expected csv header)");
  }
  if (line.rfind(kFingerprintPrefix, 0) == 0) {
    fingerprint = line.substr(sizeof(kFingerprintPrefix) - 1);
    ++line_no;
    if (!std::getline(in, line)) line.clear();
  }
  if (line != kHeader) {
    runtime::throw_parse_error(path, line_no, "line",
                               "unrecognized tslp csv header");
  }
  if (fingerprint_out) *fingerprint_out = fingerprint;
  std::vector<TslpObservation> out;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    out.push_back(parse_tslp_row(line, path, line_no));
  }
  return out;
}

std::vector<TslpObservation> load_or_generate_tslp2017(
    const std::string& cache_path, const Tslp2017Options& opt) {
  const std::string want = tslp_fingerprint(opt);
  if (std::filesystem::exists(cache_path)) {
    try {
      std::string have;
      auto obs = load_tslp_csv(cache_path, &have);
      if (have.empty() || have == want) return obs;
    } catch (const runtime::ParseException&) {
      // Corrupt cache: regenerate below instead of failing the caller.
    }
  }
  Tslp2017Options resumable = opt;
  if (resumable.checkpoint_path.empty()) {
    resumable.checkpoint_path = cache_path + ".ckpt";
  }
  // A partial result (some slots failed permanently) must never become a
  // fingerprinted cache hit: skip the cache write so the kept checkpoint
  // drives a retry of only the failed slots on the next invocation.
  std::vector<runtime::JobError> local_errors;
  if (!resumable.errors_out) resumable.errors_out = &local_errors;
  const std::size_t errors_before = resumable.errors_out->size();
  std::function<void()> commit;
  resumable.checkpoint_commit_out = &commit;
  runtime::CampaignStats stats;
  if (!resumable.stats_out) resumable.stats_out = &stats;
  auto obs = generate_tslp2017(resumable);
  if (resumable.errors_out->size() == errors_before) {
    // Cache first, checkpoint removal second: a crash between the two only
    // costs a cheap resume-with-nothing-pending, never recorded progress.
    obs::TraceSpan span("campaign.cache_commit", "campaign");
    save_tslp_csv(cache_path, obs, want);
    if (commit) commit();
  }
  // Auditability side artifact (never read back, never fingerprinted).
  runtime::write_file_atomic(
      cache_path + ".metrics.json",
      runtime::campaign_metrics_json(want, *resumable.stats_out));
  return obs;
}

}  // namespace ccsig::mlab

#include "mlab/tslp2017.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mlab/dispute2014.h"  // diurnal_curve
#include "runtime/parallel_map.h"
#include "sim/random.h"

namespace ccsig::mlab {
namespace {

bool is_tslp_peak(int hour) { return hour >= 16 && hour <= 23; }

/// One measurement slot with its path fully specified (seed drawn in the
/// deterministic pre-pass), ready to run on any worker thread.
struct PlannedSlot {
  PathConfig pc;
  int day = 0;
  int hour = 0;
  int minute = 0;
  double load = 0;
};

TslpObservation run_planned_slot(const PlannedSlot& p,
                                 const Tslp2017Options& opt) {
  PathSim path(p.pc);
  path.warmup(opt.warmup);

  TslpObservation obs;
  obs.day = p.day;
  obs.hour = p.hour;
  obs.minute = p.minute;
  obs.truth_external = p.load > 1.0;
  obs.near_rtt_ms = sim::to_millis(path.probe_near());
  obs.far_rtt_ms = sim::to_millis(path.probe_far());

  const NdtResult ndt = path.run_ndt(opt.ndt_duration);
  obs.ndt_ran = true;
  obs.throughput_mbps = ndt.throughput_bps / 1e6;
  if (ndt.features) {
    obs.has_features = true;
    obs.norm_diff = ndt.features->norm_diff;
    obs.cov = ndt.features->cov;
    obs.min_flow_rtt_ms = ndt.features->min_rtt_ms;
  }
  return obs;
}

}  // namespace

std::vector<TslpObservation> generate_tslp2017(const Tslp2017Options& opt) {
  sim::Rng rng(opt.seed);

  // Pre-draw the congestion episodes: each evening hour block 19–23 is
  // congested with the configured probability.
  std::vector<std::vector<bool>> congested(
      static_cast<std::size_t>(opt.days), std::vector<bool>(24, false));
  for (int d = 0; d < opt.days; ++d) {
    for (int h = 19; h <= 23; ++h) {
      congested[static_cast<std::size_t>(d)][static_cast<std::size_t>(h)] =
          rng.chance(opt.episode_probability);
    }
  }

  // Deterministic pre-pass: enumerate slots and draw their seeds in
  // schedule order, independent of which thread later runs them.
  std::vector<PlannedSlot> plan;
  for (int day = 0; day < opt.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const int slots = is_tslp_peak(hour) ? 4 : 1;  // 15 min vs hourly
      for (int s = 0; s < slots; ++s) {
        const bool episode =
            congested[static_cast<std::size_t>(day)]
                     [static_cast<std::size_t>(hour)];
        const double load = episode ? opt.congested_load
                                    : opt.normal_peak_load *
                                          diurnal_curve(hour);

        PlannedSlot p;
        p.pc.plan_mbps = opt.plan_mbps;
        p.pc.access_buffer_ms = opt.access_buffer_ms;
        p.pc.access_latency_ms = opt.base_one_way_ms;
        p.pc.interconnect_mbps = opt.interconnect_mbps;
        p.pc.interconnect_buffer_ms = opt.interconnect_buffer_ms;
        p.pc.background_load = load;
        p.pc.seed = rng.next_u64();
        p.day = day;
        p.hour = hour;
        p.minute = s * 15;
        p.load = load;
        plan.push_back(p);
      }
    }
  }

  runtime::ProgressCounter progress(plan.size(), opt.progress);
  return runtime::parallel_map(
      plan, [&opt](const PlannedSlot& p) { return run_planned_slot(p, opt); },
      opt.jobs, &progress);
}

int tslp_label(const TslpObservation& obs) {
  if (!obs.ndt_ran || !obs.has_features) return -1;
  if (obs.throughput_mbps < 15.0 && obs.min_flow_rtt_ms > 30.0) return 0;
  if (obs.throughput_mbps > 20.0 && obs.min_flow_rtt_ms < 20.0) return 1;
  return -1;
}

namespace {
constexpr char kHeader[] =
    "day,hour,minute,far_rtt_ms,near_rtt_ms,ndt_ran,throughput_mbps,"
    "min_flow_rtt_ms,norm_diff,cov,has_features,truth_external";
constexpr char kFingerprintPrefix[] = "# options: ";
}  // namespace

std::string tslp_fingerprint(const Tslp2017Options& opt) {
  std::ostringstream out;
  out.precision(17);
  out << "tslp2017-v1 days=" << opt.days << " plan=" << opt.plan_mbps
      << " base_owd=" << opt.base_one_way_ms
      << " access_buffer=" << opt.access_buffer_ms
      << " interconnect=" << opt.interconnect_mbps
      << " ic_buffer=" << opt.interconnect_buffer_ms
      << " episode_p=" << opt.episode_probability
      << " congested_load=" << opt.congested_load
      << " normal_peak_load=" << opt.normal_peak_load
      << " ndt=" << sim::to_seconds(opt.ndt_duration)
      << " warmup=" << sim::to_seconds(opt.warmup) << " seed=" << opt.seed;
  return out.str();
}

void save_tslp_csv(const std::string& path,
                   const std::vector<TslpObservation>& obs,
                   const std::string& fingerprint) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write tslp csv: " + path);
  out.precision(17);
  if (!fingerprint.empty()) out << kFingerprintPrefix << fingerprint << "\n";
  out << kHeader << "\n";
  for (const auto& o : obs) {
    out << o.day << ',' << o.hour << ',' << o.minute << ',' << o.far_rtt_ms
        << ',' << o.near_rtt_ms << ',' << (o.ndt_ran ? 1 : 0) << ','
        << o.throughput_mbps << ',' << o.min_flow_rtt_ms << ',' << o.norm_diff
        << ',' << o.cov << ',' << (o.has_features ? 1 : 0) << ','
        << (o.truth_external ? 1 : 0) << "\n";
  }
}

std::vector<TslpObservation> load_tslp_csv(const std::string& path,
                                           std::string* fingerprint_out) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read tslp csv: " + path);
  std::string line;
  std::string fingerprint;
  if (!std::getline(in, line)) {
    throw std::runtime_error("unrecognized tslp csv header in " + path);
  }
  if (line.rfind(kFingerprintPrefix, 0) == 0) {
    fingerprint = line.substr(sizeof(kFingerprintPrefix) - 1);
    if (!std::getline(in, line)) line.clear();
  }
  if (line != kHeader) {
    throw std::runtime_error("unrecognized tslp csv header in " + path);
  }
  if (fingerprint_out) *fingerprint_out = fingerprint;
  std::vector<TslpObservation> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    TslpObservation o;
    std::string field;
    auto next = [&]() -> std::string {
      if (!std::getline(row, field, ',')) {
        throw std::runtime_error("malformed tslp csv row: " + line);
      }
      return field;
    };
    o.day = std::stoi(next());
    o.hour = std::stoi(next());
    o.minute = std::stoi(next());
    o.far_rtt_ms = std::stod(next());
    o.near_rtt_ms = std::stod(next());
    o.ndt_ran = next() == "1";
    o.throughput_mbps = std::stod(next());
    o.min_flow_rtt_ms = std::stod(next());
    o.norm_diff = std::stod(next());
    o.cov = std::stod(next());
    o.has_features = next() == "1";
    o.truth_external = next() == "1";
    out.push_back(o);
  }
  return out;
}

std::vector<TslpObservation> load_or_generate_tslp2017(
    const std::string& cache_path, const Tslp2017Options& opt) {
  const std::string want = tslp_fingerprint(opt);
  if (std::filesystem::exists(cache_path)) {
    std::string have;
    auto obs = load_tslp_csv(cache_path, &have);
    if (have.empty() || have == want) return obs;
  }
  auto obs = generate_tslp2017(opt);
  save_tslp_csv(cache_path, obs, want);
  return obs;
}

}  // namespace ccsig::mlab

#include "mlab/tslp2017.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mlab/dispute2014.h"  // diurnal_curve
#include "sim/random.h"

namespace ccsig::mlab {
namespace {

bool is_tslp_peak(int hour) { return hour >= 16 && hour <= 23; }

}  // namespace

std::vector<TslpObservation> generate_tslp2017(const Tslp2017Options& opt) {
  sim::Rng rng(opt.seed);
  std::vector<TslpObservation> out;

  // Pre-draw the congestion episodes: each evening hour block 19–23 is
  // congested with the configured probability.
  std::vector<std::vector<bool>> congested(
      static_cast<std::size_t>(opt.days), std::vector<bool>(24, false));
  for (int d = 0; d < opt.days; ++d) {
    for (int h = 19; h <= 23; ++h) {
      congested[static_cast<std::size_t>(d)][static_cast<std::size_t>(h)] =
          rng.chance(opt.episode_probability);
    }
  }

  // Count slots for progress reporting.
  std::size_t total = 0;
  for (int h = 0; h < 24; ++h) total += is_tslp_peak(h) ? 4u : 1u;
  total *= static_cast<std::size_t>(opt.days);
  std::size_t done = 0;

  for (int day = 0; day < opt.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const int slots = is_tslp_peak(hour) ? 4 : 1;  // 15 min vs hourly
      for (int s = 0; s < slots; ++s) {
        const bool episode =
            congested[static_cast<std::size_t>(day)]
                     [static_cast<std::size_t>(hour)];
        const double load = episode ? opt.congested_load
                                    : opt.normal_peak_load *
                                          diurnal_curve(hour);

        PathConfig pc;
        pc.plan_mbps = opt.plan_mbps;
        pc.access_buffer_ms = opt.access_buffer_ms;
        pc.access_latency_ms = opt.base_one_way_ms;
        pc.interconnect_mbps = opt.interconnect_mbps;
        pc.interconnect_buffer_ms = opt.interconnect_buffer_ms;
        pc.background_load = load;
        pc.seed = rng.next_u64();

        PathSim path(pc);
        path.warmup(opt.warmup);

        TslpObservation obs;
        obs.day = day;
        obs.hour = hour;
        obs.minute = s * 15;
        obs.truth_external = load > 1.0;
        obs.near_rtt_ms = sim::to_millis(path.probe_near());
        obs.far_rtt_ms = sim::to_millis(path.probe_far());

        const NdtResult ndt = path.run_ndt(opt.ndt_duration);
        obs.ndt_ran = true;
        obs.throughput_mbps = ndt.throughput_bps / 1e6;
        if (ndt.features) {
          obs.has_features = true;
          obs.norm_diff = ndt.features->norm_diff;
          obs.cov = ndt.features->cov;
          obs.min_flow_rtt_ms = ndt.features->min_rtt_ms;
        }
        out.push_back(obs);
        ++done;
        if (opt.progress) opt.progress(done, total);
      }
    }
  }
  return out;
}

int tslp_label(const TslpObservation& obs) {
  if (!obs.ndt_ran || !obs.has_features) return -1;
  if (obs.throughput_mbps < 15.0 && obs.min_flow_rtt_ms > 30.0) return 0;
  if (obs.throughput_mbps > 20.0 && obs.min_flow_rtt_ms < 20.0) return 1;
  return -1;
}

namespace {
constexpr char kHeader[] =
    "day,hour,minute,far_rtt_ms,near_rtt_ms,ndt_ran,throughput_mbps,"
    "min_flow_rtt_ms,norm_diff,cov,has_features,truth_external";
}  // namespace

void save_tslp_csv(const std::string& path,
                   const std::vector<TslpObservation>& obs) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write tslp csv: " + path);
  out.precision(17);
  out << kHeader << "\n";
  for (const auto& o : obs) {
    out << o.day << ',' << o.hour << ',' << o.minute << ',' << o.far_rtt_ms
        << ',' << o.near_rtt_ms << ',' << (o.ndt_ran ? 1 : 0) << ','
        << o.throughput_mbps << ',' << o.min_flow_rtt_ms << ',' << o.norm_diff
        << ',' << o.cov << ',' << (o.has_features ? 1 : 0) << ','
        << (o.truth_external ? 1 : 0) << "\n";
  }
}

std::vector<TslpObservation> load_tslp_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read tslp csv: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("unrecognized tslp csv header in " + path);
  }
  std::vector<TslpObservation> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    TslpObservation o;
    std::string field;
    auto next = [&]() -> std::string {
      if (!std::getline(row, field, ',')) {
        throw std::runtime_error("malformed tslp csv row: " + line);
      }
      return field;
    };
    o.day = std::stoi(next());
    o.hour = std::stoi(next());
    o.minute = std::stoi(next());
    o.far_rtt_ms = std::stod(next());
    o.near_rtt_ms = std::stod(next());
    o.ndt_ran = next() == "1";
    o.throughput_mbps = std::stod(next());
    o.min_flow_rtt_ms = std::stod(next());
    o.norm_diff = std::stod(next());
    o.cov = std::stod(next());
    o.has_features = next() == "1";
    o.truth_external = next() == "1";
    out.push_back(o);
  }
  return out;
}

std::vector<TslpObservation> load_or_generate_tslp2017(
    const std::string& cache_path, const Tslp2017Options& opt) {
  if (std::filesystem::exists(cache_path)) {
    return load_tslp_csv(cache_path);
  }
  auto obs = generate_tslp2017(opt);
  save_tslp_csv(cache_path, obs);
  return obs;
}

}  // namespace ccsig::mlab

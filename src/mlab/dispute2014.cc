#include "mlab/dispute2014.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/random.h"

namespace ccsig::mlab {

std::vector<TransitSite> dispute_sites() {
  return {
      {"Cogent", "LAX", true},
      {"Cogent", "LGA", true},
      {"Level3", "ATL", false},
  };
}

std::vector<AccessIsp> dispute_isps() {
  // Era-appropriate residential plan mixes (2014).
  return {
      {"Comcast", false, {10, 25, 50}, {0.25, 0.50, 0.25}},
      {"TimeWarner", false, {10, 15, 30}, {0.30, 0.45, 0.25}},
      {"Verizon", false, {15, 25, 50}, {0.25, 0.45, 0.30}},
      {"Cox", true, {10, 25, 50}, {0.25, 0.50, 0.25}},
  };
}

double diurnal_curve(int hour) {
  // Single evening peak at ~20:30 local, trough overnight — the canonical
  // residential traffic shape (and what Figure 5 exhibits).
  const double h = static_cast<double>(hour);
  const double d1 = h - 20.5;
  const double d2 = h + 24.0 - 20.5;  // wraparound for the small hours
  const double g = std::exp(-d1 * d1 / (2 * 4.5 * 4.5)) +
                   std::exp(-d2 * d2 / (2 * 4.5 * 4.5));
  return 0.3 + 0.7 * std::min(1.0, g);
}

bool dispute_active(const TransitSite& site, const AccessIsp& isp, int month) {
  return site.disputed && !isp.direct_peering && (month == 1 || month == 2);
}

std::vector<NdtObservation> generate_dispute2014(
    const Dispute2014Options& opt) {
  const auto sites = dispute_sites();
  const auto isps = dispute_isps();
  sim::Rng rng(opt.seed);

  const std::size_t total = sites.size() * isps.size() * opt.months.size() *
                            opt.hours.size() *
                            static_cast<std::size_t>(opt.tests_per_cell);
  std::size_t done = 0;
  std::vector<NdtObservation> out;
  out.reserve(total);

  for (const TransitSite& site : sites) {
    for (const AccessIsp& isp : isps) {
      for (int month : opt.months) {
        const double intensity = dispute_active(site, isp, month)
                                     ? opt.dispute_intensity
                                     : opt.normal_intensity;
        for (int hour : opt.hours) {
          for (int t = 0; t < opt.tests_per_cell; ++t) {
            const double load = intensity * diurnal_curve(hour);

            PathConfig pc;
            pc.plan_mbps =
                isp.plan_mbps[rng.weighted_index(isp.plan_weights)];
            pc.access_buffer_ms = rng.uniform(30.0, 120.0);
            pc.access_latency_ms = rng.uniform(6.0, 18.0);
            pc.access_loss = rng.uniform(0.0, 0.0003);
            pc.interconnect_mbps = opt.interconnect_mbps;
            pc.interconnect_buffer_ms = opt.interconnect_buffer_ms;
            pc.background_load = load;
            pc.seed = rng.next_u64();

            PathSim path(pc);
            path.warmup(opt.warmup);
            const NdtResult ndt = path.run_ndt(opt.ndt_duration);

            NdtObservation obs;
            obs.transit = site.transit;
            obs.site = site.site;
            obs.isp = isp.name;
            obs.month = month;
            obs.hour = hour;
            obs.plan_mbps = pc.plan_mbps;
            obs.throughput_mbps = ndt.throughput_bps / 1e6;
            obs.passes_filters = ndt.passes_mlab_filters;
            obs.truth_external = load > 1.0;
            if (ndt.features) {
              obs.has_features = true;
              obs.norm_diff = ndt.features->norm_diff;
              obs.cov = ndt.features->cov;
              obs.ss_tput_mbps =
                  ndt.features->slow_start_throughput_bps / 1e6;
            }
            out.push_back(obs);
            ++done;
            if (opt.progress) opt.progress(done, total);
          }
        }
      }
    }
  }
  return out;
}

std::optional<int> dispute_coarse_label(const NdtObservation& obs) {
  const bool jan_feb = obs.month == 1 || obs.month == 2;
  const bool mar_apr = obs.month == 3 || obs.month == 4;
  const bool affected_combo = obs.transit == "Cogent" && obs.isp != "Cox";
  if (jan_feb && is_peak_hour(obs.hour) && affected_combo) {
    return 0;  // external
  }
  if (mar_apr && is_offpeak_hour(obs.hour)) {
    return 1;  // self-induced
  }
  return std::nullopt;
}

namespace {
constexpr char kHeader[] =
    "transit,site,isp,month,hour,plan_mbps,throughput_mbps,ss_tput_mbps,"
    "norm_diff,cov,has_features,passes_filters,truth_external";
}  // namespace

void save_observations_csv(const std::string& path,
                           const std::vector<NdtObservation>& obs) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write campaign csv: " + path);
  out.precision(17);
  out << kHeader << "\n";
  for (const auto& o : obs) {
    out << o.transit << ',' << o.site << ',' << o.isp << ',' << o.month << ','
        << o.hour << ',' << o.plan_mbps << ',' << o.throughput_mbps << ','
        << o.ss_tput_mbps << ',' << o.norm_diff << ',' << o.cov << ','
        << (o.has_features ? 1 : 0) << ',' << (o.passes_filters ? 1 : 0)
        << ',' << (o.truth_external ? 1 : 0) << "\n";
  }
}

std::vector<NdtObservation> load_observations_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read campaign csv: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("unrecognized campaign csv header in " + path);
  }
  std::vector<NdtObservation> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    NdtObservation o;
    std::string field;
    auto next = [&]() -> std::string {
      if (!std::getline(row, field, ',')) {
        throw std::runtime_error("malformed campaign csv row: " + line);
      }
      return field;
    };
    o.transit = next();
    o.site = next();
    o.isp = next();
    o.month = std::stoi(next());
    o.hour = std::stoi(next());
    o.plan_mbps = std::stod(next());
    o.throughput_mbps = std::stod(next());
    o.ss_tput_mbps = std::stod(next());
    o.norm_diff = std::stod(next());
    o.cov = std::stod(next());
    o.has_features = next() == "1";
    o.passes_filters = next() == "1";
    o.truth_external = next() == "1";
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<NdtObservation> load_or_generate_dispute2014(
    const std::string& cache_path, const Dispute2014Options& opt) {
  if (std::filesystem::exists(cache_path)) {
    return load_observations_csv(cache_path);
  }
  auto obs = generate_dispute2014(opt);
  save_observations_csv(cache_path, obs);
  return obs;
}

}  // namespace ccsig::mlab

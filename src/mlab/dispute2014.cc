#include "mlab/dispute2014.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runtime/atomic_file.h"
#include "runtime/campaign.h"
#include "runtime/csv.h"
#include "sim/random.h"

namespace ccsig::mlab {

std::vector<TransitSite> dispute_sites() {
  return {
      {"Cogent", "LAX", true},
      {"Cogent", "LGA", true},
      {"Level3", "ATL", false},
  };
}

std::vector<AccessIsp> dispute_isps() {
  // Era-appropriate residential plan mixes (2014).
  return {
      {"Comcast", false, {10, 25, 50}, {0.25, 0.50, 0.25}},
      {"TimeWarner", false, {10, 15, 30}, {0.30, 0.45, 0.25}},
      {"Verizon", false, {15, 25, 50}, {0.25, 0.45, 0.30}},
      {"Cox", true, {10, 25, 50}, {0.25, 0.50, 0.25}},
  };
}

double diurnal_curve(int hour) {
  // Single evening peak at ~20:30 local, trough overnight — the canonical
  // residential traffic shape (and what Figure 5 exhibits).
  const double h = static_cast<double>(hour);
  const double d1 = h - 20.5;
  const double d2 = h + 24.0 - 20.5;  // wraparound for the small hours
  const double g = std::exp(-d1 * d1 / (2 * 4.5 * 4.5)) +
                   std::exp(-d2 * d2 / (2 * 4.5 * 4.5));
  return 0.3 + 0.7 * std::min(1.0, g);
}

bool dispute_active(const TransitSite& site, const AccessIsp& isp, int month) {
  return site.disputed && !isp.direct_peering && (month == 1 || month == 2);
}

NdtObservation run_planned_ndt(const PlannedNdt& p,
                               const Dispute2014Options& opt) {
  PathSim path(p.pc);
  path.warmup(opt.warmup);
  const NdtResult ndt = path.run_ndt(opt.ndt_duration);

  NdtObservation obs;
  obs.transit = p.transit;
  obs.site = p.site;
  obs.isp = p.isp;
  obs.month = p.month;
  obs.hour = p.hour;
  obs.plan_mbps = p.pc.plan_mbps;
  obs.throughput_mbps = ndt.throughput_bps / 1e6;
  obs.passes_filters = ndt.passes_mlab_filters;
  obs.truth_external = p.load > 1.0;
  if (ndt.features) {
    obs.has_features = true;
    obs.norm_diff = ndt.features->norm_diff;
    obs.cov = ndt.features->cov;
    obs.ss_tput_mbps = ndt.features->slow_start_throughput_bps / 1e6;
  }
  return obs;
}

namespace {

constexpr char kHeader[] =
    "transit,site,isp,month,hour,plan_mbps,throughput_mbps,ss_tput_mbps,"
    "norm_diff,cov,has_features,passes_filters,truth_external";
constexpr char kFingerprintPrefix[] = "# options: ";

void append_ints(std::ostream& out, const std::vector<int>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out << '|';
    out << v[i];
  }
}

}  // namespace

const char* observations_csv_header() { return kHeader; }
const char* observations_fingerprint_prefix() { return kFingerprintPrefix; }

std::string format_observation_row(const NdtObservation& o) {
  std::ostringstream out;
  out.precision(17);
  out << o.transit << ',' << o.site << ',' << o.isp << ',' << o.month << ','
      << o.hour << ',' << o.plan_mbps << ',' << o.throughput_mbps << ','
      << o.ss_tput_mbps << ',' << o.norm_diff << ',' << o.cov << ','
      << (o.has_features ? 1 : 0) << ',' << (o.passes_filters ? 1 : 0) << ','
      << (o.truth_external ? 1 : 0);
  return out.str();
}

NdtObservation parse_observation_row(const std::string& line,
                                     const std::string& file,
                                     std::uint64_t line_no) {
  runtime::CsvRow row(line, file, line_no);
  NdtObservation o;
  o.transit = row.next_string();
  o.site = row.next_string();
  o.isp = row.next_string();
  o.month = row.next_int();
  o.hour = row.next_int();
  o.plan_mbps = row.next_double();
  o.throughput_mbps = row.next_double();
  o.ss_tput_mbps = row.next_double();
  o.norm_diff = row.next_double();
  o.cov = row.next_double();
  o.has_features = row.next_bool01();
  o.passes_filters = row.next_bool01();
  o.truth_external = row.next_bool01();
  row.expect_end();
  return o;
}

DisputePlanCursor::DisputePlanCursor(const Dispute2014Options& opt)
    : opt_(opt),
      sites_(dispute_sites()),
      isps_(dispute_isps()),
      rng_(opt.seed) {
  total_ = static_cast<std::uint64_t>(sites_.size()) * isps_.size() *
           opt_.months.size() * opt_.hours.size() *
           static_cast<std::uint64_t>(opt_.tests_per_cell);
}

std::optional<PlannedNdt> DisputePlanCursor::next() {
  if (si_ >= sites_.size()) return std::nullopt;
  const TransitSite& site = sites_[si_];
  const AccessIsp& isp = isps_[ii_];
  const int month = opt_.months[mi_];
  const int hour = opt_.hours[hi_];
  const double intensity = dispute_active(site, isp, month)
                               ? opt_.dispute_intensity
                               : opt_.normal_intensity;
  const double load = intensity * diurnal_curve(hour);

  // Exact draw order of the original serial pre-pass: plan, buffer,
  // latency, loss, then the per-test seed.
  PlannedNdt p;
  p.pc.plan_mbps = isp.plan_mbps[rng_.weighted_index(isp.plan_weights)];
  p.pc.access_buffer_ms = rng_.uniform(30.0, 120.0);
  p.pc.access_latency_ms = rng_.uniform(6.0, 18.0);
  p.pc.access_loss = rng_.uniform(0.0, 0.0003);
  p.pc.interconnect_mbps = opt_.interconnect_mbps;
  p.pc.interconnect_buffer_ms = opt_.interconnect_buffer_ms;
  p.pc.background_load = load;
  p.pc.ndt_cc = opt_.ndt_cc;
  p.pc.seed = rng_.next_u64();
  p.transit = site.transit;
  p.site = site.site;
  p.isp = isp.name;
  p.month = month;
  p.hour = hour;
  p.load = load;

  // Advance the odometer: tests innermost, then hour, month, isp, site —
  // the loop nest of the original pre-pass.
  if (++t_ >= opt_.tests_per_cell) {
    t_ = 0;
    if (++hi_ >= opt_.hours.size()) {
      hi_ = 0;
      if (++mi_ >= opt_.months.size()) {
        mi_ = 0;
        if (++ii_ >= isps_.size()) {
          ii_ = 0;
          ++si_;
        }
      }
    }
  }
  return p;
}

std::vector<NdtObservation> generate_dispute2014(
    const Dispute2014Options& opt) {
  DisputePlanCursor cursor(opt);
  std::vector<PlannedNdt> plan;
  plan.reserve(cursor.total());
  while (auto p = cursor.next()) plan.push_back(std::move(*p));

  runtime::CheckpointedRunOptions ropt;
  ropt.checkpoint_path = opt.checkpoint_path;
  ropt.fingerprint = dispute_fingerprint(opt);
  ropt.checkpoint_every = opt.checkpoint_every;
  ropt.jobs = opt.jobs;
  ropt.retry = opt.retry;
  ropt.soft_deadline = opt.soft_deadline;
  ropt.abandon_on_deadline = opt.abandon_on_deadline;
  ropt.faults = opt.faults;
  ropt.progress = opt.progress;
  // By value: abandoned jobs may report errors after this frame is gone.
  std::vector<std::uint64_t> seeds(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) seeds[i] = plan[i].pc.seed;
  ropt.seed_of = [seeds](std::size_t slot) { return seeds[slot]; };
  ropt.errors_out = opt.errors_out;
  ropt.commit_out = opt.checkpoint_commit_out;
  ropt.stats_out = opt.stats_out;

  const auto slots = runtime::run_checkpointed(
      plan, [opt](const PlannedNdt& p) { return run_planned_ndt(p, opt); },
      format_observation_row,
      [&ropt](const std::string& line) {
        return parse_observation_row(line, ropt.checkpoint_path, 0);
      },
      ropt);

  std::vector<NdtObservation> out;
  out.reserve(slots.size());
  for (const auto& slot : slots) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

std::optional<int> dispute_coarse_label(const NdtObservation& obs) {
  const bool jan_feb = obs.month == 1 || obs.month == 2;
  const bool mar_apr = obs.month == 3 || obs.month == 4;
  const bool affected_combo = obs.transit == "Cogent" && obs.isp != "Cox";
  if (jan_feb && is_peak_hour(obs.hour) && affected_combo) {
    return 0;  // external
  }
  if (mar_apr && is_offpeak_hour(obs.hour)) {
    return 1;  // self-induced
  }
  return std::nullopt;
}

std::string dispute_fingerprint(const Dispute2014Options& opt) {
  std::ostringstream out;
  out.precision(17);
  out << "dispute2014-v1 tests_per_cell=" << opt.tests_per_cell << " months=";
  append_ints(out, opt.months);
  out << " hours=";
  append_ints(out, opt.hours);
  out << " interconnect=" << opt.interconnect_mbps
      << " ic_buffer=" << opt.interconnect_buffer_ms
      << " dispute_intensity=" << opt.dispute_intensity
      << " normal_intensity=" << opt.normal_intensity
      << " ndt=" << sim::to_seconds(opt.ndt_duration)
      << " warmup=" << sim::to_seconds(opt.warmup) << " seed=" << opt.seed;
  // Appended only when non-default: every cache fingerprinted before the
  // CC knob existed was generated with cubic and must keep verifying.
  if (opt.ndt_cc != "cubic") out << " cc=" << opt.ndt_cc;
  return out.str();
}

void save_observations_csv(const std::string& path,
                           const std::vector<NdtObservation>& obs,
                           const std::string& fingerprint) {
  std::ostringstream out;
  if (!fingerprint.empty()) out << kFingerprintPrefix << fingerprint << "\n";
  out << kHeader << "\n";
  for (const auto& o : obs) out << format_observation_row(o) << "\n";
  runtime::write_file_atomic(path, out.str());
}

std::vector<NdtObservation> load_observations_csv(
    const std::string& path, std::string* fingerprint_out) {
  std::ifstream in(path);
  if (!in) {
    runtime::throw_parse_error(path, 0, "line", "cannot read campaign csv");
  }
  std::string line;
  std::string fingerprint;
  std::uint64_t line_no = 1;
  if (!std::getline(in, line)) {
    runtime::throw_parse_error(path, line_no, "line",
                               "empty file (expected csv header)");
  }
  if (line.rfind(kFingerprintPrefix, 0) == 0) {
    fingerprint = line.substr(sizeof(kFingerprintPrefix) - 1);
    ++line_no;
    if (!std::getline(in, line)) line.clear();
  }
  if (line != kHeader) {
    runtime::throw_parse_error(path, line_no, "line",
                               "unrecognized campaign csv header");
  }
  if (fingerprint_out) *fingerprint_out = fingerprint;
  std::vector<NdtObservation> out;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    out.push_back(parse_observation_row(line, path, line_no));
  }
  return out;
}

std::vector<NdtObservation> load_or_generate_dispute2014(
    const std::string& cache_path, const Dispute2014Options& opt) {
  const std::string want = dispute_fingerprint(opt);
  if (std::filesystem::exists(cache_path)) {
    try {
      std::string have;
      auto obs = load_observations_csv(cache_path, &have);
      if (have.empty() || have == want) return obs;
    } catch (const runtime::ParseException&) {
      // Corrupt cache: regenerate below instead of failing the caller.
    }
  }
  Dispute2014Options resumable = opt;
  if (resumable.checkpoint_path.empty()) {
    resumable.checkpoint_path = cache_path + ".ckpt";
  }
  // A partial result (some observations failed permanently) must never
  // become a fingerprinted cache hit: skip the cache write so the kept
  // checkpoint drives a retry of only the failed slots next invocation.
  std::vector<runtime::JobError> local_errors;
  if (!resumable.errors_out) resumable.errors_out = &local_errors;
  const std::size_t errors_before = resumable.errors_out->size();
  std::function<void()> commit;
  resumable.checkpoint_commit_out = &commit;
  runtime::CampaignStats stats;
  if (!resumable.stats_out) resumable.stats_out = &stats;
  auto obs = generate_dispute2014(resumable);
  if (resumable.errors_out->size() == errors_before) {
    // Cache first, checkpoint removal second: a crash between the two only
    // costs a cheap resume-with-nothing-pending, never recorded progress.
    obs::TraceSpan span("campaign.cache_commit", "campaign");
    save_observations_csv(cache_path, obs, want);
    if (commit) commit();
  }
  // Auditability side artifact (never read back, never fingerprinted).
  runtime::write_file_atomic(
      cache_path + ".metrics.json",
      runtime::campaign_metrics_json(want, *resumable.stats_out));
  return obs;
}

}  // namespace ccsig::mlab

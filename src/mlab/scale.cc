#include "mlab/scale.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/trace.h"
#include "runtime/campaign.h"
#include "sim/random.h"

namespace ccsig::mlab {
namespace {

std::uint64_t grid_cells(const Dispute2014Options& opt) {
  return static_cast<std::uint64_t>(dispute_sites().size()) *
         dispute_isps().size() * opt.months.size() * opt.hours.size();
}

/// The options actually fed to the plan cursor: tests_per_cell raised to
/// cover total_rows when set.
Dispute2014Options effective_base(const ScaleOptions& opt) {
  Dispute2014Options eff = opt.base;
  eff.tests_per_cell = scale_tests_per_cell(opt);
  return eff;
}

std::uint64_t effective_total(const ScaleOptions& opt) {
  if (opt.total_rows > 0) return opt.total_rows;
  return grid_cells(opt.base) *
         static_cast<std::uint64_t>(opt.base.tests_per_cell);
}

}  // namespace

int scale_tests_per_cell(const ScaleOptions& opt) {
  if (opt.total_rows == 0) return opt.base.tests_per_cell;
  const std::uint64_t cells = grid_cells(opt.base);
  return static_cast<int>((opt.total_rows + cells - 1) / cells);
}

std::string scale_fingerprint(const ScaleOptions& opt) {
  std::ostringstream out;
  out << dispute_fingerprint(effective_base(opt))
      << " scale rows=" << effective_total(opt)
      << " chunk=" << opt.chunk_rows
      << " model=" << (opt.analytic ? "analytic" : "pathsim");
  return out.str();
}

NdtObservation analytic_ndt(const PlannedNdt& p) {
  sim::Rng rng(p.pc.seed);
  NdtObservation obs;
  obs.transit = p.transit;
  obs.site = p.site;
  obs.isp = p.isp;
  obs.month = p.month;
  obs.hour = p.hour;
  obs.plan_mbps = p.pc.plan_mbps;
  obs.truth_external = p.load > 1.0;

  // A small fraction of tests end without a usable slow-start signature
  // (too few samples), matching the full simulator's failure mode.
  const bool featureless = rng.uniform(0.0, 1.0) < 0.015;

  double tput, norm_diff, cov;
  if (obs.truth_external) {
    // Over-capacity interconnect: the shared queue is persistently full
    // before the test starts, so throughput collapses toward the fair
    // share while the RTT floor is already inflated — a small additional
    // self-induced rise (low norm_diff) and loss-driven variance (high
    // cov). Paper §3.2's "external congestion" signature.
    const double share = 1.0 / p.load;
    tput = p.pc.plan_mbps * share * rng.uniform(0.55, 0.85);
    norm_diff = rng.uniform(0.04, 0.30);
    cov = rng.uniform(0.35, 0.90);
  } else {
    // Access-limited: the flow fills its own (drawn) access buffer during
    // slow start, so the RTT climbs from the base latency toward
    // base + buffer — norm_diff tracks the buffer's share of the final
    // RTT — and then sits stably at the plan rate (low cov).
    tput = p.pc.plan_mbps * rng.uniform(0.86, 0.97);
    const double buffer_share =
        p.pc.access_buffer_ms /
        (p.pc.access_buffer_ms + 2.0 * p.pc.access_latency_ms);
    norm_diff = buffer_share * rng.uniform(0.80, 1.00);
    cov = rng.uniform(0.04, 0.28);
  }
  obs.throughput_mbps = tput;
  if (!featureless) {
    obs.has_features = true;
    obs.norm_diff = norm_diff;
    obs.cov = cov;
    obs.ss_tput_mbps = tput * rng.uniform(0.55, 1.15);
  }
  // The paper's M-Lab filters drop sub-Mbps and glitched tests.
  obs.passes_filters = tput >= 1.0 && rng.uniform(0.0, 1.0) > 0.01;
  return obs;
}

ScaleResult run_scale_campaign(const ScaleOptions& opt) {
  obs::TraceSpan span("campaign.scale_run", "campaign");
  const Dispute2014Options eff = effective_base(opt);
  const std::string fp = scale_fingerprint(opt);
  const std::uint64_t total = effective_total(opt);
  const std::uint64_t chunk_rows = std::max<std::uint64_t>(1, opt.chunk_rows);

  ScaleResult result;
  result.rows_total = total;

  RowStoreWriter store(opt.store_path, fp);
  result.rows_committed_before = store.committed_rows();

  // Replay the plan RNG up to the committed prefix: rows are a pure
  // function of their slot, so skipping is just drawing and discarding.
  DisputePlanCursor cursor(eff);
  for (std::uint64_t i = 0; i < result.rows_committed_before; ++i) {
    cursor.next();
  }

  std::uint64_t done = result.rows_committed_before;
  std::uint64_t chunk_idx = done / chunk_rows;
  while (done < total) {
    if (opt.max_chunks_this_run > 0 &&
        result.chunks_run >= opt.max_chunks_this_run) {
      break;
    }
    const std::uint64_t n = std::min<std::uint64_t>(chunk_rows, total - done);
    std::vector<PlannedNdt> items;
    items.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      auto p = cursor.next();
      if (!p) break;  // unreachable: total never exceeds the plan
      items.push_back(std::move(*p));
    }

    runtime::CheckpointedRunOptions ropt;
    ropt.checkpoint_path = opt.store_path + ".ckpt";
    // Chunk index in the fingerprint: a checkpoint from chunk k must never
    // satisfy slots of chunk k+1.
    ropt.fingerprint = fp + " chunk=" + std::to_string(chunk_idx);
    ropt.checkpoint_every = eff.checkpoint_every;
    ropt.jobs = eff.jobs;
    ropt.retry = eff.retry;
    ropt.soft_deadline = eff.soft_deadline;
    ropt.abandon_on_deadline = eff.abandon_on_deadline;
    ropt.faults = eff.faults;
    std::vector<std::uint64_t> seeds(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) seeds[i] = items[i].pc.seed;
    ropt.seed_of = [seeds](std::size_t slot) { return seeds[slot]; };
    ropt.errors_out = eff.errors_out;
    std::function<void()> commit;
    ropt.commit_out = &commit;

    const bool analytic = opt.analytic;
    const auto slots = runtime::run_checkpointed(
        items,
        [analytic, &eff](const PlannedNdt& p) {
          return analytic ? analytic_ndt(p) : run_planned_ndt(p, eff);
        },
        format_observation_row,
        [&ropt](const std::string& line) {
          return parse_observation_row(line, ropt.checkpoint_path, 0);
        },
        ropt);

    std::uint64_t failed = 0;
    for (const auto& slot : slots) {
      if (!slot) ++failed;
    }
    if (failed > 0) {
      // Keep the chunk's checkpoint (run_checkpointed flushed it) and stop:
      // appending a partial block would bake the gap into the store. The
      // next invocation retries only the failed slots.
      result.failed_rows = failed;
      return result;
    }

    std::vector<NdtObservation> rows;
    rows.reserve(slots.size());
    for (const auto& slot : slots) rows.push_back(*slot);
    // Block first, checkpoint retirement second: a kill between the two
    // re-restores a fully-complete chunk whose rows the fingerprint check
    // (chunk index) then discards — cheap, never wrong.
    store.append_block(rows);
    if (commit) commit();

    done += n;
    result.rows_executed += n;
    result.chunks_run += 1;
    ++chunk_idx;
    if (opt.progress) opt.progress(done, total);
  }
  result.complete = done == total;
  return result;
}

ScaleSummary aggregate_scale_store(const std::string& store_path) {
  ScaleSummary summary;
  summary.rows = for_each_row(
      store_path,
      [&summary](const NdtObservation& o) {
        std::string key = o.transit + ',' + o.isp + ',' +
                          std::to_string(o.month) + ',' +
                          (is_peak_hour(o.hour) ? '1' : '0');
        ScaleCellStats& c = summary.cells[key];
        c.tests += 1;
        c.passes_filters += o.passes_filters ? 1 : 0;
        c.has_features += o.has_features ? 1 : 0;
        c.truth_external += o.truth_external ? 1 : 0;
        c.throughput_sum += o.throughput_mbps;
        c.norm_diff_sum += o.norm_diff;
        c.cov_sum += o.cov;
      },
      &summary.fingerprint);
  return summary;
}

std::string scale_summary_csv(const ScaleSummary& summary) {
  std::ostringstream out;
  out.precision(17);
  out << "transit,isp,month,peak,tests,passes_filters,has_features,"
         "truth_external,mean_throughput_mbps,mean_norm_diff,mean_cov\n";
  for (const auto& [key, c] : summary.cells) {
    const double n = c.tests > 0 ? static_cast<double>(c.tests) : 1.0;
    out << key << ',' << c.tests << ',' << c.passes_filters << ','
        << c.has_features << ',' << c.truth_external << ','
        << c.throughput_sum / n << ',' << c.norm_diff_sum / n << ','
        << c.cov_sum / n << "\n";
  }
  return out.str();
}

}  // namespace ccsig::mlab

// Time-Series Latency Probing (Luckie et al., IMC 2014), as used by the
// paper (§4.2) to find congested interdomain links: probe the near and far
// routers of an interdomain link from a vantage point inside the access
// network; an elevated far-side RTT with a flat near-side RTT indicates
// queueing on the interdomain link.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/node.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ccsig::mlab {

struct ProbeSample {
  sim::Time sent_at = 0;
  sim::Duration rtt = -1;  // -1: lost / unanswered
};

/// Sends echo probes from `vantage` to a target node's echo port and
/// records RTTs. One Prober per target (near router, far router).
class TslpProber {
 public:
  TslpProber(sim::Simulator& sim, sim::Node* vantage, sim::Node* target,
             sim::Port local_port);
  ~TslpProber();
  TslpProber(const TslpProber&) = delete;
  TslpProber& operator=(const TslpProber&) = delete;

  /// Sends one probe now; the result lands in samples() when the reply
  /// arrives (or stays at rtt = -1 if it never does).
  void probe();

  /// Schedules probes every `interval` from `start` until `end`.
  void schedule(sim::Time start, sim::Time end, sim::Duration interval);

  const std::vector<ProbeSample>& samples() const { return samples_; }

  /// Minimum observed RTT (the baseline latency); -1 if no replies.
  sim::Duration min_rtt() const;

 private:
  void on_reply(const sim::Packet& p);

  sim::Simulator& sim_;
  sim::Node* vantage_;
  sim::Node* target_;
  sim::Port local_port_;
  std::vector<ProbeSample> samples_;
};

}  // namespace ccsig::mlab

// The paper's targeted TSLP2017 experiment (§4.2): a client with a known
// 25 Mbps plan in a Comcast access network, an M-Lab server hosted by TATA
// in New York (~18 ms base RTT), and an interconnect whose far-side TSLP
// latency rises ~15 ms during occasional peak-hour congestion episodes.
// NDT tests run every 15 minutes during peak hours and hourly off-peak.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mlab/path.h"
#include "runtime/campaign.h"
#include "runtime/fault_injection.h"
#include "runtime/job_result.h"

namespace ccsig::mlab {

/// One measurement slot: TSLP probes plus (optionally) an NDT test, run
/// against the world state at that wall-clock time.
struct TslpObservation {
  int day = 0;
  int hour = 0;
  int minute = 0;
  double far_rtt_ms = -1;   // TSLP far-router RTT
  double near_rtt_ms = -1;  // TSLP near-router RTT
  bool ndt_ran = false;
  double throughput_mbps = 0;
  double min_flow_rtt_ms = 0;  // min RTT of the NDT flow itself
  double norm_diff = 0;
  double cov = 0;
  bool has_features = false;
  bool truth_external = false;  // interconnect demand > capacity in slot
};

struct Tslp2017Options {
  int days = 5;
  double plan_mbps = 25.0;
  double base_one_way_ms = 8.0;          // ~18 ms RTT with router hops
  double access_buffer_ms = 20.0;        // §5.4: small buffers, ~15–20 ms
  double interconnect_mbps = 300.0;
  double interconnect_buffer_ms = 15.0;  // the observed ~15 ms latency rise
  /// Probability that a given peak-hour block (19–23h) is congested.
  double episode_probability = 0.3;
  double congested_load = 1.25;
  double normal_peak_load = 0.8;
  sim::Duration ndt_duration = sim::from_seconds(10.0);
  sim::Duration warmup = sim::from_seconds(2.0);
  /// Congestion control of the measured NDT flows (registry name or alias;
  /// see tcp/congestion_control.h). Appended to the fingerprint only when
  /// non-default so historical caches stay valid.
  std::string ndt_cc = "cubic";
  std::uint64_t seed = 2017;
  /// Worker threads: 0 = every hardware thread, 1 = serial. Output is
  /// identical for any value (per-slot seeds are drawn in a deterministic
  /// pre-pass, results collected in slot order).
  int jobs = 0;
  /// Progress callback; invocations are serialized even when `jobs > 1`.
  std::function<void(std::size_t, std::size_t)> progress;

  // --- Fault tolerance (see runtime/campaign.h) ---------------------------
  /// Shard-checkpoint file for kill/resume; empty disables checkpointing.
  /// load_or_generate_tslp2017 sets this to `<cache>.ckpt` automatically.
  std::string checkpoint_path;
  int checkpoint_every = 16;
  runtime::RetryPolicy retry = runtime::RetryPolicy::attempts(2);
  std::chrono::milliseconds soft_deadline{0};
  bool abandon_on_deadline = false;
  const runtime::FaultPlan* faults = nullptr;
  /// Receives one JobError per slot that ultimately failed (the slot is
  /// absent from the result). nullptr = discard errors.
  std::vector<runtime::JobError>* errors_out = nullptr;
  /// When non-null and every slot succeeded, receives a callback that
  /// deletes the shard checkpoint; the checkpoint is kept until the caller
  /// invokes it (after atomically writing the final CSV). See
  /// runtime::CheckpointedRunOptions::commit_out.
  std::function<void()>* checkpoint_commit_out = nullptr;
  /// When non-null, receives the campaign's slot accounting
  /// (restored/executed/failed/retried/abandoned counts).
  runtime::CampaignStats* stats_out = nullptr;
};

/// Runs the multi-day campaign (one path snapshot per slot; peak slots every
/// 15 minutes, off-peak hourly, like the paper's schedule).
std::vector<TslpObservation> generate_tslp2017(const Tslp2017Options& opt);

/// The paper's §4.2/§5.4 labeling: throughput < 15 Mbps AND minimum flow
/// RTT > 30 ms -> external (0); throughput > 20 Mbps AND min RTT < 20 ms ->
/// self-induced (1); otherwise unlabeled (-1).
int tslp_label(const TslpObservation& obs);

/// One-line digest of every option affecting campaign content (not
/// `jobs`/`progress`); embedded in cache CSVs to invalidate stale caches.
std::string tslp_fingerprint(const Tslp2017Options& opt);

/// Writes the observations atomically (temp file + rename).
void save_tslp_csv(const std::string& path,
                   const std::vector<TslpObservation>& obs,
                   const std::string& fingerprint = "");
/// Malformed input raises runtime::ParseException (file, line, reason).
std::vector<TslpObservation> load_tslp_csv(
    const std::string& path, std::string* fingerprint_out = nullptr);

/// Loads `cache_path` when present and not stale (legacy caches without a
/// fingerprint are trusted); otherwise generates — resuming from
/// `<cache_path>.ckpt` when a matching checkpoint survives a previous
/// kill — and atomically rewrites the cache. A corrupt cache is treated
/// as stale, never fatal. A campaign with permanently failed slots returns
/// its partial result but is NOT cached: the checkpoint is kept so the
/// next invocation retries only the failed slots. On success the
/// checkpoint is removed only after the cache CSV is safely on disk.
std::vector<TslpObservation> load_or_generate_tslp2017(
    const std::string& cache_path, const Tslp2017Options& opt);

}  // namespace ccsig::mlab

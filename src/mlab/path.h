// The measurement path an NDT test traverses:
//
//   server ── transit_router ══ interconnect ══ isp_router ── access ── client
//   bg_server ─┘ (background demand)              └── bg_sink
//
// Background demand is a set of rate-limited TCP streams (video-like CBR
// over TCP) whose aggregate demand is `background_load × interconnect
// capacity`; when the load exceeds 1.0 the interconnect congests and holds
// a standing queue — the "external congestion" regime. The test flow's
// access link bottleneck models the user's service plan.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "features/extractor.h"
#include "mlab/tslp.h"
#include "sim/echo.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace ccsig::mlab {

/// Segment-fetch (video-player-like) source: every `period` it hands the
/// transport one chunk of rate×period bytes, fetched as fast as TCP allows,
/// then idles — unless the previous chunk is still in backlog (a stalled
/// player skips). The on-off pattern gives background traffic realistic
/// burstiness: a congested queue fluctuates instead of pinning at 100%.
class ChunkedStream {
 public:
  ChunkedStream(sim::Simulator& sim, tcp::TcpSource* source,
                double nominal_bps, sim::Duration period, sim::Rng rng);

  std::uint64_t chunks_released() const { return chunks_; }
  std::uint64_t chunks_skipped() const { return skipped_; }

 private:
  void tick();

  sim::Simulator& sim_;
  tcp::TcpSource* source_;
  std::uint64_t chunk_bytes_;
  sim::Duration period_;
  sim::Rng rng_;
  std::uint64_t chunks_ = 0;
  std::uint64_t skipped_ = 0;
};

/// ABR-style controller for one background stream: periodically compares
/// achieved goodput against the current quality tier's rate, downshifting
/// under sustained shortfall and upshifting back toward nominal.
class AdaptiveStream {
 public:
  AdaptiveStream(sim::Simulator& sim, tcp::TcpSource* source,
                 double nominal_bps, double floor_fraction, sim::Rng rng);

  double current_rate_bps() const { return current_bps_; }

 private:
  void tick();

  sim::Simulator& sim_;
  tcp::TcpSource* source_;
  double nominal_bps_;
  double floor_bps_;
  double current_bps_;
  std::uint64_t last_acked_ = 0;
  sim::Time last_tick_ = 0;
  sim::Rng rng_;
};

struct PathConfig {
  // Access side (the user's service plan and home link).
  double plan_mbps = 25.0;
  double access_buffer_ms = 50.0;
  double access_latency_ms = 8.0;  // one-way; contributes 2x to base RTT
  double access_loss = 0.0;

  // Interconnect between the access ISP and the transit/content network.
  // (A scaled-down stand-in for a multi-10G transit port; see DESIGN.md.)
  double interconnect_mbps = 300.0;
  double interconnect_buffer_ms = 25.0;

  // Background (everyone else sharing the interconnect).
  double background_load = 0.5;        // aggregate nominal demand / capacity
  double background_stream_mbps = 4.0; // per-stream nominal rate
  std::string background_cc = "cubic";
  /// How the background sources release data:
  ///   kMixed — default: a smooth CBR base (`cbr_fraction` of the load)
  ///            plus a chunked segment-fetch layer for the rest. The CBR
  ///            base gives persistent congestion its stable floor; the
  ///            chunked layer adds the on-off burstiness real aggregates
  ///            have, so a pinned queue still breathes.
  ///   kChunked — segment fetches only,
  ///   kCbr — smooth constant-rate release only,
  ///   kAdaptive — CBR with ABR-style rate adaptation.
  enum class BackgroundMode { kMixed, kChunked, kCbr, kAdaptive };
  BackgroundMode background_mode = BackgroundMode::kMixed;
  double cbr_fraction = 0.75;  // kMixed: share of load carried by CBR
  sim::Duration chunk_period = sim::from_seconds(2.0);
  /// Chunk fetch speed as a multiple of the nominal stream rate — the
  /// stream's own bottleneck elsewhere in the network (its subscriber's
  /// access link). Sets the stream's duty cycle to ~1/multiple.
  double chunk_fetch_multiple = 3.0;
  double adaptive_floor_fraction = 0.3;  // lowest quality tier (kAdaptive)

  /// Congestion control of the measured NDT flow itself. "cubic" matches
  /// the Linux M-Lab servers of the era; the campaign CC ablation swaps in
  /// other registered variants (ccsig_testbed --cc lists them).
  std::string ndt_cc = "cubic";

  std::uint64_t seed = 1;
};

/// Web100-style NDT record with the paper's M-Lab pre-processing filters.
struct NdtResult {
  std::optional<features::FlowFeatures> features;
  double throughput_bps = 0;  // NDT-reported mean downstream throughput
  double congestion_limited_fraction = 0;
  sim::Duration duration = 0;
  /// Paper §4.1 filters: ran ≥ 90% of nominal duration and spent ≥ 90% of
  /// it congestion-limited.
  bool passes_mlab_filters = false;
};

/// One live instance of the path with its background load running.
class PathSim {
 public:
  explicit PathSim(const PathConfig& cfg);
  PathSim(const PathSim&) = delete;
  PathSim& operator=(const PathSim&) = delete;

  /// Runs the background alone for `d` so queues reach steady state.
  void warmup(sim::Duration d);

  /// Runs one NDT measurement of `duration` starting now.
  NdtResult run_ndt(sim::Duration duration);

  /// TSLP probes from the client: near = ISP-side router (never crosses
  /// the interconnect), far = transit-side router (reply transits the
  /// congested direction). Returns the RTT, or -1 when lost.
  sim::Duration probe_far();
  sim::Duration probe_near();

  sim::Network& network() { return *net_; }
  sim::Link* interconnect_down() const { return interconnect_down_; }
  const PathConfig& config() const { return cfg_; }

 private:
  PathConfig cfg_;
  std::unique_ptr<sim::Network> net_;
  sim::Node* client_ = nullptr;
  sim::Node* server_ = nullptr;
  sim::Link* interconnect_down_ = nullptr;
  std::vector<std::unique_ptr<sim::EchoResponder>> echoes_;
  std::vector<std::unique_ptr<tcp::TcpSource>> bg_sources_;
  std::vector<std::unique_ptr<tcp::TcpSink>> bg_sinks_;
  std::vector<std::unique_ptr<AdaptiveStream>> bg_adapters_;
  std::vector<std::unique_ptr<ChunkedStream>> bg_chunkers_;
  std::unique_ptr<TslpProber> far_prober_;
  std::unique_ptr<TslpProber> near_prober_;
  sim::Port next_port_ = 20000;
};

}  // namespace ccsig::mlab

#include "mlab/tslp.h"

#include "sim/echo.h"

namespace ccsig::mlab {

TslpProber::TslpProber(sim::Simulator& sim, sim::Node* vantage,
                       sim::Node* target, sim::Port local_port)
    : sim_(sim), vantage_(vantage), target_(target), local_port_(local_port) {
  vantage_->register_endpoint(local_port_,
                              [this](const sim::Packet& p) { on_reply(p); });
}

TslpProber::~TslpProber() { vantage_->unregister_endpoint(local_port_); }

void TslpProber::probe() {
  const std::uint64_t index = samples_.size();
  samples_.push_back(ProbeSample{sim_.now(), -1});

  sim::Packet p;
  p.key.src_addr = vantage_->address();
  p.key.dst_addr = target_->address();
  p.key.src_port = local_port_;
  p.key.dst_port = sim::kEchoPort;
  p.payload_bytes = 64;  // ICMP-echo-sized probe
  p.seq = index;         // round-trip correlation id
  vantage_->send(p);
}

void TslpProber::on_reply(const sim::Packet& p) {
  const std::uint64_t index = p.seq;
  if (index >= samples_.size()) return;
  ProbeSample& s = samples_[index];
  if (s.rtt >= 0) return;  // duplicate
  s.rtt = sim_.now() - s.sent_at;
}

void TslpProber::schedule(sim::Time start, sim::Time end,
                          sim::Duration interval) {
  for (sim::Time t = start; t <= end; t += interval) {
    sim_.schedule_at(t, [this] { probe(); });
  }
}

sim::Duration TslpProber::min_rtt() const {
  sim::Duration best = -1;
  for (const auto& s : samples_) {
    if (s.rtt >= 0 && (best < 0 || s.rtt < best)) best = s.rtt;
  }
  return best;
}

}  // namespace ccsig::mlab

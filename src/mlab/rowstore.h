// Compact binary columnar storage for campaign observation rows.
//
// A million-row campaign cannot keep its results as an in-memory vector or
// a monolithic CSV rewrite: the scale driver (mlab/scale.h) needs an
// append-only on-disk format whose durable prefix survives a kill at any
// byte. The row store is that format:
//
//   file   := magic "CCRS" u32:version u32:len fingerprint-bytes block*
//   block  := u32:kBlockMagic u32:nrows u32:payload_bytes u32:crc32 payload
//   payload:= dict(transit) dict(site) dict(isp)
//             nrows × u8 transit_id | site_id | isp_id | month | hour | flags
//             nrows × u64 for each double column (raw IEEE-754 bits, LE):
//             plan_mbps, throughput_mbps, ss_tput_mbps, norm_diff, cov
//   dict   := u8:n, then n × (u8:len bytes)
//
// Strings are per-block dictionary-coded (the campaign has a handful of
// transit/site/ISP names), integers are single bytes, and doubles are
// stored as raw bits — so a row round-trips bit-exactly and the CSV export
// shim (export_rows_csv), which reuses the campaign's precision-17
// formatter, is byte-identical to save_observations_csv on the same rows.
// ~49 bytes/row vs ~130 for the CSV.
//
// Durability: a block is committed by its own header+CRC. Opening a store
// for append scans the committed prefix and truncates anything after it
// (a torn block from a kill mid-write), so `committed_rows()` is exactly
// the durable row count and append always resumes from a clean boundary.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mlab/dispute2014.h"

namespace ccsig::mlab {

/// Summary of a store's committed (durable) contents.
struct RowStoreInfo {
  std::string fingerprint;
  std::uint64_t rows = 0;
  std::uint64_t blocks = 0;
  /// File offset one past the last committed block (= truncation point
  /// for a torn tail).
  std::uint64_t committed_bytes = 0;
};

/// Scans `path` and returns its committed contents. A missing file or one
/// with a damaged header raises runtime::ParseException; a torn or
/// corrupt *tail* does not (the committed prefix is still authoritative).
RowStoreInfo row_store_info(const std::string& path);

/// Appends observation blocks to a store, creating it (with `fingerprint`)
/// if absent. Opening an existing store whose fingerprint differs raises
/// runtime::ParseException — the caller decides whether to delete and
/// restart (mismatched campaign options must never silently mix).
class RowStoreWriter {
 public:
  RowStoreWriter(const std::string& path, const std::string& fingerprint);

  /// Durable rows at open time plus blocks appended since.
  std::uint64_t committed_rows() const { return rows_; }

  /// Serializes `rows` as one block, appends it, and flushes: after this
  /// returns, the block is part of the committed prefix.
  void append_block(const std::vector<NdtObservation>& rows);

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t rows_ = 0;
};

/// Streams every committed row of `path` through `fn` in append order,
/// holding one decoded block at a time — O(block), not O(rows). Returns
/// the number of rows visited. A torn tail is ignored, matching
/// row_store_info; a damaged header or mid-prefix corruption raises
/// runtime::ParseException.
std::uint64_t for_each_row(const std::string& path,
                           const std::function<void(const NdtObservation&)>& fn,
                           std::string* fingerprint_out = nullptr);

/// CSV export shim: writes the store's rows to `csv_path` byte-identically
/// to save_observations_csv(csv_path, rows, store-fingerprint) — same
/// fingerprint line, same header, same precision-17 row formatter — while
/// streaming block-by-block instead of materializing the row vector.
void export_rows_csv(const std::string& store_path,
                     const std::string& csv_path);

}  // namespace ccsig::mlab

// Million-row campaign scaling for the Dispute2014 reconstruction.
//
// generate_dispute2014 materializes the whole plan and the whole result
// vector — fine for the paper's figures (thousands of tests), hopeless at
// millions. run_scale_campaign instead walks the identical plan through
// DisputePlanCursor in fixed-size chunks:
//
//   chunk k = plan rows [k*chunk_rows, (k+1)*chunk_rows)
//     -> run_checkpointed (retries, fault injection, shard checkpoint at
//        <store>.ckpt fingerprinted to this campaign AND this chunk)
//     -> one committed block appended to the binary row store
//     -> checkpoint retired
//
// Peak memory is O(chunk_rows + shards), never O(rows). A kill at any
// point resumes exactly: completed blocks are the row store's committed
// prefix, the in-flight chunk restores from its shard checkpoint, and
// because every row is a pure function of its plan slot (per-row RNG
// seeded in the deterministic pre-pass draw order), the resumed campaign's
// exported CSV is byte-identical to an uninterrupted run at any --jobs.
//
// Scale runs default to the analytic NDT model — a closed-form observation
// generator (microseconds/row) driven by the same per-row seed, modeling
// the paper's two regimes: an over-capacity interconnect collapses
// throughput with a flat-RTT/high-variance signature (external), an
// access-limited path fills its own buffer for a high norm_diff/low-cov
// signature (self-induced). Full PathSim rows (milliseconds/row) remain
// available for fidelity runs via ScaleOptions::analytic = false.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "mlab/dispute2014.h"
#include "mlab/rowstore.h"

namespace ccsig::mlab {

struct ScaleOptions {
  /// Campaign content knobs (months/hours/intensities/seed/...). Its
  /// tests_per_cell is overridden when total_rows is set; its
  /// checkpoint_path is ignored (the store location decides).
  Dispute2014Options base;
  /// Target row count. 0 = the full grid implied by base.tests_per_cell.
  /// Otherwise tests_per_cell is raised to cover it and the plan is
  /// truncated to exactly this many rows.
  std::uint64_t total_rows = 0;
  /// Rows per chunk = per checkpoint shard = per store block. Part of the
  /// fingerprint (it defines checkpoint slot meaning), so pick it once per
  /// store. Peak memory is proportional to this.
  std::uint64_t chunk_rows = 8192;
  /// Binary row store path; `<store>.ckpt` holds the in-flight chunk.
  std::string store_path;
  /// Closed-form observation model (default) vs full PathSim per row.
  bool analytic = true;
  /// Stop after this many chunks this invocation (0 = run to completion).
  /// The primary kill/resume test hook: a bounded run leaves the store in
  /// exactly the state a kill at a chunk boundary would.
  std::uint64_t max_chunks_this_run = 0;
  /// Called after every chunk with (rows_committed, rows_total).
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct ScaleResult {
  std::uint64_t rows_total = 0;
  std::uint64_t rows_committed_before = 0;  // restored from the store
  std::uint64_t rows_executed = 0;          // run this invocation
  std::uint64_t chunks_run = 0;
  std::uint64_t failed_rows = 0;  // permanent failures this invocation
  bool complete = false;          // store now holds all rows_total rows
};

/// Fingerprint covering everything that affects store content: the base
/// campaign fingerprint plus the scale knobs (rows, chunking, model).
std::string scale_fingerprint(const ScaleOptions& opt);

/// The effective per-grid-cell test count after total_rows adjustment.
int scale_tests_per_cell(const ScaleOptions& opt);

/// Closed-form NDT observation for one planned test; deterministic given
/// `p.pc.seed`. Shares PlannedNdt (and thus the plan RNG stream) with the
/// full simulator.
NdtObservation analytic_ndt(const PlannedNdt& p);

/// Runs (or resumes) the campaign into opt.store_path. A store whose
/// fingerprint does not match is an error (ParseException) — delete it to
/// restart. Returns accounting; complete=false means either
/// max_chunks_this_run stopped the run early or some rows failed
/// permanently this invocation (rerun to retry just those).
ScaleResult run_scale_campaign(const ScaleOptions& opt);

/// Streaming aggregate over a store: O(cells) memory however many rows.
/// Cells are keyed "transit,isp,month,peak" (peak = is_peak_hour), the
/// granularity of the paper's dispute narrative.
struct ScaleCellStats {
  std::uint64_t tests = 0;
  std::uint64_t passes_filters = 0;
  std::uint64_t has_features = 0;
  std::uint64_t truth_external = 0;
  double throughput_sum = 0;
  double norm_diff_sum = 0;
  double cov_sum = 0;
};

struct ScaleSummary {
  std::uint64_t rows = 0;
  std::string fingerprint;
  std::map<std::string, ScaleCellStats> cells;
};

ScaleSummary aggregate_scale_store(const std::string& store_path);

/// Stable CSV rendering of a summary (one line per cell, key order).
std::string scale_summary_csv(const ScaleSummary& summary);

}  // namespace ccsig::mlab

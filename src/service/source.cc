#include "service/source.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "runtime/parse_error.h"

namespace ccsig::service {

const char* to_string(SourceState s) {
  switch (s) {
    case SourceState::kOpening: return "opening";
    case SourceState::kActive: return "active";
    case SourceState::kWaiting: return "waiting";
    case SourceState::kBackoff: return "backoff";
    case SourceState::kQuarantined: return "quarantined";
    case SourceState::kFinished: return "finished";
  }
  return "?";
}

CaptureSource::CaptureSource(SourceConfig cfg, runtime::RetryPolicy retry,
                             const runtime::FaultPlan* faults,
                             std::uint64_t fault_key,
                             runtime::EventLog* events)
    : cfg_(std::move(cfg)),
      retry_(std::move(retry)),
      faults_(faults),
      fault_key_(fault_key),
      events_(events) {
  if (cfg_.fifo && cfg_.spool_path.empty()) {
    cfg_.spool_path = cfg_.path + ".spool";
  }
}

CaptureSource::~CaptureSource() {
  if (fifo_fd_ >= 0) ::close(fifo_fd_);
  if (spool_fd_ >= 0) ::close(spool_fd_);
}

void CaptureSource::open_ingest() {
  const std::string& capture = cfg_.fifo ? cfg_.spool_path : cfg_.path;
  struct stat st;
  if (::stat(capture.c_str(), &st) != 0) {
    // Not there (yet): a daemon source may be created after startup or
    // vanish briefly during rotation. Retryable, not capture damage.
    throw runtime::TransientError("source not present: " + capture);
  }
  const bool tail = !cfg_.oneshot;
  ingest_ = std::make_unique<stream::BatchedIngest>(
      capture, pcap::CursorMode::kStream, tail);
  open_ino_ = static_cast<std::uint64_t>(st.st_ino);
  if (events_) {
    events_->log("source_open", {{"source", cfg_.path},
                                 {"mode", cfg_.fifo ? "fifo"
                                          : tail    ? "tail"
                                                    : "oneshot"}});
  }
}

void CaptureSource::pump_fifo() {
  if (spool_fd_ < 0) {
    spool_fd_ = ::open(cfg_.spool_path.c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (spool_fd_ < 0) {
      throw std::runtime_error("fifo spool: cannot create " +
                               cfg_.spool_path + ": " + std::strerror(errno));
    }
  }
  if (fifo_fd_ < 0) {
    // O_NONBLOCK makes the open succeed with no writer attached yet.
    fifo_fd_ = ::open(cfg_.path.c_str(), O_RDONLY | O_NONBLOCK);
    if (fifo_fd_ < 0) {
      if (errno == ENOENT) {
        throw runtime::TransientError("fifo not present: " + cfg_.path);
      }
      throw std::runtime_error("fifo: cannot open " + cfg_.path + ": " +
                               std::strerror(errno));
    }
  }
  if (pipe_buf_.empty()) pipe_buf_.resize(64 * 1024);
  for (;;) {
    const ssize_t n = ::read(fifo_fd_, pipe_buf_.data(), pipe_buf_.size());
    if (n > 0) {
      const std::uint8_t* p = pipe_buf_.data();
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        const ssize_t wrote = ::write(spool_fd_, p, left);
        if (wrote < 0) {
          if (errno == EINTR) continue;
          throw std::runtime_error("fifo spool: write failed: " +
                                   std::string(std::strerror(errno)));
        }
        p += wrote;
        left -= static_cast<std::size_t>(wrote);
      }
      continue;
    }
    if (n == 0) break;  // every writer closed; a future writer may reopen
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // pipe drained
    if (errno == EINTR) continue;
    throw runtime::TransientError("fifo read failed: " +
                                  std::string(std::strerror(errno)));
  }
}

void CaptureSource::check_rotation() {
  struct stat st;
  if (::stat(cfg_.path.c_str(), &st) != 0) {
    // The tailed file vanished mid-run; treat as transient and let the
    // retry path reopen whatever replaces it.
    ingest_.reset();
    throw runtime::TransientError("tailed source vanished: " + cfg_.path);
  }
  const bool rotated =
      static_cast<std::uint64_t>(st.st_ino) != open_ino_ ||
      static_cast<std::uint64_t>(st.st_size) < ingest_->cursor().offset();
  if (rotated) {
    if (events_) events_->log("source_rotated", {{"source", cfg_.path}});
    ingest_.reset();
    open_ingest();
  }
}

void CaptureSource::quarantine(const std::string& reason) {
  state_ = SourceState::kQuarantined;
  ingest_.reset();
  if (events_) {
    events_->log("source_quarantined",
                 {{"source", cfg_.path},
                  {"attempts", std::to_string(attempt_)},
                  {"reason", reason}});
  }
}

void CaptureSource::enter_backoff(const std::string& reason) {
  const auto pause = retry_.backoff_for(attempt_);
  ++attempt_;
  backoff_until_ = std::chrono::steady_clock::now() + pause;
  state_ = SourceState::kBackoff;
  if (events_) {
    events_->log("source_backoff",
                 {{"source", cfg_.path},
                  {"attempt", std::to_string(attempt_)},
                  {"backoff_ms", std::to_string(pause.count())},
                  {"reason", reason}});
  }
}

std::size_t CaptureSource::poll(std::vector<stream::RoutedRecord>& out,
                                std::size_t max_records) {
  if (terminal()) return 0;
  if (state_ == SourceState::kBackoff &&
      std::chrono::steady_clock::now() < backoff_until_) {
    return 0;
  }
  try {
    // Deterministic fault injection point: stalls model slow reads,
    // TransientError models recoverable I/O hiccups, runtime_error models
    // unrecoverable source damage.
    if (faults_ && faults_->armed()) faults_->maybe_fault(fault_key_, attempt_);
    if (cfg_.fifo) pump_fifo();
    if (ingest_ && !cfg_.fifo && !cfg_.oneshot) check_rotation();
    if (!ingest_) open_ingest();
    const std::size_t got = ingest_->fill(out, max_records);
    if (ingest_->error()) {
      // Capture damage: fill() delivered the clean prefix and no amount of
      // retrying re-reads the same bad bytes into good ones.
      quarantine(ingest_->error()->reason);
      delivered_ += got;
      return got;
    }
    attempt_ = 1;  // a clean poll refills the whole retry budget
    if (got == 0) {
      if (ingest_->exhausted()) {
        state_ = SourceState::kFinished;
        if (events_) {
          events_->log("source_eof",
                       {{"source", cfg_.path},
                        {"records", std::to_string(delivered_)}});
        }
      } else {
        state_ = SourceState::kWaiting;  // tail caught up with the writer
      }
    } else {
      state_ = SourceState::kActive;
      delivered_ += got;
    }
    return got;
  } catch (const std::exception& e) {
    if (retry_.classify_transient(e) && attempt_ < retry_.max_attempts) {
      enter_backoff(e.what());
    } else {
      quarantine(e.what());
    }
    return 0;
  }
}

}  // namespace ccsig::service

#include "service/service.h"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runtime/shutdown.h"

namespace ccsig::service {

ClassificationService::ClassificationService(ServiceConfig cfg)
    : cfg_(std::move(cfg)) {
  auto& reg = obs::MetricsRegistry::global();
  records_ctr_ = reg.counter("service.records_ingested");
  verdicts_ctr_ = reg.counter("service.verdicts_emitted");
  dropped_ctr_ = reg.counter("service.shed_dropped_records");
  evicts_ctr_ = reg.counter("service.shed_forced_evicts");
  pauses_ctr_ = reg.counter("service.shed_source_pauses");
  quarantined_ctr_ = reg.counter("service.sources_quarantined");
  reloads_ctr_ = reg.counter("service.model_reloads");
  reload_rejected_ctr_ = reg.counter("service.model_reloads_rejected");
  pressure_g_ = reg.gauge("service.pressure");
  subscribers_g_ = reg.gauge("service.subscribers");
}

bool ClassificationService::stopping() const {
  return runtime::ShutdownLatch::drain_requested() ||
         stop_.load(std::memory_order_acquire);
}

double ClassificationService::pressure(
    const stream::StreamEngine& engine) const {
  return cfg_.pressure_probe ? cfg_.pressure_probe() : engine.pressure();
}

int ClassificationService::setup() {
  try {
    if (cfg_.verdict_log_path.empty()) {
      throw std::runtime_error("verdict log path is required");
    }
    classifier_ = cfg_.model_path.empty()
                      ? CongestionClassifier::pretrained()
                      : CongestionClassifier::load(cfg_.model_path);
    if (!classifier_.trained()) {
      throw std::runtime_error("model is untrained: " + cfg_.model_path);
    }
    // Always recover first: over a log a SIGKILLed daemon tore, this
    // truncates the partial tail frame and tells us how many verdicts the
    // previous incarnation already made durable — the replay skips exactly
    // that many emissions. Over a fresh or clean log it is a no-op.
    resume_skip_ = VerdictLog::recover(cfg_.verdict_log_path);
    log_ = std::make_unique<VerdictLog>(cfg_.verdict_log_path);
    if (!cfg_.replay_session_path.empty()) {
      replay_ = std::make_unique<SessionReader>(cfg_.replay_session_path);
    }
    if (!cfg_.record_session_path.empty()) {
      recorder_ = std::make_unique<SessionWriter>(cfg_.record_session_path);
    }
    if (!cfg_.socket_path.empty()) {
      server_ = std::make_unique<LineServer>(cfg_.socket_path);
    }
  } catch (const std::exception& e) {
    if (cfg_.events) cfg_.events->log("startup_failed", {{"error", e.what()}});
    return kExitInput;
  }
  if (!replay_) {
    std::uint64_t key = 0;
    for (const auto& sc : cfg_.sources) {
      sources_.push_back(std::make_unique<CaptureSource>(
          sc, cfg_.source_retry, cfg_.faults, key++, cfg_.events));
      last_states_.push_back(sources_.back()->state());
    }
  }
  return kExitOk;
}

int ClassificationService::run() {
  const int rc = setup();
  if (rc != kExitOk) return rc;

  stream::StreamConfig scfg = cfg_.stream;
  scfg.ordered_drain = true;
  // The engine's own analyzer only matters for the features it computes;
  // the service re-classifies every emission with the current (possibly
  // hot-reloaded) model on the control thread, so a reload never races the
  // workers.
  FlowAnalyzer analyzer{classifier_};
  stream::StreamEngine engine(analyzer, scfg);

  start_ = std::chrono::steady_clock::now();
  last_metrics_ = start_;
  if (cfg_.events) {
    cfg_.events->log("started",
                     {{"mode", replay_ ? "replay" : "live"},
                      {"sources", std::to_string(sources_.size())},
                      {"jobs", std::to_string(scfg.jobs)},
                      {"resume_skip", std::to_string(resume_skip_)}});
  }
  try {
    if (replay_) {
      run_replay(engine);
    } else {
      run_live(engine);
    }
    drain(engine);
  } catch (const std::exception& e) {
    if (cfg_.events) {
      cfg_.events->log("internal_error", {{"error", e.what()}});
    }
    return kExitInternal;
  }
  return kExitOk;
}

void ClassificationService::run_live(stream::StreamEngine& engine) {
  std::vector<stream::RoutedRecord> batch;
  std::vector<stream::ReadyReport> ready;
  batch.reserve(cfg_.poll_records);

  for (;;) {
    if (stopping()) break;
    if (runtime::ShutdownLatch::take_reload() ||
        reload_.exchange(false, std::memory_order_acq_rel)) {
      do_reload();
    }
    if (server_) server_->accept_pending();

    bool any = false;
    for (auto& src : sources_) {
      // Re-evaluate the ladder before every source: pushes from the
      // previous source may have raised the pressure past the next rung.
      const double p = pressure(engine);
      const ShedAction act = shed_action(cfg_.shed, p);
      if (act != last_action_) {
        if (cfg_.events) {
          char pbuf[32];
          std::snprintf(pbuf, sizeof(pbuf), "%.3f", p);
          cfg_.events->log(
              "shed", {{"action", to_string(act)}, {"pressure", pbuf}});
        }
        last_action_ = act;
      }
      if (act == ShedAction::kPauseSources) {
        ++stats_.shed_source_pauses;
        pauses_ctr_.inc();
        break;  // stop reading entirely this iteration
      }
      if (act == ShedAction::kForceEvict) {
        const std::size_t sh = engine.push_force_evict(evict_rr_++);
        if (recorder_) recorder_->evict(static_cast<std::uint16_t>(sh));
        ++stats_.shed_forced_evicts;
        evicts_ctr_.inc();
      }
      batch.clear();
      const std::size_t got = src->poll(batch, cfg_.poll_records);
      if (got == 0) continue;
      any = true;
      if (act == ShedAction::kDropNewest || act == ShedAction::kForceEvict) {
        // Shed BEFORE recording: dropped records are not part of the
        // session, exactly as if they were never captured, so a replay
        // reproduces the live log.
        stats_.shed_dropped_records += got;
        dropped_ctr_.add(got);
        continue;
      }
      if (recorder_) {
        for (const auto& r : batch) recorder_->record(r.w);
      }
      engine.push_batch(batch);
      stats_.records_ingested += got;
      records_ctr_.add(got);
    }
    note_source_transitions();

    ready.clear();
    engine.drain_ready(ready);
    emit(ready);
    maybe_metrics_line(engine);

    if (cfg_.oneshot && !any) {
      bool all_terminal = true;
      for (const auto& src : sources_) {
        if (!src->terminal()) {
          all_terminal = false;
          break;
        }
      }
      if (all_terminal) break;
    }
    if (!any && ready.empty() && cfg_.idle_sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(cfg_.idle_sleep_ms));
    }
  }
}

void ClassificationService::run_replay(stream::StreamEngine& engine) {
  std::vector<stream::RoutedRecord> batch;
  std::vector<stream::ReadyReport> ready;
  batch.reserve(cfg_.poll_records);

  auto flush_batch = [&] {
    if (batch.empty()) return;
    engine.push_batch(batch);
    stats_.records_ingested += batch.size();
    records_ctr_.add(batch.size());
    batch.clear();
  };

  bool done = false;
  while (!done) {
    if (stopping()) break;
    if (server_) server_->accept_pending();

    batch.clear();
    while (batch.size() < cfg_.poll_records) {
      const std::optional<SessionEntry> e = replay_->next();
      if (!e) {
        done = true;
        break;
      }
      if (e->kind ==
          static_cast<std::uint8_t>(stream::RoutedKind::kEvictOldest)) {
        // The evict command sat between records in the live push order;
        // flush what precedes it so the replayed position is identical.
        flush_batch();
        engine.push_force_evict(e->shard);
        ++stats_.shed_forced_evicts;
        evicts_ctr_.inc();
      } else {
        batch.push_back(stream::route_record(e->w));
      }
    }
    flush_batch();

    ready.clear();
    engine.drain_ready(ready);
    emit(ready);
    maybe_metrics_line(engine);

    if (cfg_.replay_pace_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cfg_.replay_pace_us));
    }
  }
}

void ClassificationService::emit(
    const std::vector<stream::ReadyReport>& ready) {
  for (const auto& rr : ready) {
    FlowReport r = rr.report;
    if (r.features) r.classification = classifier_.classify(*r.features);
    const std::string line = FlowAnalyzer::render(r);
    if (resume_skip_ > 0) {
      // The previous incarnation already made this verdict durable.
      --resume_skip_;
      ++stats_.verdicts_skipped_resume;
      continue;
    }
    log_->append(line);
    ++stats_.verdicts_emitted;
    verdicts_ctr_.inc();
    if (server_) server_->broadcast(line);
  }
}

void ClassificationService::drain(stream::StreamEngine& engine) {
  std::vector<stream::ReadyReport> ready;
  engine.finish_ordered(ready);
  emit(ready);
  if (recorder_) recorder_->flush();
  log_->sync();
  if (cfg_.events) {
    cfg_.events->log(
        "drained",
        {{"records", std::to_string(stats_.records_ingested)},
         {"verdicts", std::to_string(stats_.verdicts_emitted)},
         {"resumed", std::to_string(stats_.verdicts_skipped_resume)}});
  }
}

void ClassificationService::do_reload() {
  if (cfg_.model_path.empty()) {
    ++stats_.model_reloads_rejected;
    reload_rejected_ctr_.inc();
    if (cfg_.events) {
      cfg_.events->log("model_reload_rejected",
                       {{"reason", "no model path configured"}});
    }
    return;
  }
  try {
    CongestionClassifier next = CongestionClassifier::load(cfg_.model_path);
    if (!next.trained()) {
      throw std::runtime_error("model file deserialized to an untrained tree");
    }
    classifier_ = std::move(next);  // atomic w.r.t. emission: same thread
    ++stats_.model_reloads;
    reloads_ctr_.inc();
    if (cfg_.events) {
      cfg_.events->log("model_reloaded", {{"path", cfg_.model_path}});
    }
  } catch (const std::exception& e) {
    // Keep serving the old model — a bad file on disk must never take the
    // classification path down.
    ++stats_.model_reloads_rejected;
    reload_rejected_ctr_.inc();
    if (cfg_.events) {
      cfg_.events->log("model_reload_rejected",
                       {{"path", cfg_.model_path}, {"reason", e.what()}});
    }
  }
}

void ClassificationService::note_source_transitions() {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const SourceState s = sources_[i]->state();
    if (s == last_states_[i]) continue;
    if (s == SourceState::kQuarantined) {
      ++stats_.sources_quarantined;
      quarantined_ctr_.inc();
    }
    last_states_[i] = s;
  }
}

void ClassificationService::maybe_metrics_line(
    const stream::StreamEngine& engine) {
  if (cfg_.metrics_interval_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_metrics_ <
      std::chrono::milliseconds(cfg_.metrics_interval_ms)) {
    return;
  }
  last_metrics_ = now;

  const double p = pressure(engine);
  pressure_g_.set(p);
  subscribers_g_.set(
      static_cast<double>(server_ ? server_->subscribers() : 0));
  char pbuf[32];
  std::snprintf(pbuf, sizeof(pbuf), "%.3f", p);

  std::string line = "metrics";
  const auto field = [&line](std::string_view k, std::uint64_t v) {
    line.append(" ").append(k).append("=").append(std::to_string(v));
  };
  field("service.records_ingested", stats_.records_ingested);
  field("service.verdicts_emitted", stats_.verdicts_emitted);
  field("service.shed_dropped_records", stats_.shed_dropped_records);
  field("service.shed_forced_evicts", stats_.shed_forced_evicts);
  field("service.shed_source_pauses", stats_.shed_source_pauses);
  field("service.sources_quarantined", stats_.sources_quarantined);
  field("service.model_reloads", stats_.model_reloads);
  field("service.model_reloads_rejected", stats_.model_reloads_rejected);
  line.append(" service.pressure=").append(pbuf);
  field("service.subscribers", server_ ? server_->subscribers() : 0);
  // The engine's live stream.* counters (empty under CCSIG_OBS_OFF; the
  // service.* fields above come from plain tallies and always appear).
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name.rfind("stream.", 0) == 0) field(c.name, c.value);
  }

  ++stats_.metrics_lines;
  if (server_) server_->broadcast(line);
  if (cfg_.events) {
    cfg_.events->log("metrics",
                     {{"records", std::to_string(stats_.records_ingested)},
                      {"verdicts", std::to_string(stats_.verdicts_emitted)},
                      {"pressure", pbuf}});
  }
}

}  // namespace ccsig::service

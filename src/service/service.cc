#include "service/service.h"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/prometheus.h"
#include "runtime/shutdown.h"

namespace ccsig::service {

ClassificationService::ClassificationService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      window_(obs::WindowConfig{cfg_.window_slots}) {
  auto& reg = obs::MetricsRegistry::global();
  records_ctr_ = reg.counter("service.records_ingested");
  verdicts_ctr_ = reg.counter("service.verdicts_emitted");
  dropped_ctr_ = reg.counter("service.shed_dropped_records");
  evicts_ctr_ = reg.counter("service.shed_forced_evicts");
  pauses_ctr_ = reg.counter("service.shed_source_pauses");
  quarantined_ctr_ = reg.counter("service.sources_quarantined");
  reloads_ctr_ = reg.counter("service.model_reloads");
  reload_rejected_ctr_ = reg.counter("service.model_reloads_rejected");
  admin_queries_ctr_ = reg.counter("service.admin_queries");
  sub_dropped_ctr_ = reg.counter("service.subscriber_lines_dropped");
  sub_disc_ctr_ = reg.counter("service.subscriber_disconnects");
  pressure_g_ = reg.gauge("service.pressure");
  subscribers_g_ = reg.gauge("service.subscribers");
  resident_g_ = reg.gauge("service.flows_resident");
  uptime_g_ = reg.gauge("service.uptime_s");
  latency_.init();
}

std::int64_t ClassificationService::clock_ns() const {
  if (cfg_.clock) return cfg_.clock();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ClassificationService::stopping() const {
  return runtime::ShutdownLatch::drain_requested() ||
         stop_.load(std::memory_order_acquire);
}

double ClassificationService::pressure(
    const stream::StreamEngine& engine) const {
  return cfg_.pressure_probe ? cfg_.pressure_probe() : engine.pressure();
}

int ClassificationService::setup() {
  try {
    if (cfg_.verdict_log_path.empty()) {
      throw std::runtime_error("verdict log path is required");
    }
    classifier_ = cfg_.model_path.empty()
                      ? CongestionClassifier::pretrained()
                      : CongestionClassifier::load(cfg_.model_path);
    if (!classifier_.trained()) {
      throw std::runtime_error("model is untrained: " + cfg_.model_path);
    }
    // Always recover first: over a log a SIGKILLed daemon tore, this
    // truncates the partial tail frame and tells us how many verdicts the
    // previous incarnation already made durable — the replay skips exactly
    // that many emissions. Over a fresh or clean log it is a no-op.
    resume_skip_ = VerdictLog::recover(cfg_.verdict_log_path);
    recovered_ = resume_skip_;
    log_ = std::make_unique<VerdictLog>(cfg_.verdict_log_path);
    if (!cfg_.replay_session_path.empty()) {
      replay_ = std::make_unique<SessionReader>(cfg_.replay_session_path);
    }
    if (!cfg_.record_session_path.empty()) {
      recorder_ = std::make_unique<SessionWriter>(cfg_.record_session_path);
    }
    if (!cfg_.socket_path.empty()) {
      server_ = std::make_unique<LineServer>(cfg_.socket_path);
    }
    if (!cfg_.admin_socket_path.empty()) {
      admin_ = std::make_unique<LineServer>(
          cfg_.admin_socket_path,
          [this](std::string_view q) { return admin_response(q); });
    }
  } catch (const std::exception& e) {
    if (cfg_.events) cfg_.events->log("startup_failed", {{"error", e.what()}});
    return kExitInput;
  }
  if (!replay_) {
    std::uint64_t key = 0;
    for (const auto& sc : cfg_.sources) {
      sources_.push_back(std::make_unique<CaptureSource>(
          sc, cfg_.source_retry, cfg_.faults, key++, cfg_.events));
      last_states_.push_back(sources_.back()->state());
    }
  }
  return kExitOk;
}

int ClassificationService::run() {
  const int rc = setup();
  if (rc != kExitOk) return rc;

  stream::StreamConfig scfg = cfg_.stream;
  scfg.ordered_drain = true;
  // The engine's own analyzer only matters for the features it computes;
  // the service re-classifies every emission with the current (possibly
  // hot-reloaded) model on the control thread, so a reload never races the
  // workers.
  FlowAnalyzer analyzer{classifier_};
  stream::StreamEngine engine(analyzer, scfg);

  start_ = std::chrono::steady_clock::now();
  last_metrics_ = start_;
  engine_ = &engine;
  start_ns_ = clock_ns();
  last_window_ns_ = 0;
  if (cfg_.events) {
    cfg_.events->log("started",
                     {{"mode", replay_ ? "replay" : "live"},
                      {"sources", std::to_string(sources_.size())},
                      {"jobs", std::to_string(scfg.jobs)},
                      {"resume_skip", std::to_string(resume_skip_)}});
  }
  try {
    if (replay_) {
      run_replay(engine);
    } else {
      run_live(engine);
    }
    drain(engine);
  } catch (const std::exception& e) {
    engine_ = nullptr;
    if (cfg_.events) {
      cfg_.events->log("internal_error", {{"error", e.what()}});
    }
    return kExitInternal;
  }
  engine_ = nullptr;
  return kExitOk;
}

void ClassificationService::run_live(stream::StreamEngine& engine) {
  std::vector<stream::RoutedRecord> batch;
  std::vector<stream::ReadyReport> ready;
  batch.reserve(cfg_.poll_records);

  for (;;) {
    if (stopping()) break;
    if (runtime::ShutdownLatch::take_reload() ||
        reload_.exchange(false, std::memory_order_acq_rel)) {
      do_reload();
    }
    if (server_) server_->accept_pending();
    if (admin_) {
      admin_->accept_pending();
      admin_->serve_pending();
    }

    bool any = false;
    for (auto& src : sources_) {
      // Re-evaluate the ladder before every source: pushes from the
      // previous source may have raised the pressure past the next rung.
      const double p = pressure(engine);
      const ShedAction act = shed_action(cfg_.shed, p);
      if (act != last_action_) {
        if (cfg_.events) {
          char pbuf[32];
          std::snprintf(pbuf, sizeof(pbuf), "%.3f", p);
          cfg_.events->log(
              "shed", {{"action", to_string(act)}, {"pressure", pbuf}});
        }
        last_action_ = act;
      }
      if (act == ShedAction::kPauseSources) {
        ++stats_.shed_source_pauses;
        pauses_ctr_.inc();
        break;  // stop reading entirely this iteration
      }
      if (act == ShedAction::kForceEvict) {
        const std::size_t sh = engine.push_force_evict(evict_rr_++);
        if (recorder_) recorder_->evict(static_cast<std::uint16_t>(sh));
        ++stats_.shed_forced_evicts;
        evicts_ctr_.inc();
      }
      batch.clear();
      const std::size_t got = src->poll(batch, cfg_.poll_records);
      if (got == 0) continue;
      any = true;
      if (act == ShedAction::kDropNewest || act == ShedAction::kForceEvict) {
        // Shed BEFORE recording: dropped records are not part of the
        // session, exactly as if they were never captured, so a replay
        // reproduces the live log.
        stats_.shed_dropped_records += got;
        dropped_ctr_.add(got);
        continue;
      }
      if (recorder_) {
        for (const auto& r : batch) recorder_->record(r.w);
      }
      // Stamp the batch with the service clock on its way into the
      // engine: the stamp rides each RoutedRecord through the shard and
      // comes back on the emission it triggers, where emit() turns it
      // into the ingest->verdict latency histogram. The first stamp also
      // anchors the capture clock's epoch.
      const std::int64_t ingest_now = clock_ns();
      latency_.on_ingest(ingest_now, batch.front().w.time);
      for (auto& r : batch) r.ingest_ns = ingest_now;
      engine.push_batch(batch);
      stats_.records_ingested += got;
      records_ctr_.add(got);
    }
    note_source_transitions();

    ready.clear();
    engine.drain_ready(ready);
    emit(ready);
    maybe_metrics_line(engine);
    maybe_window_tick(engine);

    if (cfg_.oneshot && !any) {
      bool all_terminal = true;
      for (const auto& src : sources_) {
        if (!src->terminal()) {
          all_terminal = false;
          break;
        }
      }
      if (all_terminal) break;
    }
    if (!any && ready.empty() && cfg_.idle_sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(cfg_.idle_sleep_ms));
    }
  }
}

void ClassificationService::run_replay(stream::StreamEngine& engine) {
  std::vector<stream::RoutedRecord> batch;
  std::vector<stream::ReadyReport> ready;
  batch.reserve(cfg_.poll_records);

  auto flush_batch = [&] {
    if (batch.empty()) return;
    const std::int64_t ingest_now = clock_ns();
    latency_.on_ingest(ingest_now, batch.front().w.time);
    for (auto& r : batch) r.ingest_ns = ingest_now;
    engine.push_batch(batch);
    stats_.records_ingested += batch.size();
    records_ctr_.add(batch.size());
    batch.clear();
  };

  bool done = false;
  while (!done) {
    if (stopping()) break;
    if (server_) server_->accept_pending();
    if (admin_) {
      admin_->accept_pending();
      admin_->serve_pending();
    }

    batch.clear();
    while (batch.size() < cfg_.poll_records) {
      const std::optional<SessionEntry> e = replay_->next();
      if (!e) {
        done = true;
        break;
      }
      if (e->kind ==
          static_cast<std::uint8_t>(stream::RoutedKind::kEvictOldest)) {
        // The evict command sat between records in the live push order;
        // flush what precedes it so the replayed position is identical.
        flush_batch();
        engine.push_force_evict(e->shard);
        ++stats_.shed_forced_evicts;
        evicts_ctr_.inc();
      } else {
        batch.push_back(stream::route_record(e->w));
      }
    }
    flush_batch();

    ready.clear();
    engine.drain_ready(ready);
    emit(ready);
    maybe_metrics_line(engine);
    maybe_window_tick(engine);

    if (cfg_.replay_pace_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cfg_.replay_pace_us));
    }
  }
}

void ClassificationService::emit(
    const std::vector<stream::ReadyReport>& ready) {
  if (ready.empty()) return;
  const std::int64_t now_ns = clock_ns();
  for (const auto& rr : ready) {
    FlowReport r = rr.report;
    if (r.features) r.classification = classifier_.classify(*r.features);
    const std::string line = FlowAnalyzer::render(r);
    if (resume_skip_ > 0) {
      // The previous incarnation already made this verdict durable.
      --resume_skip_;
      ++stats_.verdicts_skipped_resume;
      continue;
    }
    // Latency is recorded only for verdicts this incarnation actually
    // emits — resume skips replay past work and would poison the SLO.
    latency_.on_verdict(now_ns, rr.trigger_ingest_ns, rr.trigger_time);
    log_->append(line);
    ++stats_.verdicts_emitted;
    verdicts_ctr_.inc();
    if (server_) server_->broadcast(line);
  }
}

void ClassificationService::drain(stream::StreamEngine& engine) {
  std::vector<stream::ReadyReport> ready;
  engine.finish_ordered(ready);
  emit(ready);
  if (recorder_) recorder_->flush();
  log_->sync();
  sync_subscriber_counters();
  // One last serve so a query raced against shutdown still gets its
  // answer before the sockets close.
  if (admin_) {
    admin_->accept_pending();
    admin_->serve_pending();
  }
  if (cfg_.events) {
    cfg_.events->log(
        "drained",
        {{"records", std::to_string(stats_.records_ingested)},
         {"verdicts", std::to_string(stats_.verdicts_emitted)},
         {"resumed", std::to_string(stats_.verdicts_skipped_resume)}});
  }
}

void ClassificationService::do_reload() {
  if (cfg_.model_path.empty()) {
    ++stats_.model_reloads_rejected;
    reload_rejected_ctr_.inc();
    if (cfg_.events) {
      cfg_.events->log("model_reload_rejected",
                       {{"reason", "no model path configured"}});
    }
    return;
  }
  try {
    CongestionClassifier next = CongestionClassifier::load(cfg_.model_path);
    if (!next.trained()) {
      throw std::runtime_error("model file deserialized to an untrained tree");
    }
    classifier_ = std::move(next);  // atomic w.r.t. emission: same thread
    ++stats_.model_reloads;
    reloads_ctr_.inc();
    if (cfg_.events) {
      cfg_.events->log("model_reloaded", {{"path", cfg_.model_path}});
    }
  } catch (const std::exception& e) {
    // Keep serving the old model — a bad file on disk must never take the
    // classification path down.
    ++stats_.model_reloads_rejected;
    reload_rejected_ctr_.inc();
    if (cfg_.events) {
      cfg_.events->log("model_reload_rejected",
                       {{"path", cfg_.model_path}, {"reason", e.what()}});
    }
  }
}

void ClassificationService::note_source_transitions() {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const SourceState s = sources_[i]->state();
    if (s == last_states_[i]) continue;
    if (s == SourceState::kQuarantined) {
      ++stats_.sources_quarantined;
      quarantined_ctr_.inc();
    }
    last_states_[i] = s;
  }
}

void ClassificationService::maybe_metrics_line(
    const stream::StreamEngine& engine) {
  if (cfg_.metrics_interval_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_metrics_ <
      std::chrono::milliseconds(cfg_.metrics_interval_ms)) {
    return;
  }
  last_metrics_ = now;

  const double p = pressure(engine);
  pressure_g_.set(p);
  subscribers_g_.set(
      static_cast<double>(server_ ? server_->subscribers() : 0));
  sync_subscriber_counters();
  char pbuf[32];
  std::snprintf(pbuf, sizeof(pbuf), "%.3f", p);

  std::string line = "metrics";
  const auto field = [&line](std::string_view k, std::uint64_t v) {
    line.append(" ").append(k).append("=").append(std::to_string(v));
  };
  field("service.records_ingested", stats_.records_ingested);
  field("service.verdicts_emitted", stats_.verdicts_emitted);
  field("service.shed_dropped_records", stats_.shed_dropped_records);
  field("service.shed_forced_evicts", stats_.shed_forced_evicts);
  field("service.shed_source_pauses", stats_.shed_source_pauses);
  field("service.sources_quarantined", stats_.sources_quarantined);
  field("service.model_reloads", stats_.model_reloads);
  field("service.model_reloads_rejected", stats_.model_reloads_rejected);
  line.append(" service.pressure=").append(pbuf);
  field("service.subscribers", server_ ? server_->subscribers() : 0);
  field("service.subscriber_lines_dropped", stats_.subscriber_lines_dropped);
  field("service.subscriber_disconnects", stats_.subscriber_disconnects);
  // The engine's live stream.* counters (empty under CCSIG_OBS_OFF; the
  // service.* fields above come from plain tallies and always appear).
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name.rfind("stream.", 0) == 0) field(c.name, c.value);
  }

  ++stats_.metrics_lines;
  if (server_) server_->broadcast(line);
  if (cfg_.events) {
    cfg_.events->log("metrics",
                     {{"records", std::to_string(stats_.records_ingested)},
                      {"verdicts", std::to_string(stats_.verdicts_emitted)},
                      {"pressure", pbuf}});
  }
}

void ClassificationService::sync_subscriber_counters() {
  if (!server_) return;
  const std::uint64_t dropped = server_->lines_dropped();
  const std::uint64_t disc = server_->disconnects();
  if (dropped > stats_.subscriber_lines_dropped) {
    sub_dropped_ctr_.add(dropped - stats_.subscriber_lines_dropped);
    stats_.subscriber_lines_dropped = dropped;
  }
  if (disc > stats_.subscriber_disconnects) {
    sub_disc_ctr_.add(disc - stats_.subscriber_disconnects);
    stats_.subscriber_disconnects = disc;
  }
}

void ClassificationService::maybe_window_tick(
    const stream::StreamEngine& engine) {
  if (!admin_ || cfg_.window_tick_ms <= 0) return;
  const std::int64_t now = clock_ns();
  if (last_window_ns_ != 0 &&
      now - last_window_ns_ <
          static_cast<std::int64_t>(cfg_.window_tick_ms) * 1000000) {
    return;
  }
  last_window_ns_ = now;
  // Refresh the gauges the snapshot will carry into the window (varz
  // reports the latest gauge values alongside the windowed rates).
  sync_subscriber_counters();
  pressure_g_.set(pressure(engine));
  subscribers_g_.set(
      static_cast<double>(server_ ? server_->subscribers() : 0));
  resident_g_.set(static_cast<double>(engine.resident_flows()));
  uptime_g_.set(static_cast<double>(now - start_ns_) / 1e9);
  window_.tick(now, obs::MetricsRegistry::global().snapshot());
  ++stats_.window_ticks;
}

std::string ClassificationService::admin_response(std::string_view query) {
  ++stats_.admin_queries;
  admin_queries_ctr_.inc();
  if (query == "healthz") return health_line();
  if (query == "statusz") return statusz_text();
  if (query == "varz") return window_.to_json();
  if (query == "metricsz") {
    return obs::prometheus_text(obs::MetricsRegistry::global().snapshot());
  }
  return std::string("ERR unknown query: ").append(query);
}

std::string ClassificationService::health_line() const {
  // Most-acute state wins: active shedding, then degraded sources.
  if (last_action_ != ShedAction::kNone) {
    return std::string("shedding reason=shed_rung rung=") +
           to_string(last_action_);
  }
  std::size_t quarantined = 0, backoff = 0;
  for (const auto& src : sources_) {
    if (src->state() == SourceState::kQuarantined) {
      ++quarantined;
    } else if (src->state() == SourceState::kBackoff) {
      ++backoff;
    }
  }
  if (quarantined > 0) {
    return "degraded reason=sources_quarantined count=" +
           std::to_string(quarantined);
  }
  if (backoff > 0) {
    return "degraded reason=sources_backoff count=" +
           std::to_string(backoff);
  }
  return "ok";
}

std::string ClassificationService::statusz_text() const {
  std::string out;
  const auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  char fbuf[32];
  const std::int64_t now = clock_ns();
  std::snprintf(fbuf, sizeof(fbuf), "%.3f",
                static_cast<double>(now - start_ns_) / 1e9);
  line(std::string("service mode=") + (replay_ ? "replay" : "live") +
       " uptime_s=" + fbuf);
  line("health " + health_line());
  std::snprintf(fbuf, sizeof(fbuf), "%.3f",
                engine_ ? pressure(*engine_) : 0.0);
  line(std::string("shed rung=") + to_string(last_action_) + " pressure=" +
       fbuf + " dropped_records=" + u64(stats_.shed_dropped_records) +
       " forced_evicts=" + u64(stats_.shed_forced_evicts) +
       " source_pauses=" + u64(stats_.shed_source_pauses));
  line("engine shards=" +
       u64(engine_ ? engine_->shard_count() : 0) + " flows_resident=" +
       u64(engine_ ? engine_->resident_flows() : 0) +
       " records_ingested=" + u64(stats_.records_ingested));
  line("log path=" + cfg_.verdict_log_path + " position=" +
       u64(recovered_ + (log_ ? log_->appended() : 0)) + " recovered=" +
       u64(recovered_) + " resume_skip_remaining=" + u64(resume_skip_));
  line("verdicts emitted=" + u64(stats_.verdicts_emitted) +
       " skipped_resume=" + u64(stats_.verdicts_skipped_resume) +
       " latency_recorded=" + u64(latency_.recorded()) +
       " latency_untracked=" + u64(latency_.untracked()));
  line("window ticks=" + u64(stats_.window_ticks) + " slots=" +
       u64(window_.slots()));
  line("admin queries=" + u64(stats_.admin_queries));
  line("sources count=" + u64(sources_.size()));
  for (const auto& src : sources_) {
    line("source name=" + src->name() + " state=" +
         to_string(src->state()) + " attempts=" +
         std::to_string(src->attempts()) + " delivered=" +
         u64(src->records_delivered()));
  }
  line("subscribers count=" + u64(server_ ? server_->subscribers() : 0) +
       " lines_dropped=" +
       u64(server_ ? server_->lines_dropped()
                   : stats_.subscriber_lines_dropped) +
       " disconnects=" +
       u64(server_ ? server_->disconnects()
                   : stats_.subscriber_disconnects));
  if (server_) {
    for (const auto& sub : server_->subscriber_stats()) {
      line("subscriber id=" + u64(sub.id) + " lines_dropped=" +
           u64(sub.lines_dropped));
    }
  }
  return out;
}

}  // namespace ccsig::service

// Crash-safe append-only verdict log with length+CRC framing.
//
// ccsigd's output contract has two halves. Graceful drain (SIGTERM) ends
// with flush() + sync(), so a cleanly stopped daemon's log is complete.
// SIGKILL can land mid-write, leaving a *torn tail* — a partial frame at
// the end of the file. The framing makes that recoverable instead of
// corrupting: every record is
//
//   u32 payload_len | u32 crc32(payload) | payload bytes
//
// (little-endian, CRC-32/ISO-HDLC). recover() walks the frames from the
// start, truncates the file at the first frame that is short, oversized,
// or fails its CRC, and returns how many intact records remain — the
// restart skips that many emissions when replaying the session and the
// rebuilt log is byte-identical to an uninterrupted run.
//
// Appends go through one reused buffer and one ::write each — zero
// steady-state allocations (bench_micro_components pins this) — and land
// in the kernel immediately; sync() adds the fsync barrier drain requires.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccsig::service {

/// CRC-32 (reflected, polynomial 0xEDB88320), the framing checksum.
std::uint32_t crc32(const void* data, std::size_t n);

class VerdictLog {
 public:
  /// Opens `path` for appending, creating it if missing. Does NOT examine
  /// existing content — call recover() first when restarting over a log a
  /// crashed daemon may have torn. Throws std::runtime_error on failure.
  explicit VerdictLog(const std::string& path);
  VerdictLog(const VerdictLog&) = delete;
  VerdictLog& operator=(const VerdictLog&) = delete;
  ~VerdictLog();

  /// Appends one framed record (the payload is typically one rendered
  /// verdict line, without a trailing newline). Zero allocations once the
  /// internal frame buffer has grown to the largest payload seen.
  void append(std::string_view payload);

  /// fsync barrier: every appended frame is durable on return.
  void sync();

  std::uint64_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

  /// Scans `path`, truncates it after the last intact frame (torn or
  /// corrupt tails are cut off), and returns the intact record count. A
  /// missing file counts as 0 intact records and is left uncreated.
  /// Throws std::runtime_error only on I/O failure, never on damage.
  static std::uint64_t recover(const std::string& path);

  /// Reads every intact framed payload (stops at the first damaged frame
  /// without modifying the file). Test and subscriber helper.
  static std::vector<std::string> read_all(const std::string& path);

 private:
  std::string path_;
  int fd_ = -1;
  std::vector<char> frame_;  // reused per-append scratch
  std::uint64_t appended_ = 0;
};

}  // namespace ccsig::service

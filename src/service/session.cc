#include "service/session.h"

#include <cstring>
#include <stdexcept>

namespace ccsig::service {
namespace {

constexpr char kMagic[8] = {'C', 'C', 'S', 'I', 'G', 'S', 'E', 'S'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t entry_size;
};
static_assert(sizeof(Header) == 16);

}  // namespace

SessionWriter::SessionWriter(const std::string& path) : path_(path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("session: cannot create " + path);
  }
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.entry_size = sizeof(SessionEntry);
  out_.write(reinterpret_cast<const char*>(&h), sizeof(h));
}

void SessionWriter::put(const SessionEntry& e) {
  out_.write(reinterpret_cast<const char*>(&e), sizeof(e));
  if (!out_) {
    throw std::runtime_error("session: write failed for " + path_);
  }
  ++entries_;
}

void SessionWriter::record(const analysis::WireRecord& w) {
  SessionEntry e;
  e.kind = static_cast<std::uint8_t>(stream::RoutedKind::kRecord);
  e.w = w;
  put(e);
}

void SessionWriter::evict(std::uint16_t shard) {
  SessionEntry e;
  e.kind = static_cast<std::uint8_t>(stream::RoutedKind::kEvictOldest);
  e.shard = shard;
  put(e);
}

void SessionWriter::flush() { out_.flush(); }

SessionReader::SessionReader(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_) {
    throw std::runtime_error("session: cannot open " + path);
  }
  Header h{};
  in_.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (in_.gcount() != sizeof(h) ||
      std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("session: " + path + " is not a session file");
  }
  if (h.version != kVersion || h.entry_size != sizeof(SessionEntry)) {
    throw std::runtime_error("session: " + path +
                             " has an incompatible version or entry size");
  }
}

std::optional<SessionEntry> SessionReader::next() {
  SessionEntry e;
  in_.read(reinterpret_cast<char*>(&e), sizeof(e));
  if (in_.gcount() != sizeof(e)) return std::nullopt;  // end or torn tail
  return e;
}

}  // namespace ccsig::service

// Supervised capture sources for ccsigd.
//
// A source is one ingest feed — a growing pcap file tailed past EOF, a
// named pipe carrying pcap bytes, or a static capture read once — wrapped
// in a per-source supervision state machine so that ANY single-source
// failure degrades that source only, never the daemon:
//
//   kOpening ──ok──> kActive <──records──> kWaiting (tail caught up)
//      │  \                │
//      │   transient error │ (RetryPolicy backoff, bounded attempts)
//      │    v              v
//      │  kBackoff ──retry budget exhausted or permanent──> kQuarantined
//      │
//      └──oneshot EOF──> kFinished
//
// Transient failures (runtime::TransientError, std::ios_base::failure, a
// vanished-but-expected file) back off with the RetryPolicy's
// deterministic exponential schedule and retry; a success resets the
// attempt budget. Permanent failures (a ParseException from genuinely
// corrupt capture bytes) and exhausted budgets quarantine the source: it
// stops being polled, its partial clean prefix has already been delivered,
// and the daemon keeps serving every other source.
//
// Named pipes are fed through a spool file: poll() moves whatever bytes
// the pipe has (nonblocking reads) into the spool, and a tail-mode
// BatchedIngest follows the spool exactly like a growing capture file.
// This reuses the incomplete-tail cursor machinery — a frame half-written
// into the pipe is just a spool tail that has not grown yet.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/event_log.h"
#include "runtime/fault_injection.h"
#include "runtime/job_result.h"
#include "stream/ingest.h"

#include <chrono>

namespace ccsig::service {

enum class SourceState {
  kOpening,      // not yet (re)opened
  kActive,       // delivering records
  kWaiting,      // tail caught up with the writer; will poll again
  kBackoff,      // transient failure; sleeping out the retry backoff
  kQuarantined,  // permanent failure or retry budget exhausted; terminal
  kFinished,     // oneshot source read to clean EOF; terminal
};

const char* to_string(SourceState s);

struct SourceConfig {
  std::string path;
  /// The path is a named pipe carrying pcap bytes (spooled, see above).
  bool fifo = false;
  /// Read the capture once to EOF and finish, instead of tailing it.
  bool oneshot = false;
  /// Spool file for fifo sources; empty = `path` + ".spool".
  std::string spool_path;
};

class CaptureSource {
 public:
  /// `faults` (nullable) injects deterministic per-poll faults keyed by
  /// (`fault_key`, attempt); `events` (nullable) receives structured
  /// lifecycle events. Both must outlive the source. Construction never
  /// throws — the first poll() performs the open under supervision.
  CaptureSource(SourceConfig cfg, runtime::RetryPolicy retry,
                const runtime::FaultPlan* faults, std::uint64_t fault_key,
                runtime::EventLog* events);
  CaptureSource(const CaptureSource&) = delete;
  CaptureSource& operator=(const CaptureSource&) = delete;
  ~CaptureSource();

  /// Pulls up to `max_records` decoded records, appending to `out`.
  /// Returns the number appended; 0 from a terminal state, a backoff
  /// window, or a tail that has not grown. Never throws: every failure is
  /// absorbed into the state machine.
  std::size_t poll(std::vector<stream::RoutedRecord>& out,
                   std::size_t max_records);

  SourceState state() const { return state_; }
  bool terminal() const {
    return state_ == SourceState::kQuarantined ||
           state_ == SourceState::kFinished;
  }
  const std::string& name() const { return cfg_.path; }
  std::uint64_t records_delivered() const { return delivered_; }
  int attempts() const { return attempt_; }

 private:
  void open_ingest();
  void pump_fifo();
  void check_rotation();
  void quarantine(const std::string& reason);
  void enter_backoff(const std::string& reason);

  SourceConfig cfg_;
  runtime::RetryPolicy retry_;
  const runtime::FaultPlan* faults_;
  std::uint64_t fault_key_;
  runtime::EventLog* events_;

  SourceState state_ = SourceState::kOpening;
  std::unique_ptr<stream::BatchedIngest> ingest_;
  int attempt_ = 1;
  std::chrono::steady_clock::time_point backoff_until_{};
  std::uint64_t delivered_ = 0;

  // Tail-file rotation detection (inode change / shrink = new capture).
  std::uint64_t open_ino_ = 0;

  // Fifo spooling.
  int fifo_fd_ = -1;
  int spool_fd_ = -1;
  std::vector<std::uint8_t> pipe_buf_;
};

}  // namespace ccsig::service

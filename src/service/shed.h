// The load-shedding ladder: what to sacrifice, in what order, when ingest
// outruns analysis.
//
// The engine-side overload signal is StreamEngine::pressure() — the fill
// fraction of the fullest shard inbox. The ladder maps it to an escalating
// action; each rung gives up strictly less than the next:
//
//   kDropNewest   — discard records as they arrive. New data is the
//                   cheapest loss: resident flows keep their (mostly
//                   frozen) slow-start signatures and still emit verdicts.
//   kForceEvict   — additionally inject force-evict commands so shards
//                   finalize LRU flows now, converting table residency
//                   into emitted verdicts and freeing capacity.
//   kPauseSources — stop reading entirely; kernel/file buffering absorbs
//                   the burst. The last rung because it risks source-side
//                   loss the daemon cannot count.
//
// Pure policy, no state: the service counts every shed decision in
// service.* metrics, and sheds BEFORE session recording, so a recorded
// session replays to the same verdict log — shed records were simply
// never part of the session.
#pragma once

namespace ccsig::service {

struct ShedConfig {
  /// pressure >= this: drop newly-read records instead of pushing them.
  double drop_threshold = 0.75;
  /// pressure >= this: also force LRU flow finalization in the engine.
  double evict_threshold = 0.90;
  /// pressure >= this: also stop polling sources this iteration.
  double pause_threshold = 1.0;
};

enum class ShedAction {
  kNone = 0,
  kDropNewest = 1,
  kForceEvict = 2,
  kPauseSources = 3,
};

inline const char* to_string(ShedAction a) {
  switch (a) {
    case ShedAction::kNone: return "none";
    case ShedAction::kDropNewest: return "drop_newest";
    case ShedAction::kForceEvict: return "force_evict";
    case ShedAction::kPauseSources: return "pause_sources";
  }
  return "?";
}

inline ShedAction shed_action(const ShedConfig& cfg, double pressure) {
  if (pressure >= cfg.pause_threshold) return ShedAction::kPauseSources;
  if (pressure >= cfg.evict_threshold) return ShedAction::kForceEvict;
  if (pressure >= cfg.drop_threshold) return ShedAction::kDropNewest;
  return ShedAction::kNone;
}

}  // namespace ccsig::service

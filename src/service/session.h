// Ingest-session record & replay: the determinism backbone of ccsigd.
//
// A live daemon merges records from several concurrently-polled sources,
// so the merged arrival order depends on scheduling — unreproducible by
// rerunning the sources. The session file pins it down: every record that
// is actually PUSHED into the engine (post-shed — dropped records are not
// part of the session, exactly like they were never captured) is appended
// in push order, interleaved with the force-evict commands the shed ladder
// injected and the shard each targeted. Replaying the file re-pushes the
// identical sequence, and because the engine's ordered-drain emission
// order is a pure function of that sequence, the replayed verdict log is
// byte-identical to the live one at any `--jobs`.
//
// Format: 16-byte header (magic "CCSIGSES", u32 version, u32 entry size)
// followed by fixed-size trivially-copyable entries. A torn tail (the
// recorder was SIGKILLed mid-entry) is ignored by the reader — the intact
// prefix IS the session.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "analysis/seq_unwrap.h"
#include "stream/ingest.h"

namespace ccsig::service {

struct SessionEntry {
  std::uint8_t kind = 0;   // stream::RoutedKind
  std::uint8_t pad = 0;
  std::uint16_t shard = 0;  // kEvictOldest: the shard the command targeted
  std::uint32_t pad2 = 0;
  analysis::WireRecord w{};  // kRecord only
};
static_assert(std::is_trivially_copyable_v<SessionEntry>);

class SessionWriter {
 public:
  /// Creates/truncates `path` and writes the header. Throws
  /// std::runtime_error on failure.
  explicit SessionWriter(const std::string& path);

  void record(const analysis::WireRecord& w);
  void evict(std::uint16_t shard);
  void flush();

  std::uint64_t entries() const { return entries_; }

 private:
  void put(const SessionEntry& e);

  std::ofstream out_;
  std::string path_;
  std::uint64_t entries_ = 0;
};

class SessionReader {
 public:
  /// Opens and validates the header. Throws std::runtime_error when the
  /// file is missing or not a session file.
  explicit SessionReader(const std::string& path);

  /// Next entry, or nullopt at the end — including at a torn tail, which
  /// is silently treated as the end of the session.
  std::optional<SessionEntry> next();

 private:
  std::ifstream in_;
};

}  // namespace ccsig::service

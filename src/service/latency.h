// End-to-end verdict-latency tracking for ccsigd.
//
// Two latencies per emitted verdict, both measured at emission time on
// the control thread against the service's injected clock:
//
//   ingest->verdict   now - the service ingest stamp of the record that
//                     triggered the finalization (time spent crossing the
//                     engine: shard inbox, flow-table processing, the
//                     ready queue, and the drain).
//   capture->verdict  now - the trigger record's *capture* timestamp,
//                     mapped onto the service clock through an epoch
//                     offset established at the first stamped ingest
//                     (capture clocks are arbitrary epochs; the offset
//                     anchors them). Adds the capture-to-ingest lag —
//                     kernel/file buffering, tail polling — on top.
//
// Both land in fixed-bucket obs histograms (service.latency.* in
// milliseconds), so recording is one relaxed RMW: zero allocations on
// the emission path, a property bench_micro_components pins with
// BM_VerdictLatencyPath. Emissions without a trigger stamp (end-of-
// capture and force-evict finalizations, pre-PR session replays) are
// counted separately instead of polluting the distributions.
//
// Under CCSIG_OBS_OFF the histograms are no-ops and the tracker keeps
// only its plain untracked/recorded tallies (used by tests).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace ccsig::service {

/// Bucket upper bounds (milliseconds) shared by both latency histograms:
/// sub-millisecond engine transits up to multi-second tail-poll lags.
inline const std::vector<double>& latency_bounds_ms() {
  static const std::vector<double> bounds{
      0.1,  0.25, 0.5,  1.0,   2.5,   5.0,    10.0,   25.0,
      50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return bounds;
}

class LatencyTracker {
 public:
  /// Registers the histograms in the global registry. Call once before
  /// the first record; recording never allocates afterwards.
  void init() {
    auto& reg = obs::MetricsRegistry::global();
    ingest_h_ = reg.histogram("service.latency.ingest_to_verdict_ms",
                              latency_bounds_ms());
    capture_h_ = reg.histogram("service.latency.capture_to_verdict_ms",
                               latency_bounds_ms());
  }

  /// Anchors the capture clock: the first stamped record defines
  /// capture-epoch + offset == service clock. Idempotent after the first
  /// call; O(1), no allocation.
  void on_ingest(std::int64_t now_ns, sim::Time capture_time) {
    if (!have_epoch_) {
      epoch_offset_ns_ = now_ns - capture_time;
      have_epoch_ = true;
    }
  }

  /// Records both latencies for one emitted verdict. `ingest_ns` == 0
  /// means the emission had no stamped trigger (end-of-capture tail,
  /// force-evict): tallied as untracked, nothing recorded.
  void on_verdict(std::int64_t now_ns, std::int64_t ingest_ns,
                  sim::Time trigger_time) {
    if (ingest_ns <= 0) {
      ++untracked_;
      return;
    }
    ++recorded_;
    ingest_h_.record(clamp_ms(now_ns - ingest_ns));
    if (have_epoch_) {
      capture_h_.record(
          clamp_ms(now_ns - (epoch_offset_ns_ + trigger_time)));
    }
  }

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t untracked() const { return untracked_; }
  bool anchored() const { return have_epoch_; }

 private:
  static double clamp_ms(std::int64_t ns) {
    return static_cast<double>(std::max<std::int64_t>(0, ns)) / 1e6;
  }

  obs::Histogram ingest_h_, capture_h_;
  std::int64_t epoch_offset_ns_ = 0;
  bool have_epoch_ = false;
  std::uint64_t recorded_ = 0;
  std::uint64_t untracked_ = 0;
};

}  // namespace ccsig::service

#include "service/line_server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ccsig::service {

LineServer::LineServer(const std::string& socket_path) : path_(socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("line server: socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("line server: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  ::unlink(path_.c_str());  // a stale socket file from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("line server: cannot listen on " + path_ +
                             ": " + err);
  }
}

LineServer::~LineServer() {
  for (const int fd : clients_) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void LineServer::accept_pending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN (none pending) or transient error: later
    clients_.push_back(fd);
  }
}

void LineServer::broadcast(std::string_view line) {
  if (clients_.empty()) return;
  send_buf_.assign(line);
  send_buf_.push_back('\n');
  for (std::size_t i = 0; i < clients_.size();) {
    const ssize_t n = ::send(clients_[i], send_buf_.data(), send_buf_.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(send_buf_.size())) {
      ++i;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Slow subscriber: this line is lost for them, counted, daemon
      // unblocked. (A partial send also drops the remainder — line
      // protocol over a full buffer is best-effort by design.)
      ++dropped_;
      ++i;
      continue;
    }
    if (n >= 0) {  // partial write into a nearly-full buffer
      ++dropped_;
      ++i;
      continue;
    }
    // EPIPE/ECONNRESET/anything else: the subscriber is gone.
    ::close(clients_[i]);
    clients_[i] = clients_.back();
    clients_.pop_back();
  }
}

}  // namespace ccsig::service

#include "service/line_server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ccsig::service {

namespace {

// Bounds on per-client buffers in query mode. Queries are one short word,
// so an inbuf past the cap means a confused or hostile client; an outbuf
// past the cap means a client that connected, queried, and stopped
// reading. Both get disconnected instead of growing daemon memory.
constexpr std::size_t kMaxQueryLine = 4096;
constexpr std::size_t kMaxOutBuf = 4u << 20;

}  // namespace

LineServer::LineServer(const std::string& socket_path, QueryHandler handler)
    : path_(socket_path), handler_(std::move(handler)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("line server: socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("line server: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  ::unlink(path_.c_str());  // a stale socket file from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("line server: cannot listen on " + path_ +
                             ": " + err);
  }
}

LineServer::~LineServer() {
  for (const Client& c : clients_) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void LineServer::accept_pending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN (none pending) or transient error: later
    Client c;
    c.fd = fd;
    c.id = next_id_++;
    clients_.push_back(std::move(c));
  }
}

void LineServer::reap(std::size_t i) {
  ::close(clients_[i].fd);
  clients_[i] = std::move(clients_.back());
  clients_.pop_back();
  ++disconnects_;
}

void LineServer::broadcast(std::string_view line) {
  if (clients_.empty()) return;
  send_buf_.assign(line);
  send_buf_.push_back('\n');
  for (std::size_t i = 0; i < clients_.size();) {
    Client& c = clients_[i];
    const ssize_t n = ::send(c.fd, send_buf_.data(), send_buf_.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(send_buf_.size())) {
      ++i;
      continue;
    }
    if (n >= 0 || errno == EAGAIN || errno == EWOULDBLOCK) {
      // Slow subscriber: this line is lost for them, counted, daemon
      // unblocked. (A partial send also drops the remainder — line
      // protocol over a full buffer is best-effort by design.)
      ++dropped_;
      ++c.dropped;
      ++i;
      continue;
    }
    // EPIPE/ECONNRESET/anything else: the subscriber is gone.
    reap(i);
  }
}

bool LineServer::flush_out(Client& c) {
  while (!c.out.empty()) {
    const ssize_t n = ::send(c.fd, c.out.data(), c.out.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      c.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return c.out.size() <= kMaxOutBuf;
    }
    return false;  // peer gone
  }
  return true;
}

std::size_t LineServer::serve_pending() {
  if (!handler_) return 0;
  std::size_t answered = 0;
  char buf[1024];
  for (std::size_t i = 0; i < clients_.size();) {
    Client& c = clients_[i];
    bool alive = true;
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      alive = false;  // orderly close (n == 0) or hard error
      break;
    }
    // Answer every complete line buffered so far.
    std::size_t nl;
    while (alive && (nl = c.in.find('\n')) != std::string::npos) {
      std::string_view q(c.in.data(), nl);
      if (!q.empty() && q.back() == '\r') q.remove_suffix(1);
      std::string body = handler_(q);
      ++queries_;
      ++answered;
      c.out += body;
      if (!c.out.empty() && c.out.back() != '\n') c.out.push_back('\n');
      c.out += ".\n";
      c.in.erase(0, nl + 1);
    }
    if (alive && c.in.size() > kMaxQueryLine) alive = false;
    if (alive) alive = flush_out(c);
    if (!alive) {
      reap(i);
      continue;
    }
    ++i;
  }
  return answered;
}

std::vector<LineServer::SubscriberStats> LineServer::subscriber_stats()
    const {
  std::vector<SubscriberStats> out;
  out.reserve(clients_.size());
  for (const Client& c : clients_) out.push_back({c.id, c.dropped});
  std::sort(out.begin(), out.end(),
            [](const SubscriberStats& a, const SubscriberStats& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace ccsig::service

// Unix-domain line-protocol broadcaster.
//
// ccsigd's live feed: subscribers connect to a SOCK_STREAM AF_UNIX socket
// and receive one '\n'-terminated line per verdict plus periodic metrics
// lines. The daemon never blocks on a subscriber — sends are nonblocking,
// and a subscriber whose buffer is full simply loses lines (each loss
// counted, per subscriber and in total). The verdict LOG is the durable,
// complete record; the socket is the lossy realtime view. Disconnects are
// detected on send and reaped silently.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccsig::service {

class LineServer {
 public:
  /// Binds and listens on `socket_path` (an existing socket file is
  /// unlinked first). Throws std::runtime_error on failure.
  explicit LineServer(const std::string& socket_path);
  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;
  ~LineServer();

  /// Accepts any pending connections (nonblocking; call once per service
  /// iteration).
  void accept_pending();

  /// Sends `line` + '\n' to every subscriber. Slow subscribers drop the
  /// line; dead ones are closed and removed.
  void broadcast(std::string_view line);

  std::size_t subscribers() const { return clients_.size(); }
  std::uint64_t lines_dropped() const { return dropped_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::vector<int> clients_;
  std::uint64_t dropped_ = 0;
  std::string send_buf_;  // reused: line + '\n'
};

}  // namespace ccsig::service

// Unix-domain line-protocol server: lossy broadcast and/or one-line
// query answering over the same nonblocking socket machinery.
//
// Broadcast mode (ccsigd's live verdict feed): subscribers connect to a
// SOCK_STREAM AF_UNIX socket and receive one '\n'-terminated line per
// verdict plus periodic metrics lines. The daemon never blocks on a
// subscriber — sends are nonblocking, and a subscriber whose buffer is
// full simply loses lines (each loss counted per subscriber and in
// total). The verdict LOG is the durable, complete record; the socket is
// the lossy realtime view. Disconnects are detected on send or read and
// reaped (each reap counted).
//
// Query mode (ccsigd's admin endpoint): construct with a QueryHandler
// and call serve_pending() from the owning loop. Clients send one
// '\n'-terminated query line; the server replies with the handler's
// response — zero or more lines — followed by a lone "." terminator
// line, then keeps the connection open for the next query (ccsig_top
// polls over one connection). Responses queue in a bounded per-client
// buffer flushed nonblockingly; a client that stops reading past the
// bound is disconnected rather than blocking the daemon.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ccsig::service {

class LineServer {
 public:
  /// Answers one query line with a response body (the server adds the
  /// "." terminator). Multi-line bodies use embedded '\n'; a trailing
  /// '\n' is optional. Body lines must not be exactly "." (the grammar's
  /// one reserved line — nothing this repo emits collides).
  using QueryHandler = std::function<std::string(std::string_view)>;

  /// Binds and listens on `socket_path` (an existing socket file is
  /// unlinked first). A non-null `handler` enables query mode.
  /// Throws std::runtime_error on failure.
  explicit LineServer(const std::string& socket_path,
                      QueryHandler handler = nullptr);
  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;
  ~LineServer();

  /// Accepts any pending connections (nonblocking; call once per service
  /// iteration).
  void accept_pending();

  /// Sends `line` + '\n' to every subscriber. Slow subscribers drop the
  /// line; dead ones are closed and removed.
  void broadcast(std::string_view line);

  /// Query mode: reads pending query lines from every client, answers
  /// each through the handler, and flushes response buffers. No-op
  /// without a handler. Returns the number of queries answered.
  std::size_t serve_pending();

  /// Per-subscriber loss accounting for statusz: connection id (unique
  /// over the server's lifetime, monotonically assigned at accept) and
  /// lines dropped to that subscriber so far.
  struct SubscriberStats {
    std::uint64_t id = 0;
    std::uint64_t lines_dropped = 0;
  };
  std::vector<SubscriberStats> subscriber_stats() const;

  std::size_t subscribers() const { return clients_.size(); }
  /// Total lines dropped across all subscribers, including ones that
  /// have since disconnected.
  std::uint64_t lines_dropped() const { return dropped_; }
  /// Subscribers reaped (dead on send/read) since startup.
  std::uint64_t disconnects() const { return disconnects_; }
  std::uint64_t queries_answered() const { return queries_; }
  const std::string& path() const { return path_; }

 private:
  struct Client {
    int fd = -1;
    std::uint64_t id = 0;
    std::uint64_t dropped = 0;
    std::string in;   // partial query line (query mode)
    std::string out;  // unflushed response bytes (query mode)
  };

  /// Closes and removes clients_[i] (swap-with-back; counted).
  void reap(std::size_t i);
  /// Nonblocking flush of c.out; returns false when the client died.
  bool flush_out(Client& c);

  std::string path_;
  QueryHandler handler_;
  int listen_fd_ = -1;
  std::vector<Client> clients_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::uint64_t disconnects_ = 0;
  std::uint64_t queries_ = 0;
  std::string send_buf_;  // reused: line + '\n'
};

}  // namespace ccsig::service

// ClassificationService — the engine room of the ccsigd daemon.
//
// One control thread owns the whole loop: poll every supervised source,
// apply the shed ladder, push survivors into an ordered-drain StreamEngine
// (optionally recording them to a session file), drain deterministic
// verdict emissions, classify each with the hot-swappable model, and fan
// the rendered lines out to the crash-safe verdict log and the optional
// Unix-socket subscribers. Signals arrive through runtime::ShutdownLatch
// (SIGTERM/SIGINT drain, SIGHUP reloads the model); in-process tests use
// request_stop()/request_reload() instead.
//
// The robustness contract, end to end:
//   - a failing source backs off, retries, and is quarantined on permanent
//     failure — other sources keep flowing (service/source.h);
//   - overload walks the shed ladder and every shed is counted
//     (service/shed.h);
//   - SIGTERM drains: intake stops, resident flows finalize, the verdict
//     log is flushed and fsynced, exit code 0;
//   - SIGKILL tears at most the last verdict frame: restart truncates the
//     torn tail (VerdictLog::recover) and a session replay regenerates the
//     remainder byte-identically at any `jobs` (service/session.h);
//   - SIGHUP swaps in a new model atomically (classification happens on
//     the control thread at emission time); an unparseable model is
//     rejected and the old one keeps serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.h"
#include "core/classifier.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "runtime/event_log.h"
#include "runtime/fault_injection.h"
#include "runtime/job_result.h"
#include "service/latency.h"
#include "service/line_server.h"
#include "service/session.h"
#include "service/shed.h"
#include "service/source.h"
#include "service/verdict_log.h"
#include "stream/stream.h"

namespace ccsig::service {

/// Retry schedule a daemon source gets unless the caller overrides it:
/// a handful of attempts with fast exponential backoff.
inline runtime::RetryPolicy default_source_retry() {
  runtime::RetryPolicy p;
  p.max_attempts = 5;
  p.backoff = std::chrono::milliseconds(10);
  p.max_backoff = std::chrono::milliseconds(500);
  return p;
}

struct ServiceConfig {
  std::vector<SourceConfig> sources;
  /// Engine shape; `ordered_drain` is forced on by the service.
  stream::StreamConfig stream;
  /// Required: the crash-safe framed verdict log (recovered, then appended).
  std::string verdict_log_path;
  /// Pretrained-tree file; empty uses the bundled model. SIGHUP reloads it.
  std::string model_path;
  /// Optional Unix-domain socket for live verdict/metrics subscribers.
  std::string socket_path;
  /// Optional second Unix-domain socket answering one-line admin queries:
  /// healthz, statusz, varz, metricsz (see DESIGN.md §14). Empty disables.
  std::string admin_socket_path;
  /// Windowed-metrics tick cadence for the varz aggregator; <= 0 disables
  /// ticking (varz then reports an empty window). Only ticked when the
  /// admin socket is configured.
  int window_tick_ms = 1000;
  /// Ring depth: varz covers the last window_slots * window_tick_ms.
  std::size_t window_slots = 12;
  /// Service clock: nanoseconds on any monotone epoch. Drives uptime,
  /// ingest stamps, the latency histograms, and window ticks — never
  /// verdict content or order. Empty uses steady_clock; tests inject a
  /// fake for deterministic windows.
  std::function<std::int64_t()> clock;
  /// Record every pushed record / evict command for later replay.
  std::string record_session_path;
  /// Replay a recorded session instead of polling sources.
  std::string replay_session_path;
  /// Replay pacing: microseconds slept per pushed batch (lets tests land a
  /// SIGKILL mid-replay deterministically enough). 0 = full speed.
  int replay_pace_us = 0;
  /// Per-source records pulled per loop iteration.
  std::size_t poll_records = 512;
  /// Idle sleep when no source produced anything.
  int idle_sleep_ms = 1;
  /// Emit a metrics line (socket + event log) this often; 0 disables.
  int metrics_interval_ms = 0;
  runtime::RetryPolicy source_retry = default_source_retry();
  ShedConfig shed;
  /// Deterministic fault injection for the sources (nullable, not owned).
  const runtime::FaultPlan* faults = nullptr;
  /// Test hook: overrides StreamEngine::pressure() as the shed signal.
  std::function<double()> pressure_probe;
  /// Exit once every source is terminal and the engine is drained (tests
  /// and batch-style invocations); default is to keep serving.
  bool oneshot = false;
  /// Structured event sink (nullable, not owned).
  runtime::EventLog* events = nullptr;
};

/// Plain tallies mirroring the service.* obs instruments — tests read
/// these so they keep working under CCSIG_OBS_OFF.
struct ServiceStats {
  std::uint64_t records_ingested = 0;
  std::uint64_t verdicts_emitted = 0;
  /// Emissions suppressed because the recovered log already held them.
  std::uint64_t verdicts_skipped_resume = 0;
  std::uint64_t shed_dropped_records = 0;
  std::uint64_t shed_forced_evicts = 0;
  std::uint64_t shed_source_pauses = 0;
  std::uint64_t sources_quarantined = 0;
  std::uint64_t model_reloads = 0;
  std::uint64_t model_reloads_rejected = 0;
  std::uint64_t metrics_lines = 0;
  std::uint64_t admin_queries = 0;
  std::uint64_t window_ticks = 0;
  /// Verdict/metrics lines lost to slow subscribers, and subscribers
  /// reaped dead — totals across the broadcast socket's lifetime.
  std::uint64_t subscriber_lines_dropped = 0;
  std::uint64_t subscriber_disconnects = 0;
};

class ClassificationService {
 public:
  // Exit codes (the repo-wide tool convention).
  static constexpr int kExitOk = 0;        // clean drain
  static constexpr int kExitUsage = 2;     // caller misconfiguration
  static constexpr int kExitInput = 3;     // unreadable log/model/session
  static constexpr int kExitInternal = 4;  // unexpected exception

  explicit ClassificationService(ServiceConfig cfg);

  /// Runs until drained (signal, request_stop, oneshot completion, or end
  /// of a replayed session) and returns the process exit code.
  int run();

  /// Thread-safe test hooks mirroring SIGTERM / SIGHUP.
  void request_stop() { stop_.store(true, std::memory_order_release); }
  void request_reload() { reload_.store(true, std::memory_order_release); }

  const ServiceStats& stats() const { return stats_; }

 private:
  int setup();  // returns an exit code; kExitOk to proceed
  void run_live(stream::StreamEngine& engine);
  void run_replay(stream::StreamEngine& engine);
  void drain(stream::StreamEngine& engine);
  void emit(const std::vector<stream::ReadyReport>& ready);
  void do_reload();
  double pressure(const stream::StreamEngine& engine) const;
  void note_source_transitions();
  void maybe_metrics_line(const stream::StreamEngine& engine);
  bool stopping() const;
  std::int64_t clock_ns() const;
  /// Folds LineServer drop/disconnect totals into stats_ and the
  /// service.* counters (delta-based, safe to call any time).
  void sync_subscriber_counters();
  /// Ticks the varz window on the configured cadence (admin mode only).
  void maybe_window_tick(const stream::StreamEngine& engine);
  // Admin query answering (control thread; engine_ valid while serving).
  std::string admin_response(std::string_view query);
  std::string health_line() const;
  std::string statusz_text() const;

  ServiceConfig cfg_;
  CongestionClassifier classifier_;
  ServiceStats stats_;
  std::uint64_t resume_skip_ = 0;
  /// Verdicts the recovered log already held at startup; the durable log
  /// position is recovered_ + log_->appended().
  std::uint64_t recovered_ = 0;

  std::unique_ptr<VerdictLog> log_;
  std::unique_ptr<SessionWriter> recorder_;
  std::unique_ptr<SessionReader> replay_;
  std::unique_ptr<LineServer> server_;
  std::unique_ptr<LineServer> admin_;
  std::vector<std::unique_ptr<CaptureSource>> sources_;
  std::vector<SourceState> last_states_;
  std::size_t evict_rr_ = 0;  // round-robin shard for force-evicts
  ShedAction last_action_ = ShedAction::kNone;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point last_metrics_{};

  // Introspection plane. engine_ aliases run()'s stack engine for the
  // admin handlers; it is only dereferenced from the control thread while
  // the run loops (which own both the engine and the admin socket) are
  // serving.
  LatencyTracker latency_;
  obs::WindowAggregator window_;
  stream::StreamEngine* engine_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::int64_t last_window_ns_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> reload_{false};

  obs::Counter records_ctr_, verdicts_ctr_, dropped_ctr_, evicts_ctr_,
      pauses_ctr_, quarantined_ctr_, reloads_ctr_, reload_rejected_ctr_;
  obs::Counter admin_queries_ctr_, sub_dropped_ctr_, sub_disc_ctr_;
  obs::Gauge pressure_g_, subscribers_g_, resident_g_, uptime_g_;
};

}  // namespace ccsig::service

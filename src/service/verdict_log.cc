#include "service/verdict_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ccsig::service {
namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u32(char* dst, std::uint32_t v) {
  // Little-endian on every platform the project targets; memcpy keeps it
  // alignment-safe.
  std::memcpy(dst, &v, sizeof(v));
}

std::uint32_t get_u32(const char* src) {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

// A frame longer than this is treated as corruption, not a record — it
// bounds what recover()/read_all() will ever try to buffer from a damaged
// file. Verdict lines are ~100 bytes; 1 MiB is orders of magnitude of
// headroom.
constexpr std::uint32_t kMaxPayload = 1u << 20;
constexpr std::size_t kFrameHeader = 8;  // len + crc

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

VerdictLog::VerdictLog(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("verdict log: cannot open " + path + ": " +
                             std::strerror(errno));
  }
}

VerdictLog::~VerdictLog() {
  if (fd_ >= 0) ::close(fd_);
}

void VerdictLog::append(std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw std::runtime_error("verdict log: payload exceeds frame limit");
  }
  frame_.clear();
  frame_.resize(kFrameHeader + payload.size());
  put_u32(frame_.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32(frame_.data() + 4, crc32(payload.data(), payload.size()));
  std::memcpy(frame_.data() + kFrameHeader, payload.data(), payload.size());
  // One write per frame: O_APPEND makes it a single atomic-offset append,
  // so frames from this process are contiguous even if something else has
  // the file open.
  const char* p = frame_.data();
  std::size_t left = frame_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("verdict log: write failed: " +
                               std::string(std::strerror(errno)));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ++appended_;
}

void VerdictLog::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    throw std::runtime_error("verdict log: fsync failed: " +
                             std::string(std::strerror(errno)));
  }
}

namespace {

/// Shared frame walk: returns the byte offset after the last intact frame,
/// counts intact frames into `count`, and appends payloads to `out` when
/// non-null.
std::uint64_t scan_frames(std::ifstream& in, std::uint64_t& count,
                          std::vector<std::string>* out) {
  std::uint64_t good_end = 0;
  count = 0;
  char header[kFrameHeader];
  std::string payload;
  for (;;) {
    in.read(header, kFrameHeader);
    if (in.gcount() != static_cast<std::streamsize>(kFrameHeader)) break;
    const std::uint32_t len = get_u32(header);
    if (len > kMaxPayload) break;  // nonsense length: damage, stop here
    payload.resize(len);
    in.read(payload.data(), len);
    if (in.gcount() != static_cast<std::streamsize>(len)) break;  // torn
    if (crc32(payload.data(), len) != get_u32(header + 4)) break;
    good_end += kFrameHeader + len;
    ++count;
    if (out) out->push_back(payload);
  }
  return good_end;
}

}  // namespace

std::uint64_t VerdictLog::recover(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;  // no log yet: nothing intact, nothing to truncate
  std::uint64_t count = 0;
  const std::uint64_t good_end = scan_frames(in, count, nullptr);
  in.close();
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 &&
      static_cast<std::uint64_t>(st.st_size) != good_end) {
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
      throw std::runtime_error("verdict log: cannot truncate torn tail of " +
                               path + ": " + std::strerror(errno));
    }
  }
  return count;
}

std::vector<std::string> VerdictLog::read_all(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::uint64_t count = 0;
  scan_frames(in, count, &out);
  return out;
}

}  // namespace ccsig::service

#include "ml/cv.h"

#include <stdexcept>

#include "ml/split.h"
#include "runtime/parallel_map.h"
#include "sim/random.h"

namespace ccsig::ml {
namespace {

struct FoldResult {
  DecisionTree tree;
  std::size_t correct = 0;
  std::size_t total = 0;
};

}  // namespace

CrossValidation cross_validate(const Dataset& data,
                               DecisionTree::Params params, int k,
                               std::uint64_t seed, int jobs) {
  if (data.empty()) {
    throw std::invalid_argument("cannot cross-validate an empty dataset");
  }
  sim::Rng rng(seed);
  const auto folds = stratified_folds(data, k, rng);

  // Serial pre-pass: materialize each fold's training index list (all
  // other folds, in fold order) so the parallel stage is pure fitting.
  std::vector<std::vector<std::size_t>> train_sets(folds.size());
  for (std::size_t f = 0; f < folds.size(); ++f) {
    auto& train = train_sets[f];
    train.reserve(data.size() - folds[f].size());
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      train.insert(train.end(), folds[g].begin(), folds[g].end());
    }
  }

  std::vector<std::size_t> fold_ids(folds.size());
  for (std::size_t f = 0; f < folds.size(); ++f) fold_ids[f] = f;
  auto results = runtime::parallel_map(
      fold_ids,
      [&](std::size_t f) {
        FoldResult r;
        r.tree = DecisionTree(params);
        r.tree.fit(data, train_sets[f]);
        for (std::size_t i : folds[f]) {
          r.correct += r.tree.predict(data.row(i)) == data.label(i) ? 1 : 0;
          ++r.total;
        }
        return r;
      },
      jobs);

  CrossValidation cv;
  cv.fold_trees.reserve(results.size());
  cv.fold_accuracy.reserve(results.size());
  std::size_t correct = 0, total = 0;
  for (auto& r : results) {
    cv.fold_accuracy.push_back(
        r.total > 0 ? static_cast<double>(r.correct) / static_cast<double>(r.total)
                    : 0.0);
    correct += r.correct;
    total += r.total;
    cv.fold_trees.push_back(std::move(r.tree));
  }
  cv.accuracy =
      total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
  return cv;
}

}  // namespace ccsig::ml

// CART decision tree (Gini impurity), the classifier the paper builds with
// sklearn's DecisionTreeClassifier. Supports text serialization so a
// trained model can ship with the library and survive round trips.
//
// Training presorts each feature's index array once per fit and then
// stable-partitions the sorted orders down the tree (sklearn-style), so
// every node's best-split search is a single linear pass — no per-node
// sorts. The split decisions, thresholds, and node layout are byte-
// identical to the historical per-node-sort implementation (ties between
// equal feature values never form boundaries, so scan order within a tie
// run cannot change a split); `to_text` is the equivalence oracle and
// ml_presort_equivalence_test pins it against a reference implementation.
//
// The trained model is a flattened SoA layout: contiguous arrays of
// feature index / threshold / child offsets, with every node's class
// probabilities in one shared arena. Inference walks plain arrays — no
// pointer-chasing, no per-node heap vectors — and the span overloads of
// predict_proba / predict_all perform zero heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace ccsig::ml {

class DecisionTree {
 public:
  struct Params {
    int max_depth = 4;              // the paper settles on depth 4 (§3.2)
    std::size_t min_samples_split = 2;
    std::size_t min_samples_leaf = 1;
    double min_impurity_decrease = 0.0;
  };

  DecisionTree() = default;
  explicit DecisionTree(Params params) : params_(params) {}

  /// Fits the tree; replaces any previous model. Throws on empty data.
  void fit(const Dataset& data);

  /// Fits on the multiset of rows given by `rows` (indices into `data`,
  /// duplicates allowed — this is the forest's bootstrap path, which
  /// avoids materializing a Dataset copy per tree). The class count is
  /// derived from the sampled rows, exactly as fitting on
  /// `data.subset(rows)` would. Throws on an empty row set.
  void fit(const Dataset& data, std::span<const std::size_t> rows);

  /// Predicted class for a feature row.
  int predict(std::span<const double> row) const;

  /// Class-probability estimate (leaf class frequencies).
  std::vector<double> predict_proba(std::span<const double> row) const;

  /// Allocation-free overload: copies the leaf's class frequencies into
  /// `out`, which must hold at least `num_classes()` doubles.
  void predict_proba(std::span<const double> row, std::span<double> out) const;

  /// The leaf a row lands in, for single-walk classify: majority class
  /// plus a view of the leaf's class frequencies in the shared arena.
  struct Leaf {
    int klass = 0;
    std::span<const double> probs;
  };
  Leaf leaf_for(std::span<const double> row) const;

  std::vector<int> predict_all(const Dataset& data) const;

  /// Allocation-free batched prediction; `out.size() >= data.size()`.
  void predict_all(const Dataset& data, std::span<int> out) const;

  bool trained() const { return !feature_.empty(); }
  int depth() const;
  std::size_t node_count() const { return feature_.size(); }
  std::size_t leaf_count() const;
  int num_classes() const { return n_classes_; }
  const Params& params() const { return params_; }

  /// Human-readable serialization; `from_text` parses it back.
  std::string to_text() const;
  static DecisionTree from_text(const std::string& text);

  /// Indented if/else rendering for docs and debugging.
  std::string describe(const std::vector<std::string>& feature_names = {}) const;

 private:
  friend class TreeBuilder;

  std::size_t walk(std::span<const double> row) const;
  void describe_node(std::ostream& os, int node, int indent,
                     const std::vector<std::string>& names) const;
  int depth_of(int node) const;

  Params params_;
  // Flattened SoA node storage. Node i is a leaf iff feature_[i] < 0;
  // its class frequencies live at probs_[i * n_classes_ ...].
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;   // branch when value <= threshold
  std::vector<std::int32_t> right_;  // branch when value > threshold
  std::vector<std::int32_t> klass_;  // majority class
  std::vector<double> probs_;        // shared arena, n_nodes * n_classes
  int n_classes_ = 0;
};

}  // namespace ccsig::ml

// CART decision tree (Gini impurity), the classifier the paper builds with
// sklearn's DecisionTreeClassifier. Supports text serialization so a
// trained model can ship with the library and survive round trips.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace ccsig::ml {

class DecisionTree {
 public:
  struct Params {
    int max_depth = 4;              // the paper settles on depth 4 (§3.2)
    std::size_t min_samples_split = 2;
    std::size_t min_samples_leaf = 1;
    double min_impurity_decrease = 0.0;
  };

  DecisionTree() = default;
  explicit DecisionTree(Params params) : params_(params) {}

  /// Fits the tree; replaces any previous model. Throws on empty data.
  void fit(const Dataset& data);

  /// Predicted class for a feature row.
  int predict(std::span<const double> row) const;

  /// Class-probability estimate (leaf class frequencies).
  std::vector<double> predict_proba(std::span<const double> row) const;

  std::vector<int> predict_all(const Dataset& data) const;

  bool trained() const { return !nodes_.empty(); }
  int depth() const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  const Params& params() const { return params_; }

  /// Human-readable serialization; `from_text` parses it back.
  std::string to_text() const;
  static DecisionTree from_text(const std::string& text);

  /// Indented if/else rendering for docs and debugging.
  std::string describe(const std::vector<std::string>& feature_names = {}) const;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;   // branch when value <= threshold
    int right = -1;  // branch when value > threshold
    int klass = 0;   // majority class (leaves)
    std::vector<double> probs;  // class frequencies at this node
  };

  int build(const Dataset& data, std::vector<std::size_t>& indices, int depth);
  const Node& walk(std::span<const double> row) const;
  void describe_node(std::ostream& os, int node, int indent,
                     const std::vector<std::string>& names) const;
  int depth_of(int node) const;

  Params params_;
  std::vector<Node> nodes_;
  int n_classes_ = 0;
};

}  // namespace ccsig::ml

#include "ml/split.h"

#include <algorithm>
#include <stdexcept>

namespace ccsig::ml {
namespace {

/// Row indices per class, each list shuffled.
std::vector<std::vector<std::size_t>> shuffled_by_class(const Dataset& data,
                                                        sim::Rng& rng) {
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(i);
  }
  for (auto& v : by_class) {
    std::shuffle(v.begin(), v.end(), rng.engine());
  }
  return by_class;
}

}  // namespace

std::pair<Dataset, Dataset> stratified_split(const Dataset& data,
                                             double test_fraction,
                                             sim::Rng& rng) {
  auto [test, train] = stratified_sample(data, test_fraction, rng);
  return {std::move(train), std::move(test)};
}

std::pair<Dataset, Dataset> stratified_sample(const Dataset& data,
                                              double fraction, sim::Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("fraction must be within [0, 1]");
  }
  auto by_class = shuffled_by_class(data, rng);

  // Largest-remainder apportionment: the sample size is exactly
  // round(fraction * N). Per-class rounding (the old fraction*size + 0.5)
  // could miss the requested total by up to one row per class — e.g. four
  // singleton classes at fraction 0.5 sampled 4 rows instead of 2.
  const std::size_t target = static_cast<std::size_t>(
      fraction * static_cast<double>(data.size()) + 0.5);
  std::vector<std::size_t> quota(by_class.size());
  std::vector<std::pair<double, std::size_t>> remainders;  // (-rem, class)
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < by_class.size(); ++c) {
    const double exact = fraction * static_cast<double>(by_class[c].size());
    quota[c] = static_cast<std::size_t>(exact);
    assigned += quota[c];
    remainders.emplace_back(-(exact - static_cast<double>(quota[c])), c);
  }
  // Ties in the fractional remainder break toward the lower class index.
  std::sort(remainders.begin(), remainders.end());
  for (const auto& [neg_rem, c] : remainders) {
    if (assigned >= target) break;
    (void)neg_rem;
    if (quota[c] < by_class[c].size()) {
      ++quota[c];
      ++assigned;
    }
  }

  std::vector<std::size_t> picked, rest;
  for (std::size_t c = 0; c < by_class.size(); ++c) {
    const auto& cls = by_class[c];
    for (std::size_t j = 0; j < cls.size(); ++j) {
      (j < quota[c] ? picked : rest).push_back(cls[j]);
    }
  }
  std::sort(picked.begin(), picked.end());
  std::sort(rest.begin(), rest.end());
  return {data.subset(picked), data.subset(rest)};
}

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       int k, sim::Rng& rng) {
  if (k < 2) throw std::invalid_argument("k must be >= 2");
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  for (auto& cls : shuffled_by_class(data, rng)) {
    for (std::size_t j = 0; j < cls.size(); ++j) {
      folds[j % static_cast<std::size_t>(k)].push_back(cls[j]);
    }
  }
  for (auto& f : folds) std::sort(f.begin(), f.end());
  return folds;
}

}  // namespace ccsig::ml

// Tabular labeled dataset for the classifiers.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccsig::ml {

/// Row-major feature matrix with integer class labels.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  void add(std::vector<double> row, int label) {
    if (!feature_names_.empty() && row.size() != feature_names_.size()) {
      throw std::invalid_argument("row width does not match feature names");
    }
    if (!rows_.empty() && row.size() != rows_.front().size()) {
      throw std::invalid_argument("inconsistent row width");
    }
    rows_.push_back(std::move(row));
    labels_.push_back(label);
  }

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  std::size_t num_features() const {
    return rows_.empty() ? feature_names_.size() : rows_.front().size();
  }

  const std::vector<double>& row(std::size_t i) const { return rows_.at(i); }
  int label(std::size_t i) const { return labels_.at(i); }
  const std::vector<std::vector<double>>& rows() const { return rows_; }
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Number of distinct classes (max label + 1).
  int num_classes() const {
    int m = 0;
    for (int l : labels_) m = l >= m ? l + 1 : m;
    return m;
  }

  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> indices) const {
    Dataset out(feature_names_);
    for (std::size_t i : indices) out.add(rows_.at(i), labels_.at(i));
    return out;
  }

  /// Appends all rows of `other` (feature names must be compatible).
  void append(const Dataset& other) {
    for (std::size_t i = 0; i < other.size(); ++i) {
      add(other.row(i), other.label(i));
    }
  }

  /// Per-class row counts.
  std::vector<std::size_t> class_counts() const {
    std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes()), 0);
    for (int l : labels_) ++counts[static_cast<std::size_t>(l)];
    return counts;
  }

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

}  // namespace ccsig::ml

#include "ml/random_forest.h"

#include <algorithm>

namespace ccsig::ml {

void RandomForest::fit(const Dataset& data) {
  trees_.clear();
  n_classes_ = data.num_classes();
  const std::size_t n = data.size();
  const std::size_t per_tree = static_cast<std::size_t>(
      params_.bootstrap_fraction * static_cast<double>(n));
  for (int t = 0; t < params_.n_trees; ++t) {
    std::vector<std::size_t> sample;
    sample.reserve(per_tree);
    for (std::size_t i = 0; i < per_tree; ++i) {
      sample.push_back(static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    }
    DecisionTree tree(params_.tree);
    tree.fit(data.subset(sample));
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::predict(std::span<const double> row) const {
  std::vector<int> votes(static_cast<std::size_t>(n_classes_), 0);
  for (const auto& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict(row))];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

std::vector<int> RandomForest::predict_all(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.push_back(predict(data.row(i)));
  }
  return out;
}

}  // namespace ccsig::ml

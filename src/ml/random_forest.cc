#include "ml/random_forest.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "runtime/parallel_map.h"

namespace ccsig::ml {

void RandomForest::fit(const Dataset& data, int jobs) {
  trees_.clear();
  n_classes_ = data.num_classes();
  const std::size_t n = data.size();
  const std::size_t per_tree = static_cast<std::size_t>(
      params_.bootstrap_fraction * static_cast<double>(n));
  // Serial pre-pass: draw every tree's bootstrap sample in tree order,
  // consuming the forest RNG exactly as the historical sequential fit
  // did. The fit itself is then embarrassingly parallel.
  std::vector<std::vector<std::size_t>> samples(
      static_cast<std::size_t>(params_.n_trees));
  for (auto& sample : samples) {
    sample.reserve(per_tree);
    for (std::size_t i = 0; i < per_tree; ++i) {
      sample.push_back(static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    }
  }
  trees_ = runtime::parallel_map(
      samples,
      [&](const std::vector<std::size_t>& sample) {
        DecisionTree tree(params_.tree);
        tree.fit(data, sample);
        return tree;
      },
      jobs);
}

int RandomForest::predict(std::span<const double> row) const {
  int stack_votes[kMaxStackClasses] = {};
  std::vector<int> heap_votes;
  int* votes = stack_votes;
  if (n_classes_ > kMaxStackClasses) {
    heap_votes.resize(static_cast<std::size_t>(n_classes_), 0);
    votes = heap_votes.data();
  }
  for (const auto& tree : trees_) {
    ++votes[tree.predict(row)];
  }
  return static_cast<int>(std::max_element(votes, votes + n_classes_) - votes);
}

std::vector<int> RandomForest::predict_all(const Dataset& data) const {
  std::vector<int> out(data.size());
  predict_all(data, out);
  return out;
}

void RandomForest::predict_all(const Dataset& data, std::span<int> out) const {
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = predict(data.row(i));
  }
}

std::string RandomForest::to_text() const {
  std::ostringstream os;
  os << "ccsig-forest v1\n";
  os << "classes " << n_classes_ << "\n";
  os << "trees " << trees_.size() << "\n";
  for (const auto& tree : trees_) os << tree.to_text();
  return os.str();
}

RandomForest RandomForest::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "ccsig-forest v1") {
    throw std::invalid_argument("bad random-forest header");
  }
  RandomForest forest(Params{}, 0);
  std::string word;
  std::size_t n_trees = 0;
  is >> word >> forest.n_classes_;
  if (word != "classes") throw std::invalid_argument("expected 'classes'");
  is >> word >> n_trees;
  if (word != "trees") throw std::invalid_argument("expected 'trees'");
  is >> std::ws;
  // Each tree's text starts with its own header line; split on them.
  const std::string marker = "ccsig-dtree v1\n";
  std::string rest(std::istreambuf_iterator<char>(is), {});
  std::size_t at = rest.find(marker);
  if (n_trees > 0 && at != 0) {
    throw std::invalid_argument("expected a decision-tree block");
  }
  for (std::size_t t = 0; t < n_trees; ++t) {
    if (at == std::string::npos) {
      throw std::invalid_argument("truncated random-forest text");
    }
    const std::size_t next = rest.find(marker, at + marker.size());
    const std::size_t end = next == std::string::npos ? rest.size() : next;
    forest.trees_.push_back(DecisionTree::from_text(rest.substr(at, end - at)));
    at = next;
  }
  if (forest.trees_.size() != n_trees) {
    throw std::invalid_argument("truncated random-forest text");
  }
  forest.params_.n_trees = static_cast<int>(n_trees);
  return forest;
}

}  // namespace ccsig::ml

// Bagged random forest — an extension beyond the paper's single tree, used
// by the ablation benches to check whether a heavier model buys anything on
// a two-feature problem (it shouldn't, which is itself a result), and by
// the multi-class CC-identification workload (ROADMAP item 4) where the
// ensemble does matter.
//
// Determinism contract: every tree's bootstrap sample is drawn serially
// from the forest's RNG before any fitting starts, then the trees are
// fitted concurrently via runtime::parallel_map — so the serialized model
// is byte-identical for any `jobs` value, including jobs == 1.
//
// Inference is allocation-free: each tree is a flattened SoA model, votes
// accumulate in a fixed-size stack array, and the span overload of
// predict_all never touches the heap (enforced by BM_ForestInferenceBatch's
// allocs_per_prediction == 0 bound in bench_micro_smoke).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "sim/random.h"

namespace ccsig::ml {

class RandomForest {
 public:
  struct Params {
    int n_trees = 25;
    DecisionTree::Params tree;
    double bootstrap_fraction = 1.0;  // sample size per tree (with replacement)
  };

  /// Vote counts accumulate on the stack for up to this many classes;
  /// beyond it predict() falls back to a heap buffer.
  static constexpr int kMaxStackClasses = 32;

  explicit RandomForest(Params params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Fits the forest; `jobs` worker threads fit trees concurrently
  /// (jobs <= 0 means runtime::default_jobs(), 1 is serial). The model is
  /// byte-identical for any `jobs` value.
  void fit(const Dataset& data, int jobs = 1);

  /// Majority vote across trees.
  int predict(std::span<const double> row) const;
  std::vector<int> predict_all(const Dataset& data) const;

  /// Allocation-free batched prediction; `out.size() >= data.size()`.
  void predict_all(const Dataset& data, std::span<int> out) const;

  bool trained() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }
  int num_classes() const { return n_classes_; }
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Text serialization: a forest header followed by each tree's
  /// `DecisionTree::to_text`. Byte-stable across `jobs` values; the
  /// parallel-determinism tests diff it directly.
  std::string to_text() const;
  static RandomForest from_text(const std::string& text);

 private:
  Params params_;
  sim::Rng rng_;
  std::vector<DecisionTree> trees_;
  int n_classes_ = 0;
};

}  // namespace ccsig::ml

// Bagged random forest — an extension beyond the paper's single tree, used
// by the ablation benches to check whether a heavier model buys anything on
// a two-feature problem (it shouldn't, which is itself a result).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "sim/random.h"

namespace ccsig::ml {

class RandomForest {
 public:
  struct Params {
    int n_trees = 25;
    DecisionTree::Params tree;
    double bootstrap_fraction = 1.0;  // sample size per tree (with replacement)
  };

  explicit RandomForest(Params params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  void fit(const Dataset& data);

  /// Majority vote across trees.
  int predict(std::span<const double> row) const;
  std::vector<int> predict_all(const Dataset& data) const;

  bool trained() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }

 private:
  Params params_;
  sim::Rng rng_;
  std::vector<DecisionTree> trees_;
  int n_classes_ = 0;
};

}  // namespace ccsig::ml

#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ccsig::ml {
namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("cannot fit on empty dataset");
  nodes_.clear();
  n_classes_ = data.num_classes();
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(data, indices, 0);
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                        int depth) {
  // Class distribution at this node.
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes_), 0);
  for (std::size_t i : indices) ++counts[static_cast<std::size_t>(data.label(i))];
  const std::size_t total = indices.size();
  const double node_gini = gini(counts, total);

  Node node;
  node.probs.resize(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    node.probs[c] = static_cast<double>(counts[c]) / static_cast<double>(total);
  }
  node.klass = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  const int my_index = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  const bool pure = node_gini == 0.0;
  if (pure || depth >= params_.max_depth ||
      total < params_.min_samples_split) {
    return my_index;
  }

  // Exhaustive best-split search: for each feature, sort the node's rows by
  // that feature and scan boundaries between distinct values.
  const std::size_t n_features = data.num_features();
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = node_gini;

  std::vector<std::size_t> order(indices);
  for (std::size_t f = 0; f < n_features; ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.row(a)[f] < data.row(b)[f];
    });
    std::vector<std::size_t> left_counts(counts.size(), 0);
    std::vector<std::size_t> right_counts = counts;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
      const int label = data.label(order[k]);
      ++left_counts[static_cast<std::size_t>(label)];
      --right_counts[static_cast<std::size_t>(label)];
      const double v = data.row(order[k])[f];
      const double v_next = data.row(order[k + 1])[f];
      if (v == v_next) continue;  // not a boundary
      const std::size_t n_left = k + 1;
      const std::size_t n_right = total - n_left;
      if (n_left < params_.min_samples_leaf ||
          n_right < params_.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(total);
      if (weighted + 1e-12 < best_impurity) {
        best_impurity = weighted;
        best_feature = static_cast<int>(f);
        best_threshold = (v + v_next) / 2.0;
      }
    }
  }

  if (best_feature < 0 ||
      node_gini - best_impurity < params_.min_impurity_decrease) {
    return my_index;  // no useful split
  }

  std::vector<std::size_t> left, right;
  left.reserve(total);
  right.reserve(total);
  for (std::size_t i : indices) {
    (data.row(i)[static_cast<std::size_t>(best_feature)] <= best_threshold
         ? left
         : right)
        .push_back(i);
  }
  // Free the parent's index list before recursing.
  indices.clear();
  indices.shrink_to_fit();

  const int left_child = build(data, left, depth + 1);
  const int right_child = build(data, right, depth + 1);
  nodes_[static_cast<std::size_t>(my_index)].leaf = false;
  nodes_[static_cast<std::size_t>(my_index)].feature = best_feature;
  nodes_[static_cast<std::size_t>(my_index)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(my_index)].left = left_child;
  nodes_[static_cast<std::size_t>(my_index)].right = right_child;
  return my_index;
}

const DecisionTree::Node& DecisionTree::walk(std::span<const double> row) const {
  if (nodes_.empty()) throw std::logic_error("tree is not trained");
  int at = 0;
  while (!nodes_[static_cast<std::size_t>(at)].leaf) {
    const Node& n = nodes_[static_cast<std::size_t>(at)];
    at = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
  }
  return nodes_[static_cast<std::size_t>(at)];
}

int DecisionTree::predict(std::span<const double> row) const {
  return walk(row).klass;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> row) const {
  return walk(row).probs;
}

std::vector<int> DecisionTree::predict_all(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.push_back(predict(data.row(i)));
  }
  return out;
}

int DecisionTree::depth_of(int node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.leaf) return 0;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

int DecisionTree::depth() const { return nodes_.empty() ? 0 : depth_of(0); }

std::size_t DecisionTree::leaf_count() const {
  std::size_t c = 0;
  for (const Node& n : nodes_) c += n.leaf ? 1 : 0;
  return c;
}

std::string DecisionTree::to_text() const {
  std::ostringstream os;
  os.precision(17);
  os << "ccsig-dtree v1\n";
  os << "classes " << n_classes_ << "\n";
  os << "max_depth " << params_.max_depth << "\n";
  os << "nodes " << nodes_.size() << "\n";
  for (const Node& n : nodes_) {
    if (n.leaf) {
      os << "leaf " << n.klass;
    } else {
      os << "split " << n.feature << " " << n.threshold << " " << n.left << " "
         << n.right << " " << n.klass;
    }
    for (double p : n.probs) os << " " << p;
    os << "\n";
  }
  return os.str();
}

DecisionTree DecisionTree::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "ccsig-dtree v1") {
    throw std::invalid_argument("bad decision-tree header");
  }
  DecisionTree tree;
  std::string word;
  std::size_t n_nodes = 0;
  is >> word >> tree.n_classes_;
  if (word != "classes") throw std::invalid_argument("expected 'classes'");
  is >> word >> tree.params_.max_depth;
  if (word != "max_depth") throw std::invalid_argument("expected 'max_depth'");
  is >> word >> n_nodes;
  if (word != "nodes") throw std::invalid_argument("expected 'nodes'");
  tree.nodes_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Node n;
    is >> word;
    if (word == "leaf") {
      n.leaf = true;
      is >> n.klass;
    } else if (word == "split") {
      n.leaf = false;
      is >> n.feature >> n.threshold >> n.left >> n.right >> n.klass;
    } else {
      throw std::invalid_argument("bad node tag: " + word);
    }
    n.probs.resize(static_cast<std::size_t>(tree.n_classes_));
    for (double& p : n.probs) is >> p;
    if (!is) throw std::invalid_argument("truncated decision-tree text");
    tree.nodes_.push_back(std::move(n));
  }
  return tree;
}

void DecisionTree::describe_node(std::ostream& os, int node, int indent,
                                 const std::vector<std::string>& names) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (n.leaf) {
    os << pad << "-> class " << n.klass << "\n";
    return;
  }
  const std::string fname =
      static_cast<std::size_t>(n.feature) < names.size()
          ? names[static_cast<std::size_t>(n.feature)]
          : "f" + std::to_string(n.feature);
  os << pad << "if " << fname << " <= " << n.threshold << ":\n";
  describe_node(os, n.left, indent + 1, names);
  os << pad << "else:\n";
  describe_node(os, n.right, indent + 1, names);
}

std::string DecisionTree::describe(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  os.precision(4);
  if (nodes_.empty()) return "(untrained)\n";
  describe_node(os, 0, 0, feature_names);
  return os.str();
}

}  // namespace ccsig::ml

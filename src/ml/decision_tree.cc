#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ccsig::ml {
namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

// Presort-based CART builder. The fit-time contract is byte-identical
// output to the historical implementation, which re-sorted the node's
// rows for every feature at every node:
//
//  - The best-split scan visits features in ascending order and
//    boundaries in ascending value order, with the same incremental
//    class counts, the same gini arithmetic, and the same strict
//    `weighted + 1e-12 < best` improvement test — so the winning
//    (feature, threshold) is the same even when several splits tie.
//  - Scan order within a run of equal feature values cannot matter:
//    ties are never boundaries, and the class counts at a boundary are
//    integer sums over "all rows with value <= v", a set determined by
//    the values alone.
//  - Node indices are assigned in the same pre-order (node, left
//    subtree, right subtree) recursion.
//
// What changes is the cost: each feature's index array is sorted once
// per fit (O(F n log n) over a cache-friendly column-major value copy),
// and each split stable-partitions the per-feature orders (O(F n) per
// level), so no sort ever runs below the root.
class TreeBuilder {
 public:
  TreeBuilder(DecisionTree& tree, const Dataset& data,
              std::span<const std::size_t> rows, int n_classes)
      : tree_(tree),
        n_(rows.size()),
        f_count_(data.num_features()),
        n_classes_(static_cast<std::size_t>(n_classes)) {
    // Column-major copy of the sampled rows: values_[f * n_ + i] is
    // feature f of local row i. Local row ids give every bootstrap
    // duplicate its own identity, so partition masks stay per-instance.
    values_.resize(f_count_ * n_);
    labels_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      const auto& row = data.row(rows[i]);
      for (std::size_t f = 0; f < f_count_; ++f) values_[f * n_ + i] = row[f];
      labels_[i] = data.label(rows[i]);
    }
    // Presort: one argsort per feature, ties broken by local row id so
    // the layout is deterministic (tie order is split-irrelevant, see
    // above, but determinism keeps memory layouts reproducible too).
    order_.resize(f_count_ * n_);
    for (std::size_t f = 0; f < f_count_; ++f) {
      const double* vals = values_.data() + f * n_;
      std::uint32_t* ord = order_.data() + f * n_;
      std::iota(ord, ord + n_, 0u);
      std::sort(ord, ord + n_, [vals](std::uint32_t a, std::uint32_t b) {
        return vals[a] != vals[b] ? vals[a] < vals[b] : a < b;
      });
    }
    scratch_.resize(n_);
    goes_left_.resize(n_);
  }

  void run(int depth) { build(0, n_, depth); }

 private:
  int build(std::size_t lo, std::size_t hi, int depth) {
    const std::size_t total = hi - lo;
    // Class distribution at this node (any feature's segment holds the
    // node's row set; use feature 0).
    std::vector<std::size_t> counts(n_classes_, 0);
    for (std::size_t k = lo; k < hi; ++k) {
      ++counts[static_cast<std::size_t>(labels_[order_[k]])];
    }
    const double node_gini = gini(counts, total);

    const int my_index = static_cast<int>(tree_.feature_.size());
    tree_.feature_.push_back(-1);
    tree_.threshold_.push_back(0.0);
    tree_.left_.push_back(-1);
    tree_.right_.push_back(-1);
    tree_.klass_.push_back(static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin()));
    for (std::size_t c = 0; c < counts.size(); ++c) {
      tree_.probs_.push_back(static_cast<double>(counts[c]) /
                             static_cast<double>(total));
    }

    const bool pure = node_gini == 0.0;
    const auto& params = tree_.params_;
    if (pure || depth >= params.max_depth || total < params.min_samples_split) {
      return my_index;
    }

    // Best-split search: each feature's segment is already sorted, so the
    // boundary scan is one linear pass.
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_impurity = node_gini;
    std::vector<std::size_t> left_counts(n_classes_);
    std::vector<std::size_t> right_counts(n_classes_);

    for (std::size_t f = 0; f < f_count_; ++f) {
      const double* vals = values_.data() + f * n_;
      const std::uint32_t* seg = order_.data() + f * n_ + lo;
      std::fill(left_counts.begin(), left_counts.end(), 0);
      right_counts = counts;
      for (std::size_t k = 0; k + 1 < total; ++k) {
        const int label = labels_[seg[k]];
        ++left_counts[static_cast<std::size_t>(label)];
        --right_counts[static_cast<std::size_t>(label)];
        const double v = vals[seg[k]];
        const double v_next = vals[seg[k + 1]];
        if (v == v_next) continue;  // not a boundary
        const std::size_t n_left = k + 1;
        const std::size_t n_right = total - n_left;
        if (n_left < params.min_samples_leaf ||
            n_right < params.min_samples_leaf) {
          continue;
        }
        const double weighted =
            (static_cast<double>(n_left) * gini(left_counts, n_left) +
             static_cast<double>(n_right) * gini(right_counts, n_right)) /
            static_cast<double>(total);
        if (weighted + 1e-12 < best_impurity) {
          best_impurity = weighted;
          best_feature = static_cast<int>(f);
          best_threshold = (v + v_next) / 2.0;
        }
      }
    }

    if (best_feature < 0 ||
        node_gini - best_impurity < params.min_impurity_decrease) {
      return my_index;  // no useful split
    }

    // Partition every feature's segment into (left, right), preserving
    // each segment's sort order — a stable two-pass copy via scratch.
    const double* split_vals =
        values_.data() + static_cast<std::size_t>(best_feature) * n_;
    std::size_t n_left = 0;
    {
      const std::uint32_t* seg = order_.data() + lo;  // feature 0 segment
      for (std::size_t k = 0; k < total; ++k) {
        const bool left = split_vals[seg[k]] <= best_threshold;
        goes_left_[seg[k]] = left;
        n_left += left ? 1 : 0;
      }
    }
    for (std::size_t f = 0; f < f_count_; ++f) {
      std::uint32_t* seg = order_.data() + f * n_ + lo;
      std::size_t l = 0, r = n_left;
      for (std::size_t k = 0; k < total; ++k) {
        scratch_[goes_left_[seg[k]] ? l++ : r++] = seg[k];
      }
      std::copy(scratch_.begin(),
                scratch_.begin() + static_cast<std::ptrdiff_t>(total), seg);
    }

    const int left_child = build(lo, lo + n_left, depth + 1);
    const int right_child = build(lo + n_left, hi, depth + 1);
    const auto my = static_cast<std::size_t>(my_index);
    tree_.feature_[my] = best_feature;
    tree_.threshold_[my] = best_threshold;
    tree_.left_[my] = left_child;
    tree_.right_[my] = right_child;
    return my_index;
  }

  DecisionTree& tree_;
  std::size_t n_;
  std::size_t f_count_;
  std::size_t n_classes_;
  std::vector<double> values_;        // column-major, f_count_ x n_
  std::vector<int> labels_;           // by local row id
  std::vector<std::uint32_t> order_;  // per-feature sorted local row ids
  std::vector<std::uint32_t> scratch_;
  std::vector<std::uint8_t> goes_left_;  // by local row id
};

void DecisionTree::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("cannot fit on empty dataset");
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0);
  // Matches the historical behavior: the class count of a full fit comes
  // from the whole dataset (== the sampled rows here).
  fit(data, rows);
}

void DecisionTree::fit(const Dataset& data, std::span<const std::size_t> rows) {
  if (rows.empty()) throw std::invalid_argument("cannot fit on empty dataset");
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  klass_.clear();
  probs_.clear();
  // Class count over the sampled rows only — identical to fitting on
  // data.subset(rows), whose num_classes() is max sampled label + 1.
  int n_classes = 0;
  for (std::size_t i : rows) {
    const int l = data.label(i);
    n_classes = l >= n_classes ? l + 1 : n_classes;
  }
  n_classes_ = n_classes;
  TreeBuilder builder(*this, data, rows, n_classes_);
  builder.run(0);
}

std::size_t DecisionTree::walk(std::span<const double> row) const {
  if (feature_.empty()) throw std::logic_error("tree is not trained");
  std::size_t at = 0;
  std::int32_t f = feature_[0];
  while (f >= 0) {
    at = static_cast<std::size_t>(row[static_cast<std::size_t>(f)] <=
                                          threshold_[at]
                                      ? left_[at]
                                      : right_[at]);
    f = feature_[at];
  }
  return at;
}

int DecisionTree::predict(std::span<const double> row) const {
  return klass_[walk(row)];
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> row) const {
  std::vector<double> out(static_cast<std::size_t>(n_classes_));
  predict_proba(row, out);
  return out;
}

void DecisionTree::predict_proba(std::span<const double> row,
                                 std::span<double> out) const {
  const std::size_t at = walk(row);
  const std::size_t nc = static_cast<std::size_t>(n_classes_);
  const double* probs = probs_.data() + at * nc;
  for (std::size_t c = 0; c < nc; ++c) out[c] = probs[c];
}

DecisionTree::Leaf DecisionTree::leaf_for(std::span<const double> row) const {
  const std::size_t at = walk(row);
  const std::size_t nc = static_cast<std::size_t>(n_classes_);
  return Leaf{klass_[at], std::span<const double>(probs_.data() + at * nc, nc)};
}

std::vector<int> DecisionTree::predict_all(const Dataset& data) const {
  std::vector<int> out(data.size());
  predict_all(data, out);
  return out;
}

void DecisionTree::predict_all(const Dataset& data, std::span<int> out) const {
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = predict(data.row(i));
  }
}

int DecisionTree::depth_of(int node) const {
  const auto i = static_cast<std::size_t>(node);
  if (feature_[i] < 0) return 0;
  return 1 + std::max(depth_of(left_[i]), depth_of(right_[i]));
}

int DecisionTree::depth() const { return feature_.empty() ? 0 : depth_of(0); }

std::size_t DecisionTree::leaf_count() const {
  std::size_t c = 0;
  for (std::int32_t f : feature_) c += f < 0 ? 1 : 0;
  return c;
}

std::string DecisionTree::to_text() const {
  std::ostringstream os;
  os.precision(17);
  os << "ccsig-dtree v1\n";
  os << "classes " << n_classes_ << "\n";
  os << "max_depth " << params_.max_depth << "\n";
  os << "nodes " << feature_.size() << "\n";
  const std::size_t nc = static_cast<std::size_t>(n_classes_);
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    if (feature_[i] < 0) {
      os << "leaf " << klass_[i];
    } else {
      os << "split " << feature_[i] << " " << threshold_[i] << " " << left_[i]
         << " " << right_[i] << " " << klass_[i];
    }
    for (std::size_t c = 0; c < nc; ++c) os << " " << probs_[i * nc + c];
    os << "\n";
  }
  return os.str();
}

DecisionTree DecisionTree::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "ccsig-dtree v1") {
    throw std::invalid_argument("bad decision-tree header");
  }
  DecisionTree tree;
  std::string word;
  std::size_t n_nodes = 0;
  is >> word >> tree.n_classes_;
  if (word != "classes") throw std::invalid_argument("expected 'classes'");
  is >> word >> tree.params_.max_depth;
  if (word != "max_depth") throw std::invalid_argument("expected 'max_depth'");
  is >> word >> n_nodes;
  if (word != "nodes") throw std::invalid_argument("expected 'nodes'");
  const std::size_t nc = static_cast<std::size_t>(tree.n_classes_);
  tree.feature_.reserve(n_nodes);
  tree.threshold_.reserve(n_nodes);
  tree.left_.reserve(n_nodes);
  tree.right_.reserve(n_nodes);
  tree.klass_.reserve(n_nodes);
  tree.probs_.reserve(n_nodes * nc);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1, right = -1;
    int klass = 0;
    is >> word;
    if (word == "leaf") {
      is >> klass;
    } else if (word == "split") {
      is >> feature >> threshold >> left >> right >> klass;
    } else {
      throw std::invalid_argument("bad node tag: " + word);
    }
    for (std::size_t c = 0; c < nc; ++c) {
      double p = 0.0;
      is >> p;
      tree.probs_.push_back(p);
    }
    if (!is) throw std::invalid_argument("truncated decision-tree text");
    tree.feature_.push_back(feature);
    tree.threshold_.push_back(threshold);
    tree.left_.push_back(left);
    tree.right_.push_back(right);
    tree.klass_.push_back(klass);
  }
  return tree;
}

void DecisionTree::describe_node(std::ostream& os, int node, int indent,
                                 const std::vector<std::string>& names) const {
  const auto i = static_cast<std::size_t>(node);
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (feature_[i] < 0) {
    os << pad << "-> class " << klass_[i] << "\n";
    return;
  }
  std::string fname;
  if (static_cast<std::size_t>(feature_[i]) < names.size()) {
    fname = names[static_cast<std::size_t>(feature_[i])];
  } else {
    fname = "f";
    fname += std::to_string(feature_[i]);
  }
  os << pad << "if " << fname << " <= " << threshold_[i] << ":\n";
  describe_node(os, left_[i], indent + 1, names);
  os << pad << "else:\n";
  describe_node(os, right_[i], indent + 1, names);
}

std::string DecisionTree::describe(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  os.precision(4);
  if (feature_.empty()) return "(untrained)\n";
  describe_node(os, 0, 0, feature_names);
  return os.str();
}

}  // namespace ccsig::ml

// Train/test splitting and k-fold cross-validation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ml/dataset.h"
#include "sim/random.h"

namespace ccsig::ml {

/// Stratified train/test split: each class contributes `test_fraction` of
/// its rows to the test set. Deterministic given the rng.
std::pair<Dataset, Dataset> stratified_split(const Dataset& data,
                                             double test_fraction,
                                             sim::Rng& rng);

/// Stratified sample of `fraction` of each class (the paper rebuilds its
/// model from 20% of Dispute2014, §5.3). Returns (sample, remainder).
/// The sample totals exactly round(fraction * size): per-class quotas are
/// floor(fraction * class_size) topped up by largest remainder (ties
/// toward the lower class index), so many small classes can no longer
/// each round up and overshoot the requested total.
std::pair<Dataset, Dataset> stratified_sample(const Dataset& data,
                                              double fraction, sim::Rng& rng);

/// k-fold index partition (shuffled, stratified). Each element is the set
/// of row indices belonging to that fold.
std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       int k, sim::Rng& rng);

}  // namespace ccsig::ml

// Parallel k-fold cross-validation for the tree classifiers.
//
// Folds are drawn serially (stratified, from one seed) before any fitting
// starts; the per-fold fits then run concurrently via
// runtime::parallel_map. Result: the fold trees, their accuracies, and
// the pooled accuracy are byte-identical for any `jobs` value — the same
// contract as the sweep and campaign drivers.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace ccsig::ml {

struct CrossValidation {
  /// fold_trees[f] is trained on every fold except f (folds are the
  /// stratified_folds partition for the given seed).
  std::vector<DecisionTree> fold_trees;
  /// Held-out accuracy of fold_trees[f] on fold f.
  std::vector<double> fold_accuracy;
  /// Pooled accuracy: correct held-out predictions over all rows.
  double accuracy = 0.0;
};

/// k-fold stratified CV of a decision tree with `params`; `jobs` worker
/// threads fit folds concurrently (<= 0 means runtime::default_jobs()).
/// Throws std::invalid_argument for k < 2 (via stratified_folds) or an
/// empty dataset.
CrossValidation cross_validate(const Dataset& data,
                               DecisionTree::Params params, int k,
                               std::uint64_t seed, int jobs = 1);

}  // namespace ccsig::ml

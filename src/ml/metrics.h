// Classifier evaluation: confusion matrix, precision/recall/F1, accuracy.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ccsig::ml {

/// Square confusion matrix; cell (actual, predicted).
class ConfusionMatrix {
 public:
  ConfusionMatrix(std::span<const int> y_true, std::span<const int> y_pred);

  std::size_t at(int actual, int predicted) const;
  int num_classes() const { return n_classes_; }
  std::size_t total() const { return total_; }

  double accuracy() const;
  /// Of everything predicted as `klass`, the fraction that really is.
  double precision(int klass) const;
  /// Of everything truly `klass`, the fraction predicted as such.
  double recall(int klass) const;
  double f1(int klass) const;

  std::string to_string(const std::vector<std::string>& class_names = {}) const;

 private:
  int n_classes_ = 0;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // row-major (actual * n + predicted)
};

}  // namespace ccsig::ml

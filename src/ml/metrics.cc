#include "ml/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ccsig::ml {

ConfusionMatrix::ConfusionMatrix(std::span<const int> y_true,
                                 std::span<const int> y_pred) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("y_true / y_pred size mismatch");
  }
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    n_classes_ = std::max({n_classes_, y_true[i] + 1, y_pred[i] + 1});
  }
  cells_.assign(static_cast<std::size_t>(n_classes_) *
                    static_cast<std::size_t>(n_classes_),
                0);
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] < 0 || y_pred[i] < 0) {
      throw std::invalid_argument("labels must be non-negative");
    }
    ++cells_[static_cast<std::size_t>(y_true[i]) *
                 static_cast<std::size_t>(n_classes_) +
             static_cast<std::size_t>(y_pred[i])];
  }
  total_ = y_true.size();
}

std::size_t ConfusionMatrix::at(int actual, int predicted) const {
  if (actual < 0 || actual >= n_classes_ || predicted < 0 ||
      predicted >= n_classes_) {
    throw std::out_of_range("confusion matrix index");
  }
  return cells_[static_cast<std::size_t>(actual) *
                    static_cast<std::size_t>(n_classes_) +
                static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < n_classes_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int klass) const {
  std::size_t predicted = 0;
  for (int a = 0; a < n_classes_; ++a) predicted += at(a, klass);
  if (predicted == 0) return 0.0;
  return static_cast<double>(at(klass, klass)) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int klass) const {
  std::size_t actual = 0;
  for (int p = 0; p < n_classes_; ++p) actual += at(klass, p);
  if (actual == 0) return 0.0;
  return static_cast<double>(at(klass, klass)) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(int klass) const {
  const double p = precision(klass);
  const double r = recall(klass);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  auto name = [&](int c) {
    return static_cast<std::size_t>(c) < class_names.size()
               ? class_names[static_cast<std::size_t>(c)]
               : "class" + std::to_string(c);
  };
  os << "actual \\ predicted\n";
  for (int a = 0; a < n_classes_; ++a) {
    os << name(a) << ":";
    for (int p = 0; p < n_classes_; ++p) os << " " << at(a, p);
    os << "\n";
  }
  return os.str();
}

}  // namespace ccsig::ml

#include "testbed/sweep.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/random.h"
#include "testbed/experiment.h"
#include "testbed/labeler.h"

namespace ccsig::testbed {

std::vector<SweepSample> run_sweep(const SweepOptions& opt) {
  std::vector<SweepSample> samples;
  sim::Rng seeder(opt.seed);

  const std::size_t total = opt.access_rates_mbps.size() *
                            opt.access_latencies_ms.size() *
                            opt.access_losses.size() *
                            opt.access_buffers_ms.size() * 2 *
                            static_cast<std::size_t>(opt.reps);
  std::size_t done = 0;

  for (double rate : opt.access_rates_mbps) {
    for (double latency : opt.access_latencies_ms) {
      for (double loss : opt.access_losses) {
        for (double buffer : opt.access_buffers_ms) {
          for (Scenario scenario :
               {Scenario::kSelfInduced, Scenario::kExternal}) {
            for (int rep = 0; rep < opt.reps; ++rep) {
              TestbedConfig cfg;
              cfg.scale = opt.scale;
              cfg.access_rate_mbps = rate;
              cfg.access_latency_ms = latency;
              cfg.access_loss = loss;
              cfg.access_buffer_ms = buffer;
              cfg.scenario = scenario;
              cfg.tgcong_flows = opt.tgcong_flows;
              cfg.test_duration = opt.test_duration;
              cfg.warmup = opt.warmup;
              cfg.congestion_control = opt.congestion_control;
              cfg.seed = seeder.next_u64();

              const TestResult r = run_testbed_experiment(cfg);
              ++done;
              if (opt.progress) opt.progress(done, total);
              if (!r.features) continue;

              SweepSample s;
              s.norm_diff = r.features->norm_diff;
              s.cov = r.features->cov;
              s.rtt_slope = r.features->rtt_slope;
              s.rtt_iqr = r.features->rtt_iqr;
              s.slow_start_tput_bps = r.features->slow_start_throughput_bps;
              s.flow_tput_bps = r.receiver_throughput_bps;
              s.access_capacity_bps = r.access_capacity_bps;
              s.scenario = static_cast<int>(
                  scenario == Scenario::kExternal
                      ? CongestionClass::kExternal
                      : CongestionClass::kSelfInduced);
              s.access_rate_mbps = rate;
              s.access_latency_ms = latency;
              s.access_loss = loss;
              s.access_buffer_ms = buffer;
              samples.push_back(s);
            }
          }
        }
      }
    }
  }
  return samples;
}

int label_sample(const SweepSample& s, double threshold) {
  const bool reached = reached_capacity(s.slow_start_tput_bps,
                                        s.access_capacity_bps, threshold);
  const bool external_run =
      s.scenario == static_cast<int>(CongestionClass::kExternal);
  if (reached) {
    return external_run ? -1
                        : static_cast<int>(CongestionClass::kSelfInduced);
  }
  return external_run ? static_cast<int>(CongestionClass::kExternal) : -1;
}

ml::Dataset make_dataset(const std::vector<SweepSample>& samples,
                         double threshold, bool extended_features) {
  std::vector<std::string> names = {"norm_diff", "cov"};
  if (extended_features) {
    names.push_back("rtt_slope");
    names.push_back("rtt_iqr");
  }
  ml::Dataset data(names);
  for (const SweepSample& s : samples) {
    const int label = label_sample(s, threshold);
    if (label < 0) continue;
    std::vector<double> row = {s.norm_diff, s.cov};
    if (extended_features) {
      row.push_back(s.rtt_slope);
      row.push_back(s.rtt_iqr);
    }
    data.add(std::move(row), label);
  }
  return data;
}

namespace {
constexpr char kCsvHeader[] =
    "norm_diff,cov,rtt_slope,rtt_iqr,slow_start_tput_bps,flow_tput_bps,"
    "access_capacity_bps,scenario,access_rate_mbps,access_latency_ms,"
    "access_loss,access_buffer_ms";
}  // namespace

void save_samples_csv(const std::string& path,
                      const std::vector<SweepSample>& samples) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write sweep csv: " + path);
  out.precision(17);
  out << kCsvHeader << "\n";
  for (const SweepSample& s : samples) {
    out << s.norm_diff << ',' << s.cov << ',' << s.rtt_slope << ','
        << s.rtt_iqr << ',' << s.slow_start_tput_bps << ',' << s.flow_tput_bps
        << ',' << s.access_capacity_bps << ',' << s.scenario << ','
        << s.access_rate_mbps << ',' << s.access_latency_ms << ','
        << s.access_loss << ',' << s.access_buffer_ms << "\n";
  }
}

std::vector<SweepSample> load_samples_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read sweep csv: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kCsvHeader) {
    throw std::runtime_error("unrecognized sweep csv header in " + path);
  }
  std::vector<SweepSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    SweepSample s;
    char comma;
    row >> s.norm_diff >> comma >> s.cov >> comma >> s.rtt_slope >> comma >>
        s.rtt_iqr >> comma >> s.slow_start_tput_bps >> comma >>
        s.flow_tput_bps >> comma >> s.access_capacity_bps >> comma >>
        s.scenario >> comma >> s.access_rate_mbps >> comma >>
        s.access_latency_ms >> comma >> s.access_loss >> comma >>
        s.access_buffer_ms;
    if (!row) throw std::runtime_error("malformed sweep csv row: " + line);
    samples.push_back(s);
  }
  return samples;
}

std::vector<SweepSample> load_or_run_sweep(const std::string& cache_path,
                                           const SweepOptions& opt) {
  if (std::filesystem::exists(cache_path)) {
    return load_samples_csv(cache_path);
  }
  auto samples = run_sweep(opt);
  save_samples_csv(cache_path, samples);
  return samples;
}

}  // namespace ccsig::testbed

#include "testbed/sweep.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runtime/parallel_map.h"
#include "sim/random.h"
#include "testbed/experiment.h"
#include "testbed/labeler.h"

namespace ccsig::testbed {

std::vector<SweepSample> run_sweep(const SweepOptions& opt) {
  // Deterministic pre-pass: enumerate the grid in the canonical order and
  // draw every run's seed up front. A run's seed depends only on its slot
  // in the enumeration — never on execution order — so the parallel sweep
  // reproduces the serial one exactly.
  std::vector<TestbedConfig> runs;
  runs.reserve(opt.access_rates_mbps.size() * opt.access_latencies_ms.size() *
               opt.access_losses.size() * opt.access_buffers_ms.size() * 2 *
               static_cast<std::size_t>(opt.reps));
  sim::Rng seeder(opt.seed);
  for (double rate : opt.access_rates_mbps) {
    for (double latency : opt.access_latencies_ms) {
      for (double loss : opt.access_losses) {
        for (double buffer : opt.access_buffers_ms) {
          for (Scenario scenario :
               {Scenario::kSelfInduced, Scenario::kExternal}) {
            for (int rep = 0; rep < opt.reps; ++rep) {
              TestbedConfig cfg;
              cfg.scale = opt.scale;
              cfg.access_rate_mbps = rate;
              cfg.access_latency_ms = latency;
              cfg.access_loss = loss;
              cfg.access_buffer_ms = buffer;
              cfg.scenario = scenario;
              cfg.tgcong_flows = opt.tgcong_flows;
              cfg.test_duration = opt.test_duration;
              cfg.warmup = opt.warmup;
              cfg.congestion_control = opt.congestion_control;
              cfg.seed = seeder.next_u64();
              runs.push_back(cfg);
            }
          }
        }
      }
    }
  }

  runtime::ProgressCounter progress(runs.size(), opt.progress);
  const std::vector<TestResult> results = runtime::parallel_map(
      runs, [](const TestbedConfig& cfg) { return run_testbed_experiment(cfg); },
      opt.jobs, &progress);

  // Collect in slot order so the sample sequence matches the serial loop.
  std::vector<SweepSample> samples;
  samples.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TestResult& r = results[i];
    if (!r.features) continue;
    const TestbedConfig& cfg = runs[i];

    SweepSample s;
    s.norm_diff = r.features->norm_diff;
    s.cov = r.features->cov;
    s.rtt_slope = r.features->rtt_slope;
    s.rtt_iqr = r.features->rtt_iqr;
    s.slow_start_tput_bps = r.features->slow_start_throughput_bps;
    s.flow_tput_bps = r.receiver_throughput_bps;
    s.access_capacity_bps = r.access_capacity_bps;
    s.scenario = static_cast<int>(cfg.scenario == Scenario::kExternal
                                      ? CongestionClass::kExternal
                                      : CongestionClass::kSelfInduced);
    s.access_rate_mbps = cfg.access_rate_mbps;
    s.access_latency_ms = cfg.access_latency_ms;
    s.access_loss = cfg.access_loss;
    s.access_buffer_ms = cfg.access_buffer_ms;
    samples.push_back(s);
  }
  return samples;
}

int label_sample(const SweepSample& s, double threshold) {
  const bool reached = reached_capacity(s.slow_start_tput_bps,
                                        s.access_capacity_bps, threshold);
  const bool external_run =
      s.scenario == static_cast<int>(CongestionClass::kExternal);
  if (reached) {
    return external_run ? -1
                        : static_cast<int>(CongestionClass::kSelfInduced);
  }
  return external_run ? static_cast<int>(CongestionClass::kExternal) : -1;
}

ml::Dataset make_dataset(const std::vector<SweepSample>& samples,
                         double threshold, bool extended_features) {
  std::vector<std::string> names = {"norm_diff", "cov"};
  if (extended_features) {
    names.push_back("rtt_slope");
    names.push_back("rtt_iqr");
  }
  ml::Dataset data(names);
  for (const SweepSample& s : samples) {
    const int label = label_sample(s, threshold);
    if (label < 0) continue;
    std::vector<double> row = {s.norm_diff, s.cov};
    if (extended_features) {
      row.push_back(s.rtt_slope);
      row.push_back(s.rtt_iqr);
    }
    data.add(std::move(row), label);
  }
  return data;
}

namespace {
constexpr char kCsvHeader[] =
    "norm_diff,cov,rtt_slope,rtt_iqr,slow_start_tput_bps,flow_tput_bps,"
    "access_capacity_bps,scenario,access_rate_mbps,access_latency_ms,"
    "access_loss,access_buffer_ms";
constexpr char kFingerprintPrefix[] = "# options: ";

void append_doubles(std::ostream& out, const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out << '|';
    out << v[i];
  }
}
}  // namespace

std::string sweep_fingerprint(const SweepOptions& opt) {
  std::ostringstream out;
  out.precision(17);
  out << "sweep-v1 rates=";
  append_doubles(out, opt.access_rates_mbps);
  out << " latencies=";
  append_doubles(out, opt.access_latencies_ms);
  out << " losses=";
  append_doubles(out, opt.access_losses);
  out << " buffers=";
  append_doubles(out, opt.access_buffers_ms);
  out << " reps=" << opt.reps << " scale=" << opt.scale
      << " duration=" << sim::to_seconds(opt.test_duration)
      << " warmup=" << sim::to_seconds(opt.warmup)
      << " tgcong_flows=" << opt.tgcong_flows
      << " cc=" << opt.congestion_control << " seed=" << opt.seed;
  return out.str();
}

void save_samples_csv(const std::string& path,
                      const std::vector<SweepSample>& samples,
                      const std::string& fingerprint) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write sweep csv: " + path);
  out.precision(17);
  if (!fingerprint.empty()) out << kFingerprintPrefix << fingerprint << "\n";
  out << kCsvHeader << "\n";
  for (const SweepSample& s : samples) {
    out << s.norm_diff << ',' << s.cov << ',' << s.rtt_slope << ','
        << s.rtt_iqr << ',' << s.slow_start_tput_bps << ',' << s.flow_tput_bps
        << ',' << s.access_capacity_bps << ',' << s.scenario << ','
        << s.access_rate_mbps << ',' << s.access_latency_ms << ','
        << s.access_loss << ',' << s.access_buffer_ms << "\n";
  }
}

std::vector<SweepSample> load_samples_csv(const std::string& path,
                                          std::string* fingerprint_out) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read sweep csv: " + path);
  std::string line;
  std::string fingerprint;
  if (!std::getline(in, line)) {
    throw std::runtime_error("unrecognized sweep csv header in " + path);
  }
  if (line.rfind(kFingerprintPrefix, 0) == 0) {
    fingerprint = line.substr(sizeof(kFingerprintPrefix) - 1);
    if (!std::getline(in, line)) line.clear();
  }
  if (line != kCsvHeader) {
    throw std::runtime_error("unrecognized sweep csv header in " + path);
  }
  if (fingerprint_out) *fingerprint_out = fingerprint;
  std::vector<SweepSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    SweepSample s;
    char comma;
    row >> s.norm_diff >> comma >> s.cov >> comma >> s.rtt_slope >> comma >>
        s.rtt_iqr >> comma >> s.slow_start_tput_bps >> comma >>
        s.flow_tput_bps >> comma >> s.access_capacity_bps >> comma >>
        s.scenario >> comma >> s.access_rate_mbps >> comma >>
        s.access_latency_ms >> comma >> s.access_loss >> comma >>
        s.access_buffer_ms;
    if (!row) throw std::runtime_error("malformed sweep csv row: " + line);
    samples.push_back(s);
  }
  return samples;
}

std::vector<SweepSample> load_or_run_sweep(const std::string& cache_path,
                                           const SweepOptions& opt) {
  const std::string want = sweep_fingerprint(opt);
  if (std::filesystem::exists(cache_path)) {
    std::string have;
    auto samples = load_samples_csv(cache_path, &have);
    // Legacy caches predate fingerprinting; trust them as before. A
    // fingerprinted cache written under different options is stale.
    if (have.empty() || have == want) return samples;
  }
  auto samples = run_sweep(opt);
  save_samples_csv(cache_path, samples, want);
  return samples;
}

}  // namespace ccsig::testbed

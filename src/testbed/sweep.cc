#include "testbed/sweep.h"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "runtime/atomic_file.h"
#include "runtime/campaign.h"
#include "runtime/csv.h"
#include "sim/random.h"
#include "testbed/experiment.h"
#include "testbed/labeler.h"

namespace ccsig::testbed {

namespace {
constexpr char kCsvHeader[] =
    "norm_diff,cov,rtt_slope,rtt_iqr,slow_start_tput_bps,flow_tput_bps,"
    "access_capacity_bps,scenario,access_rate_mbps,access_latency_ms,"
    "access_loss,access_buffer_ms";
constexpr char kFingerprintPrefix[] = "# options: ";
/// Checkpoint marker for a run that completed but produced no sample
/// (features unavailable) — still "done", must not be re-run on resume.
constexpr char kNoSampleRow[] = "-";

void append_doubles(std::ostream& out, const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out << '|';
    out << v[i];
  }
}

/// The one formatter behind both the cache CSV and the shard checkpoint:
/// byte-identical rows are what make kill/resume reproducible.
std::string format_sample_row(const SweepSample& s) {
  std::ostringstream out;
  out.precision(17);
  out << s.norm_diff << ',' << s.cov << ',' << s.rtt_slope << ','
      << s.rtt_iqr << ',' << s.slow_start_tput_bps << ',' << s.flow_tput_bps
      << ',' << s.access_capacity_bps << ',' << s.scenario << ','
      << s.access_rate_mbps << ',' << s.access_latency_ms << ','
      << s.access_loss << ',' << s.access_buffer_ms;
  return out.str();
}

SweepSample parse_sample_row(const std::string& line, const std::string& file,
                             std::uint64_t line_no) {
  runtime::CsvRow row(line, file, line_no);
  SweepSample s;
  s.norm_diff = row.next_double();
  s.cov = row.next_double();
  s.rtt_slope = row.next_double();
  s.rtt_iqr = row.next_double();
  s.slow_start_tput_bps = row.next_double();
  s.flow_tput_bps = row.next_double();
  s.access_capacity_bps = row.next_double();
  s.scenario = row.next_int();
  s.access_rate_mbps = row.next_double();
  s.access_latency_ms = row.next_double();
  s.access_loss = row.next_double();
  s.access_buffer_ms = row.next_double();
  row.expect_end();
  return s;
}

/// Runs one grid point and reduces it to its (optional) sample.
std::optional<SweepSample> run_one(const TestbedConfig& cfg) {
  const TestResult r = run_testbed_experiment(cfg);
  if (!r.features) return std::nullopt;
  SweepSample s;
  s.norm_diff = r.features->norm_diff;
  s.cov = r.features->cov;
  s.rtt_slope = r.features->rtt_slope;
  s.rtt_iqr = r.features->rtt_iqr;
  s.slow_start_tput_bps = r.features->slow_start_throughput_bps;
  s.flow_tput_bps = r.receiver_throughput_bps;
  s.access_capacity_bps = r.access_capacity_bps;
  s.scenario = static_cast<int>(cfg.scenario == Scenario::kExternal
                                    ? CongestionClass::kExternal
                                    : CongestionClass::kSelfInduced);
  s.access_rate_mbps = cfg.access_rate_mbps;
  s.access_latency_ms = cfg.access_latency_ms;
  s.access_loss = cfg.access_loss;
  s.access_buffer_ms = cfg.access_buffer_ms;
  return s;
}

}  // namespace

std::vector<SweepSample> run_sweep(const SweepOptions& opt) {
  // Deterministic pre-pass: enumerate the grid in the canonical order and
  // draw every run's seed up front. A run's seed depends only on its slot
  // in the enumeration — never on execution order — so the parallel sweep
  // reproduces the serial one exactly, and a resumed sweep reproduces an
  // uninterrupted one.
  std::vector<TestbedConfig> runs;
  runs.reserve(opt.access_rates_mbps.size() * opt.access_latencies_ms.size() *
               opt.access_losses.size() * opt.access_buffers_ms.size() * 2 *
               static_cast<std::size_t>(opt.reps));
  sim::Rng seeder(opt.seed);
  for (double rate : opt.access_rates_mbps) {
    for (double latency : opt.access_latencies_ms) {
      for (double loss : opt.access_losses) {
        for (double buffer : opt.access_buffers_ms) {
          for (Scenario scenario :
               {Scenario::kSelfInduced, Scenario::kExternal}) {
            for (int rep = 0; rep < opt.reps; ++rep) {
              TestbedConfig cfg;
              cfg.scale = opt.scale;
              cfg.access_rate_mbps = rate;
              cfg.access_latency_ms = latency;
              cfg.access_loss = loss;
              cfg.access_buffer_ms = buffer;
              cfg.scenario = scenario;
              cfg.tgcong_flows = opt.tgcong_flows;
              cfg.test_duration = opt.test_duration;
              cfg.warmup = opt.warmup;
              cfg.congestion_control = opt.congestion_control;
              cfg.seed = seeder.next_u64();
              runs.push_back(cfg);
            }
          }
        }
      }
    }
  }

  // The telemetry sink rides on the first run only: one exemplar cwnd/RTT
  // trajectory per sweep without recording thousands of flows.
  if (opt.telemetry && !runs.empty()) runs.front().telemetry = opt.telemetry;

  runtime::CheckpointedRunOptions ropt;
  ropt.checkpoint_path = opt.checkpoint_path;
  ropt.fingerprint = sweep_fingerprint(opt);
  ropt.checkpoint_every = opt.checkpoint_every;
  ropt.jobs = opt.jobs;
  ropt.retry = opt.retry;
  ropt.soft_deadline = opt.soft_deadline;
  ropt.abandon_on_deadline = opt.abandon_on_deadline;
  ropt.faults = opt.faults;
  ropt.progress = opt.progress;
  // By value: abandoned jobs may report errors after this frame is gone.
  std::vector<std::uint64_t> seeds(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) seeds[i] = runs[i].seed;
  ropt.seed_of = [seeds](std::size_t slot) { return seeds[slot]; };
  ropt.errors_out = opt.errors_out;
  ropt.commit_out = opt.checkpoint_commit_out;
  ropt.stats_out = opt.stats_out;

  const auto slots = runtime::run_checkpointed(
      runs, run_one,
      [](const std::optional<SweepSample>& s) {
        return s ? format_sample_row(*s) : std::string(kNoSampleRow);
      },
      [&ropt](const std::string& line) -> std::optional<SweepSample> {
        if (line == kNoSampleRow) return std::nullopt;
        return parse_sample_row(line, ropt.checkpoint_path, 0);
      },
      ropt);

  // Collect in slot order so the sample sequence matches the serial loop.
  std::vector<SweepSample> samples;
  samples.reserve(slots.size());
  for (const auto& slot : slots) {
    if (slot && *slot) samples.push_back(**slot);
  }
  return samples;
}

int label_sample(const SweepSample& s, double threshold) {
  const bool reached = reached_capacity(s.slow_start_tput_bps,
                                        s.access_capacity_bps, threshold);
  const bool external_run =
      s.scenario == static_cast<int>(CongestionClass::kExternal);
  if (reached) {
    return external_run ? -1
                        : static_cast<int>(CongestionClass::kSelfInduced);
  }
  return external_run ? static_cast<int>(CongestionClass::kExternal) : -1;
}

ml::Dataset make_dataset(const std::vector<SweepSample>& samples,
                         double threshold, bool extended_features) {
  std::vector<std::string> names = {"norm_diff", "cov"};
  if (extended_features) {
    names.push_back("rtt_slope");
    names.push_back("rtt_iqr");
  }
  ml::Dataset data(names);
  for (const SweepSample& s : samples) {
    const int label = label_sample(s, threshold);
    if (label < 0) continue;
    std::vector<double> row = {s.norm_diff, s.cov};
    if (extended_features) {
      row.push_back(s.rtt_slope);
      row.push_back(s.rtt_iqr);
    }
    data.add(std::move(row), label);
  }
  return data;
}

std::string sweep_fingerprint(const SweepOptions& opt) {
  std::ostringstream out;
  out.precision(17);
  out << "sweep-v1 rates=";
  append_doubles(out, opt.access_rates_mbps);
  out << " latencies=";
  append_doubles(out, opt.access_latencies_ms);
  out << " losses=";
  append_doubles(out, opt.access_losses);
  out << " buffers=";
  append_doubles(out, opt.access_buffers_ms);
  out << " reps=" << opt.reps << " scale=" << opt.scale
      << " duration=" << sim::to_seconds(opt.test_duration)
      << " warmup=" << sim::to_seconds(opt.warmup)
      << " tgcong_flows=" << opt.tgcong_flows
      << " cc=" << opt.congestion_control << " seed=" << opt.seed;
  return out.str();
}

void save_samples_csv(const std::string& path,
                      const std::vector<SweepSample>& samples,
                      const std::string& fingerprint) {
  std::ostringstream out;
  if (!fingerprint.empty()) out << kFingerprintPrefix << fingerprint << "\n";
  out << kCsvHeader << "\n";
  for (const SweepSample& s : samples) out << format_sample_row(s) << "\n";
  runtime::write_file_atomic(path, out.str());
}

std::vector<SweepSample> load_samples_csv(const std::string& path,
                                          std::string* fingerprint_out) {
  std::ifstream in(path);
  if (!in) {
    runtime::throw_parse_error(path, 0, "line", "cannot read sweep csv");
  }
  std::string line;
  std::string fingerprint;
  std::uint64_t line_no = 1;
  if (!std::getline(in, line)) {
    runtime::throw_parse_error(path, line_no, "line",
                               "empty file (expected csv header)");
  }
  if (line.rfind(kFingerprintPrefix, 0) == 0) {
    fingerprint = line.substr(sizeof(kFingerprintPrefix) - 1);
    ++line_no;
    if (!std::getline(in, line)) line.clear();
  }
  if (line != kCsvHeader) {
    runtime::throw_parse_error(path, line_no, "line",
                               "unrecognized sweep csv header");
  }
  if (fingerprint_out) *fingerprint_out = fingerprint;
  std::vector<SweepSample> samples;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    samples.push_back(parse_sample_row(line, path, line_no));
  }
  return samples;
}

std::vector<SweepSample> load_or_run_sweep(const std::string& cache_path,
                                           const SweepOptions& opt) {
  const std::string want = sweep_fingerprint(opt);
  if (std::filesystem::exists(cache_path)) {
    try {
      std::string have;
      auto samples = load_samples_csv(cache_path, &have);
      // Legacy caches predate fingerprinting; trust them as before. A
      // fingerprinted cache written under different options is stale.
      if (have.empty() || have == want) return samples;
    } catch (const runtime::ParseException&) {
      // Corrupt cache: regenerate below instead of failing the caller.
    }
  }
  SweepOptions resumable = opt;
  if (resumable.checkpoint_path.empty()) {
    resumable.checkpoint_path = cache_path + ".ckpt";
  }
  // A partial result (some runs failed permanently) must never become a
  // fingerprinted cache hit: skip the cache write so the kept checkpoint
  // drives a retry of only the failed slots on the next invocation.
  std::vector<runtime::JobError> local_errors;
  if (!resumable.errors_out) resumable.errors_out = &local_errors;
  const std::size_t errors_before = resumable.errors_out->size();
  std::function<void()> commit;
  resumable.checkpoint_commit_out = &commit;
  runtime::CampaignStats stats;
  if (!resumable.stats_out) resumable.stats_out = &stats;
  auto samples = run_sweep(resumable);
  if (resumable.errors_out->size() == errors_before) {
    // Cache first, checkpoint removal second: a crash between the two only
    // costs a cheap resume-with-nothing-pending, never recorded progress.
    obs::TraceSpan span("campaign.cache_commit", "campaign");
    save_samples_csv(cache_path, samples, want);
    if (commit) commit();
  }
  // Auditability side artifact (never read back, never fingerprinted):
  // the campaign's slot accounting + the process metrics snapshot. Written
  // on partial failure too, so a retry storm leaves evidence.
  runtime::write_file_atomic(
      cache_path + ".metrics.json",
      runtime::campaign_metrics_json(want, *resumable.stats_out));
  return samples;
}

}  // namespace ccsig::testbed

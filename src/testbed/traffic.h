// Cross-traffic generators modeled on the paper's TGtrans and TGcong (§3.1).
//
// TGtrans: worker loops fetching web-like objects (10 KB – 100 MB, frequency
// inversely proportional to size) from servers 20 ms and 60 ms away,
// providing transient load on the interconnect.
//
// TGcong: N concurrent bulk fetches of a large object from a nearby server,
// restarting immediately — saturates the interconnect when N is large.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/network.h"
#include "sim/random.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace ccsig::testbed {

/// Hands out unique client-side ports so concurrent fetches never collide.
class PortAllocator {
 public:
  explicit PortAllocator(sim::Port first = 10000) : next_(first) {}
  sim::Port next() { return next_++; }

 private:
  sim::Port next_;
};

/// One self-restarting fetch loop: open a connection from `server` to
/// `client`, transfer `size_sampler()` bytes, idle for `think_sampler()`
/// seconds, repeat. Connections are torn down between fetches.
class FetchLoop {
 public:
  struct Config {
    sim::Node* server = nullptr;     // data sender
    sim::Node* client = nullptr;     // data receiver
    sim::Port server_port = 0;
    std::function<std::uint64_t()> size_sampler;
    std::function<double()> think_sampler;  // seconds between fetches
    std::string congestion_control = "reno";
    int receiver_segments_per_ack = 2;
  };

  FetchLoop(sim::Simulator& sim, PortAllocator& ports, Config cfg);
  ~FetchLoop() = default;
  FetchLoop(const FetchLoop&) = delete;
  FetchLoop& operator=(const FetchLoop&) = delete;

  /// Schedules the first fetch at absolute time `at`.
  void start(sim::Time at);

  std::uint64_t fetches_completed() const { return completed_; }
  std::uint64_t bytes_fetched() const { return bytes_; }

 private:
  void begin_fetch();
  void finish_fetch(std::uint64_t bytes);

  sim::Simulator& sim_;
  PortAllocator& ports_;
  Config cfg_;
  std::unique_ptr<tcp::TcpSource> source_;
  std::unique_ptr<tcp::TcpSink> sink_;
  std::uint64_t completed_ = 0;
  std::uint64_t bytes_ = 0;
};

/// TGtrans: `workers` FetchLoops picking randomly among (server, RTT) pairs
/// with web-like object sizes.
class TgTrans {
 public:
  struct Config {
    std::vector<sim::Node*> servers;  // e.g. {server2 (20ms), server3 (60ms)}
    sim::Node* client = nullptr;      // Pi 2
    int workers = 4;
    double scale = 1.0;               // scales object sizes with link rates
    double mean_think_s = 0.05;
  };

  TgTrans(sim::Simulator& sim, PortAllocator& ports, sim::Rng rng, Config cfg);
  void start(sim::Time at);

  std::uint64_t fetches_completed() const;

 private:
  std::vector<std::unique_ptr<FetchLoop>> loops_;
};

/// TGcong: `flows` concurrent bulk-fetch loops from a nearby server.
class TgCong {
 public:
  struct Config {
    sim::Node* server = nullptr;  // Server 4 (≈2 ms away)
    sim::Node* client = nullptr;  // Router 2
    int flows = 100;
    std::uint64_t object_bytes = 100ull << 20;  // 100 MB at scale 1
    double scale = 1.0;
    /// Flow starts are staggered uniformly over this window so the loss
    /// synchronization of a simultaneous mass start does not dominate.
    sim::Duration start_stagger = sim::from_seconds(1.0);
    std::string congestion_control = "cubic";  // Linux default of the era
  };

  TgCong(sim::Simulator& sim, PortAllocator& ports, sim::Rng rng, Config cfg);
  void start(sim::Time at);

  std::uint64_t bytes_fetched() const;

 private:
  std::vector<std::unique_ptr<FetchLoop>> loops_;
  std::vector<sim::Duration> start_offsets_;
};

}  // namespace ccsig::testbed

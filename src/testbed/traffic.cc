#include "testbed/traffic.h"

#include <algorithm>
#include <utility>

namespace ccsig::testbed {

FetchLoop::FetchLoop(sim::Simulator& sim, PortAllocator& ports, Config cfg)
    : sim_(sim), ports_(ports), cfg_(std::move(cfg)) {}

void FetchLoop::start(sim::Time at) {
  sim_.schedule_at(at, [this] { begin_fetch(); });
}

void FetchLoop::begin_fetch() {
  const std::uint64_t size = std::max<std::uint64_t>(1, cfg_.size_sampler());

  sim::FlowKey key;
  key.src_addr = cfg_.server->address();
  key.dst_addr = cfg_.client->address();
  key.src_port = cfg_.server_port != 0 ? cfg_.server_port : ports_.next();
  key.dst_port = ports_.next();

  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  sink_cfg.segments_per_ack = cfg_.receiver_segments_per_ack;
  sink_ = std::make_unique<tcp::TcpSink>(sim_, cfg_.client, sink_cfg);

  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.bytes_to_send = size;
  src_cfg.congestion_control = cfg_.congestion_control;
  source_ = std::make_unique<tcp::TcpSource>(sim_, cfg_.server, src_cfg);
  source_->set_on_complete([this, size] { finish_fetch(size); });
  source_->start();
}

void FetchLoop::finish_fetch(std::uint64_t bytes) {
  ++completed_;
  bytes_ += bytes;
  const double think_s =
      cfg_.think_sampler ? std::max(0.0, cfg_.think_sampler()) : 0.0;
  // Destruction and restart are deferred: finish_fetch() is invoked from
  // inside the TcpSource's own ACK processing.
  sim_.schedule_in(sim::from_seconds(think_s), [this] {
    source_.reset();
    sink_.reset();
    begin_fetch();
  });
}

namespace {

/// Web-like object size sampler: sizes 10 KB … 100 MB with frequency
/// inversely proportional to size (paper §3.1), scaled with link rates.
std::function<std::uint64_t()> web_size_sampler(sim::Rng rng, double scale) {
  const std::vector<std::uint64_t> sizes = {10ull << 10, 100ull << 10,
                                            1ull << 20, 10ull << 20,
                                            100ull << 20};
  std::vector<double> weights;
  weights.reserve(sizes.size());
  for (std::uint64_t s : sizes) weights.push_back(1.0 / static_cast<double>(s));
  return [rng, scale, sizes, weights]() mutable {
    const std::size_t i = rng.weighted_index(weights);
    const double scaled = static_cast<double>(sizes[i]) * scale;
    return static_cast<std::uint64_t>(std::max(1024.0, scaled));
  };
}

}  // namespace

TgTrans::TgTrans(sim::Simulator& sim, PortAllocator& ports, sim::Rng rng,
                 Config cfg) {
  for (int w = 0; w < cfg.workers; ++w) {
    sim::Rng pick_rng = rng.fork();
    sim::Rng think_rng = rng.fork();
    // Each worker alternates randomly among the servers; sampling the server
    // happens at fetch time by round-robining a pre-shuffled choice.
    sim::Node* server = cfg.servers[static_cast<std::size_t>(
        pick_rng.uniform_int(0, static_cast<std::int64_t>(cfg.servers.size()) - 1))];
    FetchLoop::Config lc;
    lc.server = server;
    lc.client = cfg.client;
    lc.size_sampler = web_size_sampler(rng.fork(), cfg.scale);
    const double mean_think = cfg.mean_think_s;
    lc.think_sampler = [think_rng, mean_think]() mutable {
      return think_rng.exponential(mean_think);
    };
    loops_.push_back(std::make_unique<FetchLoop>(sim, ports, std::move(lc)));
  }
}

void TgTrans::start(sim::Time at) {
  for (auto& l : loops_) l->start(at);
}

std::uint64_t TgTrans::fetches_completed() const {
  std::uint64_t total = 0;
  for (const auto& l : loops_) total += l->fetches_completed();
  return total;
}

TgCong::TgCong(sim::Simulator& sim, PortAllocator& ports, sim::Rng rng,
               Config cfg) {
  const auto object = static_cast<std::uint64_t>(
      std::max(1.0 * (1 << 20), static_cast<double>(cfg.object_bytes) * cfg.scale));
  for (int f = 0; f < cfg.flows; ++f) {
    FetchLoop::Config lc;
    lc.server = cfg.server;
    lc.client = cfg.client;
    lc.size_sampler = [object] { return object; };
    lc.think_sampler = nullptr;  // restart immediately (100 curl loops)
    lc.congestion_control = cfg.congestion_control;
    loops_.push_back(std::make_unique<FetchLoop>(sim, ports, std::move(lc)));
    start_offsets_.push_back(static_cast<sim::Duration>(
        rng.uniform(0.0, static_cast<double>(cfg.start_stagger))));
  }
}

void TgCong::start(sim::Time at) {
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->start(at + start_offsets_[i]);
  }
}

std::uint64_t TgCong::bytes_fetched() const {
  std::uint64_t total = 0;
  for (const auto& l : loops_) total += l->bytes_fetched();
  return total;
}

}  // namespace ccsig::testbed

#include "testbed/labeler.h"

namespace ccsig::testbed {

std::optional<CongestionClass> label_test(const TestResult& result,
                                          double threshold) {
  if (!result.features) return std::nullopt;
  const bool reached =
      reached_capacity(result.features->slow_start_throughput_bps,
                       result.access_capacity_bps, threshold);
  if (reached) {
    // Externally congested runs that still reached capacity are transient
    // artifacts (§3.1); drop them rather than mislabel.
    if (result.scenario == Scenario::kExternal) return std::nullopt;
    return CongestionClass::kSelfInduced;
  }
  // Did not reach capacity: self-induced runs that fell short are also
  // filtered; external-scenario runs are genuine external congestion.
  if (result.scenario == Scenario::kSelfInduced) return std::nullopt;
  return CongestionClass::kExternal;
}

}  // namespace ccsig::testbed

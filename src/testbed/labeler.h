// Congestion-threshold labeling of testbed runs (paper §3.1).
//
// A test whose slow-start throughput reaches `threshold × access capacity`
// is labeled self-induced. Tests inconsistent with their scenario (an
// external-scenario run that reached capacity anyway, or a self-scenario
// run that failed to) are filtered out, exactly as the paper does.
#pragma once

#include <optional>

#include "testbed/config.h"
#include "testbed/experiment.h"

namespace ccsig::testbed {

/// True when the flow's slow-start throughput clears the threshold.
inline bool reached_capacity(double slow_start_tput_bps, double capacity_bps,
                             double threshold) {
  return slow_start_tput_bps >= threshold * capacity_bps;
}

/// Labels one test; nullopt means "filtered" (invalid features or
/// scenario-inconsistent outcome).
std::optional<CongestionClass> label_test(const TestResult& result,
                                          double threshold);

}  // namespace ccsig::testbed

// Experiment parameterization for the paper's controlled testbed (§3.1).
#pragma once

#include <cstdint>
#include <string>

#include "obs/flow_telemetry.h"
#include "sim/time.h"

namespace ccsig::testbed {

/// Which congestion scenario the run emulates.
enum class Scenario {
  kSelfInduced,  // no TGcong: the test flow saturates the access link
  kExternal,     // TGcong saturates the interconnect before the test starts
};

/// Ground-truth / assigned flow classes, used consistently everywhere.
/// (External = 0, Self-induced = 1.)
enum class CongestionClass : int {
  kExternal = 0,
  kSelfInduced = 1,
};

inline const char* to_string(CongestionClass c) {
  return c == CongestionClass::kExternal ? "external" : "self";
}

/// Full description of one testbed throughput test (paper Figure 2).
struct TestbedConfig {
  /// Global capacity scale. 1.0 reproduces the paper's testbed rates;
  /// smaller values shrink every link rate (buffers are specified in
  /// milliseconds, so queueing *delays* — and therefore the RTT signatures —
  /// are preserved). Cross-traffic object sizes scale along.
  double scale = 1.0;

  // AccessLink shaping (paper: tc tbf + netem on Router 2 -> Pi 1).
  double access_rate_mbps = 20.0;    // 10 / 20 / 50
  double access_latency_ms = 20.0;   // 20 / 40 (added one-way latency)
  double access_jitter_ms = 2.0;
  double access_loss = 0.0002;       // 0.02% / 0.05%
  double access_buffer_ms = 100.0;   // 20 / 50 / 100

  // InterConnectLink (Router 1 -> Router 2).
  double interconnect_rate_mbps = 950.0;
  double interconnect_buffer_ms = 50.0;

  // Cross traffic.
  Scenario scenario = Scenario::kSelfInduced;
  int tgcong_flows = 100;        // concurrent bulk fetches when kExternal
  std::string tgcong_cc = "reno";  // short-RTT flows: Reno regrows fastest
  bool tgtrans_enabled = true;   // transient web-like cross traffic
  int tgtrans_workers = 4;
  int access_cross_flows = 0;    // §3.3: concurrent flows sharing AccessLink

  // The netperf-style test flow.
  sim::Duration warmup = sim::from_seconds(1.5);  // cross-traffic ramp time
  sim::Duration test_duration = sim::from_seconds(10.0);
  std::string congestion_control = "reno";
  int receiver_segments_per_ack = 2;  // Linux delayed ACK

  std::uint64_t seed = 1;

  /// Optional telemetry sink attached to the *test flow's* sender (cross
  /// traffic is never recorded). Purely observational: never part of the
  /// experiment fingerprint, never changes results. Must outlive the run.
  obs::FlowTelemetryRecorder* telemetry = nullptr;

  double access_rate_bps() const { return access_rate_mbps * 1e6 * scale; }
  double interconnect_rate_bps() const {
    return interconnect_rate_mbps * 1e6 * scale;
  }
};

}  // namespace ccsig::testbed

// Full testbed parameter sweep (§3.1): every combination of access rate,
// latency, loss, and buffer size, in both congestion scenarios, repeated.
// Produces the samples the classifier is trained on, with CSV caching so
// expensive sweeps run once per machine.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "obs/flow_telemetry.h"
#include "runtime/campaign.h"
#include "runtime/fault_injection.h"
#include "runtime/job_result.h"
#include "testbed/config.h"

namespace ccsig::testbed {

/// One completed test, reduced to what labeling and training need.
struct SweepSample {
  double norm_diff = 0;
  double cov = 0;
  double rtt_slope = 0;
  double rtt_iqr = 0;
  double slow_start_tput_bps = 0;
  double flow_tput_bps = 0;
  double access_capacity_bps = 0;
  int scenario = 0;  // CongestionClass encoding of the run's scenario
  // Provenance.
  double access_rate_mbps = 0;
  double access_latency_ms = 0;
  double access_loss = 0;
  double access_buffer_ms = 0;
};

struct SweepOptions {
  std::vector<double> access_rates_mbps = {10, 20, 50};
  std::vector<double> access_latencies_ms = {20, 40};
  std::vector<double> access_losses = {0.0002, 0.0005};
  std::vector<double> access_buffers_ms = {20, 50, 100};
  int reps = 5;  // paper: 50 per combination (use --full for that)
  double scale = 0.1;
  sim::Duration test_duration = sim::from_seconds(5.0);
  sim::Duration warmup = sim::from_seconds(1.5);
  int tgcong_flows = 100;
  std::string congestion_control = "reno";
  std::uint64_t seed = 42;
  /// Worker threads for the sweep: 0 = every hardware thread, 1 = the
  /// legacy serial path. Output is byte-identical for any value — each
  /// run's seed is drawn in a deterministic pre-pass over the grid and
  /// results are collected in enumeration order.
  int jobs = 0;
  /// Called after each test with (done, total) for progress reporting.
  /// Need not be thread-safe: invocations are serialized even when
  /// `jobs > 1`.
  std::function<void(std::size_t, std::size_t)> progress;

  // --- Fault tolerance (see runtime/campaign.h) ---------------------------
  /// Shard-checkpoint file for kill/resume; empty disables checkpointing.
  /// load_or_run_sweep sets this to `<cache>.ckpt` automatically.
  std::string checkpoint_path;
  int checkpoint_every = 16;
  /// Per-run retry policy; transient failures (injected faults, I/O
  /// hiccups) are re-run with deterministic backoff.
  runtime::RetryPolicy retry = runtime::RetryPolicy::attempts(2);
  /// Per-run soft deadline (wall clock); 0 = no watchdog. With
  /// `abandon_on_deadline` a stuck run is reported as a kTimeout JobError
  /// instead of hanging the sweep.
  std::chrono::milliseconds soft_deadline{0};
  bool abandon_on_deadline = false;
  /// Deterministic fault injection (tests); nullptr = none.
  const runtime::FaultPlan* faults = nullptr;
  /// Receives one JobError per run that ultimately failed; such runs are
  /// simply absent from the returned samples. nullptr = discard errors.
  std::vector<runtime::JobError>* errors_out = nullptr;
  /// When non-null and every run succeeded, receives a callback that
  /// deletes the shard checkpoint; the checkpoint is kept until the caller
  /// invokes it (after atomically writing the final CSV). When null, a
  /// fully successful sweep removes its checkpoint before returning. See
  /// runtime::CheckpointedRunOptions::commit_out.
  std::function<void()>* checkpoint_commit_out = nullptr;

  // --- Observability (see src/obs) ----------------------------------------
  /// Optional telemetry sink attached to the FIRST run of the enumeration
  /// (the exemplar flow); all other runs stay untouched. Excluded from the
  /// fingerprint — purely observational, never changes sweep content.
  obs::FlowTelemetryRecorder* telemetry = nullptr;
  /// When non-null, receives the campaign's slot accounting
  /// (restored/executed/failed/retried/abandoned; see runtime::CampaignStats).
  runtime::CampaignStats* stats_out = nullptr;
};

/// Runs the full sweep; both scenarios for every combination.
std::vector<SweepSample> run_sweep(const SweepOptions& opt);

/// Labels the samples at `threshold` and builds the two-feature training
/// set (norm_diff, cov). `extended_features` adds rtt_slope and rtt_iqr
/// (for the feature-ablation bench). Filtered samples are skipped.
ml::Dataset make_dataset(const std::vector<SweepSample>& samples,
                         double threshold, bool extended_features = false);

/// Labels one sample at `threshold`; -1 when filtered.
int label_sample(const SweepSample& s, double threshold);

/// Canonical one-line digest of every option that affects sweep *content*
/// (grids, reps, scale, durations, cc, seed — not `jobs` or `progress`).
/// Embedded in cache CSVs so stale caches are detected and regenerated.
std::string sweep_fingerprint(const SweepOptions& opt);

/// Writes the samples atomically (temp file + rename); when `fingerprint`
/// is non-empty it is embedded as a leading `# options: …` comment line
/// (load_samples_csv returns it).
void save_samples_csv(const std::string& path,
                      const std::vector<SweepSample>& samples,
                      const std::string& fingerprint = "");

/// Reads a samples CSV. Accepts both the fingerprinted format and the
/// legacy header-first format; when `fingerprint_out` is non-null it
/// receives the embedded fingerprint ("" for legacy files). Malformed
/// input raises runtime::ParseException (file, line, reason).
std::vector<SweepSample> load_samples_csv(const std::string& path,
                                          std::string* fingerprint_out =
                                              nullptr);

/// Loads `cache_path` when it exists, parses cleanly, and its embedded
/// fingerprint matches `opt` (legacy caches without a fingerprint are
/// trusted as-is); otherwise runs the sweep — resuming from
/// `<cache_path>.ckpt` when a matching checkpoint survives a previous
/// kill — and atomically rewrites the cache with a fingerprint. A corrupt
/// cache is treated as stale, never fatal. A sweep with permanently failed
/// runs returns its partial samples but is NOT cached: the checkpoint is
/// kept so the next invocation retries only the failed slots. On success
/// the checkpoint is removed only after the cache CSV is safely on disk.
std::vector<SweepSample> load_or_run_sweep(const std::string& cache_path,
                                           const SweepOptions& opt);

}  // namespace ccsig::testbed

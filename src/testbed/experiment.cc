#include "testbed/experiment.h"

#include "analysis/flow_trace.h"
#include "obs/metrics.h"

namespace ccsig::testbed {
namespace {

// Per-run distributions over the experiment's two key links; one record
// per link per completed run.
struct RunMetrics {
  obs::Histogram link_utilization_pct;
  obs::Histogram queue_peak_pct;
};

RunMetrics& run_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static RunMetrics m{
      reg.histogram("testbed.link_utilization_pct",
                    {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 100}),
      reg.histogram("testbed.queue_peak_pct",
                    {5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 100})};
  return m;
}

void record_link_run(const sim::Link* link, double duration_s) {
  if (!link || duration_s <= 0) return;
  const sim::Link::Stats st = link->stats();
  const sim::Link::Config& cfg = link->config();
  RunMetrics& m = run_metrics();
  if (cfg.rate_bps > 0) {
    m.link_utilization_pct.record(
        100.0 * static_cast<double>(st.delivered_bytes) * 8.0 /
        (cfg.rate_bps * duration_s));
  }
  if (cfg.buffer_bytes > 0) {
    m.queue_peak_pct.record(100.0 *
                            static_cast<double>(st.max_queue_bytes) /
                            static_cast<double>(cfg.buffer_bytes));
  }
}

sim::Link::Config plain_link(double rate_bps, double delay_ms,
                             double buffer_ms) {
  sim::Link::Config c;
  c.rate_bps = rate_bps;
  c.prop_delay = sim::from_millis(delay_ms);
  c.buffer_bytes = sim::buffer_bytes_for(rate_bps, buffer_ms);
  return c;
}

/// The server-side port the netperf-style test flow uses; fixed so the
/// analysis side can find the flow deterministically.
constexpr sim::Port kTestFlowServerPort = 5001;
constexpr sim::Port kTestFlowClientPort = 5002;

constexpr sim::Duration kDrain = 500 * sim::kMillisecond;

}  // namespace

TestbedExperiment::TestbedExperiment(const TestbedConfig& cfg) : cfg_(cfg) {
  net_ = std::make_unique<sim::Network>(cfg.seed);
  ports_ = std::make_unique<PortAllocator>();

  sim::Node* server1 = net_->add_node("server1");
  sim::Node* server2 = net_->add_node("server2");
  sim::Node* server3 = net_->add_node("server3");
  sim::Node* server4 = net_->add_node("server4");
  sim::Node* router1 = net_->add_node("router1");
  sim::Node* router2 = net_->add_node("router2");
  sim::Node* pi1 = net_->add_node("pi1");
  sim::Node* pi2 = net_->add_node("pi2");

  const double gig = 1e9 * cfg.scale;

  // Server attachment links. RTTs to the cross-traffic servers follow §3.1:
  // Server2 ≈ 20 ms, Server3 ≈ 60 ms, Server4 < 2 ms away.
  const auto l_s1 = net_->connect(server1, router1, plain_link(gig, 0.1, 100));
  const auto l_s2 = net_->connect(server2, router1, plain_link(gig, 10.0, 100));
  const auto l_s3 = net_->connect(server3, router1, plain_link(gig, 30.0, 100));
  const auto l_s4 = net_->connect(server4, router1, plain_link(gig, 1.0, 100));

  // InterConnectLink: shaped with a 50 ms buffer; only the downstream
  // direction (router1 -> router2) ever congests in these experiments.
  sim::Link::Config ic_down = plain_link(cfg.interconnect_rate_bps(), 0.0,
                                         cfg.interconnect_buffer_ms);
  ic_down.name = "interconnect-down";
  sim::Link::Config ic_up = ic_down;
  ic_up.name = "interconnect-up";
  const auto l_ic = net_->connect(router1, router2, ic_down, ic_up);
  interconnect_down_ = l_ic.ab;

  // AccessLink: tbf+netem emulation — rate, one-way added latency with
  // jitter, i.i.d. loss, and the configured drop-tail buffer, downstream.
  sim::Link::Config acc_down;
  acc_down.name = "access-down";
  acc_down.rate_bps = cfg.access_rate_bps();
  acc_down.prop_delay = sim::from_millis(cfg.access_latency_ms);
  acc_down.jitter = sim::from_millis(cfg.access_jitter_ms);
  acc_down.loss_rate = cfg.access_loss;
  acc_down.buffer_bytes =
      sim::buffer_bytes_for(acc_down.rate_bps, cfg.access_buffer_ms);
  sim::Link::Config acc_up = acc_down;
  acc_up.name = "access-up";
  acc_up.jitter = 0;
  acc_up.loss_rate = 0;   // the upstream ACK stream is tiny and clean
  acc_up.prop_delay = 0;  // netem adds the latency on one interface only
  const auto l_acc = net_->connect(router2, pi1, acc_down, acc_up);
  access_down_ = l_acc.ab;

  // Pi 2 attaches to Router 2 at 100 Mbps (its NIC limit), bypassing
  // AccessLink, so TGtrans cannot congest the interconnect (§3.1).
  const auto l_pi2 =
      net_->connect(router2, pi2, plain_link(1e8 * cfg.scale, 0.1, 50));

  // Routing beyond direct neighbours: leaves default through their single
  // attachment; the routers default toward each other across the
  // interconnect (a linear backbone).
  server1->set_default_route(l_s1.ab);
  server2->set_default_route(l_s2.ab);
  server3->set_default_route(l_s3.ab);
  server4->set_default_route(l_s4.ab);
  router1->set_default_route(l_ic.ab);  // pi1 / pi2 live beyond router2
  router2->set_default_route(l_ic.ba);  // servers live beyond router1
  pi1->set_default_route(l_acc.ba);
  pi2->set_default_route(l_pi2.ba);

  // tcpdump at the test server.
  recorder_ = std::make_unique<analysis::TraceRecorder>();
  server1->add_tap(recorder_.get());

  // Cross traffic.
  if (cfg.tgtrans_enabled) {
    TgTrans::Config tc;
    tc.servers = {server2, server3};
    tc.client = pi2;
    tc.workers = cfg.tgtrans_workers;
    tc.scale = cfg.scale;
    tgtrans_ = std::make_unique<TgTrans>(net_->sim(), *ports_,
                                         net_->rng().fork(), tc);
  }
  if (cfg.scenario == Scenario::kExternal && cfg.tgcong_flows > 0) {
    TgCong::Config cc;
    cc.server = server4;
    cc.client = router2;  // TGcong runs on Router 2 itself (§3.1)
    cc.flows = cfg.tgcong_flows;
    cc.scale = cfg.scale;
    cc.congestion_control = cfg.tgcong_cc;
    tgcong_ = std::make_unique<TgCong>(net_->sim(), *ports_,
                                       net_->rng().fork(), cc);
  }
  // §3.3 multiplexing: long-lived flows sharing the access link with the
  // test flow, served from Server2.
  for (int i = 0; i < cfg.access_cross_flows; ++i) {
    FetchLoop::Config lc;
    lc.server = server2;
    lc.client = pi1;
    lc.size_sampler = [] { return 1ull << 40; };  // effectively endless
    lc.think_sampler = nullptr;
    lc.congestion_control = cfg.congestion_control;
    access_cross_.push_back(
        std::make_unique<FetchLoop>(net_->sim(), *ports_, std::move(lc)));
  }
}

TestResult TestbedExperiment::run() {
  sim::Simulator& sim = net_->sim();
  sim::Node* server1 = net_->node("server1");
  sim::Node* pi1 = net_->node("pi1");

  if (tgtrans_) tgtrans_->start(0);
  if (tgcong_) tgcong_->start(0);
  for (auto& loop : access_cross_) loop->start(0);

  // The netperf-style test flow.
  sim::FlowKey key;
  key.src_addr = server1->address();
  key.dst_addr = pi1->address();
  key.src_port = kTestFlowServerPort;
  key.dst_port = kTestFlowClientPort;

  tcp::TcpSink::Config sink_cfg;
  sink_cfg.data_key = key;
  sink_cfg.segments_per_ack = cfg_.receiver_segments_per_ack;
  tcp::TcpSink sink(sim, pi1, sink_cfg);

  tcp::TcpSource::Config src_cfg;
  src_cfg.key = key;
  src_cfg.bytes_to_send = 0;  // timed test
  src_cfg.congestion_control = cfg_.congestion_control;
  src_cfg.telemetry = cfg_.telemetry;
  tcp::TcpSource source(sim, server1, src_cfg);

  const std::uint64_t cong_before = tgcong_ ? tgcong_->bytes_fetched() : 0;

  sim.schedule_at(cfg_.warmup, [&source] { source.start(); });
  const sim::Time test_end = cfg_.warmup + cfg_.test_duration;
  sim.schedule_at(test_end, [&source] { source.stop_sending(); });
  sim.run_until(test_end + kDrain);

  TestResult result;
  result.scenario = cfg_.scenario;
  result.access_capacity_bps = cfg_.access_rate_bps();
  result.web100 = source.stats();
  result.receiver_throughput_bps =
      static_cast<double>(sink.bytes_received()) * 8.0 /
      sim::to_seconds(cfg_.test_duration);
  result.cross_traffic_bytes =
      (tgcong_ ? tgcong_->bytes_fetched() : 0) - cong_before;

  const double run_s = sim::to_seconds(cfg_.warmup + cfg_.test_duration);
  record_link_run(interconnect_down_, run_s);
  record_link_run(access_down_, run_s);

  trace_ = recorder_->take();
  const analysis::FlowTrace flow = analysis::extract_flow(trace_, key);
  result.features = features::extract_features(flow);
  return result;
}

TestResult run_testbed_experiment(const TestbedConfig& cfg) {
  TestbedExperiment exp(cfg);
  return exp.run();
}

}  // namespace ccsig::testbed

// One controlled throughput test on the emulated Figure-2 testbed.
#pragma once

#include <memory>
#include <optional>

#include "analysis/trace_record.h"
#include "analysis/trace_recorder.h"
#include "features/extractor.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"
#include "testbed/config.h"
#include "testbed/traffic.h"

namespace ccsig::testbed {

/// Outcome of a single netperf-style downstream test.
struct TestResult {
  /// Features extracted from the server-side capture; nullopt when the flow
  /// failed validity filters (e.g. too few slow-start RTT samples).
  std::optional<features::FlowFeatures> features;
  tcp::TcpSource::Stats web100;
  double receiver_throughput_bps = 0;  // goodput measured at the client
  Scenario scenario = Scenario::kSelfInduced;
  double access_capacity_bps = 0;
  std::uint64_t cross_traffic_bytes = 0;  // TGcong volume during the test
};

/// Builds the testbed topology:
///
///   Server1 ── Link3 ── Router1 ══ InterConnectLink ══ Router2 ── AccessLink ── Pi1
///   Server2/3 ─┘ (20/60 ms)                              └── 100M ── Pi2
///   Server4 ──┘ (2 ms)
///
/// and runs one throughput test from Server1 to Pi1 with the configured
/// cross traffic, capturing at Server1.
class TestbedExperiment {
 public:
  explicit TestbedExperiment(const TestbedConfig& cfg);
  TestbedExperiment(const TestbedExperiment&) = delete;
  TestbedExperiment& operator=(const TestbedExperiment&) = delete;

  /// Runs the full timeline (cross-traffic warmup, test, drain) and returns
  /// the result. Call once.
  TestResult run();

  /// The server-side trace of the test flow (valid after run()).
  const analysis::Trace& server_trace() const { return trace_; }
  sim::Network& network() { return *net_; }

  /// Key links, exposed for instrumentation and tests.
  sim::Link* interconnect_down() const { return interconnect_down_; }
  sim::Link* access_down() const { return access_down_; }

 private:
  TestbedConfig cfg_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<analysis::TraceRecorder> recorder_;
  std::unique_ptr<PortAllocator> ports_;
  std::unique_ptr<TgTrans> tgtrans_;
  std::unique_ptr<TgCong> tgcong_;
  std::vector<std::unique_ptr<FetchLoop>> access_cross_;
  analysis::Trace trace_;
  sim::Link* interconnect_down_ = nullptr;
  sim::Link* access_down_ = nullptr;
};

/// Convenience: configure, run, return.
TestResult run_testbed_experiment(const TestbedConfig& cfg);

}  // namespace ccsig::testbed

// ccsig_campaign: million-row Dispute2014 campaign driver (mlab/scale.h).
//
//   ccsig_campaign --store FILE [--rows N] [--chunk N] [--jobs N]
//                  [--seed N] [--tests-per-cell N] [--full-sim]
//                  [--max-chunks N] [--csv-out FILE] [--summary-out FILE]
//                  [--metrics-out FILE] [--trace-out FILE] [--quiet]
//
// Runs (or resumes) a scale campaign into the binary row store at --store.
// --rows sets the target row count (the grid's tests_per_cell is raised to
// cover it); memory stays O(--chunk) however large --rows is. Kill the
// process at any point and rerun the same command line: completed chunks
// are the store's committed prefix, the in-flight chunk resumes from
// `<store>.ckpt`, and the final --csv-out is byte-identical to an
// uninterrupted run at any --jobs.
//
// --csv-out exports every row through the campaign's precision-17 CSV
// formatter (byte-identical to the in-memory writer); --summary-out writes
// the O(cells) streaming aggregate. --max-chunks bounds this invocation
// (the kill/resume test hook). --full-sim runs every row through the full
// PathSim model instead of the closed-form analytic one — fidelity over
// speed (~ms/row vs ~µs/row).
//
// Exit status: 0 campaign complete, 1 stopped early (--max-chunks) or rows
// failed permanently, 2 usage error, 3 unreadable/mismatched store.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mlab/rowstore.h"
#include "mlab/scale.h"
#include "obs/tool_obs.h"
#include "runtime/atomic_file.h"
#include "runtime/parse_error.h"
#include "runtime/progress.h"

int main(int argc, char** argv) {
  ccsig::mlab::ScaleOptions opt;
  std::string csv_out, summary_out, metrics_path, trace_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const auto has_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (has_value("--store")) {
      opt.store_path = argv[++i];
    } else if (has_value("--rows")) {
      opt.total_rows = std::strtoull(argv[++i], nullptr, 10);
    } else if (has_value("--chunk")) {
      opt.chunk_rows = std::strtoull(argv[++i], nullptr, 10);
    } else if (has_value("--jobs")) {
      opt.base.jobs = std::atoi(argv[++i]);
    } else if (has_value("--seed")) {
      opt.base.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (has_value("--tests-per-cell")) {
      opt.base.tests_per_cell = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--full-sim") == 0) {
      opt.analytic = false;
    } else if (has_value("--max-chunks")) {
      opt.max_chunks_this_run = std::strtoull(argv[++i], nullptr, 10);
    } else if (has_value("--csv-out")) {
      csv_out = argv[++i];
    } else if (has_value("--summary-out")) {
      summary_out = argv[++i];
    } else if (has_value("--metrics-out")) {
      metrics_path = argv[++i];
    } else if (has_value("--trace-out")) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s --store FILE [--rows N] [--chunk N] [--jobs N] "
          "[--seed N] [--tests-per-cell N] [--full-sim] [--max-chunks N] "
          "[--csv-out FILE] [--summary-out FILE] [--metrics-out FILE] "
          "[--trace-out FILE] [--quiet]\n",
          argv[0]);
      return 2;
    }
  }
  if (opt.store_path.empty()) {
    std::fprintf(stderr, "error: --store is required\n");
    return 2;
  }
  ccsig::runtime::ProgressReporterOptions ropt;
  ropt.label = "campaign";
  if (quiet) ropt.mode = ccsig::runtime::ProgressMode::kOff;
  ccsig::runtime::ProgressReporter reporter(ropt);
  opt.progress = [&reporter](std::uint64_t done, std::uint64_t total) {
    reporter.update(static_cast<std::size_t>(done),
                    static_cast<std::size_t>(total));
  };

  try {
    ccsig::obs::ToolObs tool_obs(metrics_path, trace_path, "ccsig_campaign");
    const auto result = ccsig::mlab::run_scale_campaign(opt);
    if (!quiet) {
      std::fprintf(stderr,
                   "\n[campaign] total=%llu committed_before=%llu "
                   "executed=%llu chunks=%llu failed=%llu complete=%d\n",
                   static_cast<unsigned long long>(result.rows_total),
                   static_cast<unsigned long long>(
                       result.rows_committed_before),
                   static_cast<unsigned long long>(result.rows_executed),
                   static_cast<unsigned long long>(result.chunks_run),
                   static_cast<unsigned long long>(result.failed_rows),
                   result.complete ? 1 : 0);
    }
    if (!csv_out.empty()) {
      ccsig::mlab::export_rows_csv(opt.store_path, csv_out);
      if (!quiet) {
        std::fprintf(stderr, "[campaign] csv exported to %s\n",
                     csv_out.c_str());
      }
    }
    if (!summary_out.empty()) {
      const auto summary = ccsig::mlab::aggregate_scale_store(opt.store_path);
      ccsig::runtime::write_file_atomic(
          summary_out, ccsig::mlab::scale_summary_csv(summary));
      if (!quiet) {
        std::fprintf(stderr, "[campaign] summary (%zu cells) written to %s\n",
                     summary.cells.size(), summary_out.c_str());
      }
    }
    return result.complete ? 0 : 1;
  } catch (const ccsig::runtime::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.error().to_string().c_str());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}

#!/usr/bin/env python3
"""Micro-benchmark regression harness.

Runs the counting-allocator benchmark binaries (google-benchmark), folds
the results into ``BENCH_micro.json`` at the repo root, and — in
``--smoke`` mode — asserts the deterministic allocation counters that
guard the allocation-free hot paths (simulator steady state, streaming
ingest). Timing numbers are machine-dependent and only recorded;
allocation counts are exact and enforced.

Usage (``--bench-bin`` may repeat; results are merged):
  tools/bench_micro.py --bench-bin build/bench/bench_micro_components \\
                       --bench-bin build/bench/bench_stream_ingest
  tools/bench_micro.py --bench-bin ... --smoke   # fast, counters only
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_micro.json"

# Benchmarks whose counters are deterministic (independent of machine
# speed) and must hold for the allocation-free hot path to be intact.
# Ratios slightly above zero amortize one-time arena/pool growth.
COUNTER_BOUNDS = {
    "BM_EventQueueScheduleAndPop/1000": {"allocs_per_event": 0.10},
    "BM_EventQueueScheduleAndPop/100000": {"allocs_per_event": 0.01},
    "BM_LinkShaping": {"allocs_per_packet": 0.05},
    "BM_TcpBulkTransfer": {"allocs_per_seg": 0.50},
    "BM_TcpSteadyStateAllocs": {"steady_allocs": 0.0},
    "BM_PcapEncodeDecode": {"allocs_per_frame": 0.0},
    # Metrics recording must be allocation-free once the calling thread's
    # shard exists (the benches record once before probing).
    "BM_MetricsCounterRecord": {"allocs_per_record": 0.0},
    "BM_MetricsCounterInert": {"allocs_per_record": 0.0},
    "BM_MetricsHistogramRecord": {"allocs_per_record": 0.0},
    # Streaming ingest (bench_stream_ingest): a quiescent flow's records
    # must touch only scalars — a hard zero, no amortization allowance.
    "BM_StreamIngestHotPath": {"allocs_per_packet": 0.0},
}

# In --smoke mode only these run (the steady-state bench simulates a 30 s
# 100 MB transfer; everything else is sub-second at min_time=0.05).
SMOKE_FILTER = "|".join(
    name.split("/")[0] for name in COUNTER_BOUNDS if "SteadyState" not in name
)


def run_bench(bench_bin, bench_filter, min_time):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    cmd = [
        bench_bin,
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
        f"--benchmark_out={out_path}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        data = json.load(f)
    pathlib.Path(out_path).unlink()
    results = {}
    for bench in data["benchmarks"]:
        entry = {"real_time_ns": bench["real_time"]}
        for key, value in bench.items():
            if key.startswith(("allocs", "steady", "bytes_per")):
                entry[key] = value
        results[bench["name"]] = entry
    return results


def check_counters(results):
    failures = []
    for name, bounds in COUNTER_BOUNDS.items():
        if name not in results:
            continue  # filtered out in smoke mode
        for counter, bound in bounds.items():
            actual = results[name].get(counter)
            if actual is None:
                failures.append(f"{name}: counter {counter} missing")
            elif actual > bound:
                failures.append(
                    f"{name}: {counter} = {actual:.6g} exceeds bound {bound}"
                )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-bin",
        action="append",
        help="path to a counting-allocator benchmark binary; may be given "
        "more than once (default: build/bench/bench_micro_components and "
        "build/bench/bench_stream_ingest)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast run: allocation counters only, no timing record",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the 'current' section of BENCH_micro.json",
    )
    args = parser.parse_args()

    bench_bins = args.bench_bin or [
        str(REPO_ROOT / "build" / "bench" / "bench_micro_components"),
        str(REPO_ROOT / "build" / "bench" / "bench_stream_ingest"),
    ]
    results = {}
    for bench_bin in bench_bins:
        if args.smoke:
            results.update(run_bench(bench_bin, SMOKE_FILTER, min_time=0.05))
        else:
            results.update(
                run_bench(bench_bin, bench_filter=None, min_time=0.3)
            )

    failures = check_counters(results)
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)

    checked = [n for n in COUNTER_BOUNDS if n in results]
    print(f"checked {len(checked)} allocation-counter benchmarks: "
          f"{'FAIL' if failures else 'OK'}")
    for name in sorted(results):
        extras = {
            k: v for k, v in results[name].items() if k != "real_time_ns"
        }
        print(f"  {name}: {results[name]['real_time_ns']:.0f} ns {extras}")

    if args.update and not args.smoke:
        doc = {}
        if RESULT_FILE.exists():
            try:
                with open(RESULT_FILE) as f:
                    doc = json.load(f)
            except (json.JSONDecodeError, UnicodeDecodeError) as e:
                print(
                    f"warning: existing {RESULT_FILE} is corrupt ({e}); "
                    "starting a fresh baseline (previous content discarded)",
                    file=sys.stderr,
                )
                doc = {}
        doc["current"] = results
        # Write-then-rename so a crash mid-dump never truncates the
        # baseline file.
        tmp_path = RESULT_FILE.with_suffix(".json.tmp")
        with open(tmp_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        tmp_path.replace(RESULT_FILE)
        print(f"wrote {RESULT_FILE}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

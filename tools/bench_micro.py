#!/usr/bin/env python3
"""Micro-benchmark regression harness.

Runs the counting-allocator benchmark binaries (google-benchmark), folds
the results into ``BENCH_micro.json`` at the repo root, and — in
``--smoke`` mode — asserts the deterministic allocation counters that
guard the allocation-free hot paths (simulator steady state, streaming
ingest). Timing numbers are machine-dependent and only recorded;
allocation counts are exact and enforced.

Usage (``--bench-bin`` may repeat; results are merged):
  tools/bench_micro.py --bench-bin build/bench/bench_micro_components \\
                       --bench-bin build/bench/bench_stream_ingest
  tools/bench_micro.py --bench-bin ... --smoke   # fast, counters only
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_micro.json"

# Benchmarks whose counters are deterministic (independent of machine
# speed) and must hold for the allocation-free hot path to be intact.
# Ratios slightly above zero amortize one-time arena/pool growth.
COUNTER_BOUNDS = {
    "BM_EventQueueScheduleAndPop/1000": {"allocs_per_event": 0.10},
    "BM_EventQueueScheduleAndPop/100000": {"allocs_per_event": 0.01},
    "BM_LinkShaping": {"allocs_per_packet": 0.05},
    "BM_TcpBulkTransfer": {"allocs_per_seg": 0.50},
    "BM_TcpSteadyStateAllocs": {"steady_allocs": 0.0},
    "BM_PcapEncodeDecode": {"allocs_per_frame": 0.0},
    # ccsigd's verdict-log append (frame + CRC + one write) reuses one
    # buffer after the warm-up append — a hard zero.
    "BM_VerdictLogAppend": {"allocs_per_verdict": 0.0},
    # ccsigd's per-verdict latency instrumentation (ingest stamp + two
    # histogram records): pure relaxed RMWs once the thread's metrics
    # shard exists — a hard zero.
    "BM_VerdictLatencyPath": {"allocs_per_verdict": 0.0},
    # Metrics recording must be allocation-free once the calling thread's
    # shard exists (the benches record once before probing).
    "BM_MetricsCounterRecord": {"allocs_per_record": 0.0},
    "BM_MetricsCounterInert": {"allocs_per_record": 0.0},
    "BM_MetricsHistogramRecord": {"allocs_per_record": 0.0},
    # Streaming ingest (bench_stream_ingest): a quiescent flow's records
    # must touch only scalars — a hard zero, no amortization allowance.
    "BM_StreamIngestHotPath": {"allocs_per_packet": 0.0},
    # Ingest ladder, smallest rung. Checked by --ladder-smoke (its own
    # ctest, bench_ingest_ladder_smoke), not by --smoke: the ladder lazily
    # writes a 64 MB synthetic capture the plain smoke shouldn't pay for.
    "BM_IngestMmapBatched/64": {"allocs_per_packet": 0.0},
    # Batched forest inference (bench_ml): the flattened SoA trees and the
    # span predict overloads must never touch the heap — a hard zero. The
    # fit benches in the same binary are minutes-long 1M-row runs and are
    # deliberately NOT in this table, so --smoke skips them.
    "BM_ForestInferenceBatch": {"allocs_per_prediction": 0.0},
}

# Hard throughput floors for the ingest ladder's smallest rung. The
# numbers an idle machine produces are ~19-24 M packets/s; the floors sit
# an order of magnitude below that so they survive a loaded CI box while
# still catching structural regressions (a per-record allocation, an
# accidental O(n^2), losing the fused mmap path).
LADDER_FLOORS = {
    "BM_IngestChunkedRead/64": {"packets_per_second": 1.0e6},
    "BM_IngestMmapBatched/64": {"packets_per_second": 2.0e6},
}

LADDER_PREFIXES = (
    "BM_IngestChunkedRead",
    "BM_IngestStreamBatched",
    "BM_IngestMmapBatched",
)

# In --smoke mode only these run (the steady-state bench simulates a 30 s
# 100 MB transfer and the ladder benches synthesize multi-MB captures;
# everything else is sub-second at min_time=0.05). Anchored exact names:
# an unanchored prefix would drag every ladder rung — including the 1 GB
# one — into the smoke run.
SMOKE_FILTER = "|".join(
    f"^{re.escape(name)}$"
    for name in COUNTER_BOUNDS
    if "SteadyState" not in name and not name.startswith(LADDER_PREFIXES)
)

LADDER_FILTER = "|".join(f"^{re.escape(name)}$" for name in LADDER_FLOORS)


def run_bench(bench_bin, bench_filter, min_time):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    cmd = [
        bench_bin,
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
        f"--benchmark_out={out_path}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        data = json.load(f)
    pathlib.Path(out_path).unlink()
    results = {}
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    for bench in data["benchmarks"]:
        entry = {
            "real_time_ns":
                bench["real_time"] * scale[bench.get("time_unit", "ns")]
        }
        for key, value in bench.items():
            if key.startswith(
                ("allocs", "steady", "bytes_per", "packets_per", "gbps")
            ):
                entry[key] = value
        results[bench["name"]] = entry
    return results


def check_counters(results):
    failures = []
    for name, bounds in COUNTER_BOUNDS.items():
        if name not in results:
            continue  # filtered out in smoke mode
        for counter, bound in bounds.items():
            actual = results[name].get(counter)
            if actual is None:
                failures.append(f"{name}: counter {counter} missing")
            elif actual > bound:
                failures.append(
                    f"{name}: {counter} = {actual:.6g} exceeds bound {bound}"
                )
    return failures


def check_floors(results):
    failures = []
    for name, floors in LADDER_FLOORS.items():
        if name not in results:
            failures.append(f"{name}: benchmark missing from ladder run")
            continue
        for counter, floor in floors.items():
            actual = results[name].get(counter)
            if actual is None:
                failures.append(f"{name}: counter {counter} missing")
            elif actual < floor:
                failures.append(
                    f"{name}: {counter} = {actual:.4g} below floor {floor:.4g}"
                )
    return failures


def print_compare(doc):
    """Per-benchmark delta table: BENCH_micro.json current vs baseline."""
    base = doc.get("baseline", {})
    cur = doc.get("current", {})
    names = sorted(set(base) | set(cur))
    header = f"{'benchmark':<38} {'baseline':>12} {'current':>12} " \
             f"{'delta':>8}  bounds"
    print(header)
    print("-" * len(header))
    for name in names:
        b = base.get(name, {}).get("real_time_ns")
        c = cur.get(name, {}).get("real_time_ns")
        b_s = f"{b:,.0f}" if b is not None else "-"
        c_s = f"{c:,.0f}" if c is not None else "-"
        if b is not None and c is not None and b > 0:
            delta = f"{(c - b) / b * 100.0:+.1f}%"
        else:
            delta = "-"
        bound_s = ""
        bounds = COUNTER_BOUNDS.get(name)
        if bounds and name in cur:
            bad = [
                f"{k}={cur[name].get(k)!r}>{v}"
                for k, v in bounds.items()
                if cur[name].get(k) is None or cur[name][k] > v
            ]
            bound_s = "FAIL " + ", ".join(bad) if bad else "ok"
        print(f"{name:<38} {b_s:>12} {c_s:>12} {delta:>8}  {bound_s}")
    print("(times in ns; delta is current vs baseline, negative = faster; "
          "bounds column checks COUNTER_BOUNDS against 'current')")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-bin",
        action="append",
        help="path to a counting-allocator benchmark binary; may be given "
        "more than once (default: build/bench/bench_micro_components, "
        "build/bench/bench_stream_ingest and build/bench/bench_ml)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast run: allocation counters only, no timing record",
    )
    parser.add_argument(
        "--ladder-smoke",
        action="store_true",
        help="run the ingest ladder's smallest rung only and enforce "
        "LADDER_FLOORS (hard packets/s floors) plus the mmap rung's "
        "zero-allocation bound; pass --bench-bin bench_stream_ingest",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="print a per-benchmark delta table (BENCH_micro.json current "
        "vs baseline) without running anything",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the 'current' section of BENCH_micro.json",
    )
    args = parser.parse_args()

    if args.compare:
        if not RESULT_FILE.exists():
            print(f"no {RESULT_FILE} to compare", file=sys.stderr)
            return 1
        with open(RESULT_FILE) as f:
            print_compare(json.load(f))
        return 0

    if args.ladder_smoke:
        bench_bins = args.bench_bin or [
            str(REPO_ROOT / "build" / "bench" / "bench_stream_ingest"),
        ]
        results = {}
        for bench_bin in bench_bins:
            results.update(run_bench(bench_bin, LADDER_FILTER, min_time=0.05))
        failures = check_floors(results) + check_counters(results)
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        for name in sorted(results):
            extras = {
                k: v for k, v in results[name].items() if k != "real_time_ns"
            }
            print(f"  {name}: {results[name]['real_time_ns']:.0f} ns {extras}")
        print(f"ingest ladder smoke: {'FAIL' if failures else 'OK'}")
        return 1 if failures else 0

    bench_bins = args.bench_bin or [
        str(REPO_ROOT / "build" / "bench" / "bench_micro_components"),
        str(REPO_ROOT / "build" / "bench" / "bench_stream_ingest"),
        str(REPO_ROOT / "build" / "bench" / "bench_ml"),
    ]
    results = {}
    for bench_bin in bench_bins:
        if args.smoke:
            results.update(run_bench(bench_bin, SMOKE_FILTER, min_time=0.05))
        else:
            results.update(
                run_bench(bench_bin, bench_filter=None, min_time=0.3)
            )

    failures = check_counters(results)
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)

    checked = [n for n in COUNTER_BOUNDS if n in results]
    print(f"checked {len(checked)} allocation-counter benchmarks: "
          f"{'FAIL' if failures else 'OK'}")
    for name in sorted(results):
        extras = {
            k: v for k, v in results[name].items() if k != "real_time_ns"
        }
        print(f"  {name}: {results[name]['real_time_ns']:.0f} ns {extras}")

    if args.update and not args.smoke:
        doc = {}
        if RESULT_FILE.exists():
            try:
                with open(RESULT_FILE) as f:
                    doc = json.load(f)
            except (json.JSONDecodeError, UnicodeDecodeError) as e:
                print(
                    f"warning: existing {RESULT_FILE} is corrupt ({e}); "
                    "starting a fresh baseline (previous content discarded)",
                    file=sys.stderr,
                )
                doc = {}
        doc["current"] = results
        # Write-then-rename so a crash mid-dump never truncates the
        # baseline file.
        tmp_path = RESULT_FILE.with_suffix(".json.tmp")
        with open(tmp_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        tmp_path.replace(RESULT_FILE)
        print(f"wrote {RESULT_FILE}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

// Regenerates src/core/pretrained_model.inc from a controlled-testbed sweep.
//
// Usage: train_pretrained <sweep.csv> <output.inc> [threshold] [depth]
//                         [--jobs N] [--reps N] [--seed N]
//                         [--metrics-out FILE] [--trace-out FILE]
//                         [--flow-telemetry FILE]
//
// Observability side files (see src/obs/): --metrics-out writes the final
// metrics snapshot JSON, --trace-out writes Chrome trace JSON covering the
// sweep campaign, --flow-telemetry writes the per-ACK congestion-state CSV
// of the sweep's first enumerated run (only recorded when the sweep
// actually executes, i.e. <sweep.csv> was missing).
//
// The sweep CSV comes from testbed::save_samples_csv (run the fig3 bench
// once, or call testbed::run_sweep yourself). When <sweep.csv> does not
// exist, the standard sweep is run right here — across --jobs worker
// threads (default: all hardware threads) — and saved to that path first.
// The output is a C++ raw string literal included by core/classifier.cc.
//
// Exit codes: 0 success, 2 usage error, 3 input or I/O error, 4 internal
// error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ios>
#include <iostream>
#include <string>
#include <vector>

#include "ml/cv.h"
#include "ml/decision_tree.h"
#include "obs/flow_telemetry.h"
#include "obs/tool_obs.h"
#include "runtime/atomic_file.h"
#include "runtime/parse_error.h"
#include "runtime/progress.h"
#include "testbed/sweep.h"

namespace {

int run_tool(const std::string& csv, const std::string& out_path,
             double threshold, int depth, int jobs, int reps,
             std::uint64_t seed, const std::string& telemetry_path);

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> positional;
  int jobs = 0;  // 0 = all hardware threads
  int reps = 5;
  std::uint64_t seed = 42;
  std::string metrics_path;
  std::string trace_path;
  std::string telemetry_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::atoi(next("--jobs"));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(next("--reps"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_path = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_path = next("--trace-out");
    } else if (std::strcmp(argv[i], "--flow-telemetry") == 0) {
      telemetry_path = next("--flow-telemetry");
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s <sweep.csv> <output.inc> [threshold=0.8] "
                 "[depth=4] [--jobs N] [--reps N] [--seed N] "
                 "[--metrics-out FILE] [--trace-out FILE] "
                 "[--flow-telemetry FILE]\n",
                 argv[0]);
    return 2;
  }
  const std::string csv = positional[0];
  const std::string out_path = positional[1];
  double threshold = 0.8;
  int depth = 4;
  try {
    if (positional.size() > 2) threshold = std::stod(positional[2]);
    if (positional.size() > 3) depth = std::stoi(positional[3]);
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad threshold/depth argument\n");
    return 2;
  }

  try {
    ccsig::obs::ToolObs tool_obs(metrics_path, trace_path, "train_pretrained");
    const int rc = run_tool(csv, out_path, threshold, depth, jobs, reps, seed,
                            telemetry_path);
    tool_obs.finalize();
    return rc;
  } catch (const ccsig::runtime::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::ios_base::failure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  }
}

namespace {

int run_tool(const std::string& csv, const std::string& out_path,
             double threshold, int depth, int jobs, int reps,
             std::uint64_t seed, const std::string& telemetry_path) {
  bool telemetry_recorded = false;
  if (!std::filesystem::exists(csv)) {
    ccsig::testbed::SweepOptions sweep;
    sweep.scale = 1.0;
    sweep.reps = reps;
    sweep.seed = seed;
    sweep.jobs = jobs;
    ccsig::runtime::ProgressReporter reporter("sweep");
    sweep.progress = reporter.callback();
    ccsig::obs::FlowTelemetryRecorder telemetry;
    if (!telemetry_path.empty()) sweep.telemetry = &telemetry;
    std::fprintf(stderr, "%s missing; running the sweep (reps=%d)\n",
                 csv.c_str(), reps);
    const auto fresh = ccsig::testbed::run_sweep(sweep);
    reporter.finish();
    ccsig::testbed::save_samples_csv(csv, fresh,
                                     ccsig::testbed::sweep_fingerprint(sweep));
    if (!telemetry_path.empty()) {
      ccsig::runtime::write_file_atomic(telemetry_path, telemetry.to_csv());
      telemetry_recorded = true;
      std::fprintf(stderr, "flow telemetry written to %s (%zu samples)\n",
                   telemetry_path.c_str(), telemetry.size());
    }
  }
  if (!telemetry_path.empty() && !telemetry_recorded) {
    std::fprintf(stderr,
                 "--flow-telemetry: sweep loaded from %s, nothing simulated; "
                 "no telemetry written\n",
                 csv.c_str());
  }

  const auto samples = ccsig::testbed::load_samples_csv(csv);
  const auto data = ccsig::testbed::make_dataset(samples, threshold);
  const auto counts = data.class_counts();
  std::fprintf(stderr, "training on %zu samples (external=%zu self=%zu)\n",
               data.size(), counts.size() > 0 ? counts[0] : 0,
               counts.size() > 1 ? counts[1] : 0);

  ccsig::ml::DecisionTree tree(
      ccsig::ml::DecisionTree::Params{.max_depth = depth});
  tree.fit(data);
  std::fprintf(stderr, "tree depth %d, %zu leaves\n%s", tree.depth(),
               tree.leaf_count(),
               tree.describe({"norm_diff", "cov"}).c_str());

  // 5-fold CV sanity report, fitted across --jobs threads (the fold trees
  // are byte-identical at any jobs value; only the wall clock changes).
  const auto cv = ccsig::ml::cross_validate(
      data, ccsig::ml::DecisionTree::Params{.max_depth = depth}, /*k=*/5,
      seed, jobs);
  std::fprintf(stderr, "5-fold CV accuracy %.4f (folds:", cv.accuracy);
  for (double a : cv.fold_accuracy) std::fprintf(stderr, " %.4f", a);
  std::fprintf(stderr, ")\n");

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 3;
  }
  out << "R\"(" << tree.to_text() << ")\"\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

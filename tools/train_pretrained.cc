// Regenerates src/core/pretrained_model.inc from a controlled-testbed sweep.
//
// Usage: train_pretrained <sweep.csv> <output.inc> [threshold] [depth]
//
// The sweep CSV comes from testbed::save_samples_csv (run the fig3 bench
// once, or call testbed::run_sweep yourself). The output is a C++ raw string
// literal included by core/classifier.cc.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "ml/decision_tree.h"
#include "testbed/sweep.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <sweep.csv> <output.inc> [threshold=0.8] "
                 "[depth=4]\n",
                 argv[0]);
    return 2;
  }
  const std::string csv = argv[1];
  const std::string out_path = argv[2];
  const double threshold = argc > 3 ? std::stod(argv[3]) : 0.8;
  const int depth = argc > 4 ? std::stoi(argv[4]) : 4;

  const auto samples = ccsig::testbed::load_samples_csv(csv);
  const auto data = ccsig::testbed::make_dataset(samples, threshold);
  const auto counts = data.class_counts();
  std::fprintf(stderr, "training on %zu samples (external=%zu self=%zu)\n",
               data.size(), counts.size() > 0 ? counts[0] : 0,
               counts.size() > 1 ? counts[1] : 0);

  ccsig::ml::DecisionTree tree(
      ccsig::ml::DecisionTree::Params{.max_depth = depth});
  tree.fit(data);
  std::fprintf(stderr, "tree depth %d, %zu leaves\n%s", tree.depth(),
               tree.leaf_count(),
               tree.describe({"norm_diff", "cov"}).c_str());

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "R\"(" << tree.to_text() << ")\"\n";
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by --trace-out.

Checks, in order:
  1. the file parses as JSON with a top-level {"traceEvents": [...]} object;
  2. every event carries the schema the writer promises (ph/pid/tid/name,
     ts+dur for complete events, s:"t" for instants);
  3. timestamps are monotonically non-decreasing in file order (the writer
     sorts before emitting);
  4. per thread, complete spans nest: a span starting inside an open span
     must end at or before that span's end (balanced nesting, no partial
     overlap).

Exit codes: 0 valid, 1 validation failure, 2 usage / unreadable input.
Prints a one-line summary on success, the first offending event otherwise.

Usage: check_trace.py <trace.json> [-- command args...]

With a trailing command (after --), the command is run first — expected to
write <trace.json> — and its failure fails the check. This is how the
trace_json_valid ctest produces and validates a trace in one step.
"""

import json
import subprocess
import sys

REQUIRED_KEYS = {"ph", "pid", "tid", "name"}
KNOWN_PHASES = {"X", "i", "M"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(doc):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents must be an array")

    last_ts = None
    # Per-thread stack of open complete-span end times, for nesting checks.
    open_spans = {}
    counts = {"X": 0, "i": 0, "M": 0}

    for idx, e in enumerate(events):
        where = f"event {idx} ({e.get('name', '?')!r})"
        if not isinstance(e, dict):
            return fail(f"event {idx} is not an object")
        missing = REQUIRED_KEYS - e.keys()
        if missing:
            return fail(f"{where}: missing keys {sorted(missing)}")
        ph = e["ph"]
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            continue  # metadata events carry no timestamp contract

        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            return fail(f"{where}: ts missing or not a number")
        if last_ts is not None and ts < last_ts:
            return fail(f"{where}: ts {ts} < previous ts {last_ts} "
                        "(timestamps must be monotonic)")
        last_ts = ts

        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{where}: complete event needs dur >= 0")
            if "cat" not in e:
                return fail(f"{where}: complete event missing cat")
            stack = open_spans.setdefault(e["tid"], [])
            # Pop spans that ended before this one starts.
            while stack and stack[-1] < ts:
                stack.pop()
            if stack and ts + dur > stack[-1]:
                return fail(
                    f"{where}: span [{ts}, {ts + dur}] partially overlaps "
                    f"enclosing span ending at {stack[-1]} on tid {e['tid']} "
                    "(spans must nest)")
            stack.append(ts + dur)
        elif ph == "i":
            if e.get("s") != "t":
                return fail(f"{where}: instant event needs scope s:'t'")

    print(f"check_trace: OK: {counts['X']} spans, {counts['i']} instants, "
          f"{counts['M']} metadata events")
    return 0


def main(argv):
    command = []
    if "--" in argv:
        split = argv.index("--")
        command = argv[split + 1:]
        argv = argv[:split]
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if command:
        proc = subprocess.run(command, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"check_trace: command exited {proc.returncode}: "
                  f"{' '.join(command)}", file=sys.stderr)
            return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_trace: cannot read {argv[1]}: {e}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"check_trace: FAIL: {argv[1]} is not valid JSON: {e}",
              file=sys.stderr)
        return 1
    return validate(doc)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

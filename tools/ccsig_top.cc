// ccsig_top — live dashboard over ccsigd's admin socket.
//
// Usage:
//   ccsig_top --socket PATH [--interval-ms N] [--once] [--json]
//
// Speaks the admin line protocol (send one query line, read body lines
// until the lone "." terminator) over one persistent connection:
//
//   default      full-screen refreshing view: health, shed state, engine
//                occupancy, per-source state, subscriber losses, and the
//                windowed rates / verdict-latency quantiles from varz,
//                redrawn every --interval-ms (default 1000).
//   --once       one snapshot to stdout (no screen clearing), then exit.
//   --json       with --once: a single machine-readable JSON object
//                {"health":..., "statusz":[...], "varz":{...}} for
//                scripting; varz is embedded verbatim as ccsigd emitted
//                it.
//
// Exit codes: 0 ok, 2 usage error, 3 cannot connect/query.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <chrono>

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitConnect = 3;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--interval-ms N] [--once] [--json]\n",
               argv0);
  return kExitUsage;
}

/// Blocking connection to the admin socket speaking the one-line-query /
/// "."-terminated-response protocol.
class AdminClient {
 public:
  bool connect_to(const std::string& path) {
    close_fd();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      close_fd();
      return false;
    }
    buf_.clear();
    return true;
  }

  ~AdminClient() { close_fd(); }

  bool connected() const { return fd_ >= 0; }

  /// Sends `q` and collects body lines until the "." terminator.
  /// False on any socket failure (the connection is dropped; reconnect).
  bool query(const std::string& q, std::vector<std::string>& body) {
    body.clear();
    if (fd_ < 0) return false;
    const std::string line = q + "\n";
    if (!send_all(line)) {
      close_fd();
      return false;
    }
    for (;;) {
      std::size_t nl;
      while ((nl = buf_.find('\n')) != std::string::npos) {
        std::string one = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (one == ".") return true;
        body.push_back(std::move(one));
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        close_fd();
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  bool send_all(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  void close_fd() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  int fd_ = -1;
  std::string buf_;
};

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Pulls `"key":<number>` out of a varz JSON body with plain string
/// scanning — enough for the handful of dashboard fields; everything
/// else is displayed from statusz, which is already line-oriented.
bool find_number(const std::string& json, const std::string& key,
                 double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  out = std::strtod(json.c_str() + at + needle.size(), nullptr);
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void render_rates(const std::string& varz) {
  double v = 0;
  std::printf("-- window --\n");
  if (find_number(varz, "covered_s", v)) {
    std::printf("covered_s=%.1f", v);
  }
  struct {
    const char* key;
    const char* label;
  } rates[] = {
      {"service.records_ingested", "records/s"},
      {"service.verdicts_emitted", "verdicts/s"},
      {"service.shed_dropped_records", "sheds/s"},
  };
  // "rates" precedes "deltas" in the varz body; scanning from the start
  // finds the rate entry first, which is the one we want.
  for (const auto& r : rates) {
    if (find_number(varz, r.key, v)) std::printf("  %s=%.1f", r.label, v);
  }
  std::printf("\n");
  // The latency histogram object: {"count":..,"p50":..,"p90":..,"p99":..}
  const std::size_t at = varz.find("\"service.latency.ingest_to_verdict_ms\"");
  if (at != std::string::npos) {
    const std::string h = varz.substr(at, 512);
    double p50 = 0, p90 = 0, p99 = 0, count = 0;
    find_number(h, "count", count);
    find_number(h, "p50", p50);
    find_number(h, "p90", p90);
    find_number(h, "p99", p99);
    std::printf(
        "ingest->verdict ms  count=%.0f p50=%.3f p90=%.3f p99=%.3f\n",
        count, p50, p90, p99);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int interval_ms = 1000;
  bool once = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    return usage(argv[0]);
  }
  if (json && !once) {
    std::fprintf(stderr, "error: --json requires --once\n");
    return usage(argv[0]);
  }
  if (interval_ms <= 0) interval_ms = 1000;

  AdminClient client;
  if (!client.connect_to(socket_path)) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    return kExitConnect;
  }

  std::vector<std::string> health, statusz, varz_body;
  for (;;) {
    if (!client.connected() && !client.connect_to(socket_path)) {
      if (once) {
        std::fprintf(stderr, "error: lost connection to %s\n",
                     socket_path.c_str());
        return kExitConnect;
      }
      std::printf("\x1b[H\x1b[2Jccsig_top %s  [disconnected, retrying]\n",
                  socket_path.c_str());
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    if (!client.query("healthz", health) ||
        !client.query("statusz", statusz) ||
        !client.query("varz", varz_body)) {
      if (once) {
        std::fprintf(stderr, "error: query failed against %s\n",
                     socket_path.c_str());
        return kExitConnect;
      }
      continue;  // reconnect on the next iteration
    }
    const std::string varz = join_lines(varz_body);

    if (json) {
      std::string out = "{\"health\":\"";
      out += json_escape(health.empty() ? "" : health.front());
      out += "\",\"statusz\":[";
      for (std::size_t i = 0; i < statusz.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(statusz[i]);
        out += '"';
      }
      out += "],\"varz\":";
      std::string v = varz;
      while (!v.empty() && (v.back() == '\n' || v.back() == ' ')) {
        v.pop_back();
      }
      out += v.empty() ? "{}" : v;
      out += "}";
      std::printf("%s\n", out.c_str());
      return kExitOk;
    }

    if (!once) std::printf("\x1b[H\x1b[2J");
    std::printf("ccsig_top %s  health: %s\n", socket_path.c_str(),
                health.empty() ? "?" : health.front().c_str());
    std::printf("%s", join_lines(statusz).c_str());
    render_rates(varz);
    std::fflush(stdout);

    if (once) return kExitOk;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

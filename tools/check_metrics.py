#!/usr/bin/env python3
"""Validates observability exports: the --metrics-out JSON snapshot and
the --metrics-prom Prometheus text exposition, and cross-checks them.

JSON checks:
  1. the file parses as a JSON object with counters / gauges / histograms
     objects;
  2. counter values are non-negative integers, gauge values are numbers;
  3. every histogram carries bounds (strictly increasing), buckets (one
     more bucket than bounds, non-negative integers), count == sum of
     buckets emitted as an integer, and sum emitted as an integer when it
     is integral (the exact-integer contract of MetricsSnapshot::to_json);
  4. instrument names are unique and sorted (snapshot order is stable).

Prometheus checks (format version 0.0.4):
  5. every sample line is `name[{le="..."}] value` with names in the
     [a-zA-Z0-9_:] charset, prefixed ccsig_;
  6. every metric is preceded by exactly one `# TYPE name kind` line with
     kind in {counter, gauge, histogram};
  7. histogram buckets are cumulative (non-decreasing le order), end at
     le="+Inf", and the +Inf bucket equals name_count;
  8. when both files are given, every JSON counter / gauge / histogram
     appears in the exposition with matching values (counters exact,
     gauges/sums to 1e-9 relative tolerance).

Exit codes: 0 valid, 1 validation failure, 2 usage / unreadable input.

Usage: check_metrics.py <metrics.json> [<metrics.prom>] [-- command...]

With a trailing command (after --), the command runs first — expected to
write the files — and its failure fails the check. This is how the
metrics_json_valid / metrics_prom_valid ctests produce and validate the
exports in one step.
"""

import json
import math
import re
import subprocess
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{le="(?P<le>[^"]*)"\})?'
    r' (?P<value>\S+)$')
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram)$")


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    return 1


def prom_name(name):
    return "ccsig_" + "".join(
        c if c.isalnum() or c in "_:" else "_" for c in name)


def close(a, b):
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def validate_json(doc):
    """Returns (rc, flattened {prom_name: value} maps for cross-check)."""
    if not isinstance(doc, dict):
        return fail("top level must be a JSON object"), None
    for key in ("counters", "gauges", "histograms"):
        if key not in doc or not isinstance(doc[key], dict):
            return fail(f"missing or non-object {key!r} section"), None

    for section in ("counters", "gauges", "histograms"):
        names = list(doc[section].keys())
        if names != sorted(names):
            return fail(f"{section} keys are not sorted"), None

    counters, gauges, hists = {}, {}, {}
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            return fail(
                f"counter {name!r}: value {value!r} is not a non-negative "
                "integer"), None
        counters[prom_name(name)] = value
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return fail(f"gauge {name!r}: value {value!r} is not a "
                        "number"), None
        gauges[prom_name(name)] = float(value)

    for name, h in doc["histograms"].items():
        where = f"histogram {name!r}"
        if not isinstance(h, dict):
            return fail(f"{where}: not an object"), None
        for key in ("bounds", "buckets", "count", "sum"):
            if key not in h:
                return fail(f"{where}: missing {key!r}"), None
        bounds, buckets = h["bounds"], h["buckets"]
        if not all(isinstance(b, (int, float)) for b in bounds):
            return fail(f"{where}: non-numeric bound"), None
        if any(b1 >= b2 for b1, b2 in zip(bounds, bounds[1:])):
            return fail(f"{where}: bounds are not strictly increasing"), None
        if len(buckets) != len(bounds) + 1:
            return fail(f"{where}: {len(buckets)} buckets for "
                        f"{len(bounds)} bounds (want bounds+1)"), None
        if not all(isinstance(b, int) and b >= 0 for b in buckets):
            return fail(f"{where}: bucket counts must be non-negative "
                        "integers"), None
        if not isinstance(h["count"], int):
            return fail(f"{where}: count must be emitted as an "
                        "integer"), None
        if h["count"] != sum(buckets):
            return fail(f"{where}: count {h['count']} != bucket sum "
                        f"{sum(buckets)}"), None
        s = h["sum"]
        if not isinstance(s, (int, float)) or isinstance(s, bool):
            return fail(f"{where}: sum must be a number"), None
        if isinstance(s, float) and s.is_integer():
            return fail(f"{where}: integral sum {s} must be emitted as an "
                        "integer (exact-integer contract)"), None
        hists[prom_name(name)] = h
    return 0, (counters, gauges, hists)


def validate_prom(text):
    """Returns (rc, {name: (kind, payload)}) where payload is the value or,
    for histograms, (buckets_by_le, sum, count)."""
    typed = {}     # name -> kind
    samples = {}   # base name -> list of (le_or_None, float value)
    seen_after_type = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if line.startswith("# TYPE") and not m:
                return fail(f"line {lineno}: malformed TYPE line: "
                            f"{line!r}"), None
            if m:
                name = m.group("name")
                if name in typed:
                    return fail(f"line {lineno}: duplicate TYPE for "
                                f"{name}"), None
                typed[name] = m.group("kind")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            return fail(f"line {lineno}: malformed sample: {line!r}"), None
        name = m.group("name")
        if not name.startswith("ccsig_"):
            return fail(f"line {lineno}: {name} lacks the ccsig_ "
                        "prefix"), None
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed \
                    and typed[name[:-len(suffix)]] == "histogram":
                base = name[:-len(suffix)]
        if base not in typed:
            return fail(f"line {lineno}: sample {name} has no preceding "
                        "TYPE line"), None
        le = m.group("le")
        raw = m.group("value")
        try:
            value = float(raw)
        except ValueError:
            return fail(f"line {lineno}: non-numeric value {raw!r}"), None
        samples.setdefault(base, []).append((name, le, value))
        seen_after_type.add(base)

    out = {}
    for name, kind in typed.items():
        rows = samples.get(name, [])
        if not rows:
            return fail(f"TYPE {name} has no samples"), None
        if kind in ("counter", "gauge"):
            if len(rows) != 1 or rows[0][1] is not None:
                return fail(f"{name}: {kind} must have exactly one plain "
                            "sample"), None
            out[name] = (kind, rows[0][2])
            continue
        # histogram: _bucket rows (cumulative, +Inf last), _sum, _count.
        buckets = [(le, v) for n, le, v in rows if n == name + "_bucket"]
        sums = [v for n, le, v in rows if n == name + "_sum"]
        counts = [v for n, le, v in rows if n == name + "_count"]
        if not buckets or len(sums) != 1 or len(counts) != 1:
            return fail(f"{name}: histogram needs _bucket rows and exactly "
                        "one _sum and _count"), None
        if buckets[-1][0] != "+Inf":
            return fail(f"{name}: last bucket must be le=\"+Inf\""), None
        values = [v for _, v in buckets]
        if any(a > b for a, b in zip(values, values[1:])):
            return fail(f"{name}: bucket counts must be cumulative "
                        "(non-decreasing)"), None
        les = [float(le) for le, _ in buckets[:-1]]
        if any(a >= b for a, b in zip(les, les[1:])):
            return fail(f"{name}: le bounds must be increasing"), None
        if values[-1] != counts[0]:
            return fail(f"{name}: +Inf bucket {values[-1]} != _count "
                        f"{counts[0]}"), None
        out[name] = (kind, (buckets, sums[0], counts[0]))
    return 0, out


def cross_check(json_maps, prom):
    counters, gauges, hists = json_maps
    for name, value in counters.items():
        if name not in prom:
            return fail(f"counter {name} missing from exposition")
        kind, pv = prom[name]
        if kind != "counter" or pv != value:
            return fail(f"counter {name}: JSON {value} vs exposition "
                        f"{kind} {pv}")
    for name, value in gauges.items():
        if name not in prom:
            return fail(f"gauge {name} missing from exposition")
        kind, pv = prom[name]
        if kind != "gauge" or not close(pv, value):
            return fail(f"gauge {name}: JSON {value} vs exposition "
                        f"{kind} {pv}")
    for name, h in hists.items():
        if name not in prom:
            return fail(f"histogram {name} missing from exposition")
        kind, (buckets, psum, pcount) = prom[name]
        if kind != "histogram":
            return fail(f"histogram {name}: exposed as {kind}")
        if pcount != h["count"] or not close(psum, h["sum"]):
            return fail(f"histogram {name}: count/sum mismatch "
                        f"({pcount}/{psum} vs {h['count']}/{h['sum']})")
        cum = 0
        for (le, pv), jb in zip(buckets, h["buckets"]):
            cum += jb
            if pv != cum:
                return fail(f"histogram {name} le={le}: cumulative "
                            f"{pv} != JSON prefix sum {cum}")
    return 0


def main(argv):
    command = []
    if "--" in argv:
        split = argv.index("--")
        command = argv[split + 1:]
        argv = argv[:split]
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if command:
        proc = subprocess.run(command, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"check_metrics: command exited {proc.returncode}: "
                  f"{' '.join(command)}", file=sys.stderr)
            return 2

    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_metrics: cannot read {argv[1]}: {e}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"check_metrics: FAIL: {argv[1]} is not valid JSON: {e}",
              file=sys.stderr)
        return 1
    rc, json_maps = validate_json(doc)
    if rc:
        return rc
    counters, gauges, hists = json_maps

    prom_summary = ""
    if len(argv) == 3:
        try:
            with open(argv[2], "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_metrics: cannot read {argv[2]}: {e}",
                  file=sys.stderr)
            return 2
        rc, prom = validate_prom(text)
        if rc:
            return rc
        rc = cross_check(json_maps, prom)
        if rc:
            return rc
        prom_summary = f", {len(prom)} exposition metrics cross-checked"

    print(f"check_metrics: OK: {len(counters)} counters, {len(gauges)} "
          f"gauges, {len(hists)} histograms{prom_summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

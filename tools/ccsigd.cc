// ccsigd — crash-safe, backpressured classification daemon.
//
// Usage:
//   ccsigd --log FILE [--source FILE]... [--fifo PIPE]...
//          [--oneshot-source FILE]...
//          [--model FILE] [--socket PATH] [--admin-socket PATH]
//          [--window-tick-ms N] [--window-slots N]
//          [--record FILE | --replay FILE [--replay-pace-us N]]
//          [--jobs N] [--shards N] [--max-flows N] [--idle-timeout SECONDS]
//          [--poll-records N] [--metrics-interval-ms N] [--oneshot]
//          [--quiet]
//
// Tails every --source pcap file past EOF (surviving rotation), spools
// every --fifo named pipe, classifies each finished flow with the loaded
// model, and appends one framed verdict line per flow to --log — an
// append-only, CRC-framed file that survives SIGKILL with at most a torn
// tail (truncated and resumed on restart). --socket serves the verdicts
// and periodic metrics lines to live subscribers over a Unix-domain
// stream socket (lossy; the log is the durable record). --record writes
// the exact pushed-record session for later --replay, which regenerates a
// byte-identical verdict log at any --jobs. --admin-socket serves the
// live introspection plane on a second Unix socket: one-line queries
// healthz / statusz / varz / metricsz, answered with body lines and a
// lone "." terminator (poll it with ccsig_top). varz rates and quantiles
// cover a sliding window of --window-slots ticks taken every
// --window-tick-ms.
//
// Signals:
//   SIGTERM / SIGINT   graceful drain: stop intake, finalize resident
//                      flows, flush + fsync the verdict log, exit 0.
//   SIGHUP             hot-reload --model; an unparseable file is rejected
//                      and the old model keeps serving.
//   SIGKILL            (uncatchable) at most one torn verdict frame;
//                      restart + --replay resumes byte-identically.
//
// Exit codes: 0 clean drain, 2 usage error, 3 unreadable log/model/
// session, 4 internal error.
#include <cstdio>
#include <cstring>
#include <string>

#include "runtime/event_log.h"
#include "runtime/shutdown.h"
#include "service/service.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --log FILE [--source FILE]... [--fifo PIPE]...\n"
      "          [--oneshot-source FILE]... [--model FILE] [--socket PATH]\n"
      "          [--admin-socket PATH] [--window-tick-ms N]\n"
      "          [--window-slots N]\n"
      "          [--record FILE | --replay FILE [--replay-pace-us N]]\n"
      "          [--jobs N] [--shards N] [--max-flows N]\n"
      "          [--idle-timeout SECONDS] [--poll-records N]\n"
      "          [--metrics-interval-ms N] [--oneshot] [--quiet]\n",
      argv0);
  return ccsig::service::ClassificationService::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  ccsig::service::ServiceConfig cfg;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      cfg.verdict_log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--source") == 0 && i + 1 < argc) {
      ccsig::service::SourceConfig sc;
      sc.path = argv[++i];
      cfg.sources.push_back(sc);
    } else if (std::strcmp(argv[i], "--fifo") == 0 && i + 1 < argc) {
      ccsig::service::SourceConfig sc;
      sc.path = argv[++i];
      sc.fifo = true;
      cfg.sources.push_back(sc);
    } else if (std::strcmp(argv[i], "--oneshot-source") == 0 && i + 1 < argc) {
      ccsig::service::SourceConfig sc;
      sc.path = argv[++i];
      sc.oneshot = true;
      cfg.sources.push_back(sc);
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      cfg.model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      cfg.socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--admin-socket") == 0 && i + 1 < argc) {
      cfg.admin_socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--window-tick-ms") == 0 && i + 1 < argc) {
      cfg.window_tick_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--window-slots") == 0 && i + 1 < argc) {
      cfg.window_slots = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc) {
      cfg.record_session_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      cfg.replay_session_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-pace-us") == 0 && i + 1 < argc) {
      cfg.replay_pace_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cfg.stream.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cfg.stream.shards = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-flows") == 0 && i + 1 < argc) {
      cfg.stream.max_active_flows =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--idle-timeout") == 0 && i + 1 < argc) {
      cfg.stream.idle_timeout = ccsig::sim::from_seconds(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--poll-records") == 0 && i + 1 < argc) {
      cfg.poll_records = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-interval-ms") == 0 &&
               i + 1 < argc) {
      cfg.metrics_interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--oneshot") == 0) {
      cfg.oneshot = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.verdict_log_path.empty()) {
    std::fprintf(stderr, "error: --log is required\n");
    return usage(argv[0]);
  }
  if (!cfg.replay_session_path.empty() && !cfg.record_session_path.empty()) {
    std::fprintf(stderr, "error: --record and --replay are exclusive\n");
    return usage(argv[0]);
  }
  if (cfg.replay_session_path.empty() && cfg.sources.empty()) {
    std::fprintf(stderr, "error: no --source/--fifo given (and no --replay)\n");
    return usage(argv[0]);
  }

  ccsig::runtime::ShutdownLatch::install();
  ccsig::runtime::EventLog events("ccsigd", stderr, !quiet);
  cfg.events = &events;
  ccsig::service::ClassificationService service(std::move(cfg));
  return service.run();
}

// ccsig_testbed — run one controlled testbed experiment from the command
// line and print the flow's signature, verdict, and path statistics.
// With --reps N it runs N independent replicates of the same configuration
// (seeds derived deterministically from --seed) in parallel across --jobs
// worker threads and prints one line per replicate plus a verdict tally.
//
// Usage:
//   ccsig_testbed [--external] [--rate MBPS] [--latency MS] [--loss P]
//                 [--buffer MS] [--duration S] [--cc NAME]
//                 [--seed N] [--reps N] [--jobs N] [--pcap FILE]
//                 [--metrics-out FILE] [--trace-out FILE]
//                 [--flow-telemetry FILE] [--quiet]
//
// --cc accepts any registered congestion-control module (the registry in
// tcp/congestion_control.cc: reno, cubic, cubic_hystart, bbr_lite, vegas,
// westwood — plus aliases like newreno/bbr/westwood+). An unknown name
// exits 2 and prints the registry with one-line summaries.
//
// Observability side files (stdout/verdicts are unaffected):
//   --metrics-out     final counters/gauges/histograms snapshot (JSON)
//   --metrics-prom    the same snapshot in Prometheus text exposition
//   --trace-out       Chrome trace-event JSON (chrome://tracing, Perfetto)
//   --flow-telemetry  per-ACK cwnd/ssthresh/pipe/srtt CSV of the test flow
//                     (single run only, like --pcap)
//   --quiet           no stderr progress (daemon/script mode; verdicts on
//                     stdout are unaffected)
//
// Exit codes: 0 success, 1 signature unavailable, 2 usage error, 3 input
// or I/O error, 4 internal error.
#include <cstdio>
#include <cstring>
#include <ios>
#include <string>
#include <utility>
#include <vector>

#include "core/ccsig.h"
#include "obs/flow_telemetry.h"
#include "tcp/congestion_control.h"
#include "obs/tool_obs.h"
#include "pcap/capture.h"
#include "runtime/atomic_file.h"
#include "runtime/parallel_map.h"
#include "runtime/parse_error.h"
#include "runtime/progress.h"
#include "sim/random.h"
#include "testbed/experiment.h"

namespace {

int run_tool(ccsig::testbed::TestbedConfig cfg, int reps, int jobs,
             const std::string& pcap_path, const std::string& telemetry_path,
             bool quiet);

}  // namespace

int main(int argc, char** argv) {
  using namespace ccsig;
  testbed::TestbedConfig cfg;
  cfg.test_duration = sim::from_seconds(8);
  cfg.warmup = sim::from_seconds(2.5);
  cfg.seed = 1;
  int reps = 1;
  int jobs = 0;  // 0 = all hardware threads
  std::string pcap_path;
  std::string metrics_path;
  std::string metrics_prom_path;
  std::string trace_path;
  std::string telemetry_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--external") == 0) {
      cfg.scenario = testbed::Scenario::kExternal;
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      cfg.access_rate_mbps = std::atof(next("--rate"));
    } else if (std::strcmp(argv[i], "--latency") == 0) {
      cfg.access_latency_ms = std::atof(next("--latency"));
    } else if (std::strcmp(argv[i], "--loss") == 0) {
      cfg.access_loss = std::atof(next("--loss"));
    } else if (std::strcmp(argv[i], "--buffer") == 0) {
      cfg.access_buffer_ms = std::atof(next("--buffer"));
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      cfg.test_duration = sim::from_seconds(std::atof(next("--duration")));
    } else if (std::strcmp(argv[i], "--cc") == 0) {
      cfg.congestion_control = next("--cc");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(next("--reps"));
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::atoi(next("--jobs"));
    } else if (std::strcmp(argv[i], "--pcap") == 0) {
      pcap_path = next("--pcap");
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_path = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0) {
      metrics_prom_path = next("--metrics-prom");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_path = next("--trace-out");
    } else if (std::strcmp(argv[i], "--flow-telemetry") == 0) {
      telemetry_path = next("--flow-telemetry");
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--external] [--rate MBPS] [--latency MS] "
                   "[--loss P] [--buffer MS] [--duration S] [--cc NAME] "
                   "[--seed N] [--reps N] [--jobs N] [--pcap FILE] "
                   "[--metrics-out FILE] [--metrics-prom FILE] "
                   "[--trace-out FILE] "
                   "[--flow-telemetry FILE] [--quiet]\n",
                   argv[0]);
      return 2;
    }
  }
  // Resolve --cc up front so a typo is a usage error with the full menu,
  // not an internal error mid-experiment.
  try {
    tcp::congestion_control_by_name(cfg.congestion_control);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "unknown --cc '%s'; registered modules:\n",
                 cfg.congestion_control.c_str());
    for (const auto& info : tcp::congestion_control_registry()) {
      std::fprintf(stderr, "  %-14s %s\n", info.name, info.summary);
    }
    return 2;
  }
  if (reps > 1 && !pcap_path.empty()) {
    std::fprintf(stderr, "--pcap requires a single run (omit --reps)\n");
    return 2;
  }
  if (reps > 1 && !telemetry_path.empty()) {
    std::fprintf(stderr,
                 "--flow-telemetry requires a single run (omit --reps)\n");
    return 2;
  }

  try {
    obs::ToolObs tool_obs(metrics_path, trace_path, "ccsig_testbed",
                          metrics_prom_path);
    const int rc = run_tool(std::move(cfg), reps, jobs, pcap_path,
                            telemetry_path, quiet);
    tool_obs.finalize();
    return rc;
  } catch (const runtime::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::ios_base::failure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  }
}

namespace {

int run_tool(ccsig::testbed::TestbedConfig cfg, int reps, int jobs,
             const std::string& pcap_path, const std::string& telemetry_path,
             bool quiet) {
  using namespace ccsig;
  std::printf("testbed: %s scenario, access %.0f Mbps / %.0f ms latency / "
              "%.4f loss / %.0f ms buffer, sender %s, seed %llu\n",
              cfg.scenario == testbed::Scenario::kExternal ? "EXTERNAL"
                                                           : "SELF-INDUCED",
              cfg.access_rate_mbps, cfg.access_latency_ms, cfg.access_loss,
              cfg.access_buffer_ms, cfg.congestion_control.c_str(),
              static_cast<unsigned long long>(cfg.seed));

  if (reps > 1) {
    // Replicate mode: derive one seed per replicate from --seed, run the
    // batch on the runtime thread pool, report in replicate order.
    std::vector<testbed::TestbedConfig> runs(static_cast<std::size_t>(reps),
                                             cfg);
    sim::Rng seeder(cfg.seed);
    for (auto& r : runs) r.seed = seeder.next_u64();
    runtime::ProgressReporterOptions ropt;
    ropt.label = "reps";
    if (quiet) ropt.mode = runtime::ProgressMode::kOff;
    runtime::ProgressReporter reporter(ropt);
    runtime::ProgressCounter progress(runs.size(), reporter.callback());
    const auto results = runtime::parallel_map(
        runs,
        [](const testbed::TestbedConfig& c) {
          return testbed::run_testbed_experiment(c);
        },
        jobs, &progress);
    reporter.finish();

    const auto& clf = CongestionClassifier::pretrained();
    int votes[2] = {0, 0};
    int no_features = 0;
    double tput_sum = 0;
    for (int i = 0; i < reps; ++i) {
      const testbed::TestResult& r = results[static_cast<std::size_t>(i)];
      tput_sum += r.receiver_throughput_bps;
      if (!r.features) {
        ++no_features;
        std::printf("rep %2d: %6.2f Mbps, signature unavailable\n", i,
                    r.receiver_throughput_bps / 1e6);
        continue;
      }
      const auto verdict = clf.classify(*r.features);
      ++votes[static_cast<int>(verdict.verdict) == 1 ? 1 : 0];
      std::printf(
          "rep %2d: %6.2f Mbps, NormDiff=%.3f CoV=%.3f -> %s (%.2f)\n", i,
          r.receiver_throughput_bps / 1e6, r.features->norm_diff,
          r.features->cov, to_string(verdict.verdict), verdict.confidence);
    }
    std::printf("\n%d reps: mean throughput %.2f Mbps, verdicts: "
                "%d self-induced / %d external / %d unavailable\n",
                reps, tput_sum / reps / 1e6, votes[1], votes[0], no_features);
    return 0;
  }

  obs::FlowTelemetryConfig tele_cfg;
  tele_cfg.cc_label = cfg.congestion_control;  // `# cc:` comment in the CSV
  obs::FlowTelemetryRecorder telemetry(tele_cfg);
  if (!telemetry_path.empty()) cfg.telemetry = &telemetry;
  testbed::TestbedExperiment experiment(cfg);
  std::unique_ptr<pcap::PcapCaptureTap> tap;
  if (!pcap_path.empty()) {
    tap = std::make_unique<pcap::PcapCaptureTap>(pcap_path);
    experiment.network().node("server1")->add_tap(tap.get());
  }
  const testbed::TestResult result = experiment.run();
  if (tap) {
    tap->flush();
    std::printf("capture written to %s (%llu frames)\n", pcap_path.c_str(),
                static_cast<unsigned long long>(tap->packets_captured()));
  }
  if (!telemetry_path.empty()) {
    runtime::write_file_atomic(telemetry_path, telemetry.to_csv());
    std::printf("flow telemetry written to %s (%zu samples, %llu recorded)\n",
                telemetry_path.c_str(), telemetry.size(),
                static_cast<unsigned long long>(telemetry.recorded()));
  }

  std::printf("\nthroughput: %.2f Mbps over %.1f s (plan %.0f Mbps)\n",
              result.receiver_throughput_bps / 1e6,
              sim::to_seconds(cfg.test_duration), cfg.access_rate_mbps);
  std::printf("web100: %llu segs sent, %llu retx (%llu fast, %llu RTO), "
              "srtt %.1f ms\n",
              static_cast<unsigned long long>(result.web100.segments_sent),
              static_cast<unsigned long long>(result.web100.retransmits),
              static_cast<unsigned long long>(result.web100.fast_retransmits),
              static_cast<unsigned long long>(result.web100.timeouts),
              sim::to_millis(result.web100.smoothed_rtt));

  if (!result.features) {
    std::printf("signature: unavailable (too few slow-start RTT samples)\n");
    return 1;
  }
  std::printf("signature: NormDiff=%.3f CoV=%.3f (%zu samples, RTT "
              "%.1f-%.1f ms)\n",
              result.features->norm_diff, result.features->cov,
              result.features->rtt_samples, result.features->min_rtt_ms,
              result.features->max_rtt_ms);
  const auto verdict =
      CongestionClassifier::pretrained().classify(*result.features);
  std::printf("verdict: %s (confidence %.2f)\n", to_string(verdict.verdict),
              verdict.confidence);
  return 0;
}

}  // namespace

// ccsig_analyze — command-line flow diagnosis for pcap captures.
//
// Usage:
//   ccsig_analyze <capture.pcap> [--model FILE] [--min-samples N] [--verbose]
//                 [--metrics-out FILE] [--metrics-prom FILE]
//                 [--trace-out FILE] [--flow-telemetry FILE]
//                 [--stream] [--mmap] [--jobs N] [--shards N] [--max-flows N]
//                 [--idle-timeout SECONDS]
//
// Prints one line per TCP flow found in the capture: throughput, the
// slow-start congestion signature, and the classifier's verdict.
//
// --stream analyzes the capture in a single pass with bounded memory
// (src/stream/): same output, byte for byte, as the default batch path on
// time-ordered captures. --mmap reads the capture through the zero-copy
// mmap backend (pcap::CursorMode::kMmap; implies --stream, output-
// identical to the buffered reader). --jobs sets worker threads
// (output-invariant),
// --shards/--max-flows/--idle-timeout control the flow table's eviction
// policy (these CAN change the output by evicting long-lived flows early).
//
// Observability side files (see src/obs/): --metrics-out writes the final
// metrics snapshot JSON, --metrics-prom the same snapshot in Prometheus
// text exposition format, --trace-out writes Chrome trace JSON, and
// --flow-telemetry writes one CSV row per RTT sample of every flow in the
// capture (flow index, ports, ACK arrival time, RTT, acked offset).
//
// Exit codes: 0 success, 1 no classifiable flows, 2 usage error,
// 3 unreadable or malformed input, 4 internal error.
#include <cstdio>
#include <cstring>
#include <ios>
#include <sstream>
#include <string>
#include <utility>

#include "analysis/flow_trace.h"
#include "analysis/from_pcap.h"
#include "analysis/rtt_estimator.h"
#include "core/ccsig.h"
#include "obs/tool_obs.h"
#include "pcap/cursor.h"
#include "stream/stream.h"
#include "obs/trace.h"
#include "runtime/atomic_file.h"
#include "runtime/parse_error.h"

namespace {

/// Renders every flow's RTT sample series as one CSV (times and RTTs in
/// seconds, repo-wide precision-17 convention).
std::string rtt_telemetry_csv(const std::vector<ccsig::analysis::FlowTrace>&
                                  flows) {
  std::ostringstream out;
  out.precision(17);
  out << "flow,src_port,dst_port,time_s,rtt_s,acked_seq\n";
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const auto& s : ccsig::analysis::extract_rtt_samples(flows[i])) {
      out << i << ',' << flows[i].data_key.src_port << ','
          << flows[i].data_key.dst_port << ',' << ccsig::sim::to_seconds(s.at)
          << ',' << ccsig::sim::to_seconds(s.rtt) << ',' << s.acked_seq
          << '\n';
    }
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string pcap_path;
  std::string model_path;
  std::string metrics_path;
  std::string metrics_prom_path;
  std::string trace_path;
  std::string telemetry_path;
  ccsig::features::ExtractOptions extract;
  bool verbose = false;
  bool use_stream = false;
  ccsig::pcap::CursorMode cursor_mode = ccsig::pcap::CursorMode::kStream;
  ccsig::stream::StreamConfig stream_cfg;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-samples") == 0 && i + 1 < argc) {
      extract.min_rtt_samples =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      use_stream = true;
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      use_stream = true;
      cursor_mode = ccsig::pcap::CursorMode::kMmap;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      stream_cfg.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      stream_cfg.shards = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-flows") == 0 && i + 1 < argc) {
      stream_cfg.max_active_flows =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--idle-timeout") == 0 && i + 1 < argc) {
      stream_cfg.idle_timeout =
          ccsig::sim::from_seconds(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0 && i + 1 < argc) {
      metrics_prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flow-telemetry") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (argv[i][0] != '-' && pcap_path.empty()) {
      pcap_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s <capture.pcap> [--model FILE] "
                   "[--min-samples N] [--verbose] [--metrics-out FILE] "
                   "[--metrics-prom FILE] "
                   "[--trace-out FILE] [--flow-telemetry FILE] [--stream] "
                   "[--mmap] [--jobs N] [--shards N] [--max-flows N] "
                   "[--idle-timeout SECONDS]\n",
                   argv[0]);
      return 2;
    }
  }
  if (pcap_path.empty()) {
    std::fprintf(stderr, "usage: %s <capture.pcap> [--model FILE]\n", argv[0]);
    return 2;
  }

  try {
    ccsig::obs::ToolObs tool_obs(metrics_path, trace_path, "ccsig_analyze",
                                 metrics_prom_path);
    ccsig::CongestionClassifier model;
    if (!model_path.empty()) {
      try {
        model = ccsig::CongestionClassifier::load(model_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
      }
    }
    ccsig::FlowAnalyzer analyzer = model_path.empty()
                                       ? ccsig::FlowAnalyzer()
                                       : ccsig::FlowAnalyzer(std::move(model));
    if (verbose) {
      std::printf("model decision logic:\n%s\n",
                  analyzer.classifier().describe().c_str());
    }
    stream_cfg.extract = extract;
    const auto analysis =
        use_stream
            ? ccsig::stream::analyze_pcap_stream(pcap_path, analyzer,
                                                 stream_cfg, cursor_mode)
            : analyzer.analyze_pcap_checked(pcap_path, extract);
    if (!telemetry_path.empty()) {
      // Decoded separately from the analyzer pass: the reports keep only
      // features, while telemetry wants the raw per-ACK RTT series.
      ccsig::obs::TraceSpan span("analyze.flow_telemetry", "analyze");
      const auto decoded = ccsig::analysis::trace_from_pcap_checked(pcap_path);
      const auto flows = ccsig::analysis::split_flows(decoded.trace);
      ccsig::runtime::write_file_atomic(telemetry_path,
                                        rtt_telemetry_csv(flows));
      std::fprintf(stderr, "flow telemetry written to %s (%zu flows)\n",
                   telemetry_path.c_str(), flows.size());
    }
    if (analysis.error) {
      std::fprintf(stderr, "error: %s\n",
                   analysis.error->to_string().c_str());
      if (analysis.reports.empty()) return 3;
      std::fprintf(stderr,
                   "analyzing the %zu flow(s) decoded before the error\n",
                   analysis.reports.size());
    }
    const auto& reports = analysis.reports;
    if (reports.empty()) {
      std::fprintf(stderr, "no TCP flows with payload found in %s\n",
                   pcap_path.c_str());
      return 1;
    }
    int classified = 0;
    for (const auto& report : reports) {
      std::printf("%s\n", ccsig::FlowAnalyzer::render(report).c_str());
      if (verbose && report.features) {
        std::printf(
            "    slow-start: %zu RTT samples, min %.1f ms, max %.1f ms, "
            "late delivery %.2f Mbps%s\n",
            report.features->rtt_samples, report.features->min_rtt_ms,
            report.features->max_rtt_ms,
            report.features->slow_start_throughput_bps / 1e6,
            report.features->slow_start_ended_by_retransmission
                ? ""
                : " (no retransmission observed)");
      }
      classified += report.classification ? 1 : 0;
    }
    if (analysis.error) return 3;
    return classified > 0 ? 0 : 1;
  } catch (const ccsig::runtime::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::ios_base::failure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  }
}

// ccsig_analyze — command-line flow diagnosis for pcap captures.
//
// Usage:
//   ccsig_analyze <capture.pcap> [--model FILE] [--min-samples N] [--verbose]
//
// Prints one line per TCP flow found in the capture: throughput, the
// slow-start congestion signature, and the classifier's verdict. Exit
// codes: 0 success, 1 no classifiable flows, 2 usage error, 3 unreadable
// or malformed input, 4 internal error.
#include <cstdio>
#include <cstring>
#include <ios>
#include <string>
#include <utility>

#include "core/ccsig.h"
#include "runtime/parse_error.h"

int main(int argc, char** argv) {
  std::string pcap_path;
  std::string model_path;
  ccsig::features::ExtractOptions extract;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-samples") == 0 && i + 1 < argc) {
      extract.min_rtt_samples =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (argv[i][0] != '-' && pcap_path.empty()) {
      pcap_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s <capture.pcap> [--model FILE] "
                   "[--min-samples N] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  if (pcap_path.empty()) {
    std::fprintf(stderr, "usage: %s <capture.pcap> [--model FILE]\n", argv[0]);
    return 2;
  }

  try {
    ccsig::CongestionClassifier model;
    if (!model_path.empty()) {
      try {
        model = ccsig::CongestionClassifier::load(model_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
      }
    }
    ccsig::FlowAnalyzer analyzer = model_path.empty()
                                       ? ccsig::FlowAnalyzer()
                                       : ccsig::FlowAnalyzer(std::move(model));
    if (verbose) {
      std::printf("model decision logic:\n%s\n",
                  analyzer.classifier().describe().c_str());
    }
    const auto analysis = analyzer.analyze_pcap_checked(pcap_path, extract);
    if (analysis.error) {
      std::fprintf(stderr, "error: %s\n",
                   analysis.error->to_string().c_str());
      if (analysis.reports.empty()) return 3;
      std::fprintf(stderr,
                   "analyzing the %zu flow(s) decoded before the error\n",
                   analysis.reports.size());
    }
    const auto& reports = analysis.reports;
    if (reports.empty()) {
      std::fprintf(stderr, "no TCP flows with payload found in %s\n",
                   pcap_path.c_str());
      return 1;
    }
    int classified = 0;
    for (const auto& report : reports) {
      std::printf("%s\n", ccsig::FlowAnalyzer::render(report).c_str());
      if (verbose && report.features) {
        std::printf(
            "    slow-start: %zu RTT samples, min %.1f ms, max %.1f ms, "
            "late delivery %.2f Mbps%s\n",
            report.features->rtt_samples, report.features->min_rtt_ms,
            report.features->max_rtt_ms,
            report.features->slow_start_throughput_bps / 1e6,
            report.features->slow_start_ended_by_retransmission
                ? ""
                : " (no retransmission observed)");
      }
      classified += report.classification ? 1 : 0;
    }
    if (analysis.error) return 3;
    return classified > 0 ? 0 : 1;
  } catch (const ccsig::runtime::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::ios_base::failure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 4;
  }
}

// ccsig_analyze — command-line flow diagnosis for pcap captures.
//
// Usage:
//   ccsig_analyze <capture.pcap> [--model FILE] [--min-samples N] [--verbose]
//
// Prints one line per TCP flow found in the capture: throughput, the
// slow-start congestion signature, and the classifier's verdict. Exit code
// is 0 on success, 1 when the capture contains no classifiable flows, and
// 2 on usage/IO errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/ccsig.h"

int main(int argc, char** argv) {
  std::string pcap_path;
  std::string model_path;
  ccsig::features::ExtractOptions extract;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-samples") == 0 && i + 1 < argc) {
      extract.min_rtt_samples =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (argv[i][0] != '-' && pcap_path.empty()) {
      pcap_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s <capture.pcap> [--model FILE] "
                   "[--min-samples N] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  if (pcap_path.empty()) {
    std::fprintf(stderr, "usage: %s <capture.pcap> [--model FILE]\n", argv[0]);
    return 2;
  }

  try {
    ccsig::FlowAnalyzer analyzer =
        model_path.empty()
            ? ccsig::FlowAnalyzer()
            : ccsig::FlowAnalyzer(ccsig::CongestionClassifier::load(model_path));
    if (verbose) {
      std::printf("model decision logic:\n%s\n",
                  analyzer.classifier().describe().c_str());
    }
    const auto reports = analyzer.analyze_pcap(pcap_path, extract);
    if (reports.empty()) {
      std::fprintf(stderr, "no TCP flows with payload found in %s\n",
                   pcap_path.c_str());
      return 1;
    }
    int classified = 0;
    for (const auto& report : reports) {
      std::printf("%s\n", ccsig::FlowAnalyzer::render(report).c_str());
      if (verbose && report.features) {
        std::printf(
            "    slow-start: %zu RTT samples, min %.1f ms, max %.1f ms, "
            "late delivery %.2f Mbps%s\n",
            report.features->rtt_samples, report.features->min_rtt_ms,
            report.features->max_rtt_ms,
            report.features->slow_start_throughput_bps / 1e6,
            report.features->slow_start_ended_by_retransmission
                ? ""
                : " (no retransmission observed)");
      }
      classified += report.classification ? 1 : 0;
    }
    return classified > 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

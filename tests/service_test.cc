// ClassificationService end-to-end: oneshot runs over generated captures
// produce the same verdict set as the batch analyzer at any --jobs (and
// byte-identical logs between jobs counts), the verdict log survives torn
// tails, the shed ladder counts every shed, SIGHUP-style reloads swap or
// reject models without downtime, and a SIGTERMed ccsigd child drains
// with exit 0.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "runtime/event_log.h"
#include "runtime/shutdown.h"
#include "service/service.h"
#include "test_helpers.h"

namespace ccsig::service {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::ShutdownLatch::reset();
    const std::string stamp =
        std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
        "_" + std::to_string(counter_++);
    dir_ = (fs::temp_directory_path() / ("ccsig_service_" + stamp)).string();
    fs::create_directories(dir_);
    capture_ = dir_ + "/capture.pcap";
    testutil::write_random_capture(11, capture_);
  }
  void TearDown() override {
    runtime::ShutdownLatch::reset();
    fs::remove_all(dir_);
  }

  ServiceConfig oneshot_config(const std::string& log_name,
                               unsigned jobs = 1) {
    ServiceConfig cfg;
    SourceConfig sc;
    sc.path = capture_;
    sc.oneshot = true;
    cfg.sources.push_back(sc);
    cfg.verdict_log_path = dir_ + "/" + log_name;
    cfg.oneshot = true;
    cfg.idle_sleep_ms = 0;
    cfg.stream.jobs = jobs;
    return cfg;
  }

  static int counter_;
  std::string dir_;
  std::string capture_;
};

int ServiceTest::counter_ = 0;

TEST_F(ServiceTest, OneshotMatchesBatchVerdictsAndIsJobsInvariant) {
  ClassificationService s1(oneshot_config("j1.log", 1));
  ASSERT_EQ(s1.run(), ClassificationService::kExitOk);
  ClassificationService s4(oneshot_config("j4.log", 4));
  ASSERT_EQ(s4.run(), ClassificationService::kExitOk);

  // Byte-identical logs at different worker counts.
  const auto b1 = read_bytes(dir_ + "/j1.log");
  const auto b4 = read_bytes(dir_ + "/j4.log");
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, b4);

  // Same verdict *set* as the batch analyzer (the service emits flows as
  // they finalize, so only the ordering may differ from batch order).
  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze_pcap(capture_);
  std::vector<std::string> want;
  for (const auto& r : reports) want.push_back(FlowAnalyzer::render(r));
  std::vector<std::string> got = VerdictLog::read_all(dir_ + "/j1.log");
  EXPECT_EQ(got.size(), want.size());
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(s1.stats().verdicts_emitted, reports.size());
  EXPECT_GT(s1.stats().records_ingested, 0u);
}

TEST_F(ServiceTest, VerdictLogRecoversTornTail) {
  const std::string path = dir_ + "/torn.log";
  {
    VerdictLog log(path);
    log.append("verdict one");
    log.append("verdict two");
    log.sync();
  }
  EXPECT_EQ(VerdictLog::recover(path), 2u);

  // A SIGKILL mid-append leaves a partial frame; recover() cuts it off.
  const auto intact = read_bytes(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {0x20, 0x00, 0x00, 0x00, 0x55};  // framed, truncated
    out.write(torn, sizeof(torn));
  }
  EXPECT_EQ(VerdictLog::recover(path), 2u);
  EXPECT_EQ(read_bytes(path), intact);
  EXPECT_EQ(VerdictLog::read_all(path),
            (std::vector<std::string>{"verdict one", "verdict two"}));

  // A corrupted payload byte fails the CRC and truncates that frame too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(static_cast<std::streamoff>(intact.size()) - 2);
    out.put('X');
  }
  EXPECT_EQ(VerdictLog::recover(path), 1u);
  EXPECT_EQ(VerdictLog::read_all(path),
            (std::vector<std::string>{"verdict one"}));
}

TEST_F(ServiceTest, ShedLadderDropsAndCountsEverything) {
  // Pressure pinned above the drop threshold: every polled record is shed,
  // no flow ever reaches the engine, and every drop is counted.
  ServiceConfig cfg = oneshot_config("shed.log");
  cfg.pressure_probe = [] { return 0.80; };
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);
  EXPECT_EQ(svc.stats().records_ingested, 0u);
  EXPECT_GT(svc.stats().shed_dropped_records, 0u);
  EXPECT_EQ(svc.stats().shed_forced_evicts, 0u);
  EXPECT_EQ(svc.stats().verdicts_emitted, 0u);
  EXPECT_TRUE(VerdictLog::read_all(dir_ + "/shed.log").empty());
}

TEST_F(ServiceTest, ShedLadderEscalatesToEvictAndPause) {
  // Walk the ladder top-down: a few pause iterations, then the evict rung,
  // then clear — the run must still finish and count each rung.
  ServiceConfig cfg = oneshot_config("shed2.log");
  cfg.poll_records = 8;  // keep the drop rungs from eating the whole capture
  auto calls = std::make_shared<std::atomic<int>>(0);
  cfg.pressure_probe = [calls] {
    const int n = calls->fetch_add(1);
    if (n < 2) return 1.0;   // pause_sources
    if (n < 4) return 0.95;  // force_evict (+ drop)
    return 0.0;
  };
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);
  EXPECT_GE(svc.stats().shed_source_pauses, 2u);
  EXPECT_GE(svc.stats().shed_forced_evicts, 2u);
  // After the ladder cleared, the remaining records flowed normally.
  EXPECT_GT(svc.stats().records_ingested, 0u);
}

TEST_F(ServiceTest, HotReloadSwapsValidModelAndRejectsCorruptOne) {
  const std::string model = dir_ + "/model.tree";
  CongestionClassifier::pretrained().save(model);

  // A tailed (never-finishing) source keeps the daemon serving while the
  // main thread swaps the model file under it.
  ServiceConfig cfg;
  SourceConfig sc;
  sc.path = capture_;  // tail mode: EOF is "caught up", not terminal
  cfg.sources.push_back(sc);
  cfg.verdict_log_path = dir_ + "/reload.log";
  cfg.model_path = model;
  ClassificationService svc(std::move(cfg));

  std::thread t([&svc] { svc.run(); });
  const auto wait_for = [&svc](auto pred) {
    for (int i = 0; i < 500 && !pred(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };

  // Valid reload.
  svc.request_reload();
  wait_for([&svc] { return svc.stats().model_reloads >= 1; });

  // Corrupt the model file: the reload must be rejected and the daemon
  // must keep serving with the old model.
  {
    std::ofstream out(model, std::ios::trunc);
    out << "not a decision tree\n";
  }
  svc.request_reload();
  wait_for([&svc] { return svc.stats().model_reloads_rejected >= 1; });

  svc.request_stop();
  t.join();
  EXPECT_EQ(svc.stats().model_reloads, 1u);
  EXPECT_GE(svc.stats().model_reloads_rejected, 1u);
  // The drain still completed: the capture's flows were all emitted.
  EXPECT_GT(svc.stats().verdicts_emitted, 0u);
}

TEST_F(ServiceTest, LineServerBroadcastsAndSurvivesSlowSubscribers) {
  const std::string sock = dir_ + "/sub.sock";
  LineServer server(sock);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  server.accept_pending();
  ASSERT_EQ(server.subscribers(), 1u);

  server.broadcast("hello flow");
  char buf[64] = {};
  const ssize_t n = ::read(fd, buf, sizeof(buf));
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), "hello flow\n");

  // A dead subscriber is reaped on the next broadcast, never crashing the
  // daemon (MSG_NOSIGNAL — no SIGPIPE).
  ::close(fd);
  server.broadcast("after close");
  server.broadcast("after close 2");
  EXPECT_EQ(server.subscribers(), 0u);
}

TEST_F(ServiceTest, MissingModelFileFailsStartupWithInputExit) {
  ServiceConfig cfg = oneshot_config("nostart.log");
  cfg.model_path = dir_ + "/does_not_exist.tree";
  ClassificationService svc(std::move(cfg));
  EXPECT_EQ(svc.run(), ClassificationService::kExitInput);
}

TEST_F(ServiceTest, EventLogEmitsStructuredSingleLines) {
  const std::string line = runtime::EventLog::format_line(
      "ccsigd", 12.0416, "source_quarantined",
      {{"source", "eth0.pcap"}, {"reason", "bad magic in header"}});
  EXPECT_EQ(line,
            "ccsigd up=12.042 event=source_quarantined source=eth0.pcap "
            "reason=\"bad magic in header\"");
}

#ifdef CCSIGD_BIN
TEST_F(ServiceTest, SigtermDrainsChildDaemonWithExitZero) {
  const std::string log = dir_ + "/child.log";
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Tail source: the daemon would run forever without the signal.
    ::execl(CCSIGD_BIN, CCSIGD_BIN, "--log", log.c_str(), "--source",
            capture_.c_str(), "--quiet", static_cast<char*>(nullptr));
    _exit(127);
  }
  // Give the child time to ingest the capture and go idle on the tail
  // (without FINs in the capture, verdicts only emit at the drain).
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The drained log holds every flow of the capture.
  FlowAnalyzer analyzer;
  EXPECT_EQ(VerdictLog::read_all(log).size(),
            analyzer.analyze_pcap(capture_).size());
}
#endif  // CCSIGD_BIN

}  // namespace
}  // namespace ccsig::service

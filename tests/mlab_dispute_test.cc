#include "mlab/dispute2014.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace ccsig::mlab {
namespace {

TEST(DiurnalCurve, ShapeMatchesResidentialTraffic) {
  // Trough in the small hours, peak in the evening.
  EXPECT_LT(diurnal_curve(4), 0.5);
  EXPECT_GT(diurnal_curve(20), 0.9);
  EXPECT_GT(diurnal_curve(21), 0.9);
  // Monotone rise through the afternoon.
  EXPECT_LT(diurnal_curve(12), diurnal_curve(16));
  EXPECT_LT(diurnal_curve(16), diurnal_curve(20));
  // Bounded.
  for (int h = 0; h < 24; ++h) {
    EXPECT_GE(diurnal_curve(h), 0.3);
    EXPECT_LE(diurnal_curve(h), 1.0);
  }
}

TEST(Entities, PaperRoster) {
  const auto sites = dispute_sites();
  ASSERT_EQ(sites.size(), 3u);
  int disputed = 0;
  for (const auto& s : sites) disputed += s.disputed ? 1 : 0;
  EXPECT_EQ(disputed, 2);  // Cogent LAX + LGA

  const auto isps = dispute_isps();
  ASSERT_EQ(isps.size(), 4u);
  int direct = 0;
  for (const auto& i : isps) {
    direct += i.direct_peering ? 1 : 0;
    ASSERT_EQ(i.plan_mbps.size(), i.plan_weights.size());
    ASSERT_FALSE(i.plan_mbps.empty());
  }
  EXPECT_EQ(direct, 1);  // only Cox
}

TEST(DisputeActive, OnlyDisputedTransitNonPeeredIspJanFeb) {
  const auto sites = dispute_sites();
  const auto isps = dispute_isps();
  const TransitSite& cogent = sites[0];
  const TransitSite& level3 = sites[2];
  const AccessIsp& comcast = isps[0];
  const AccessIsp& cox = isps[3];

  EXPECT_TRUE(dispute_active(cogent, comcast, 1));
  EXPECT_TRUE(dispute_active(cogent, comcast, 2));
  EXPECT_FALSE(dispute_active(cogent, comcast, 3));  // resolved in March
  EXPECT_FALSE(dispute_active(cogent, cox, 1));      // direct peering
  EXPECT_FALSE(dispute_active(level3, comcast, 1));  // unaffected transit
}

TEST(CoarseLabel, PaperWindows) {
  NdtObservation obs;
  obs.transit = "Cogent";
  obs.isp = "Comcast";

  obs.month = 1;
  obs.hour = 20;  // peak, Jan
  EXPECT_EQ(dispute_coarse_label(obs), std::optional<int>(0));

  obs.month = 4;
  obs.hour = 3;  // off-peak, Apr
  EXPECT_EQ(dispute_coarse_label(obs), std::optional<int>(1));

  obs.month = 1;
  obs.hour = 3;  // off-peak Jan: excluded to minimize noise
  EXPECT_FALSE(dispute_coarse_label(obs).has_value());

  obs.month = 4;
  obs.hour = 20;  // peak Apr: excluded
  EXPECT_FALSE(dispute_coarse_label(obs).has_value());
}

TEST(CoarseLabel, CoxAndLevel3NeverExternal) {
  NdtObservation obs;
  obs.month = 1;
  obs.hour = 20;
  obs.transit = "Cogent";
  obs.isp = "Cox";
  EXPECT_FALSE(dispute_coarse_label(obs).has_value());
  obs.transit = "Level3";
  obs.isp = "Comcast";
  EXPECT_FALSE(dispute_coarse_label(obs).has_value());
}

TEST(PeakWindows, MatchPaper) {
  EXPECT_TRUE(is_peak_hour(16));
  EXPECT_TRUE(is_peak_hour(23));
  EXPECT_FALSE(is_peak_hour(15));
  EXPECT_FALSE(is_peak_hour(0));
  EXPECT_TRUE(is_offpeak_hour(1));
  EXPECT_TRUE(is_offpeak_hour(8));
  EXPECT_FALSE(is_offpeak_hour(9));
  EXPECT_FALSE(is_offpeak_hour(0));
}

TEST(ObservationCsv, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ccsig_obs_rt.csv").string();
  std::vector<NdtObservation> obs(2);
  obs[0].transit = "Cogent";
  obs[0].site = "LAX";
  obs[0].isp = "Comcast";
  obs[0].month = 2;
  obs[0].hour = 21;
  obs[0].plan_mbps = 25;
  obs[0].throughput_mbps = 3.75;
  obs[0].ss_tput_mbps = 4.5;
  obs[0].norm_diff = 0.12;
  obs[0].cov = 0.03;
  obs[0].has_features = true;
  obs[0].passes_filters = true;
  obs[0].truth_external = true;
  obs[1].transit = "Level3";
  obs[1].site = "ATL";
  obs[1].isp = "Cox";
  obs[1].month = 4;
  obs[1].hour = 3;
  save_observations_csv(path, obs);
  const auto loaded = load_observations_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].transit, "Cogent");
  EXPECT_EQ(loaded[0].site, "LAX");
  EXPECT_DOUBLE_EQ(loaded[0].throughput_mbps, 3.75);
  EXPECT_TRUE(loaded[0].truth_external);
  EXPECT_EQ(loaded[1].isp, "Cox");
  EXPECT_FALSE(loaded[1].has_features);
}

TEST(Generate, TinyCampaignRunsEndToEnd) {
  Dispute2014Options opt;
  opt.tests_per_cell = 1;
  opt.months = {1};
  opt.hours = {3, 21};
  opt.ndt_duration = sim::from_seconds(4);
  opt.warmup = sim::from_seconds(1.5);
  opt.seed = 99;
  const auto obs = generate_dispute2014(opt);
  // 3 sites x 4 ISPs x 1 month x 2 hours.
  ASSERT_EQ(obs.size(), 24u);
  int external_truth = 0;
  for (const auto& o : obs) {
    EXPECT_GE(o.plan_mbps, 10.0);
    external_truth += o.truth_external ? 1 : 0;
  }
  // Only disputed-transit, non-Cox, 21h cells can be congested:
  // 2 sites x 3 ISPs = 6.
  EXPECT_EQ(external_truth, 6);
}

}  // namespace
}  // namespace ccsig::mlab

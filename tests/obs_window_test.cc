// WindowAggregator under a fake clock: deterministic windowed rates,
// ring wrap, partial windows, counter-reset tolerance, layout rebuild.
// Snapshots are hand-built plain data, so the math under test is a pure
// function of the tick sequence — no real clock, no real registry.
#include "obs/window.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace ccsig::obs {
namespace {

constexpr std::int64_t kSec = 1'000'000'000;

MetricsSnapshot snap_counters(std::uint64_t records,
                              std::uint64_t verdicts) {
  MetricsSnapshot s;
  s.counters.push_back({"service.records", records});
  s.counters.push_back({"service.verdicts", verdicts});
  return s;
}

MetricsSnapshot snap_hist(std::vector<std::uint64_t> buckets, double sum) {
  MetricsSnapshot s;
  HistogramSnapshot h;
  h.name = "latency_ms";
  h.bounds = {1.0, 10.0};
  h.buckets = std::move(buckets);
  h.sum = sum;
  s.histograms.push_back(std::move(h));
  return s;
}

TEST(WindowAggregator, FirstTickIsBaselineAndCoversNothing) {
  WindowAggregator w({4});
  w.tick(10 * kSec, snap_counters(100, 5));
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 0.0);
  EXPECT_EQ(w.delta("service.records"), 0u);
  EXPECT_DOUBLE_EQ(w.rate("service.records"), 0.0);
}

TEST(WindowAggregator, RatesAreDeltasOverCoveredSpan) {
  WindowAggregator w({4});
  w.tick(0, snap_counters(0, 0));
  w.tick(1 * kSec, snap_counters(1000, 10));
  w.tick(2 * kSec, snap_counters(3000, 30));
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 2.0);
  EXPECT_EQ(w.delta("service.records"), 3000u);
  EXPECT_DOUBLE_EQ(w.rate("service.records"), 1500.0);
  EXPECT_DOUBLE_EQ(w.rate("service.verdicts"), 15.0);
  EXPECT_EQ(w.delta("no.such.counter"), 0u);
}

TEST(WindowAggregator, RingWrapDropsTheOldestSlots) {
  WindowAggregator w({2});  // window = last 2 tick intervals
  w.tick(0, snap_counters(0, 0));
  w.tick(1 * kSec, snap_counters(100, 0));   // interval A: +100
  w.tick(2 * kSec, snap_counters(300, 0));   // interval B: +200
  w.tick(3 * kSec, snap_counters(600, 0));   // interval C: +300, A evicted
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 2.0);
  EXPECT_EQ(w.delta("service.records"), 500u);  // B + C only
  EXPECT_DOUBLE_EQ(w.rate("service.records"), 250.0);
}

TEST(WindowAggregator, PartialWindowUsesOnlyElapsedSpan) {
  WindowAggregator w({8});  // deeper ring than ticks taken
  w.tick(0, snap_counters(0, 0));
  w.tick(5 * kSec, snap_counters(50, 0));
  // Only one interval covered: the rate divides by 5s, not 8 slots.
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(w.rate("service.records"), 10.0);
}

TEST(WindowAggregator, NonAdvancingClockIsIgnored) {
  WindowAggregator w({4});
  w.tick(1 * kSec, snap_counters(0, 0));
  w.tick(2 * kSec, snap_counters(100, 0));
  w.tick(2 * kSec, snap_counters(999, 0));  // same timestamp: dropped
  w.tick(1 * kSec, snap_counters(999, 0));  // backwards: dropped
  EXPECT_EQ(w.delta("service.records"), 100u);
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 1.0);
}

TEST(WindowAggregator, CounterResetCountsFromZero) {
  WindowAggregator w({4});
  w.tick(0, snap_counters(1000, 0));
  w.tick(1 * kSec, snap_counters(1500, 0));  // +500
  // The source restarted: cumulative fell to 80. The delta is 80 (counted
  // from zero), not a huge unsigned wraparound.
  w.tick(2 * kSec, snap_counters(80, 0));
  EXPECT_EQ(w.delta("service.records"), 580u);
}

TEST(WindowAggregator, WindowedHistogramQuantilesCoverOnlyTheRing) {
  WindowAggregator w({2});
  w.tick(0, snap_hist({0, 0, 0}, 0.0));
  // Interval A: 10 fast samples (le 1ms).
  w.tick(1 * kSec, snap_hist({10, 0, 0}, 5.0));
  // Interval B: 10 slow samples (le 10ms).
  w.tick(2 * kSec, snap_hist({10, 10, 0}, 55.0));
  HistogramSnapshot both = w.windowed("latency_ms");
  EXPECT_EQ(both.count(), 20u);
  EXPECT_DOUBLE_EQ(both.sum, 55.0);
  EXPECT_DOUBLE_EQ(both.quantile(0.99), 10.0);
  // Interval C evicts A: only the slow interval and C remain.
  w.tick(3 * kSec, snap_hist({10, 10, 0}, 55.0));
  HistogramSnapshot tail = w.windowed("latency_ms");
  EXPECT_EQ(tail.count(), 10u);
  EXPECT_DOUBLE_EQ(tail.sum, 50.0);
  // All 10 samples sit in the (1, 10] bucket; the median interpolates to
  // its midpoint under the snapshot's in-bucket interpolation contract.
  EXPECT_DOUBLE_EQ(tail.quantile(0.5), 5.5);
  EXPECT_TRUE(w.windowed("no.such.hist").buckets.empty());
}

TEST(WindowAggregator, LayoutChangeRebaselinesInsteadOfMixing) {
  WindowAggregator w({4});
  w.tick(0, snap_counters(0, 0));
  w.tick(1 * kSec, snap_counters(100, 1));
  ASSERT_EQ(w.delta("service.records"), 100u);
  // A new instrument appears: old deltas are incomparable and dropped;
  // the next tick is a fresh baseline.
  MetricsSnapshot changed = snap_counters(200, 2);
  changed.counters.push_back({"service.new", 7});
  w.tick(2 * kSec, changed);
  EXPECT_EQ(w.delta("service.records"), 0u);
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 0.0);
  MetricsSnapshot next = snap_counters(260, 3);
  next.counters.push_back({"service.new", 9});
  w.tick(3 * kSec, next);
  EXPECT_EQ(w.delta("service.records"), 60u);
  EXPECT_EQ(w.delta("service.new"), 2u);
}

TEST(WindowAggregator, GaugesAreLatestNotWindowed) {
  WindowAggregator w({4});
  MetricsSnapshot a;
  a.gauges.push_back({"service.pressure", 0.25});
  w.tick(0, a);
  MetricsSnapshot b;
  b.gauges.push_back({"service.pressure", 0.75});
  w.tick(1 * kSec, b);
  ASSERT_EQ(w.latest_gauges().size(), 1u);
  EXPECT_DOUBLE_EQ(w.latest_gauges()[0].value, 0.75);
}

TEST(WindowAggregator, ToJsonIsWellFormedAndWindowed) {
  WindowAggregator w({4});
  w.tick(0, snap_counters(0, 0));
  w.tick(2 * kSec, snap_counters(500, 4));
  const std::string j = w.to_json();
  EXPECT_NE(j.find("\"covered_s\":2"), std::string::npos);
  EXPECT_NE(j.find("\"window_slots\":4"), std::string::npos);
  EXPECT_NE(j.find("\"service.records\":250"), std::string::npos);  // rate
  EXPECT_NE(j.find("\"deltas\":{\"service.records\":500"),
            std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(WindowAggregator, EmptySnapshotsStayZero) {
  // The OBS_OFF shape: every snapshot is empty. Ticking must neither
  // crash nor report coverage of instruments that do not exist.
  WindowAggregator w({4});
  w.tick(0, MetricsSnapshot{});
  w.tick(1 * kSec, MetricsSnapshot{});
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 1.0);
  EXPECT_EQ(w.delta("anything"), 0u);
  EXPECT_NE(w.to_json().find("\"rates\":{}"), std::string::npos);
}

}  // namespace
}  // namespace ccsig::obs

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace ccsig::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(100, [] {});
  q.schedule(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
  q.pop()();
  EXPECT_EQ(q.next_time(), 100);
}

TEST(EventQueue, ScheduledCountMonotone) {
  EventQueue q;
  EXPECT_EQ(q.scheduled_count(), 0u);
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.scheduled_count(), 2u);
  q.pop()();
  EXPECT_EQ(q.scheduled_count(), 2u);  // popping does not decrement
}

TEST(EventQueue, SmallCapturesStayInline) {
  EventQueue q;
  int fired = 0;
  long a = 1, b = 2, c = 3;  // [this]-plus-scalars shape: well under budget
  q.schedule(1, [&fired, a, b, c] { fired += static_cast<int>(a + b + c); });
  EXPECT_EQ(q.heap_fallback_count(), 0u);
  q.pop()();
  EXPECT_EQ(fired, 6);
}

TEST(EventQueue, OversizedCapturesFallBackToHeapAndStillFire) {
  EventQueue q;
  std::vector<int> fired;
  struct Big {
    long payload[12];  // 96 bytes > kInlineBytes
  };
  for (int i = 0; i < 4; ++i) {
    // Alternate oversized (heap) and small (inline) captures at one time:
    // the FIFO tie-break must hold across storage classes.
    if (i % 2 == 0) {
      Big big{};
      big.payload[0] = i;
      q.schedule(7, [&fired, big] {
        fired.push_back(static_cast<int>(big.payload[0]));
      });
    } else {
      q.schedule(7, [&fired, i] { fired.push_back(i); });
    }
  }
  EXPECT_EQ(q.heap_fallback_count(), 2u);
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, NonTriviallyCopyableCapturesFallBackAndDoNotLeak) {
  // shared_ptr captures are not trivially copyable, so they must take the
  // heap path; the use_count checks that the closure (and its copy of the
  // pointer) is destroyed both when fired and when the queue is abandoned.
  auto token = std::make_shared<int>(99);
  {
    EventQueue q;
    int observed = 0;
    q.schedule(1, [&observed, token] { observed = *token; });
    q.schedule(2, [token] { });  // never popped: destroyed with the queue
    EXPECT_EQ(q.heap_fallback_count(), 2u);
    EXPECT_EQ(token.use_count(), 3);
    q.pop()();
    EXPECT_EQ(observed, 99);
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, ArenaSlotsAreRecycled) {
  EventQueue q;
  // Interleave schedule/pop so the pending count never exceeds 2: the
  // arena must plateau instead of growing with total events scheduled.
  q.schedule(0, [] {});
  for (Time t = 1; t <= 1000; ++t) {
    q.schedule(t, [] {});
    q.pop()();
  }
  q.pop()();
  EXPECT_EQ(q.scheduled_count(), 1001u);
  EXPECT_LE(q.arena_capacity(), 2u);
}

TEST(LifetimeLease, ReleasedLeaseKillsPendingClosureAndRecyclesSlot) {
  Simulator sim;
  auto lease = sim.lease_lifetime();
  EXPECT_TRUE(sim.alive(lease));

  int fired = 0;
  sim.schedule_in(10, [&sim, &fired, lease] {
    if (!sim.alive(lease)) return;
    ++fired;
  });
  sim.schedule_in(20, [&sim, &fired, lease] {
    if (!sim.alive(lease)) return;
    ++fired;
  });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);  // first timer ran while the lease was live

  sim.release_lifetime(lease);
  EXPECT_FALSE(sim.alive(lease));
  sim.run();
  EXPECT_EQ(fired, 1);  // second timer was invalidated

  // The slot is recycled with a bumped generation: the new lease is alive,
  // the stale one stays dead.
  auto next = sim.lease_lifetime();
  EXPECT_EQ(next.slot, lease.slot);
  EXPECT_NE(next.gen, lease.gen);
  EXPECT_TRUE(sim.alive(next));
  EXPECT_FALSE(sim.alive(lease));
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<Time> fired;
  // Insert in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const Time t = (i * 7919) % 1000;
    q.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop()();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

}  // namespace
}  // namespace ccsig::sim

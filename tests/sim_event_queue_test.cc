#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccsig::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(100, [] {});
  q.schedule(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
  q.pop()();
  EXPECT_EQ(q.next_time(), 100);
}

TEST(EventQueue, ScheduledCountMonotone) {
  EventQueue q;
  EXPECT_EQ(q.scheduled_count(), 0u);
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.scheduled_count(), 2u);
  q.pop()();
  EXPECT_EQ(q.scheduled_count(), 2u);  // popping does not decrement
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<Time> fired;
  // Insert in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const Time t = (i * 7919) % 1000;
    q.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop()();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

}  // namespace
}  // namespace ccsig::sim

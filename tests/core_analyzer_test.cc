// End-to-end: simulated transfers (and pcap files) through the public
// FlowAnalyzer API.
#include "core/analyzer.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "pcap/capture.h"
#include "test_helpers.h"

namespace ccsig {
namespace {

TEST(FlowAnalyzer, ClassifiesSelfInducedTransfer) {
  // A bulk flow filling an idle 20 Mbps / 100 ms-buffer link: the textbook
  // self-induced case.
  testutil::TwoNodePath path(testutil::basic_link(20e6, 10, 100));
  const auto result = testutil::run_transfer(path, 8'000'000);
  ASSERT_TRUE(result.completed);

  FlowAnalyzer analyzer;  // pretrained
  const auto reports = analyzer.analyze(path.recorder.trace());
  ASSERT_EQ(reports.size(), 1u);
  const FlowReport& r = reports[0];
  ASSERT_TRUE(r.features.has_value());
  ASSERT_TRUE(r.classification.has_value());
  EXPECT_EQ(r.classification->verdict, Verdict::kSelfInducedCongestion);
  EXPECT_GT(r.throughput_bps, 10e6);
  // §2.3: for self-induced flows, late slow-start delivery estimates the
  // bottleneck capacity (the 20 Mbps link).
  EXPECT_GT(r.estimated_capacity_bps, 14e6);
  EXPECT_LT(r.estimated_capacity_bps, 26e6);
}

TEST(FlowAnalyzer, ShortFlowUnclassifiable) {
  testutil::TwoNodePath path(testutil::basic_link(20e6, 10, 100));
  const auto result = testutil::run_transfer(path, 3000);  // 3 segments
  ASSERT_TRUE(result.completed);
  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze(path.recorder.trace());
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].features.has_value());
  EXPECT_FALSE(reports[0].classification.has_value());
}

TEST(FlowAnalyzer, AnalyzesPcapFile) {
  const std::string path_str =
      (std::filesystem::temp_directory_path() / "ccsig_analyzer_test.pcap")
          .string();
  testutil::TwoNodePath path(testutil::basic_link(20e6, 10, 100));
  pcap::PcapCaptureTap tap(path_str);
  path.server->add_tap(&tap);
  testutil::run_transfer(path, 8'000'000);
  path.server->remove_tap(&tap);
  tap.flush();

  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze_pcap(path_str);
  std::filesystem::remove(path_str);
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_TRUE(reports[0].classification.has_value());
  EXPECT_EQ(reports[0].classification->verdict,
            Verdict::kSelfInducedCongestion);
}

TEST(FlowAnalyzer, MultipleFlowsReportedSeparately) {
  testutil::TwoNodePath path(testutil::basic_link(50e6, 5, 100));
  // Two sequential transfers on different ports.
  {
    const sim::FlowKey key = path.flow_key(6001, 6002);
    tcp::TcpSink::Config sk;
    sk.data_key = key;
    tcp::TcpSink sink(path.net.sim(), path.client, sk);
    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.bytes_to_send = 2'000'000;
    tcp::TcpSource src(path.net.sim(), path.server, sc);
    src.start();
    path.net.sim().run_until(sim::from_seconds(10));
  }
  {
    const sim::FlowKey key = path.flow_key(6003, 6004);
    tcp::TcpSink::Config sk;
    sk.data_key = key;
    tcp::TcpSink sink(path.net.sim(), path.client, sk);
    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.bytes_to_send = 2'000'000;
    tcp::TcpSource src(path.net.sim(), path.server, sc);
    src.start();
    path.net.sim().run_until(sim::from_seconds(20));
  }
  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze(path.recorder.trace());
  EXPECT_EQ(reports.size(), 2u);
}

TEST(FlowAnalyzer, RenderMentionsVerdict) {
  testutil::TwoNodePath path(testutil::basic_link(20e6, 10, 100));
  testutil::run_transfer(path, 8'000'000);
  FlowAnalyzer analyzer;
  const auto reports = analyzer.analyze(path.recorder.trace());
  ASSERT_EQ(reports.size(), 1u);
  const std::string line = FlowAnalyzer::render(reports[0]);
  EXPECT_NE(line.find("self-induced-congestion"), std::string::npos);
  EXPECT_NE(line.find("Mbps"), std::string::npos);
}

TEST(FlowAnalyzer, RenderUnclassifiable) {
  FlowReport r;
  r.data_key = sim::FlowKey{1, 2, 3, 4};
  r.insufficiency = features::Insufficiency::kNoData;
  const std::string line = FlowAnalyzer::render(r);
  // Unclassifiable flows render the three-way verdict plus the reason.
  EXPECT_NE(line.find("insufficient-data"), std::string::npos);
  EXPECT_NE(line.find(features::to_string(r.insufficiency)),
            std::string::npos);
}

TEST(FlowAnalyzer, CustomModelInjectable) {
  // A degenerate model that calls everything external.
  ml::Dataset d({"norm_diff", "cov"});
  d.add({0.0, 0.0}, 0);
  d.add({1.0, 1.0}, 0);
  CongestionClassifier clf;
  clf.train(d);
  FlowAnalyzer analyzer(std::move(clf));

  testutil::TwoNodePath path(testutil::basic_link(20e6, 10, 100));
  testutil::run_transfer(path, 8'000'000);
  const auto reports = analyzer.analyze(path.recorder.trace());
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_TRUE(reports[0].classification.has_value());
  EXPECT_EQ(reports[0].classification->verdict,
            Verdict::kExternalCongestion);
}

}  // namespace
}  // namespace ccsig

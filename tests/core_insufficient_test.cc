// Degenerate RTT streams must yield Verdict::kInsufficientData with a
// machine-readable reason — never a fabricated congestion label.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/analyzer.h"
#include "features/extractor.h"

namespace ccsig {
namespace {

using features::ExtractOptions;
using features::Insufficiency;
using features::extract_features_checked;
using sim::kMillisecond;

/// A clean single-flow trace: `n` segments, each acked one base RTT plus a
/// small ramp later. Ack times can then be damaged per test.
analysis::FlowTrace make_flow(int n) {
  analysis::FlowTrace flow;
  flow.data_key = sim::FlowKey{1, 2, 10, 20};
  sim::Time t = 0;
  for (int i = 0; i < n; ++i) {
    analysis::TraceRecord d;
    d.time = t;
    d.key = flow.data_key;
    d.seq = 1 + 100ull * static_cast<unsigned>(i);
    d.payload_bytes = 100;
    flow.data.push_back(d);

    analysis::TraceRecord a;
    a.time = t + (20 + 2 * i) * kMillisecond;
    a.key = flow.data_key.reversed();
    a.ack = d.seq + 100;
    a.flags.ack = true;
    flow.acks.push_back(a);
    t += 2 * kMillisecond;
  }
  return flow;
}

TEST(Insufficiency, EmptyFlowIsNoData) {
  const auto r = extract_features_checked(analysis::FlowTrace{});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.insufficiency, Insufficiency::kNoData);

  auto acks_only = make_flow(12);
  acks_only.data.clear();
  EXPECT_EQ(extract_features_checked(acks_only).insufficiency,
            Insufficiency::kNoData);
}

TEST(Insufficiency, ShortFlowIsTooFewSamples) {
  const auto r = extract_features_checked(make_flow(5));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.insufficiency, Insufficiency::kTooFewRttSamples);
}

TEST(Insufficiency, RequireRetransmissionReported) {
  ExtractOptions opt;
  opt.require_retransmission = true;
  const auto r = extract_features_checked(make_flow(20), opt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.insufficiency, Insufficiency::kNoRetransmission);
}

TEST(Insufficiency, ZeroRttsFromDamagedTimestampsAreInvalid) {
  // Every ack lands at the exact instant its data segment left: RTT = 0,
  // which a real path cannot produce — a corrupt-capture signature.
  auto flow = make_flow(12);
  for (std::size_t i = 0; i < flow.acks.size(); ++i) {
    flow.acks[i].time = flow.data[i].time;
  }
  const auto r = extract_features_checked(flow);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.insufficiency, Insufficiency::kInvalidRtts);
}

TEST(Insufficiency, BackwardsSampleTimesAreNonMonotonic) {
  // Two mid-stream acks swap their timestamps (the last ack keeps the
  // latest time, so the trace end and the sample count are intact).
  auto flow = make_flow(12);
  std::swap(flow.acks[5].time, flow.acks[6].time);
  const auto r = extract_features_checked(flow);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.insufficiency, Insufficiency::kNonMonotonicTimestamps);
}

TEST(Insufficiency, HealthyFlowReportsNone) {
  const auto r = extract_features_checked(make_flow(20));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.insufficiency, Insufficiency::kNone);
  EXPECT_EQ(r.features->rtt_samples, 20u);
}

TEST(Insufficiency, ReasonsHaveDistinctNames) {
  EXPECT_STREQ(features::to_string(Insufficiency::kNone), "none");
  EXPECT_NE(std::string(features::to_string(Insufficiency::kInvalidRtts)),
            features::to_string(Insufficiency::kNonMonotonicTimestamps));
  EXPECT_NE(std::string(features::to_string(Insufficiency::kNoData)),
            features::to_string(Insufficiency::kTooFewRttSamples));
}

TEST(AnalyzerVerdict, InsufficientFlowNeverGetsCongestionLabel) {
  const FlowAnalyzer analyzer;
  const auto report = analyzer.analyze_flow(make_flow(5));
  EXPECT_FALSE(report.classification.has_value());
  EXPECT_FALSE(report.features.has_value());
  EXPECT_EQ(report.insufficiency, Insufficiency::kTooFewRttSamples);
  EXPECT_EQ(report.verdict(), Verdict::kInsufficientData);
  const std::string line = FlowAnalyzer::render(report);
  EXPECT_NE(line.find("insufficient-data"), std::string::npos);
  EXPECT_NE(line.find(features::to_string(Insufficiency::kTooFewRttSamples)),
            std::string::npos);
}

TEST(AnalyzerVerdict, DamagedRttStreamRefusedNotMislabeled) {
  auto flow = make_flow(12);
  for (std::size_t i = 0; i < flow.acks.size(); ++i) {
    flow.acks[i].time = flow.data[i].time;  // impossible zero RTTs
  }
  const FlowAnalyzer analyzer;
  const auto report = analyzer.analyze_flow(flow);
  EXPECT_EQ(report.verdict(), Verdict::kInsufficientData);
  EXPECT_EQ(report.insufficiency, Insufficiency::kInvalidRtts);
}

TEST(AnalyzerVerdict, HealthyFlowStillClassifies) {
  const FlowAnalyzer analyzer;
  const auto report = analyzer.analyze_flow(make_flow(30));
  ASSERT_TRUE(report.classification.has_value());
  EXPECT_NE(report.verdict(), Verdict::kInsufficientData);
  EXPECT_EQ(report.verdict(), report.classification->verdict);
}

TEST(AnalyzerVerdict, VerdictNamesCoverAllThreeStates) {
  EXPECT_STREQ(to_string(Verdict::kExternalCongestion),
               "external-congestion");
  EXPECT_STREQ(to_string(Verdict::kSelfInducedCongestion),
               "self-induced-congestion");
  EXPECT_STREQ(to_string(Verdict::kInsufficientData), "insufficient-data");
}

}  // namespace
}  // namespace ccsig

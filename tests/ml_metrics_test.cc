#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace ccsig::ml {
namespace {

TEST(ConfusionMatrix, HandComputedBinary) {
  //            predicted
  // actual 0:  3 correct, 1 as class 1
  // actual 1:  2 as class 0, 4 correct
  const int y_true[] = {0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
  const int y_pred[] = {0, 0, 0, 1, 0, 0, 1, 1, 1, 1};
  ConfusionMatrix cm(y_true, y_pred);
  EXPECT_EQ(cm.num_classes(), 2);
  EXPECT_EQ(cm.total(), 10u);
  EXPECT_EQ(cm.at(0, 0), 3u);
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_EQ(cm.at(1, 0), 2u);
  EXPECT_EQ(cm.at(1, 1), 4u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.7);
  EXPECT_DOUBLE_EQ(cm.precision(0), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 4.0 / 6.0);
  const double p = 4.0 / 5.0, r = 4.0 / 6.0;
  EXPECT_DOUBLE_EQ(cm.f1(1), 2 * p * r / (p + r));
}

TEST(ConfusionMatrix, PerfectPrediction) {
  const int y[] = {0, 1, 2, 1, 0};
  ConfusionMatrix cm(y, y);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(cm.precision(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.f1(c), 1.0);
  }
}

TEST(ConfusionMatrix, AbsentClassYieldsZeroNotNan) {
  const int y_true[] = {0, 0, 1};
  const int y_pred[] = {0, 0, 0};  // class 1 never predicted
  ConfusionMatrix cm(y_true, y_pred);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.0);
}

TEST(ConfusionMatrix, SizeMismatchThrows) {
  const int a[] = {0, 1};
  const int b[] = {0};
  EXPECT_THROW(ConfusionMatrix(a, b), std::invalid_argument);
}

TEST(ConfusionMatrix, NegativeLabelThrows) {
  const int a[] = {0, -1};
  const int b[] = {0, 0};
  EXPECT_THROW(ConfusionMatrix(a, b), std::invalid_argument);
}

TEST(ConfusionMatrix, OutOfRangeQueryThrows) {
  const int y[] = {0, 1};
  ConfusionMatrix cm(y, y);
  EXPECT_THROW(cm.at(2, 0), std::out_of_range);
  EXPECT_THROW(cm.at(0, -1), std::out_of_range);
}

TEST(ConfusionMatrix, ToStringContainsNames) {
  const int y[] = {0, 1};
  ConfusionMatrix cm(y, y);
  const std::string s = cm.to_string({"external", "self"});
  EXPECT_NE(s.find("external"), std::string::npos);
  EXPECT_NE(s.find("self"), std::string::npos);
}

TEST(ConfusionMatrix, EmptyInput) {
  ConfusionMatrix cm(std::span<const int>{}, std::span<const int>{});
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

}  // namespace
}  // namespace ccsig::ml

// Integration: the M-Lab measurement path model (uncongested vs congested
// interconnect, TSLP probing, Web100-style filters).
#include "mlab/path.h"

#include <gtest/gtest.h>

namespace ccsig::mlab {
namespace {

PathConfig quick(double load, std::uint64_t seed) {
  PathConfig cfg;
  cfg.background_load = load;
  cfg.seed = seed;
  return cfg;
}

TEST(PathSim, UncongestedNdtReachesPlanRate) {
  PathSim path(quick(0.5, 11));
  path.warmup(sim::from_seconds(2));
  const NdtResult ndt = path.run_ndt(sim::from_seconds(6));
  EXPECT_GT(ndt.throughput_bps, 0.8 * 25e6);
  EXPECT_TRUE(ndt.passes_mlab_filters);
  ASSERT_TRUE(ndt.features.has_value());
  EXPECT_GT(ndt.features->norm_diff, 0.5);  // self-induced signature
}

TEST(PathSim, CongestedNdtIsExternallyLimited) {
  PathSim path(quick(1.25, 22));
  path.warmup(sim::from_seconds(3));
  const NdtResult ndt = path.run_ndt(sim::from_seconds(6));
  EXPECT_LT(ndt.throughput_bps, 0.6 * 25e6);
  if (ndt.features) {
    EXPECT_LT(ndt.features->norm_diff, 0.5);
    EXPECT_GT(ndt.features->min_rtt_ms, 30.0);  // standing queue baseline
  }
}

TEST(PathSim, TslpFarProbeDetectsCongestion) {
  PathSim idle(quick(0.5, 33));
  idle.warmup(sim::from_seconds(2));
  const double far_idle = sim::to_millis(idle.probe_far());
  const double near_idle = sim::to_millis(idle.probe_near());

  PathSim busy(quick(1.25, 34));
  busy.warmup(sim::from_seconds(3));
  const double far_busy = sim::to_millis(busy.probe_far());
  const double near_busy = sim::to_millis(busy.probe_near());

  // Near-side RTT never crosses the interconnect: flat in both states.
  EXPECT_NEAR(near_idle, near_busy, 4.0);
  // Far-side RTT picks up the standing queue (~15-25 ms buffer).
  EXPECT_GT(far_busy, far_idle + 8.0);
}

TEST(PathSim, BaseRttMatchesConfiguration) {
  PathConfig cfg = quick(0.3, 44);
  cfg.access_latency_ms = 8.0;
  PathSim path(cfg);
  path.warmup(sim::from_seconds(1));
  // Base RTT ~ 2 x (8 + 0.5 + 0.5) = 18 ms, as in the paper's TSLP2017.
  const NdtResult ndt = path.run_ndt(sim::from_seconds(5));
  ASSERT_TRUE(ndt.features.has_value());
  EXPECT_GT(ndt.features->min_rtt_ms, 15.0);
  EXPECT_LT(ndt.features->min_rtt_ms, 22.0);
}

TEST(PathSim, FiltersRejectIdleFlow) {
  // A tiny plan makes the flow congestion-limited; sanity-check the
  // congestion-limited fraction accounting is in [0, 1.05].
  PathSim path(quick(0.4, 55));
  path.warmup(sim::from_seconds(1));
  const NdtResult ndt = path.run_ndt(sim::from_seconds(5));
  EXPECT_GE(ndt.congestion_limited_fraction, 0.0);
  EXPECT_LE(ndt.congestion_limited_fraction, 1.05);
}

TEST(AdaptiveStreamTest, DownshiftsUnderShortfall) {
  // Run an adaptive background against a link that cannot carry it.
  PathConfig cfg = quick(1.4, 66);
  cfg.background_mode = PathConfig::BackgroundMode::kAdaptive;
  PathSim path(cfg);
  path.warmup(sim::from_seconds(8));
  // The aggregate must have adapted: link delivers ~capacity, not demand.
  const auto stats = path.interconnect_down()->stats();
  const double delivered_bps =
      static_cast<double>(stats.delivered_bytes) * 8.0 / 8.0;
  EXPECT_LT(delivered_bps, 1.15 * cfg.interconnect_mbps * 1e6);
}

TEST(PathSim, DeterministicGivenSeed) {
  PathSim a(quick(0.9, 77));
  a.warmup(sim::from_seconds(2));
  const NdtResult ra = a.run_ndt(sim::from_seconds(4));
  PathSim b(quick(0.9, 77));
  b.warmup(sim::from_seconds(2));
  const NdtResult rb = b.run_ndt(sim::from_seconds(4));
  EXPECT_DOUBLE_EQ(ra.throughput_bps, rb.throughput_bps);
}

}  // namespace
}  // namespace ccsig::mlab

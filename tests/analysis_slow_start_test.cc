#include "analysis/slow_start.h"

#include <gtest/gtest.h>

namespace ccsig::analysis {
namespace {

using sim::kMillisecond;
using sim::kSecond;

FlowTrace make_flow() {
  FlowTrace flow;
  flow.data_key = sim::FlowKey{1, 2, 10, 20};
  return flow;
}

void add_data(FlowTrace& flow, sim::Time t, std::uint64_t seq,
              std::uint32_t len) {
  TraceRecord r;
  r.time = t;
  r.key = flow.data_key;
  r.seq = seq;
  r.payload_bytes = len;
  flow.data.push_back(r);
}

void add_ack(FlowTrace& flow, sim::Time t, std::uint64_t ack) {
  TraceRecord r;
  r.time = t;
  r.key = flow.data_key.reversed();
  r.ack = ack;
  r.flags.ack = true;
  flow.acks.push_back(r);
}

TEST(SlowStart, DetectsFirstRetransmission) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 10, 101, 100);
  add_data(flow, 20, 201, 100);
  add_data(flow, 90, 101, 100);  // retransmission
  add_data(flow, 95, 301, 100);
  const auto ss = detect_slow_start(flow);
  EXPECT_TRUE(ss.ended_by_retransmission);
  EXPECT_EQ(ss.end_time, 90);
}

TEST(SlowStart, NoRetransmissionSpansWholeFlow) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 10, 101, 100);
  add_ack(flow, 30, 201);
  const auto ss = detect_slow_start(flow);
  EXPECT_FALSE(ss.ended_by_retransmission);
  EXPECT_EQ(ss.end_time, 30);
  EXPECT_EQ(ss.acked_bytes, 200u);
}

TEST(SlowStart, AckedBytesOnlyCountUntilEnd) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 10, 101, 100);
  add_data(flow, 50, 1, 100);  // retx at t=50 ends slow start
  add_ack(flow, 20, 101);
  add_ack(flow, 100, 201);  // after slow start; must not count
  const auto ss = detect_slow_start(flow);
  EXPECT_EQ(ss.end_time, 50);
  EXPECT_EQ(ss.acked_bytes, 100u);
}

TEST(SlowStart, PartialOverlapCountsAsRetransmission) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 1000);
  add_data(flow, 10, 501, 1000);  // overlaps previously sent range...
  const auto ss = detect_slow_start(flow);
  // seq_end 1501 > 1001, so it is NOT a retransmission (new data included).
  EXPECT_FALSE(ss.ended_by_retransmission);
}

TEST(SlowStartThroughput, SecondHalfDeliveryRate) {
  FlowTrace flow = make_flow();
  // Data from t=0; slow start ends at t = 1 s via retransmission.
  add_data(flow, 0, 1, 100);
  add_data(flow, 1 * kSecond, 1, 100);  // retx marks the end
  // ACK progress: by mid (0.5 s) 1000 bytes; last advance at 0.9 s with
  // 9000 bytes. Rate over [0.5 s, 0.9 s] = 8000 B / 0.4 s = 160 kbit/s.
  add_ack(flow, 500 * kMillisecond, 1001);
  add_ack(flow, 900 * kMillisecond, 9001);
  const auto ss = detect_slow_start(flow);
  const auto tput = slow_start_throughput_bps(flow, ss);
  ASSERT_TRUE(tput.has_value());
  EXPECT_NEAR(*tput, 8000.0 * 8.0 / 0.4, 1.0);
}

TEST(SlowStartThroughput, NoProgressInSecondHalfIsZero) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 1 * kSecond, 1, 100);  // retx at 1 s
  add_ack(flow, 100 * kMillisecond, 5001);  // all progress in first half
  const auto ss = detect_slow_start(flow);
  const auto tput = slow_start_throughput_bps(flow, ss);
  ASSERT_TRUE(tput.has_value());
  EXPECT_EQ(*tput, 0.0);
}

TEST(SlowStartThroughput, NulloptWhenNothingAcked) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_data(flow, 10, 1, 100);
  const auto ss = detect_slow_start(flow);
  EXPECT_FALSE(slow_start_throughput_bps(flow, ss).has_value());
}

TEST(FlowThroughput, AckedBytesOverDuration) {
  FlowTrace flow = make_flow();
  add_data(flow, 0, 1, 100);
  add_ack(flow, 1 * kSecond, 100'001);
  const auto tput = flow_throughput_bps(flow);
  ASSERT_TRUE(tput.has_value());
  EXPECT_NEAR(*tput, 100'000 * 8.0, 1.0);
}

TEST(FlowThroughput, NulloptOnEmptyOrInstant) {
  FlowTrace flow = make_flow();
  EXPECT_FALSE(flow_throughput_bps(flow).has_value());
  add_data(flow, 5, 1, 100);
  EXPECT_FALSE(flow_throughput_bps(flow).has_value());  // zero duration
}

}  // namespace
}  // namespace ccsig::analysis

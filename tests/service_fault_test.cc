// Fault injection against the service layer: a permanently-failing source
// is quarantined without stalling or crashing the daemon (and without
// losing the other sources' verdicts), transient read faults recover
// through the RetryPolicy backoff, read stalls only slow the run down,
// and mid-run model corruption is rejected while the old model keeps
// serving. Also wired into fault_tests_asan_ubsan, so every path here is
// sanitizer-clean.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "runtime/fault_injection.h"
#include "runtime/shutdown.h"
#include "service/service.h"
#include "test_helpers.h"

namespace ccsig::service {
namespace {

namespace fs = std::filesystem;

class ServiceFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::ShutdownLatch::reset();
    const std::string stamp =
        std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
        "_" + std::to_string(counter_++);
    dir_ = (fs::temp_directory_path() / ("ccsig_svcfault_" + stamp)).string();
    fs::create_directories(dir_);
    good_ = dir_ + "/good.pcap";
    testutil::write_random_capture(21, good_);
  }
  void TearDown() override {
    runtime::ShutdownLatch::reset();
    fs::remove_all(dir_);
  }

  ServiceConfig base_config(const std::string& log_name) {
    ServiceConfig cfg;
    cfg.verdict_log_path = dir_ + "/" + log_name;
    cfg.oneshot = true;
    cfg.idle_sleep_ms = 0;
    cfg.source_retry.max_attempts = 3;
    cfg.source_retry.backoff = std::chrono::milliseconds(1);
    return cfg;
  }

  static SourceConfig oneshot_source(const std::string& path) {
    SourceConfig sc;
    sc.path = path;
    sc.oneshot = true;
    return sc;
  }

  std::size_t flows_in(const std::string& capture) {
    FlowAnalyzer analyzer;
    return analyzer.analyze_pcap(capture).size();
  }

  static int counter_;
  std::string dir_;
  std::string good_;
};

int ServiceFaultTest::counter_ = 0;

TEST_F(ServiceFaultTest, CorruptSourceIsQuarantinedGoodSourceKeepsFlowing) {
  // Damage the second capture inside a record body so its header parses
  // but ingest hits a permanent ParseException mid-file.
  const std::string bad = dir_ + "/bad.pcap";
  fs::copy_file(good_, bad);
  runtime::truncate_file(bad, fs::file_size(bad) - 5);

  ServiceConfig cfg = base_config("quarantine.log");
  cfg.sources.push_back(oneshot_source(good_));
  cfg.sources.push_back(oneshot_source(bad));
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);

  // The quarantine is visible in service.* accounting and the daemon
  // exited cleanly with at least the good capture's verdicts.
  EXPECT_EQ(svc.stats().sources_quarantined, 1u);
  EXPECT_GE(VerdictLog::read_all(dir_ + "/quarantine.log").size(),
            flows_in(good_));
}

TEST_F(ServiceFaultTest, MissingSourceExhaustsRetriesThenQuarantines) {
  ServiceConfig cfg = base_config("missing.log");
  cfg.sources.push_back(oneshot_source(good_));
  cfg.sources.push_back(oneshot_source(dir_ + "/never_appears.pcap"));
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);

  EXPECT_EQ(svc.stats().sources_quarantined, 1u);
  EXPECT_EQ(VerdictLog::read_all(dir_ + "/missing.log").size(),
            flows_in(good_));
}

TEST_F(ServiceFaultTest, TransientReadFaultsRecoverThroughBackoff) {
  // Every first attempt throws TransientError; the retry (attempt 2) is
  // clean, so the capture must still be fully delivered and classified.
  runtime::FaultSpec spec;
  spec.throw_rate = 1.0;
  spec.fault_attempts_at_most = 1;
  const runtime::FaultPlan plan(42, spec);

  ServiceConfig cfg = base_config("transient.log");
  cfg.sources.push_back(oneshot_source(good_));
  cfg.faults = &plan;
  cfg.poll_records = 1u << 20;  // one clean poll drains the whole capture
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);

  EXPECT_EQ(svc.stats().sources_quarantined, 0u);
  EXPECT_EQ(svc.stats().verdicts_emitted, flows_in(good_));
}

TEST_F(ServiceFaultTest, PermanentFaultQuarantinesWithoutCrashing) {
  runtime::FaultSpec spec;
  spec.permanent_rate = 1.0;
  const runtime::FaultPlan plan(43, spec);

  ServiceConfig cfg = base_config("permanent.log");
  cfg.sources.push_back(oneshot_source(good_));
  cfg.faults = &plan;
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);

  EXPECT_EQ(svc.stats().sources_quarantined, 1u);
  EXPECT_EQ(svc.stats().verdicts_emitted, 0u);
}

TEST_F(ServiceFaultTest, ReadStallsOnlySlowTheDaemonDown) {
  runtime::FaultSpec spec;
  spec.stall_rate = 1.0;
  spec.stall = std::chrono::milliseconds(20);
  spec.fault_attempts_at_most = 1;
  const runtime::FaultPlan plan(44, spec);

  ServiceConfig cfg = base_config("stall.log");
  cfg.sources.push_back(oneshot_source(good_));
  cfg.faults = &plan;
  cfg.poll_records = 1u << 20;
  ClassificationService svc(std::move(cfg));
  ASSERT_EQ(svc.run(), ClassificationService::kExitOk);

  EXPECT_EQ(svc.stats().sources_quarantined, 0u);
  EXPECT_EQ(svc.stats().verdicts_emitted, flows_in(good_));
}

TEST_F(ServiceFaultTest, ModelFileCorruptedMidRunIsRejected) {
  const std::string model = dir_ + "/model.tree";
  CongestionClassifier::pretrained().save(model);

  ServiceConfig cfg;
  SourceConfig sc;
  sc.path = good_;  // tailed: keeps the daemon alive for the corruption
  cfg.sources.push_back(sc);
  cfg.verdict_log_path = dir_ + "/midrun.log";
  cfg.model_path = model;
  ClassificationService svc(std::move(cfg));
  std::thread t([&svc] { svc.run(); });

  // Wait until the service is past setup (the model load) and serving —
  // corrupting the file any earlier races the startup load.
  for (int i = 0; i < 500 && svc.stats().records_ingested == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(svc.stats().records_ingested, 0u);

  // Corrupt the model on disk, then ask for a reload: the daemon must
  // reject it, keep the old model, and keep classifying.
  {
    std::ofstream out(model, std::ios::trunc);
    out << "garbage that is not a serialized tree";
  }
  svc.request_reload();
  for (int i = 0; i < 500 && svc.stats().model_reloads_rejected == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  svc.request_stop();
  t.join();

  EXPECT_EQ(svc.stats().model_reloads, 0u);
  EXPECT_GE(svc.stats().model_reloads_rejected, 1u);
  EXPECT_EQ(svc.stats().verdicts_emitted, flows_in(good_));
}

}  // namespace
}  // namespace ccsig::service

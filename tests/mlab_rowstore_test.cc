// Binary row store (mlab/rowstore.h) and million-row scale driver
// (mlab/scale.h): bit-exact round-trips, CSV-shim byte identity with the
// legacy precision-17 writer, torn-tail recovery, and kill/resume
// byte-identical campaigns at any worker count.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mlab/dispute2014.h"
#include "mlab/rowstore.h"
#include "mlab/scale.h"
#include "runtime/parse_error.h"
#include "sim/random.h"

namespace ccsig::mlab {
namespace {

namespace fs = std::filesystem;

class RowStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("ccsig_rowstore_" + std::to_string(counter_++)))
               .string();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string file(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  /// Random observations exercising the full value space: adversarial
  /// doubles (subnormals, huge magnitudes, negatives) that CSV parsing
  /// would mangle but raw-bit storage must preserve exactly.
  static std::vector<NdtObservation> random_rows(std::uint64_t seed,
                                                 std::size_t n) {
    sim::Rng rng(seed);
    const std::vector<std::string> transits{"Cogent", "Level3", "Tata"};
    const std::vector<std::string> sites{"LAX", "LGA", "ATL", "SEA"};
    const std::vector<std::string> isps{"Comcast", "TimeWarner", "Verizon",
                                        "Cox"};
    std::vector<NdtObservation> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
      NdtObservation& o = rows[i];
      o.transit = transits[rng.uniform_int(0, 2)];
      o.site = sites[rng.uniform_int(0, 3)];
      o.isp = isps[rng.uniform_int(0, 3)];
      o.month = rng.uniform_int(1, 4);
      o.hour = rng.uniform_int(0, 23);
      o.plan_mbps = rng.uniform(1.0, 100.0);
      o.throughput_mbps = rng.uniform(0.0, 100.0) *
                          (rng.uniform(0.0, 1.0) < 0.1 ? 1e-300 : 1.0);
      o.ss_tput_mbps = rng.uniform(-5.0, 150.0);
      o.norm_diff = rng.uniform(-1.0, 1.0);
      o.cov = rng.uniform(0.0, 3.0) * (rng.uniform(0.0, 1.0) < 0.1 ? 1e18 : 1);
      o.has_features = rng.uniform(0.0, 1.0) < 0.9;
      o.passes_filters = rng.uniform(0.0, 1.0) < 0.8;
      o.truth_external = rng.uniform(0.0, 1.0) < 0.5;
    }
    return rows;
  }

  static void expect_rows_identical(const NdtObservation& a,
                                    const NdtObservation& b) {
    EXPECT_EQ(a.transit, b.transit);
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.isp, b.isp);
    EXPECT_EQ(a.month, b.month);
    EXPECT_EQ(a.hour, b.hour);
    // Bit-exact double comparison (memcmp, so NaN-safe and -0.0-strict).
    EXPECT_EQ(std::memcmp(&a.plan_mbps, &b.plan_mbps, 8), 0);
    EXPECT_EQ(std::memcmp(&a.throughput_mbps, &b.throughput_mbps, 8), 0);
    EXPECT_EQ(std::memcmp(&a.ss_tput_mbps, &b.ss_tput_mbps, 8), 0);
    EXPECT_EQ(std::memcmp(&a.norm_diff, &b.norm_diff, 8), 0);
    EXPECT_EQ(std::memcmp(&a.cov, &b.cov, 8), 0);
    EXPECT_EQ(a.has_features, b.has_features);
    EXPECT_EQ(a.passes_filters, b.passes_filters);
    EXPECT_EQ(a.truth_external, b.truth_external);
  }

  static int counter_;
  std::string dir_;
};

int RowStoreTest::counter_ = 0;

TEST_F(RowStoreTest, RoundTripsRandomRowsBitExactly) {
  // Property test across several seeds and block shapes.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const std::string path = file("rt_" + std::to_string(seed) + ".rows");
    const auto rows = random_rows(seed, 400 + seed * 37);
    {
      RowStoreWriter writer(path, "fp-" + std::to_string(seed));
      // Uneven block split exercises per-block dictionaries.
      std::vector<NdtObservation> head(rows.begin(), rows.begin() + 123);
      std::vector<NdtObservation> tail(rows.begin() + 123, rows.end());
      writer.append_block(head);
      writer.append_block(tail);
      EXPECT_EQ(writer.committed_rows(), rows.size());
    }
    std::vector<NdtObservation> got;
    std::string fp;
    const auto n = for_each_row(
        path, [&got](const NdtObservation& o) { got.push_back(o); }, &fp);
    EXPECT_EQ(fp, "fp-" + std::to_string(seed));
    ASSERT_EQ(n, rows.size());
    ASSERT_EQ(got.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      expect_rows_identical(rows[i], got[i]);
    }
  }
}

TEST_F(RowStoreTest, CsvExportShimIsByteIdenticalToLegacyWriter) {
  // The oracle: export_rows_csv must equal save_observations_csv byte for
  // byte on the same rows, because it reuses the same precision-17
  // formatter and the store round-trips doubles bit-exactly. Restrict the
  // doubles to values the CSV parser round-trips (the store is lossless
  // either way; the comparison needs the legacy writer to cope).
  auto rows = random_rows(9, 500);
  const std::string store_path = file("shim.rows");
  {
    RowStoreWriter writer(store_path, "shim-fingerprint");
    std::vector<NdtObservation> block;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      block.push_back(rows[i]);
      if (block.size() == 64) {
        writer.append_block(block);
        block.clear();
      }
    }
    writer.append_block(block);
  }
  const std::string legacy_csv = file("legacy.csv");
  save_observations_csv(legacy_csv, rows, "shim-fingerprint");
  const std::string shim_csv = file("shim.csv");
  export_rows_csv(store_path, shim_csv);
  EXPECT_EQ(slurp(shim_csv), slurp(legacy_csv));
}

TEST_F(RowStoreTest, TornTailIsDroppedAndAppendResumes) {
  const std::string path = file("torn.rows");
  const auto rows = random_rows(11, 300);
  std::uint64_t full_size = 0;
  {
    RowStoreWriter writer(path, "torn-fp");
    writer.append_block({rows.begin(), rows.begin() + 100});
    writer.append_block({rows.begin() + 100, rows.begin() + 200});
  }
  full_size = fs::file_size(path);
  const auto before = row_store_info(path);
  EXPECT_EQ(before.rows, 200u);
  EXPECT_EQ(before.blocks, 2u);
  EXPECT_EQ(before.committed_bytes, full_size);

  // Sever the second block mid-payload: a kill mid-append.
  fs::resize_file(path, full_size - 37);
  const auto torn = row_store_info(path);
  EXPECT_EQ(torn.rows, 100u);
  EXPECT_EQ(torn.blocks, 1u);

  // Reopening for append truncates the tail and resumes cleanly.
  {
    RowStoreWriter writer(path, "torn-fp");
    EXPECT_EQ(writer.committed_rows(), 100u);
    writer.append_block({rows.begin() + 100, rows.begin() + 300});
  }
  std::vector<NdtObservation> got;
  for_each_row(path, [&got](const NdtObservation& o) { got.push_back(o); });
  ASSERT_EQ(got.size(), 300u);
  for (std::size_t i = 0; i < 300; ++i) {
    expect_rows_identical(rows[i], got[i]);
  }
}

TEST_F(RowStoreTest, CorruptTailBlockIsDropped) {
  const std::string path = file("crc.rows");
  const auto rows = random_rows(13, 120);
  {
    RowStoreWriter writer(path, "crc-fp");
    writer.append_block({rows.begin(), rows.begin() + 60});
    writer.append_block({rows.begin() + 60, rows.end()});
  }
  // Flip one payload byte in the second block: its CRC must disown it.
  const auto info = row_store_info(path);
  ASSERT_EQ(info.blocks, 2u);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path)) - 9);
    char b;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x5A);
    f.write(&b, 1);
  }
  const auto after = row_store_info(path);
  EXPECT_EQ(after.rows, 60u);
  EXPECT_EQ(after.blocks, 1u);
}

TEST_F(RowStoreTest, FingerprintMismatchRefusesAppend) {
  const std::string path = file("fp.rows");
  { RowStoreWriter writer(path, "campaign-A"); }
  EXPECT_THROW(RowStoreWriter(path, "campaign-B"), runtime::ParseException);
  // Garbage file: structured error, not a crash.
  const std::string junk = file("junk.rows");
  {
    std::ofstream out(junk, std::ios::binary);
    out << "not a row store at all";
  }
  EXPECT_THROW(row_store_info(junk), runtime::ParseException);
  EXPECT_THROW(RowStoreWriter(junk, "x"), runtime::ParseException);
}

class ScaleCampaignTest : public RowStoreTest {};

TEST_F(ScaleCampaignTest, MiniCampaignResumesByteIdenticalAtAnyJobs) {
  // The tentpole acceptance scenario in miniature: a 10k-row campaign run
  // (a) uninterrupted and (b) as kill -> resume with a different worker
  // count, exporting byte-identical CSVs. chunk=512 gives ~20 chunks, and
  // stopping after 7 leaves a store mid-campaign exactly as a kill at a
  // chunk boundary would.
  for (const int resume_jobs : {1, 4}) {
    ScaleOptions opt;
    opt.total_rows = 10'000;
    opt.chunk_rows = 512;
    opt.analytic = true;
    opt.base.seed = 20'140'214;
    opt.base.jobs = 1;

    opt.store_path = file("once_" + std::to_string(resume_jobs) + ".rows");
    auto full = run_scale_campaign(opt);
    EXPECT_TRUE(full.complete);
    EXPECT_EQ(full.rows_executed, 10'000u);
    const std::string csv_once = opt.store_path + ".csv";
    export_rows_csv(opt.store_path, csv_once);

    opt.store_path = file("resume_" + std::to_string(resume_jobs) + ".rows");
    opt.max_chunks_this_run = 7;
    auto part = run_scale_campaign(opt);
    EXPECT_FALSE(part.complete);
    EXPECT_EQ(part.rows_executed, 7u * 512u);

    opt.max_chunks_this_run = 0;
    opt.base.jobs = resume_jobs;
    auto rest = run_scale_campaign(opt);
    EXPECT_TRUE(rest.complete);
    EXPECT_EQ(rest.rows_committed_before, 7u * 512u);
    EXPECT_EQ(rest.rows_executed, 10'000u - 7u * 512u);

    const std::string csv_resumed = opt.store_path + ".csv";
    export_rows_csv(opt.store_path, csv_resumed);
    EXPECT_EQ(slurp(csv_resumed), slurp(csv_once))
        << "resume at jobs=" << resume_jobs << " diverged";
  }
}

TEST_F(ScaleCampaignTest, MidChunkCheckpointResumesByteIdentical) {
  // Kill *inside* a chunk: simulate by running chunk 0 partially via the
  // checkpoint machinery — run the campaign once to completion for the
  // oracle, then re-run from a store holding 2 chunks plus a live shard
  // checkpoint for chunk 2 written by a bounded first attempt.
  ScaleOptions opt;
  opt.total_rows = 3'000;
  opt.chunk_rows = 1'000;
  opt.analytic = true;
  opt.base.seed = 77;
  opt.base.jobs = 1;

  opt.store_path = file("oracle.rows");
  ASSERT_TRUE(run_scale_campaign(opt).complete);
  export_rows_csv(opt.store_path, file("oracle.csv"));

  // Interrupted attempt: two committed chunks...
  opt.store_path = file("victim.rows");
  opt.max_chunks_this_run = 2;
  ASSERT_FALSE(run_scale_campaign(opt).complete);
  // ...then fake a mid-chunk kill by leaving a *stale-chunk* checkpoint
  // behind (what survives if the process died while chunk 2 ran): resume
  // must either use or discard it, never corrupt the output.
  {
    std::ofstream out(opt.store_path + ".ckpt");
    out << "# not a matching checkpoint\n";
  }
  opt.max_chunks_this_run = 0;
  ASSERT_TRUE(run_scale_campaign(opt).complete);
  export_rows_csv(opt.store_path, file("victim.csv"));
  EXPECT_EQ(slurp(file("victim.csv")), slurp(file("oracle.csv")));
}

TEST_F(ScaleCampaignTest, AnalyticRowsAreSlotPureFunctions) {
  // Same options -> same rows regardless of chunking: chunk_rows is in the
  // fingerprint (checkpoint semantics) but must not affect row content.
  ScaleOptions a;
  a.total_rows = 2'000;
  a.chunk_rows = 256;
  a.base.seed = 5;
  a.store_path = file("a.rows");
  ASSERT_TRUE(run_scale_campaign(a).complete);

  ScaleOptions b = a;
  b.chunk_rows = 1'999;  // deliberately misaligned
  b.store_path = file("b.rows");
  ASSERT_TRUE(run_scale_campaign(b).complete);

  std::vector<NdtObservation> ra, rb;
  for_each_row(a.store_path,
               [&ra](const NdtObservation& o) { ra.push_back(o); });
  for_each_row(b.store_path,
               [&rb](const NdtObservation& o) { rb.push_back(o); });
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    expect_rows_identical(ra[i], rb[i]);
  }
}

TEST_F(ScaleCampaignTest, PlanCursorMatchesBatchPlanDraws) {
  // The cursor IS generate_dispute2014's pre-pass: over a full small grid
  // the per-slot path seeds must line up with what the batch generator
  // feeds run_checkpointed. Cross-check through the analytic model's
  // determinism: two cursors over the same options agree draw for draw.
  Dispute2014Options opt;
  opt.tests_per_cell = 2;
  opt.months = {1, 3};
  opt.hours = {2, 20};
  DisputePlanCursor c1(opt), c2(opt);
  EXPECT_EQ(c1.total(), 3u * 4u * 2u * 2u * 2u);
  std::uint64_t n = 0;
  while (auto p1 = c1.next()) {
    auto p2 = c2.next();
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(p1->pc.seed, p2->pc.seed);
    EXPECT_EQ(p1->pc.plan_mbps, p2->pc.plan_mbps);
    EXPECT_EQ(p1->transit, p2->transit);
    EXPECT_EQ(p1->isp, p2->isp);
    EXPECT_EQ(p1->month, p2->month);
    EXPECT_EQ(p1->hour, p2->hour);
    ++n;
  }
  EXPECT_EQ(n, c1.total());
  EXPECT_FALSE(c2.next().has_value());
}

TEST_F(ScaleCampaignTest, AggregateIsCellBoundedAndConsistent) {
  ScaleOptions opt;
  opt.total_rows = 5'000;
  opt.chunk_rows = 1'024;
  opt.base.seed = 99;
  opt.store_path = file("agg.rows");
  ASSERT_TRUE(run_scale_campaign(opt).complete);

  const auto summary = aggregate_scale_store(opt.store_path);
  EXPECT_EQ(summary.rows, 5'000u);
  // 2 transits x 4 isps x 4 months x peak/offpeak = at most 64 cells no
  // matter how many rows: the O(cells)-memory contract.
  EXPECT_LE(summary.cells.size(), 64u);
  std::uint64_t tests = 0;
  for (const auto& [key, cell] : summary.cells) tests += cell.tests;
  EXPECT_EQ(tests, 5'000u);
  const std::string csv = scale_summary_csv(summary);
  EXPECT_NE(csv.find("transit,isp,month,peak"), std::string::npos);
}

}  // namespace
}  // namespace ccsig::mlab

// Coverage for the inline (fixed-capacity) SACK storage that keeps Packet
// trivially copyable: capacity boundary, ordering, wire-format neutrality,
// and the sink's newest-first block generation end to end.
#include "sim/packet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <type_traits>
#include <vector>

#include "pcap/headers.h"
#include "sim/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace ccsig {
namespace {

// The hot path copies packets through queues, rings, and event captures by
// memcpy; these are the properties that make that legal.
static_assert(std::is_trivially_copyable_v<sim::Packet>);
static_assert(std::is_trivially_copyable_v<sim::SackBlocks>);
static_assert(std::is_trivially_copyable_v<sim::SackBlock>);

TEST(SackBlocks, BoundaryAtExactlyThreeBlocks) {
  sim::SackBlocks blocks;
  EXPECT_TRUE(blocks.empty());
  EXPECT_EQ(sim::SackBlocks::capacity(), sim::kMaxSackBlocks);
  for (std::uint64_t i = 0; i < sim::kMaxSackBlocks; ++i) {
    EXPECT_FALSE(blocks.full());
    blocks.push_back(i * 100, i * 100 + 50);
  }
  EXPECT_TRUE(blocks.full());
  EXPECT_EQ(blocks.size(), 3u);
}

TEST(SackBlocks, PreservesInsertionOrder) {
  // The sink pushes newest ranges first; storage must not reorder them.
  sim::SackBlocks blocks;
  blocks.push_back(3000, 4000);
  blocks.push_back(1000, 2000);
  blocks.push_back(500, 600);
  EXPECT_EQ(blocks[0], (sim::SackBlock{3000, 4000}));
  EXPECT_EQ(blocks[1], (sim::SackBlock{1000, 2000}));
  EXPECT_EQ(blocks[2], (sim::SackBlock{500, 600}));
  std::vector<sim::SackBlock> seen(blocks.begin(), blocks.end());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.front().start, 3000u);
}

TEST(SackBlocks, ClearAndEquality) {
  sim::SackBlocks a;
  sim::SackBlocks b;
  EXPECT_EQ(a, b);
  a.push_back(10, 20);
  EXPECT_FALSE(a == b);
  b.push_back(10, 20);
  EXPECT_EQ(a, b);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a == b);
}

// SACK blocks ride inside the simulated packet, not the wire format (the
// codec emits plain TCP/IP headers); attaching blocks must leave the
// encoded frame and its decode byte-identical to a block-free packet —
// exactly as with the old vector representation.
TEST(SackBlocks, PcapFrameUnaffectedByBlocks) {
  sim::Packet plain;
  plain.key = sim::FlowKey{1, 2, 4001, 4002};
  plain.seq = 1;
  plain.ack = 77777;
  plain.flags.ack = true;
  plain.window = 65535;

  sim::Packet with_sack = plain;
  with_sack.sack_blocks.push_back(90000, 91448);
  with_sack.sack_blocks.push_back(80000, 81448);
  with_sack.sack_blocks.push_back(70000, 71448);

  const auto f1 = pcap::encode_frame(plain);
  const auto f2 = pcap::encode_frame(with_sack);
  EXPECT_EQ(f1, f2);

  const auto d = pcap::decode_frame(f2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->ack32, 77777u);
}

// End to end: holes punched into a transfer make the sink advertise its
// out-of-order runs highest-first (where the newest arrivals live), capped
// at 3 blocks even when more runs exist.
TEST(SackBlocks, SinkAdvertisesNewestFirstAndCapsAtThree) {
  sim::Network net(42);
  sim::Node* server = net.add_node("server");
  sim::Node* client = net.add_node("client");
  sim::Link::Config lc;
  lc.rate_bps = 10e6;
  lc.prop_delay = 5 * sim::kMillisecond;
  lc.buffer_bytes = 1 << 22;
  auto duplex = net.connect(server, client, lc);

  // Drop four separated segments once each, creating four ooo runs.
  std::set<std::uint64_t> dropped;
  duplex.ab->set_receiver([&](const sim::Packet& p) {
    const bool target = p.payload_bytes > 0 &&
                        (p.seq / 1448) % 7 == 2 && p.seq < 60000;
    if (target && dropped.insert(p.seq).second) return;
    client->receive(p);
  });

  // Record every SACK-bearing ACK heading back to the server.
  std::vector<sim::SackBlocks> advertised;
  duplex.ba->set_receiver([&](const sim::Packet& p) {
    if (!p.sack_blocks.empty()) advertised.push_back(p.sack_blocks);
    server->receive(p);
  });

  const sim::FlowKey key{server->address(), client->address(), 1, 2};
  tcp::TcpSink::Config sk;
  sk.data_key = key;
  tcp::TcpSink sink(net.sim(), client, sk);
  tcp::TcpSource::Config sc;
  sc.key = key;
  sc.bytes_to_send = 200'000;
  tcp::TcpSource source(net.sim(), server, sc);
  source.start();
  net.sim().run_until(sim::from_seconds(30));

  ASSERT_FALSE(advertised.empty());
  std::size_t max_blocks = 0;
  for (const auto& blocks : advertised) {
    max_blocks = std::max(max_blocks, blocks.size());
    ASSERT_LE(blocks.size(), sim::kMaxSackBlocks);
    // Newest-first: strictly descending, non-overlapping ranges.
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      EXPECT_LE(blocks[i].end, blocks[i - 1].start);
    }
    for (const auto& b : blocks) EXPECT_LT(b.start, b.end);
  }
  EXPECT_EQ(max_blocks, sim::kMaxSackBlocks);  // enough holes to fill it
}

}  // namespace
}  // namespace ccsig

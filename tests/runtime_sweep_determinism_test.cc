// Determinism contract of the parallel campaign drivers: for identical
// options, `jobs > 1` must produce byte-identical CSV output to the
// serial `jobs == 1` path — seeds are drawn in a deterministic pre-pass
// and results collected in slot order, so thread scheduling can never
// leak into the data.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "mlab/dispute2014.h"
#include "testbed/sweep.h"

namespace ccsig {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

testbed::SweepOptions tiny_sweep(int jobs) {
  testbed::SweepOptions opt;
  opt.access_rates_mbps = {20};
  opt.access_latencies_ms = {20};
  opt.access_losses = {0.0002};
  opt.access_buffers_ms = {100};
  opt.reps = 2;
  opt.scale = 1.0;
  opt.test_duration = sim::from_seconds(2.0);
  opt.warmup = sim::from_seconds(1.5);
  opt.seed = 9;
  opt.jobs = jobs;
  return opt;
}

TEST(SweepDeterminism, ParallelMatchesSerialByteForByte) {
  const auto serial = run_sweep(tiny_sweep(1));
  const auto parallel = run_sweep(tiny_sweep(4));

  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].norm_diff, serial[i].norm_diff) << "slot " << i;
    EXPECT_EQ(parallel[i].cov, serial[i].cov) << "slot " << i;
    EXPECT_EQ(parallel[i].slow_start_tput_bps, serial[i].slow_start_tput_bps)
        << "slot " << i;
    EXPECT_EQ(parallel[i].flow_tput_bps, serial[i].flow_tput_bps)
        << "slot " << i;
    EXPECT_EQ(parallel[i].scenario, serial[i].scenario) << "slot " << i;
  }

  const std::string p1 = temp_path("ccsig_det_sweep_serial.csv");
  const std::string p2 = temp_path("ccsig_det_sweep_parallel.csv");
  const std::string fp = testbed::sweep_fingerprint(tiny_sweep(1));
  testbed::save_samples_csv(p1, serial, fp);
  testbed::save_samples_csv(p2, parallel,
                            testbed::sweep_fingerprint(tiny_sweep(4)));
  const std::string bytes1 = slurp(p1);
  const std::string bytes2 = slurp(p2);
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes2);  // `jobs` must not enter the fingerprint either
}

// Golden bytes for tiny_sweep(1). Pinned so that any drift — in the event
// queue's tie-break, SACK recovery decisions, or the RNG consumption
// order — fails loudly rather than silently changing data. Captured after
// the stale-timer fix (Simulator lifetime leases): the pre-refactor tree's
// results depended on pending TCP timer closures reading the freed memory
// of destroyed endpoints, so its bytes were a property of heap layout, not
// of the simulation, and are deliberately not the reference.
constexpr const char* kTinySweepGoldenCsv =
    R"(# options: sweep-v1 rates=20 latencies=20 losses=0.00020000000000000001 buffers=100 reps=2 scale=1 duration=2 warmup=1.5 tgcong_flows=100 cc=reno seed=9
norm_diff,cov,rtt_slope,rtt_iqr,slow_start_tput_bps,flow_tput_bps,access_capacity_bps,scenario,access_rate_mbps,access_latency_ms,access_loss,access_buffer_ms
0.83770651442559596,0.48578138798303083,1.6710564892729334,0.95403194975911731,19379479.833865482,19794160,20000000,1,20,20,0.00020000000000000001,100
0.84780894493300596,0.48797324218814969,1.6779440958206155,0.95963154884282487,19529757.867418427,19368448,20000000,1,20,20,0.00020000000000000001,100
0.26702962027158267,0.080860510605426372,0.26606665617578218,0.11027137935512016,4929513.0945544131,4246984,20000000,0,20,20,0.00020000000000000001,100
)";

TEST(SweepDeterminism, MatchesPreRefactorGoldenBytes) {
  const auto samples = run_sweep(tiny_sweep(1));
  const std::string path = temp_path("ccsig_det_sweep_golden.csv");
  testbed::save_samples_csv(path, samples,
                            testbed::sweep_fingerprint(tiny_sweep(1)));
  const std::string bytes = slurp(path);
  std::filesystem::remove(path);
  EXPECT_EQ(bytes, kTinySweepGoldenCsv);
}

TEST(SweepDeterminism, ProgressReportsEveryRunUnderConcurrency) {
  auto opt = tiny_sweep(3);
  opt.reps = 1;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  opt.progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    EXPECT_EQ(done, last_done + 1);  // serialized, strictly increasing
    EXPECT_EQ(total, 2u);
    last_done = done;
  };
  run_sweep(opt);
  EXPECT_EQ(calls, 2u);  // 1 config x 2 scenarios x 1 rep
}

TEST(Dispute2014Determinism, ParallelMatchesSerialByteForByte) {
  mlab::Dispute2014Options opt;
  opt.tests_per_cell = 1;
  opt.months = {1};
  opt.hours = {4};  // off-peak: light background, cheap simulations
  opt.interconnect_mbps = 60.0;
  opt.ndt_duration = sim::from_seconds(2.0);
  opt.warmup = sim::from_seconds(1.0);
  opt.seed = 77;

  opt.jobs = 1;
  const auto serial = generate_dispute2014(opt);
  opt.jobs = 4;
  const auto parallel = generate_dispute2014(opt);

  ASSERT_EQ(serial.size(), 12u);  // 3 sites x 4 isps
  ASSERT_EQ(parallel.size(), serial.size());

  const std::string p1 = temp_path("ccsig_det_dispute_serial.csv");
  const std::string p2 = temp_path("ccsig_det_dispute_parallel.csv");
  const std::string fp = mlab::dispute_fingerprint(opt);
  mlab::save_observations_csv(p1, serial, fp);
  mlab::save_observations_csv(p2, parallel, fp);
  const std::string bytes1 = slurp(p1);
  const std::string bytes2 = slurp(p2);
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes2);
}

}  // namespace
}  // namespace ccsig

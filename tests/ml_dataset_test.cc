#include "ml/dataset.h"

#include <gtest/gtest.h>

namespace ccsig::ml {
namespace {

TEST(Dataset, AddAndAccess) {
  Dataset d({"a", "b"});
  d.add({1.0, 2.0}, 0);
  d.add({3.0, 4.0}, 1);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.row(1)[0], 3.0);
  EXPECT_EQ(d.label(0), 0);
  EXPECT_EQ(d.num_classes(), 2);
}

TEST(Dataset, RowWidthMismatchThrows) {
  Dataset d({"a", "b"});
  EXPECT_THROW(d.add({1.0}, 0), std::invalid_argument);
}

TEST(Dataset, InconsistentWidthWithoutNamesThrows) {
  Dataset d;
  d.add({1.0, 2.0}, 0);
  EXPECT_THROW(d.add({1.0}, 0), std::invalid_argument);
}

TEST(Dataset, SubsetSelectsRows) {
  Dataset d({"x"});
  for (int i = 0; i < 5; ++i) d.add({static_cast<double>(i)}, i % 2);
  const std::size_t idx[] = {0, 2, 4};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.row(1)[0], 2.0);
  EXPECT_EQ(s.label(2), 0);
  EXPECT_EQ(s.feature_names().size(), 1u);
}

TEST(Dataset, AppendMerges) {
  Dataset a({"x"});
  a.add({1.0}, 0);
  Dataset b({"x"});
  b.add({2.0}, 1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.label(1), 1);
}

TEST(Dataset, ClassCounts) {
  Dataset d({"x"});
  d.add({1.0}, 0);
  d.add({2.0}, 1);
  d.add({3.0}, 1);
  d.add({4.0}, 3);  // gap: class 2 unused
  const auto counts = d.class_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Dataset, EmptyProperties) {
  Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.num_classes(), 0);
  EXPECT_TRUE(d.class_counts().empty());
}

}  // namespace
}  // namespace ccsig::ml

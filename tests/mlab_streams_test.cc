// Unit tests for the M-Lab background-source models: chunked segment
// fetches and ABR-style adaptive streams.
#include <gtest/gtest.h>

#include "mlab/path.h"
#include "test_helpers.h"

namespace ccsig::mlab {
namespace {

struct StreamHarness {
  explicit StreamHarness(double rate_bps, std::uint64_t seed = 1,
                         bool quota_mode = true)
      : path(testutil::basic_link(rate_bps, 5, 100), seed) {
    const sim::FlowKey key = path.flow_key();
    tcp::TcpSink::Config sk;
    sk.data_key = key;
    sink = std::make_unique<tcp::TcpSink>(path.net.sim(), path.client, sk);
    tcp::TcpSource::Config sc;
    sc.key = key;
    sc.quota_mode = quota_mode;
    source = std::make_unique<tcp::TcpSource>(path.net.sim(), path.server, sc);
    source->start();
  }
  testutil::TwoNodePath path;
  std::unique_ptr<tcp::TcpSink> sink;
  std::unique_ptr<tcp::TcpSource> source;
};

TEST(ChunkedStream, DeliversAtNominalRateOnCleanPath) {
  StreamHarness h(100e6);  // ample capacity
  ChunkedStream stream(h.path.net.sim(), h.source.get(),
                       /*nominal_bps=*/4e6, sim::from_seconds(2),
                       sim::Rng(3));
  h.path.net.sim().run_until(sim::from_seconds(20));
  const double goodput =
      static_cast<double>(h.sink->bytes_received()) * 8.0 / 20.0;
  // On-off fetching averages out to the nominal rate (within one chunk).
  EXPECT_NEAR(goodput, 4e6, 1e6);
  EXPECT_GE(stream.chunks_released(), 8u);
  EXPECT_EQ(stream.chunks_skipped(), 0u);
}

TEST(ChunkedStream, SkipsWhenPathCannotKeepUp) {
  StreamHarness h(1e6);  // far below the 4 Mbps demand
  ChunkedStream stream(h.path.net.sim(), h.source.get(), 4e6,
                       sim::from_seconds(2), sim::Rng(4));
  h.path.net.sim().run_until(sim::from_seconds(30));
  EXPECT_GT(stream.chunks_skipped(), 0u);
  // Goodput is capped by the link, not by demand.
  const double goodput =
      static_cast<double>(h.sink->bytes_received()) * 8.0 / 30.0;
  EXPECT_LT(goodput, 1.05e6);
}

TEST(ChunkedStream, BurstsAboveNominalDuringFetch) {
  StreamHarness h(100e6);
  // Fetch pacing is the source's fixed_pacing; here unpaced, so during a
  // chunk the instantaneous rate is link-limited — verify on/off shape by
  // comparing peak window goodput to the average.
  ChunkedStream stream(h.path.net.sim(), h.source.get(), 4e6,
                       sim::from_seconds(2), sim::Rng(5));
  std::uint64_t last = 0;
  double peak_bps = 0;
  for (int i = 0; i < 100; ++i) {
    h.path.net.sim().run_until((i + 1) * 200 * sim::kMillisecond);
    const std::uint64_t now_bytes = h.sink->bytes_received();
    peak_bps = std::max(peak_bps,
                        static_cast<double>(now_bytes - last) * 8.0 / 0.2);
    last = now_bytes;
  }
  EXPECT_GT(peak_bps, 8e6);  // bursts well above the 4 Mbps average
}

TEST(AdaptiveStream, HoldsNominalWhenCapacityAllows) {
  StreamHarness h(100e6, 1, /*quota_mode=*/false);
  h.source->set_app_rate(4e6);
  AdaptiveStream stream(h.path.net.sim(), h.source.get(), 4e6,
                        /*floor_fraction=*/0.3, sim::Rng(6));
  h.path.net.sim().run_until(sim::from_seconds(15));
  EXPECT_NEAR(stream.current_rate_bps(), 4e6, 0.5e6);
}

TEST(AdaptiveStream, DownshiftsOnStarvedPath) {
  StreamHarness h(1e6, 1, /*quota_mode=*/false);  // quarter of nominal
  h.source->set_app_rate(4e6);
  AdaptiveStream stream(h.path.net.sim(), h.source.get(), 4e6, 0.3,
                        sim::Rng(7));
  h.path.net.sim().run_until(sim::from_seconds(30));
  EXPECT_LT(stream.current_rate_bps(), 2.5e6);
  EXPECT_GE(stream.current_rate_bps(), 0.3 * 4e6 - 1.0);  // floor respected
}

TEST(AdaptiveStream, RecoversAfterCongestionClears) {
  // Start on a starved path, then (by raising the app cap via a clean
  // period) confirm the controller climbs back toward nominal: emulate by
  // flipping the link rate through a second harness at higher capacity.
  StreamHarness h(100e6, 9, /*quota_mode=*/false);
  h.source->set_app_rate(4e6);
  AdaptiveStream stream(h.path.net.sim(), h.source.get(), 4e6, 0.3,
                        sim::Rng(8));
  h.path.net.sim().run_until(sim::from_seconds(20));
  // Clean path all along: rate should sit at nominal, proving the upshift
  // path is exercised after any transient dip.
  EXPECT_NEAR(stream.current_rate_bps(), 4e6, 0.5e6);
}

}  // namespace
}  // namespace ccsig::mlab

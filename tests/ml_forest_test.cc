#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace ccsig::ml {
namespace {

Dataset noisy_blobs(std::uint64_t seed) {
  Dataset d({"x", "y"});
  sim::Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    const int label = i % 2;
    const double cx = label == 0 ? -1.0 : 1.0;
    d.add({rng.normal(cx, 0.8), rng.normal(cx, 0.8)}, label);
  }
  return d;
}

TEST(RandomForest, TrainsAndPredicts) {
  const Dataset d = noisy_blobs(1);
  RandomForest forest(RandomForest::Params{.n_trees = 15}, 7);
  EXPECT_FALSE(forest.trained());
  forest.fit(d);
  EXPECT_TRUE(forest.trained());
  EXPECT_EQ(forest.tree_count(), 15u);
  ConfusionMatrix cm(d.labels(), forest.predict_all(d));
  EXPECT_GT(cm.accuracy(), 0.8);
}

TEST(RandomForest, ClearSeparationIsPerfect) {
  Dataset d({"x"});
  for (int i = 0; i < 100; ++i) {
    d.add({static_cast<double>(i)}, i < 50 ? 0 : 1);
  }
  RandomForest forest(RandomForest::Params{.n_trees = 9}, 3);
  forest.fit(d);
  const double low[] = {10.0};
  const double high[] = {90.0};
  EXPECT_EQ(forest.predict(low), 0);
  EXPECT_EQ(forest.predict(high), 1);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const Dataset d = noisy_blobs(2);
  RandomForest f1(RandomForest::Params{.n_trees = 11}, 99);
  RandomForest f2(RandomForest::Params{.n_trees = 11}, 99);
  f1.fit(d);
  f2.fit(d);
  EXPECT_EQ(f1.predict_all(d), f2.predict_all(d));
}

TEST(RandomForest, BootstrapFractionShrinksTrees) {
  const Dataset d = noisy_blobs(3);
  RandomForest forest(
      RandomForest::Params{.n_trees = 5, .bootstrap_fraction = 0.1}, 1);
  forest.fit(d);
  EXPECT_TRUE(forest.trained());
  // Still functional as a classifier.
  ConfusionMatrix cm(d.labels(), forest.predict_all(d));
  EXPECT_GT(cm.accuracy(), 0.6);
}

}  // namespace
}  // namespace ccsig::ml

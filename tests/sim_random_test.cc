#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ccsig::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  // Same parent seed -> same child stream.
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(0, 1), child2.uniform(0, 1));
  }
  // Successive forks differ from each other.
  Rng sibling = parent1.fork();
  EXPECT_NE(parent2.fork().uniform(0, 1), 0.0);  // just runs
  int same = 0;
  Rng child1b = Rng(7).fork();
  for (int i = 0; i < 100; ++i) {
    if (sibling.uniform(0, 1) == child1b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces show up
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(10);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Splitmix, KnownNonZeroAndDistinct) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ccsig::sim

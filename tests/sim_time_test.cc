#include "sim/time.h"

#include <gtest/gtest.h>

namespace ccsig::sim {
namespace {

TEST(Time, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(Time, FromSeconds) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.5), kSecond / 2);
  EXPECT_EQ(from_seconds(0.0), 0);
  EXPECT_EQ(from_seconds(2.5), 2 * kSecond + kSecond / 2);
}

TEST(Time, FromMillisAndMicros) {
  EXPECT_EQ(from_millis(1.0), kMillisecond);
  EXPECT_EQ(from_millis(20.0), 20 * kMillisecond);
  EXPECT_EQ(from_micros(7.0), 7 * kMicrosecond);
  EXPECT_EQ(from_millis(0.5), 500 * kMicrosecond);
}

TEST(Time, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(to_millis(from_millis(18.5)), 18.5);
}

TEST(Time, NegativeDurations) {
  EXPECT_EQ(from_seconds(-1.0), -kSecond);
  EXPECT_DOUBLE_EQ(to_seconds(-kSecond), -1.0);
}

class TimeConversionRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(TimeConversionRoundTrip, MillisSurviveConversion) {
  const double ms = GetParam();
  EXPECT_NEAR(to_millis(from_millis(ms)), ms, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimeConversionRoundTrip,
                         ::testing::Values(0.0, 0.001, 0.5, 1.0, 2.0, 20.0,
                                           50.0, 100.0, 1000.0, 86400000.0));

}  // namespace
}  // namespace ccsig::sim

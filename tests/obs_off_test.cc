// Compiled with CCSIG_OBS_OFF (see tests/CMakeLists.txt): proves the
// no-op twin of every obs type keeps the identical API so instrumented
// call sites build unchanged, and that recording genuinely does nothing.
// Deliberately links only GTest — obs is header-only, and linking library
// code compiled *without* CCSIG_OBS_OFF would be an ODR violation.
#ifndef CCSIG_OBS_OFF
#error "this test must be compiled with CCSIG_OBS_OFF"
#endif

#include <gtest/gtest.h>

#include <string>

#include "obs/flow_telemetry.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace ccsig::obs {
namespace {

TEST(ObsOff, MetricsApiCompilesAndRecordsNothing) {
  MetricsRegistry reg;
  Counter c = reg.counter("n");
  Gauge g = reg.gauge("depth");
  Histogram h = reg.histogram("lat", {1.0, 10.0});
  c.add(5);
  c.inc();
  g.set(3.5);
  h.record(2.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  reg.reset();
  EXPECT_EQ(reg.shard_count(), 0u);
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(ObsOff, TraceApiCompilesAndRecordsNothing) {
  TraceWriter w;
  EXPECT_EQ(TraceWriter::global(), nullptr);
  EXPECT_EQ(TraceWriter::install_global(&w), nullptr);
  EXPECT_EQ(TraceWriter::global(), nullptr);  // install is a no-op
  w.complete("span", "cat", 0, 10);
  w.instant("mark", "cat");
  { TraceSpan span("scoped", "cat"); }
  trace_instant("free", "cat");
  EXPECT_EQ(w.event_count(), 0u);
  EXPECT_EQ(w.to_json(), "{\"traceEvents\":[]}");
  TraceWriter::install_global(nullptr);
}

TEST(ObsOff, FlowTelemetryApiCompilesAndRecordsNothing) {
  FlowTelemetryConfig cfg;
  cfg.capacity = 16;
  FlowTelemetryRecorder rec(cfg);
  FlowSample s;
  s.event = FlowEvent::kTimeout;
  rec.record(s);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.samples().empty());
  const std::string csv = rec.to_csv();
  EXPECT_EQ(csv,
            "time_s,event,cwnd_bytes,ssthresh_bytes,pipe_bytes,srtt_s,"
            "retransmits\n");
  rec.clear();
}

TEST(ObsOff, WindowAggregatorTicksOnEmptySnapshots) {
  // The introspection plane stays wired under CCSIG_OBS_OFF: the window
  // consumes the (always empty) registry snapshots without crashing and
  // reports zero rates, so varz keeps its shape while saying nothing.
  WindowAggregator w({4});
  w.tick(0, MetricsRegistry::global().snapshot());
  w.tick(1'000'000'000, MetricsRegistry::global().snapshot());
  EXPECT_DOUBLE_EQ(w.covered_seconds(), 1.0);
  EXPECT_EQ(w.delta("service.records"), 0u);
  EXPECT_DOUBLE_EQ(w.rate("service.records"), 0.0);
  EXPECT_NE(w.to_json().find("\"rates\":{}"), std::string::npos);
}

TEST(ObsOff, PrometheusExpositionOfEmptySnapshotIsEmpty) {
  // metricsz degrades to a valid, empty exposition (zero instrument
  // families), never to malformed output.
  EXPECT_EQ(prometheus_text(MetricsRegistry::global().snapshot()), "");
}

TEST(ObsOff, SnapshotMathStillWorksOnHandBuiltData) {
  // The snapshot structs stay fully functional under CCSIG_OBS_OFF (they
  // are plain data); only the recording machinery is compiled out.
  HistogramSnapshot h;
  h.bounds = {10.0};
  h.buckets = {4, 0};
  h.sum = 40.0;
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

}  // namespace
}  // namespace ccsig::obs

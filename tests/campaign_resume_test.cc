// Kill/resume and fault-recovery guarantees of the checkpointed campaign
// harness: an interrupted campaign resumed from its shard checkpoint must
// produce a final CSV byte-identical to an uninterrupted run, at any job
// count, and injected faults must surface as structured per-job errors.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mlab/dispute2014.h"
#include "runtime/campaign.h"
#include "runtime/fault_injection.h"
#include "testbed/sweep.h"

namespace ccsig {
namespace {

namespace fs = std::filesystem;
using runtime::CheckpointedRunOptions;
using runtime::FaultPlan;
using runtime::FaultSpec;
using runtime::JobError;
using runtime::RetryPolicy;
using runtime::run_checkpointed;

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("ccsig_resume_" + std::to_string(counter_++)))
               .string();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string file(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static int counter_;
  std::string dir_;
};

int ResumeTest::counter_ = 0;

std::vector<int> iota_items(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

std::string ser_int(const int& x) { return std::to_string(x); }
int de_int(const std::string& s) { return std::stoi(s); }

TEST_F(ResumeTest, CompletedSlotsAreNotRerunAfterInterruption) {
  const auto items = iota_items(10);
  CheckpointedRunOptions opt;
  opt.checkpoint_path = file("harness.ckpt");
  opt.fingerprint = "fp-v1";
  opt.checkpoint_every = 1;
  opt.seed_of = [](std::size_t slot) { return 500 + slot; };
  std::vector<JobError> errors;
  opt.errors_out = &errors;

  // Phase 1: every odd item fails permanently — the campaign survives,
  // keeps the even rows in its checkpoint, and reports the failures.
  const auto partial = run_checkpointed(
      items,
      [](const int& x) -> int {
        if (x % 2 == 1) throw std::runtime_error("boom " + std::to_string(x));
        return x * 7;
      },
      ser_int, de_int, opt);
  ASSERT_EQ(partial.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(partial[static_cast<std::size_t>(i)].has_value(), i % 2 == 0);
  }
  ASSERT_EQ(errors.size(), 5u);
  for (const auto& e : errors) {
    EXPECT_EQ(e.index % 2, 1u);
    EXPECT_EQ(e.seed, 500 + e.index);
    EXPECT_EQ(e.attempts, 1);
    EXPECT_NE(e.message.find("boom"), std::string::npos);
  }
  ASSERT_TRUE(fs::exists(opt.checkpoint_path));

  // Phase 2: the fault is gone. Only the 5 failed slots may run again.
  std::atomic<int> executed{0};
  opt.errors_out = nullptr;
  const auto full = run_checkpointed(
      items,
      [&executed](const int& x) -> int {
        ++executed;
        return x * 7;
      },
      ser_int, de_int, opt);
  EXPECT_EQ(executed.load(), 5);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(full[static_cast<std::size_t>(i)].has_value());
    EXPECT_EQ(*full[static_cast<std::size_t>(i)], i * 7);
  }
  // Complete run: the checkpoint has served its purpose and is gone.
  EXPECT_FALSE(fs::exists(opt.checkpoint_path));
}

TEST_F(ResumeTest, StaleOrDamagedCheckpointRowsAreRerunNotTrusted) {
  {
    std::ofstream out(file("stale.ckpt"));
    out << "# checkpoint: some-other-options\n0\t999\n1\t999\n";
  }
  {
    std::ofstream out(file("damaged.ckpt"));
    out << "# checkpoint: fp-v1\n0\tnot-a-number\n1\t11\n";
  }
  for (const char* name : {"stale.ckpt", "damaged.ckpt"}) {
    CheckpointedRunOptions opt;
    opt.checkpoint_path = file(name);
    opt.fingerprint = "fp-v1";
    std::atomic<int> executed{0};
    const auto out = run_checkpointed(
        iota_items(2),
        [&executed](const int& x) -> int {
          ++executed;
          return x * 11;
        },
        ser_int, de_int, opt);
    // Stale file: both slots re-run. Damaged row: slot 0 re-runs, slot 1
    // (whose row parses) is reused.
    const bool stale = std::string(name) == "stale.ckpt";
    EXPECT_EQ(executed.load(), stale ? 2 : 1) << name;
    ASSERT_TRUE(out[0].has_value());
    ASSERT_TRUE(out[1].has_value());
    EXPECT_EQ(*out[0], 0);
    EXPECT_EQ(*out[1], 11);
  }
}

TEST_F(ResumeTest, CheckpointWriteFaultIsRetriedTransparently) {
  // Every slot's FIRST checkpoint-record attempt fails (injected I/O
  // fault); the supervising retry re-runs the job and the second record
  // succeeds. The campaign completes with no errors.
  FaultSpec spec;
  spec.io_fail_rate = 1.0;
  const FaultPlan faults(21, spec);
  CheckpointedRunOptions opt;
  opt.checkpoint_path = file("io.ckpt");
  opt.fingerprint = "fp-io";
  opt.retry = RetryPolicy::attempts(2);
  opt.faults = &faults;
  std::vector<JobError> errors;
  opt.errors_out = &errors;
  std::atomic<int> executed{0};
  const auto out = run_checkpointed(
      iota_items(6),
      [&executed](const int& x) -> int {
        ++executed;
        return x + 100;
      },
      ser_int, de_int, opt);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(executed.load(), 12);  // each job ran twice
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(out[static_cast<std::size_t>(i)].has_value());
    EXPECT_EQ(*out[static_cast<std::size_t>(i)], i + 100);
  }
  EXPECT_FALSE(fs::exists(opt.checkpoint_path));
}

TEST_F(ResumeTest, CommitOutDefersCheckpointRemovalUntilCallerCommits) {
  const auto items = iota_items(4);
  CheckpointedRunOptions opt;
  opt.checkpoint_path = file("commit.ckpt");
  opt.fingerprint = "fp-commit";
  opt.checkpoint_every = 1;
  std::function<void()> commit;
  opt.commit_out = &commit;
  const auto out = run_checkpointed(
      items, [](const int& x) -> int { return x * 2; }, ser_int, de_int, opt);
  for (const auto& o : out) ASSERT_TRUE(o.has_value());
  // Full success with a deferred commit: the checkpoint survives until the
  // caller has written its final artifact and invokes the callback.
  EXPECT_TRUE(fs::exists(opt.checkpoint_path));
  ASSERT_TRUE(static_cast<bool>(commit));
  commit();
  EXPECT_FALSE(fs::exists(opt.checkpoint_path));
}

TEST_F(ResumeTest, CommitOutLeftEmptyOnPartialFailure) {
  const auto items = iota_items(4);
  CheckpointedRunOptions opt;
  opt.checkpoint_path = file("commit_fail.ckpt");
  opt.fingerprint = "fp-commit";
  opt.checkpoint_every = 1;
  std::function<void()> commit = [] {};  // must be cleared, not left stale
  opt.commit_out = &commit;
  const auto out = run_checkpointed(
      items,
      [](const int& x) -> int {
        if (x == 2) throw std::runtime_error("boom");
        return x * 2;
      },
      ser_int, de_int, opt);
  EXPECT_FALSE(out[2].has_value());
  EXPECT_FALSE(static_cast<bool>(commit));
  EXPECT_TRUE(fs::exists(opt.checkpoint_path));
}

testbed::SweepOptions tiny_sweep() {
  testbed::SweepOptions opt;
  opt.access_rates_mbps = {20};
  opt.access_latencies_ms = {20};
  opt.access_losses = {0.0002};
  opt.access_buffers_ms = {100};
  opt.reps = 1;
  opt.scale = 1.0;
  opt.test_duration = sim::from_seconds(3);
  opt.warmup = sim::from_seconds(1.5);
  opt.seed = 9;
  return opt;
}

/// A seed whose fault plan kills exactly one of the two sweep slots on the
/// first attempt — a deterministic stand-in for an arbitrary mid-sweep kill.
std::uint64_t seed_killing_one_of_two(const FaultSpec& spec) {
  for (std::uint64_t seed = 1; seed < 1000; ++seed) {
    const FaultPlan plan(seed, spec);
    if (plan.plans_permanent(0, 1) != plan.plans_permanent(1, 1)) return seed;
  }
  ADD_FAILURE() << "no seed kills exactly one slot";
  return 0;
}

TEST_F(ResumeTest, InterruptedSweepResumesByteIdentical) {
  const std::string baseline_csv = file("baseline.csv");
  const auto baseline = testbed::run_sweep(tiny_sweep());
  testbed::save_samples_csv(baseline_csv, baseline,
                            testbed::sweep_fingerprint(tiny_sweep()));
  const std::string want = read_file(baseline_csv);

  FaultSpec spec;
  spec.permanent_rate = 0.5;
  const std::uint64_t fault_seed = seed_killing_one_of_two(spec);

  for (int jobs : {1, 2}) {
    auto opt = tiny_sweep();
    opt.jobs = jobs;
    opt.checkpoint_path = file("sweep_" + std::to_string(jobs) + ".ckpt");
    opt.checkpoint_every = 1;

    // Interrupted phase: one of the two runs dies permanently.
    const FaultPlan faults(fault_seed, spec);
    opt.faults = &faults;
    std::vector<JobError> errors;
    opt.errors_out = &errors;
    const auto partial = testbed::run_sweep(opt);
    EXPECT_EQ(errors.size(), 1u);
    EXPECT_LE(partial.size(), baseline.size());
    ASSERT_TRUE(fs::exists(opt.checkpoint_path));

    // Resume without the fault: completed slots come from the checkpoint.
    opt.faults = nullptr;
    opt.errors_out = nullptr;
    const auto resumed = testbed::run_sweep(opt);
    const std::string resumed_csv =
        file("resumed_" + std::to_string(jobs) + ".csv");
    testbed::save_samples_csv(resumed_csv, resumed,
                              testbed::sweep_fingerprint(opt));
    EXPECT_EQ(read_file(resumed_csv), want) << "jobs=" << jobs;
    EXPECT_FALSE(fs::exists(opt.checkpoint_path));
  }
}

TEST_F(ResumeTest, RetriedTransientFaultsLeaveSweepOutputIdentical) {
  const auto clean = testbed::run_sweep(tiny_sweep());

  auto opt = tiny_sweep();
  FaultSpec spec;
  spec.throw_rate = 1.0;  // every first attempt fails transiently
  const FaultPlan faults(5, spec);
  opt.faults = &faults;
  std::vector<JobError> errors;
  opt.errors_out = &errors;
  const auto faulty = testbed::run_sweep(opt);

  EXPECT_TRUE(errors.empty()) << errors.front().to_string();
  const std::string a = file("clean.csv");
  const std::string b = file("faulty.csv");
  testbed::save_samples_csv(a, clean);
  testbed::save_samples_csv(b, faulty);
  EXPECT_EQ(read_file(a), read_file(b));
}

TEST_F(ResumeTest, SweepPermanentFaultsReportIndexSeedAttempts) {
  auto opt = tiny_sweep();
  FaultSpec spec;
  spec.permanent_rate = 1.0;
  const FaultPlan faults(3, spec);
  opt.faults = &faults;
  std::vector<JobError> errors;
  opt.errors_out = &errors;
  const auto samples = testbed::run_sweep(opt);
  EXPECT_TRUE(samples.empty());
  ASSERT_EQ(errors.size(), 2u);  // 1 config x 2 scenarios
  EXPECT_NE(errors[0].index, errors[1].index);
  for (const auto& e : errors) {
    EXPECT_LT(e.index, 2u);
    EXPECT_NE(e.seed, 0u);  // the run's own RNG seed, for reproduction
    EXPECT_EQ(e.attempts, 1);
    EXPECT_EQ(e.kind, runtime::JobErrorKind::kPermanent);
  }
}

TEST_F(ResumeTest, PartialFailureDoesNotPoisonSweepCache) {
  // Regression: a sweep with permanently failed slots must not publish a
  // fingerprinted cache — that cache would be a trusted hit forever and
  // the kept checkpoint would never be consulted again.
  const std::string cache = file("sweep_cache.csv");
  const auto want = testbed::run_sweep(tiny_sweep());

  FaultSpec spec;
  spec.permanent_rate = 0.5;
  const FaultPlan faults(seed_killing_one_of_two(spec), spec);

  auto opt = tiny_sweep();
  opt.checkpoint_every = 1;
  opt.faults = &faults;
  std::vector<JobError> errors;
  opt.errors_out = &errors;
  const auto partial = testbed::load_or_run_sweep(cache, opt);
  EXPECT_EQ(errors.size(), 1u);
  EXPECT_LE(partial.size(), want.size());
  EXPECT_FALSE(fs::exists(cache));  // incomplete data never cached
  EXPECT_TRUE(fs::exists(cache + ".ckpt"));

  // Fault gone: the retry resumes from the checkpoint, completes, publishes
  // the cache, and only then retires the checkpoint.
  opt.faults = nullptr;
  opt.errors_out = nullptr;
  const auto full = testbed::load_or_run_sweep(cache, opt);
  EXPECT_EQ(full.size(), want.size());
  EXPECT_TRUE(fs::exists(cache));
  EXPECT_FALSE(fs::exists(cache + ".ckpt"));

  // The published cache is a genuine hit with the complete data.
  const auto cached = testbed::load_or_run_sweep(cache, tiny_sweep());
  EXPECT_EQ(cached.size(), want.size());
}

TEST_F(ResumeTest, InterruptedDisputeCampaignResumesByteIdentical) {
  mlab::Dispute2014Options base;
  base.tests_per_cell = 1;
  base.months = {1};
  base.hours = {3};
  base.ndt_duration = sim::from_seconds(4);
  base.seed = 7;

  const auto baseline = mlab::generate_dispute2014(base);
  ASSERT_FALSE(baseline.empty());
  const std::string want_csv = file("dispute_base.csv");
  mlab::save_observations_csv(want_csv, baseline,
                              mlab::dispute_fingerprint(base));
  const std::string want = read_file(want_csv);

  auto opt = base;
  opt.checkpoint_path = file("dispute.ckpt");
  opt.checkpoint_every = 1;
  FaultSpec spec;
  spec.permanent_rate = 0.5;
  const FaultPlan faults(19, spec);
  opt.faults = &faults;
  std::vector<JobError> errors;
  opt.errors_out = &errors;
  const auto partial = mlab::generate_dispute2014(opt);
  EXPECT_EQ(partial.size() + errors.size(), baseline.size());

  opt.faults = nullptr;
  opt.errors_out = nullptr;
  const auto resumed = mlab::generate_dispute2014(opt);
  const std::string got_csv = file("dispute_resumed.csv");
  mlab::save_observations_csv(got_csv, resumed,
                              mlab::dispute_fingerprint(opt));
  EXPECT_EQ(read_file(got_csv), want);
  EXPECT_FALSE(fs::exists(opt.checkpoint_path));
}

}  // namespace
}  // namespace ccsig

#include "runtime/fault_injection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccsig::runtime {
namespace {

namespace fs = std::filesystem;

FaultSpec spec_with(double throw_rate, double permanent_rate = 0,
                    double stall_rate = 0, double io_fail_rate = 0) {
  FaultSpec s;
  s.throw_rate = throw_rate;
  s.permanent_rate = permanent_rate;
  s.stall_rate = stall_rate;
  s.io_fail_rate = io_fail_rate;
  return s;
}

std::string temp_file(const std::string& name, const std::string& content) {
  const std::string path = (fs::temp_directory_path() / name).string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}

TEST(FaultPlan, DefaultIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.armed());
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_FALSE(plan.plans_throw(k, 1));
    EXPECT_FALSE(plan.plans_permanent(k, 1));
    EXPECT_FALSE(plan.plans_stall(k, 1));
    EXPECT_FALSE(plan.io_should_fail(k, 1));
    EXPECT_NO_THROW(plan.maybe_fault(k, 1));
  }
}

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedKeyAttempt) {
  const FaultPlan a(42, spec_with(0.5, 0.2, 0.1, 0.3));
  const FaultPlan b(42, spec_with(0.5, 0.2, 0.1, 0.3));
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(a.plans_throw(k, 1), b.plans_throw(k, 1));
    EXPECT_EQ(a.plans_permanent(k, 1), b.plans_permanent(k, 1));
    EXPECT_EQ(a.plans_stall(k, 1), b.plans_stall(k, 1));
    EXPECT_EQ(a.io_should_fail(k, 1), b.io_should_fail(k, 1));
  }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentPlans) {
  const FaultPlan a(1, spec_with(0.5));
  const FaultPlan b(2, spec_with(0.5));
  int differing = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    if (a.plans_throw(k, 1) != b.plans_throw(k, 1)) ++differing;
  }
  EXPECT_GT(differing, 20);
}

TEST(FaultPlan, RateOneFaultsEveryFirstAttempt) {
  const FaultPlan plan(7, spec_with(1.0));
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(plan.plans_throw(k, 1));
    EXPECT_THROW(plan.maybe_fault(k, 1), TransientError);
  }
}

TEST(FaultPlan, LaterAttemptsSpareByDefault) {
  // fault_attempts_at_most defaults to 1: a retried job must succeed.
  const FaultPlan plan(7, spec_with(1.0, 1.0, 1.0, 1.0));
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_FALSE(plan.plans_throw(k, 2));
    EXPECT_FALSE(plan.plans_permanent(k, 2));
    EXPECT_FALSE(plan.io_should_fail(k, 2));
    EXPECT_NO_THROW(plan.maybe_fault(k, 2));
  }
}

TEST(FaultPlan, PermanentFaultThrowsPlainRuntimeError) {
  FaultSpec spec = spec_with(0, 1.0);
  const FaultPlan plan(3, spec);
  try {
    plan.maybe_fault(0, 1);
    FAIL() << "expected a throw";
  } catch (const TransientError&) {
    FAIL() << "permanent fault must not be retryable";
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(FaultPlan, ApproximateRateHonored) {
  const FaultPlan plan(11, spec_with(0.3));
  int hits = 0;
  const int n = 2000;
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(n); ++k) {
    if (plan.plans_throw(k, 1)) ++hits;
  }
  EXPECT_GT(hits, n * 0.2);
  EXPECT_LT(hits, n * 0.4);
}

TEST(CorpusMutation, TruncateFileShortens) {
  const std::string path = temp_file("ccsig_trunc.bin", "0123456789");
  truncate_file(path, 4);
  EXPECT_EQ(fs::file_size(path), 4u);
  truncate_file(path, 100);  // longer than the file: no-op
  EXPECT_EQ(fs::file_size(path), 4u);
  fs::remove(path);
}

TEST(CorpusMutation, FlipByteChangesExactlyThatByte) {
  const std::string path = temp_file("ccsig_flip.bin", "abcdef");
  flip_byte(path, 2, 0x01);
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, std::string("ab") + static_cast<char>('c' ^ 0x01) + "def");
  // Mask 0 is promoted so the mutation always changes the byte.
  flip_byte(path, 0, 0);
  std::ifstream in2(path, std::ios::binary);
  std::string got2((std::istreambuf_iterator<char>(in2)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(got2[0], 'a');
  fs::remove(path);
}

TEST(CorpusMutation, FlipByteOutOfRangeThrows) {
  const std::string path = temp_file("ccsig_flip_oob.bin", "xy");
  EXPECT_THROW(flip_byte(path, 10), std::runtime_error);
  fs::remove(path);
  EXPECT_THROW(flip_byte("/no/such/file.bin", 0), std::runtime_error);
}

TEST(CorpusMutation, MutateCorpusIsDeterministic) {
  const std::string source =
      temp_file("ccsig_corpus_src.bin", std::string(256, 'Q'));
  const std::string dir_a =
      (fs::temp_directory_path() / "ccsig_corpus_a").string();
  const std::string dir_b =
      (fs::temp_directory_path() / "ccsig_corpus_b").string();
  const auto mutants_a = mutate_corpus(source, dir_a, 5, 6);
  const auto mutants_b = mutate_corpus(source, dir_b, 5, 6);
  ASSERT_EQ(mutants_a.size(), 6u);
  ASSERT_EQ(mutants_b.size(), 6u);
  std::string original;
  {
    std::ifstream in(source, std::ios::binary);
    original.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  for (std::size_t i = 0; i < mutants_a.size(); ++i) {
    std::ifstream fa(mutants_a[i], std::ios::binary);
    std::ifstream fb(mutants_b[i], std::ios::binary);
    const std::string ca((std::istreambuf_iterator<char>(fa)),
                         std::istreambuf_iterator<char>());
    const std::string cb((std::istreambuf_iterator<char>(fb)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(ca, cb) << "mutant " << i << " differs across identical seeds";
    EXPECT_NE(ca, original) << "mutant " << i << " did not damage the file";
  }
  fs::remove(source);
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

}  // namespace
}  // namespace ccsig::runtime

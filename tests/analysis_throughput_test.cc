#include "analysis/throughput.h"

#include <gtest/gtest.h>

namespace ccsig::analysis {
namespace {

using sim::kMillisecond;
using sim::kSecond;

FlowTrace make_flow() {
  FlowTrace flow;
  flow.data_key = sim::FlowKey{1, 2, 10, 20};
  // One data packet anchors start_time at 0.
  TraceRecord d;
  d.time = 0;
  d.key = flow.data_key;
  d.seq = 1;
  d.payload_bytes = 100;
  flow.data.push_back(d);
  return flow;
}

void add_ack(FlowTrace& flow, sim::Time t, std::uint64_t ack) {
  TraceRecord r;
  r.time = t;
  r.key = flow.data_key.reversed();
  r.ack = ack;
  r.flags.ack = true;
  flow.acks.push_back(r);
}

TEST(ThroughputSeries, BucketsAckProgress) {
  FlowTrace flow = make_flow();
  // 1000 bytes acked in the first 100 ms window, 3000 in the second.
  add_ack(flow, 50 * kMillisecond, 1001);
  add_ack(flow, 150 * kMillisecond, 4001);
  const auto series = throughput_series(flow, 100 * kMillisecond);
  ASSERT_GE(series.size(), 2u);
  EXPECT_NEAR(series[0].bps, 1000 * 8.0 / 0.1, 1.0);
  EXPECT_NEAR(series[1].bps, 3000 * 8.0 / 0.1, 1.0);
  EXPECT_EQ(series[0].window_start, 0);
  EXPECT_EQ(series[1].window_start, 100 * kMillisecond);
}

TEST(ThroughputSeries, DuplicateAcksIgnored) {
  FlowTrace flow = make_flow();
  add_ack(flow, 10 * kMillisecond, 1001);
  add_ack(flow, 20 * kMillisecond, 1001);  // dup
  add_ack(flow, 30 * kMillisecond, 1001);  // dup
  const auto series = throughput_series(flow, 100 * kMillisecond);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_NEAR(series[0].bps, 1000 * 8.0 / 0.1, 1.0);
}

TEST(ThroughputSeries, IdleWindowsAreZero) {
  FlowTrace flow = make_flow();
  add_ack(flow, 10 * kMillisecond, 1001);
  add_ack(flow, 250 * kMillisecond, 2001);
  const auto series = throughput_series(flow, 100 * kMillisecond);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_GT(series[0].bps, 0);
  EXPECT_EQ(series[1].bps, 0);
  EXPECT_GT(series[2].bps, 0);
}

TEST(ThroughputSeries, EmptyAndDegenerateInputs) {
  FlowTrace flow = make_flow();
  EXPECT_TRUE(throughput_series(flow, 100 * kMillisecond).empty());
  add_ack(flow, 10, 1001);
  EXPECT_TRUE(throughput_series(flow, 0).empty());
}

TEST(PeakWindowed, FindsBusiestWindow) {
  FlowTrace flow = make_flow();
  add_ack(flow, 50 * kMillisecond, 1001);
  add_ack(flow, 150 * kMillisecond, 10'001);  // busiest
  add_ack(flow, 250 * kMillisecond, 12'001);
  EXPECT_NEAR(peak_windowed_throughput_bps(flow, 100 * kMillisecond),
              9000 * 8.0 / 0.1, 1.0);
}

TEST(ThroughputBetween, ExactSpanRate) {
  FlowTrace flow = make_flow();
  add_ack(flow, 100 * kMillisecond, 5001);
  add_ack(flow, 600 * kMillisecond, 30'001);
  const double bps = throughput_between_bps(flow, 100 * kMillisecond,
                                            600 * kMillisecond);
  EXPECT_NEAR(bps, 25'000 * 8.0 / 0.5, 1.0);
}

TEST(ThroughputBetween, EmptyOrInvertedSpanIsZero) {
  FlowTrace flow = make_flow();
  add_ack(flow, 100 * kMillisecond, 5001);
  EXPECT_EQ(throughput_between_bps(flow, 200 * kMillisecond,
                                   100 * kMillisecond),
            0.0);
  EXPECT_EQ(throughput_between_bps(flow, 200 * kMillisecond,
                                   300 * kMillisecond),
            0.0);
}

}  // namespace
}  // namespace ccsig::analysis

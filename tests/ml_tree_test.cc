#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "sim/random.h"

namespace ccsig::ml {
namespace {

Dataset xor_quadrants(int per_quadrant, std::uint64_t seed) {
  // Class = XOR of the sign quadrant — requires depth >= 2 to separate.
  Dataset d({"x", "y"});
  sim::Rng rng(seed);
  for (int i = 0; i < per_quadrant * 4; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    d.add({x, y}, (x > 0) != (y > 0) ? 1 : 0);
  }
  return d;
}

TEST(DecisionTree, UntrainedThrowsOnPredict) {
  DecisionTree tree;
  EXPECT_FALSE(tree.trained());
  const double row[] = {0.0, 0.0};
  EXPECT_THROW(tree.predict(row), std::logic_error);
}

TEST(DecisionTree, FitEmptyThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.fit(Dataset{}), std::invalid_argument);
}

TEST(DecisionTree, PerfectlySeparableDataIsLearnedExactly) {
  Dataset d({"x"});
  for (int i = 0; i < 50; ++i) {
    d.add({static_cast<double>(i)}, i < 25 ? 0 : 1);
  }
  DecisionTree tree(DecisionTree::Params{.max_depth = 1});
  tree.fit(d);
  const auto pred = tree.predict_all(d);
  ConfusionMatrix cm(d.labels(), pred);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_EQ(tree.leaf_count(), 2u);
}

TEST(DecisionTree, XorNeedsDepth) {
  // XOR has no useful first split, so a greedy stump stays near chance;
  // deeper trees recover the structure (a few levels of greedy splits).
  const Dataset d = xor_quadrants(50, 7);
  DecisionTree shallow(DecisionTree::Params{.max_depth = 1});
  shallow.fit(d);
  ConfusionMatrix cm1(d.labels(), shallow.predict_all(d));
  DecisionTree deep(DecisionTree::Params{.max_depth = 5});
  deep.fit(d);
  ConfusionMatrix cm2(d.labels(), deep.predict_all(d));
  EXPECT_LT(cm1.accuracy(), 0.75);
  EXPECT_GT(cm2.accuracy(), 0.85);
  EXPECT_GT(cm2.accuracy(), cm1.accuracy());
}

TEST(DecisionTree, DepthNeverExceedsLimit) {
  const Dataset d = xor_quadrants(100, 3);
  for (int depth = 1; depth <= 6; ++depth) {
    DecisionTree tree(DecisionTree::Params{.max_depth = depth});
    tree.fit(d);
    EXPECT_LE(tree.depth(), depth);
  }
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 0);
  DecisionTree tree(DecisionTree::Params{.max_depth = 5});
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 0);
  const double row[] = {3.0};
  EXPECT_EQ(tree.predict(row), 0);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, i == 0 ? 1 : 0);
  DecisionTree tree(DecisionTree::Params{.max_depth = 5,
                                         .min_samples_split = 2,
                                         .min_samples_leaf = 3});
  tree.fit(d);
  // The lone positive cannot be isolated into a leaf of size < 3.
  const double row[] = {0.0};
  EXPECT_EQ(tree.predict(row), 0);
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  const Dataset d = xor_quadrants(50, 9);
  DecisionTree tree(DecisionTree::Params{.max_depth = 4});
  tree.fit(d);
  sim::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double row[] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const auto probs = tree.predict_proba(row);
    double sum = 0;
    for (double p : probs) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DecisionTree, SerializationRoundTripPreservesPredictions) {
  const Dataset d = xor_quadrants(80, 13);
  DecisionTree tree(DecisionTree::Params{.max_depth = 4});
  tree.fit(d);
  const std::string text = tree.to_text();
  const DecisionTree restored = DecisionTree::from_text(text);
  EXPECT_EQ(restored.node_count(), tree.node_count());
  sim::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double row[] = {rng.uniform(-2, 2), rng.uniform(-2, 2)};
    EXPECT_EQ(restored.predict(row), tree.predict(row));
    EXPECT_EQ(restored.predict_proba(row), tree.predict_proba(row));
  }
  // Round trip is a fixed point.
  EXPECT_EQ(restored.to_text(), text);
}

TEST(DecisionTree, FromTextRejectsGarbage) {
  EXPECT_THROW(DecisionTree::from_text("hello"), std::invalid_argument);
  EXPECT_THROW(DecisionTree::from_text("ccsig-dtree v1\nclasses 2\n"),
               std::invalid_argument);
}

TEST(DecisionTree, DescribeMentionsFeatureNames) {
  Dataset d({"norm_diff", "cov"});
  for (int i = 0; i < 10; ++i) {
    d.add({i / 10.0, i / 20.0}, i < 5 ? 0 : 1);
  }
  DecisionTree tree(DecisionTree::Params{.max_depth = 2});
  tree.fit(d);
  const std::string desc = tree.describe({"norm_diff", "cov"});
  EXPECT_NE(desc.find("norm_diff"), std::string::npos);
  EXPECT_NE(desc.find("class"), std::string::npos);
}

TEST(DecisionTree, MinImpurityDecreaseBlocksWeakSplits) {
  // Nearly pure data: the best split gains little; a high threshold
  // suppresses it.
  Dataset d({"x"});
  for (int i = 0; i < 100; ++i) d.add({static_cast<double>(i)}, 0);
  d.add({200.0}, 1);
  DecisionTree strict(DecisionTree::Params{.max_depth = 3,
                                           .min_samples_split = 2,
                                           .min_samples_leaf = 1,
                                           .min_impurity_decrease = 0.05});
  strict.fit(d);
  EXPECT_EQ(strict.node_count(), 1u);
  DecisionTree lax(DecisionTree::Params{.max_depth = 3});
  lax.fit(d);
  EXPECT_GT(lax.node_count(), 1u);
}

// Property: training accuracy is monotone non-decreasing in depth.
class DepthMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DepthMonotonicity, TrainAccuracyNonDecreasing) {
  const Dataset d = xor_quadrants(40, GetParam());
  double prev = 0.0;
  for (int depth = 1; depth <= 5; ++depth) {
    DecisionTree tree(DecisionTree::Params{.max_depth = depth});
    tree.fit(d);
    ConfusionMatrix cm(d.labels(), tree.predict_all(d));
    EXPECT_GE(cm.accuracy() + 1e-12, prev);
    prev = cm.accuracy();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepthMonotonicity,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace ccsig::ml
